// Tests for the deterministic RNG stack (SplitMix64 / Xoshiro256**).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/rng.hpp"

namespace adv {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double m = 0.0, m2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    m += x;
    m2 += x * x;
  }
  m /= n;
  m2 /= n;
  EXPECT_NEAR(m, 0.0, 0.03);
  EXPECT_NEAR(m2 - m * m, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.normal(5.0, 0.5);
  EXPECT_NEAR(acc / n, 5.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(12);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.uniform_index(10);
    EXPECT_LT(idx, 10u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentOfParentUsage) {
  // fork() consumes exactly one draw, so two identically-seeded parents
  // that fork at the same point produce identical children.
  Rng p1(99), p2(99);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // And the child stream differs from the parent's.
  Rng p3(99);
  Rng c3 = p3.fork();
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (p3.next_u64() == c3.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownGoldenValues) {
  // Reference values from the public-domain splitmix64 implementation.
  SplitMix64 sm(0);
  const std::uint64_t v0 = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(v0, sm2.next());
  EXPECT_NE(v0, sm.next());  // stream advances
}

}  // namespace
}  // namespace adv
