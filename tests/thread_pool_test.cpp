// Tests for ThreadPool: exact coverage, chunk indexing, determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::size_t total = 0;
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) total += i;
  });
  EXPECT_EQ(total, 4950u);
}

TEST(ThreadPool, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, IndexedChunksAreDenseAndDisjoint) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::size_t> chunk_of(100, 999);
  std::vector<std::size_t> chunks_seen;
  pool.parallel_for_indexed(
      0, 100, [&](std::size_t chunk, std::size_t b, std::size_t e) {
        std::lock_guard lock(m);
        chunks_seen.push_back(chunk);
        for (std::size_t i = b; i < e; ++i) chunk_of[i] = chunk;
      });
  for (std::size_t c : chunks_seen) EXPECT_LT(c, pool.max_chunks());
  for (std::size_t c : chunk_of) EXPECT_NE(c, 999u);
  // Chunks are contiguous: indices mapping to the same chunk are adjacent.
  for (std::size_t i = 1; i < 100; ++i) {
    if (chunk_of[i] != chunk_of[i - 1]) {
      EXPECT_GT(chunk_of[i], chunk_of[i - 1]);
    }
  }
}

TEST(ThreadPool, DeterministicPartitioning) {
  // The chunk boundaries must be a pure function of (range, threads).
  ThreadPool pool(3);
  auto capture = [&] {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    pool.parallel_for(0, 77, [&](std::size_t b, std::size_t e) {
      std::lock_guard lock(m);
      spans.emplace_back(b, e);
    });
    std::sort(spans.begin(), spans.end());
    return spans;
  };
  EXPECT_EQ(capture(), capture());
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 64u);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

TEST(ThreadPool, ParallelReductionPerChunkIsExact) {
  ThreadPool pool(4);
  std::vector<double> partial(pool.max_chunks(), 0.0);
  pool.parallel_for_indexed(1, 1001,
                            [&](std::size_t c, std::size_t b, std::size_t e) {
                              for (std::size_t i = b; i < e; ++i) {
                                partial[c] += static_cast<double>(i);
                              }
                            });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 500500.0);
}

}  // namespace
}  // namespace adv
