// Tests for ThreadPool: exact coverage, chunk indexing, determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::size_t total = 0;
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) total += i;
  });
  EXPECT_EQ(total, 4950u);
}

TEST(ThreadPool, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, IndexedChunksAreDenseAndDisjoint) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::size_t> chunk_of(100, 999);
  std::vector<std::size_t> chunks_seen;
  pool.parallel_for_indexed(
      0, 100, [&](std::size_t chunk, std::size_t b, std::size_t e) {
        std::lock_guard lock(m);
        chunks_seen.push_back(chunk);
        for (std::size_t i = b; i < e; ++i) chunk_of[i] = chunk;
      });
  for (std::size_t c : chunks_seen) EXPECT_LT(c, pool.max_chunks());
  for (std::size_t c : chunk_of) EXPECT_NE(c, 999u);
  // Chunks are contiguous: indices mapping to the same chunk are adjacent.
  for (std::size_t i = 1; i < 100; ++i) {
    if (chunk_of[i] != chunk_of[i - 1]) {
      EXPECT_GT(chunk_of[i], chunk_of[i - 1]);
    }
  }
}

TEST(ThreadPool, DeterministicPartitioning) {
  // The chunk boundaries must be a pure function of (range, threads).
  ThreadPool pool(3);
  auto capture = [&] {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    pool.parallel_for(0, 77, [&](std::size_t b, std::size_t e) {
      std::lock_guard lock(m);
      spans.emplace_back(b, e);
    });
    std::sort(spans.begin(), spans.end());
    return spans;
  };
  EXPECT_EQ(capture(), capture());
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 64u);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

TEST(ThreadPool, ExceptionFromWorkerTaskPropagatesToCaller) {
  ThreadPool pool(4);
  // With 4 threads over [0,1000), index 900 lands in the last chunk,
  // which a worker (not the caller) executes.
  auto boom = [](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      if (i == 900) throw std::runtime_error("boom at 900");
    }
  };
  try {
    pool.parallel_for(0, 1000, boom);
    FAIL() << "expected exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 900");  // message preserved
  }
}

TEST(ThreadPool, ExceptionFromCallerChunkDrainsWorkers) {
  ThreadPool pool(4);
  std::atomic<std::size_t> done{0};
  auto fn = [&](std::size_t b, std::size_t e) {
    if (b == 0) throw std::runtime_error("caller chunk");
    for (std::size_t i = b; i < e; ++i) done.fetch_add(1);
  };
  EXPECT_THROW(pool.parallel_for(0, 1000, fn), std::runtime_error);
  // The caller's chunk covers [0,250); all other chunks must have run.
  EXPECT_EQ(done.load(), 750u);
}

TEST(ThreadPool, PoolStaysUsableAfterException) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [](std::size_t, std::size_t) {
                            throw std::runtime_error("each round");
                          }),
        std::runtime_error);
    // A clean call right after must cover the range exactly and not see a
    // stale exception.
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ConcurrentThrowsDeliverExactlyOne) {
  ThreadPool pool(8);
  // Every chunk throws; exactly one exception must surface, the rest are
  // swallowed after all chunks drain (no deadlock, no terminate).
  std::atomic<int> started{0};
  try {
    pool.parallel_for(0, 8, [&](std::size_t b, std::size_t) {
      started.fetch_add(1);
      throw std::runtime_error("chunk " + std::to_string(b));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(started.load(), 8);
}

TEST(ThreadPool, SingleThreadPoolPropagatesToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t, std::size_t) {
                                   throw std::logic_error("serial");
                                 }),
               std::logic_error);
  std::size_t total = 0;
  pool.parallel_for(0, 10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) total += i;
  });
  EXPECT_EQ(total, 45u);
}

// Saves/restores one environment variable around a test body.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v) saved_ = v;
    had_ = v != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadPool, EnvOverrideParsesPositiveIntegers) {
  EnvGuard guard("ADV_THREADS");
  ::setenv("ADV_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::env_thread_override(), 3u);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ::setenv("ADV_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::env_thread_override(), 1u);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, EnvOverrideRejectsMalformedValues) {
  EnvGuard guard("ADV_THREADS");
  for (const char* bad : {"", "0", "-2", "abc", "2x", "  "}) {
    ::setenv("ADV_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::env_thread_override(), 0u) << "value: '" << bad
                                                     << "'";
  }
  ::unsetenv("ADV_THREADS");
  EXPECT_EQ(ThreadPool::env_thread_override(), 0u);
}

TEST(ThreadPool, DefaultCountFallsBackToHardware) {
  EnvGuard guard("ADV_THREADS");
  ::unsetenv("ADV_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ThreadPool::default_thread_count(), hw ? hw : 1u);
}

TEST(ThreadPool, ParallelReductionPerChunkIsExact) {
  ThreadPool pool(4);
  std::vector<double> partial(pool.max_chunks(), 0.0);
  pool.parallel_for_indexed(1, 1001,
                            [&](std::size_t c, std::size_t b, std::size_t e) {
                              for (std::size_t i = b; i < e; ++i) {
                                partial[c] += static_cast<double>(i);
                              }
                            });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 500500.0);
}

}  // namespace
}  // namespace adv
