// Dataset and synthetic-generator tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "data/dataset.hpp"
#include "data/image_io.hpp"
#include "data/syn_digits.hpp"
#include "data/syn_objects.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::data {
namespace {

TEST(Dataset, SliceAndSplit) {
  Dataset d;
  d.images = Tensor({10, 1, 2, 2});
  for (std::size_t i = 0; i < d.images.numel(); ++i) {
    d.images[i] = static_cast<float>(i);
  }
  d.labels = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Dataset s = d.slice(2, 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.labels[0], 2);
  EXPECT_FLOAT_EQ(s.images[0], 8.0f);  // row 2 starts at flat index 2*4

  auto [a, b] = split(d, 4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.labels[0], 4);
  EXPECT_THROW(split(d, 11), std::out_of_range);
}

TEST(Dataset, FilterSelectsRows) {
  Dataset d;
  d.images = Tensor({4, 1, 1, 1});
  for (std::size_t i = 0; i < 4; ++i) d.images[i] = static_cast<float>(i);
  d.labels = {0, 1, 2, 3};
  const Dataset f = d.filter({3, 1});
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.labels[0], 3);
  EXPECT_FLOAT_EQ(f.images[1], 1.0f);
  EXPECT_THROW(d.filter({9}), std::out_of_range);
}

TEST(Dataset, ShuffleIsDeterministicPermutation) {
  Dataset d;
  d.images = Tensor({8, 1, 1, 1});
  for (std::size_t i = 0; i < 8; ++i) d.images[i] = static_cast<float>(i);
  d.labels = {0, 1, 2, 3, 4, 5, 6, 7};
  Dataset d2 = d;
  Rng r1(5), r2(5);
  d.shuffle(r1);
  d2.shuffle(r2);
  EXPECT_EQ(d.labels, d2.labels);
  // Image/label pairing preserved.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(d.images[i], static_cast<float>(d.labels[i]));
  }
  // It is a permutation.
  std::set<int> seen(d.labels.begin(), d.labels.end());
  EXPECT_EQ(seen.size(), 8u);
}

// --- SynDigits ----------------------------------------------------------

TEST(SynDigits, ShapesLabelsAndRange) {
  SynDigitsConfig cfg;
  cfg.count = 40;
  const Dataset d = make_syn_digits(cfg);
  EXPECT_EQ(d.images.shape(), Shape({40, 1, 28, 28}));
  ASSERT_EQ(d.labels.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(d.labels[i], static_cast<int>(i % 10));
  }
  EXPECT_GE(min_value(d.images), 0.0f);
  EXPECT_LE(max_value(d.images), 1.0f);
}

TEST(SynDigits, DeterministicGivenSeed) {
  SynDigitsConfig cfg;
  cfg.count = 20;
  const Dataset a = make_syn_digits(cfg);
  const Dataset b = make_syn_digits(cfg);
  for (std::size_t i = 0; i < a.images.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
  }
}

TEST(SynDigits, SampleContentIndependentOfCount) {
  SynDigitsConfig small;
  small.count = 10;
  SynDigitsConfig big = small;
  big.count = 30;
  const Dataset a = make_syn_digits(small);
  const Dataset b = make_syn_digits(big);
  const std::size_t row = 28 * 28;
  for (std::size_t i = 0; i < 10 * row; ++i) {
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
  }
}

TEST(SynDigits, DifferentSeedsDiffer) {
  SynDigitsConfig a, b;
  a.count = b.count = 10;
  b.seed = a.seed + 1;
  const Dataset da = make_syn_digits(a);
  const Dataset db = make_syn_digits(b);
  EXPECT_GT(l1_distance(da.images, db.images), 1.0f);
}

TEST(SynDigits, DigitsHaveInk) {
  SynDigitsConfig cfg;
  cfg.count = 10;
  cfg.pixel_noise_std = 0.0f;
  const Dataset d = make_syn_digits(cfg);
  for (std::size_t i = 0; i < 10; ++i) {
    const Tensor img = d.images.slice_rows(i, i + 1);
    EXPECT_GT(sum(img), 10.0f) << "digit " << i << " is blank";
    EXPECT_LT(mean(img), 0.8f) << "digit " << i << " is saturated";
  }
}

TEST(SynDigits, StrokeIntensityBoundsRespected) {
  SynDigitsConfig cfg;
  cfg.count = 10;
  cfg.pixel_noise_std = 0.0f;
  cfg.stroke_intensity_min = 0.4f;
  cfg.stroke_intensity_max = 0.6f;
  const Dataset d = make_syn_digits(cfg);
  EXPECT_LE(max_value(d.images), 0.6f + 1e-5f);
}

TEST(SynDigits, OnesAndEightsDiffer) {
  SynDigitsConfig cfg;
  cfg.count = 20;
  cfg.pixel_noise_std = 0.0f;
  const Dataset d = make_syn_digits(cfg);
  // label 1 at index 1, label 8 at index 8; an 8 uses all 7 segments so it
  // has much more ink than a 1 (2 segments).
  EXPECT_GT(sum(d.images.slice_rows(8, 9)),
            1.5f * sum(d.images.slice_rows(1, 2)));
}

TEST(SynDigits, RenderRejectsBadDigit) {
  SynDigitsConfig cfg;
  EXPECT_THROW(render_syn_digit(cfg, 0, 10), std::invalid_argument);
  EXPECT_THROW(render_syn_digit(cfg, 0, -1), std::invalid_argument);
  EXPECT_THROW(make_syn_digits(SynDigitsConfig{.count = 0}),
               std::invalid_argument);
}

// --- SynObjects ----------------------------------------------------------

TEST(SynObjects, ShapesLabelsAndRange) {
  SynObjectsConfig cfg;
  cfg.count = 30;
  const Dataset d = make_syn_objects(cfg);
  EXPECT_EQ(d.images.shape(), Shape({30, 3, 32, 32}));
  EXPECT_GE(min_value(d.images), 0.0f);
  EXPECT_LE(max_value(d.images), 1.0f);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(d.labels[i], static_cast<int>(i % 10));
  }
}

TEST(SynObjects, Deterministic) {
  SynObjectsConfig cfg;
  cfg.count = 10;
  const Dataset a = make_syn_objects(cfg);
  const Dataset b = make_syn_objects(cfg);
  for (std::size_t i = 0; i < a.images.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
  }
}

TEST(SynObjects, ClassesAreVisuallyDistinct) {
  SynObjectsConfig cfg;
  cfg.count = 10;
  cfg.pixel_noise_std = 0.0f;
  const Dataset d = make_syn_objects(cfg);
  // Any two class exemplars should differ substantially in pixel space.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      EXPECT_GT(l2_distance(d.images.slice_rows(i, i + 1),
                            d.images.slice_rows(j, j + 1)),
                1.0f)
          << "classes " << i << " and " << j << " look identical";
    }
  }
}

TEST(SynObjects, RejectsBadInputs) {
  SynObjectsConfig cfg;
  EXPECT_THROW(render_syn_object(cfg, 0, 11), std::invalid_argument);
  EXPECT_THROW(make_syn_objects(SynObjectsConfig{.count = 0}),
               std::invalid_argument);
}

// --- image io -------------------------------------------------------------

class ImageIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test dir: ctest runs each test in its own process, so a shared
    // path would let one test's TearDown remove_all another's files.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("adv_imgio_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ImageIoTest, WritesPgmWithCorrectHeaderAndSize) {
  Tensor img({1, 1, 4, 6}, 0.5f);
  const auto path = dir_ / "img.pgm";
  write_pgm(path, img);
  std::ifstream is(path, std::ios::binary);
  std::string magic, dims;
  std::getline(is, magic);
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(std::filesystem::file_size(path),
            std::string("P5\n6 4\n255\n").size() + 24);
}

TEST_F(ImageIoTest, WritesPpmForColorImages) {
  Tensor img({3, 2, 2}, 0.25f);
  const auto path = dir_ / "img.ppm";
  write_ppm(path, img);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path),
            std::string("P6\n2 2\n255\n").size() + 12);
}

TEST_F(ImageIoTest, DispatchByChannels) {
  write_image(dir_ / "gray.pgm", Tensor({1, 1, 2, 2}, 0.0f));
  write_image(dir_ / "color.ppm", Tensor({1, 3, 2, 2}, 0.0f));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "gray.pgm"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "color.ppm"));
}

TEST_F(ImageIoTest, RejectsBadShapes) {
  EXPECT_THROW(write_pgm(dir_ / "x.pgm", Tensor({3, 2, 2})),
               std::invalid_argument);
  EXPECT_THROW(write_ppm(dir_ / "x.ppm", Tensor({1, 2, 2})),
               std::invalid_argument);
  EXPECT_THROW(write_pgm(dir_ / "x.pgm", Tensor({2, 1, 2, 2})),
               std::invalid_argument);
}

}  // namespace
}  // namespace adv::data
