// GEMM correctness against a naive reference, across shapes and variants.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-3f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  Tensor a({static_cast<std::size_t>(m), static_cast<std::size_t>(k)});
  Tensor b({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  Tensor c;
  gemm(a, b, c);
  expect_close(c, naive_matmul(a, b));
}

TEST_P(GemmShapes, AtBMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + k + n + 5));
  // a stored as [k, m], logical op a^T * b.
  Tensor a_t({static_cast<std::size_t>(k), static_cast<std::size_t>(m)});
  Tensor b({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
  fill_normal(a_t, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  Tensor a({static_cast<std::size_t>(m), static_cast<std::size_t>(k)});
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      a.at(static_cast<std::size_t>(i), static_cast<std::size_t>(kk)) =
          a_t.at(static_cast<std::size_t>(kk), static_cast<std::size_t>(i));
    }
  }
  Tensor c;
  gemm_at_b(a_t, b, c);
  expect_close(c, naive_matmul(a, b));
}

TEST_P(GemmShapes, ABtMatchesTransposedNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + k * 7 + n * 11));
  Tensor a({static_cast<std::size_t>(m), static_cast<std::size_t>(k)});
  // b stored as [n, k], logical op a * b^T.
  Tensor b_t({static_cast<std::size_t>(n), static_cast<std::size_t>(k)});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b_t, rng, 0.0f, 1.0f);
  Tensor b({static_cast<std::size_t>(k), static_cast<std::size_t>(n)});
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      b.at(static_cast<std::size_t>(kk), static_cast<std::size_t>(j)) =
          b_t.at(static_cast<std::size_t>(j), static_cast<std::size_t>(kk));
    }
  }
  Tensor c;
  gemm_a_bt(a, b_t, c);
  expect_close(c, naive_matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 7}, std::tuple{16, 16, 16},
                      std::tuple{33, 7, 19}, std::tuple{64, 128, 32},
                      std::tuple{128, 64, 96}));

TEST(Gemm, InnerDimMismatchThrows) {
  Tensor a({2, 3}), b({4, 5});
  Tensor c;
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_at_b(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_a_bt(a, b, c), std::invalid_argument);
}

TEST(Gemm, RankMismatchThrows) {
  Tensor a({6}), b({2, 3});
  Tensor c;
  EXPECT_THROW(gemm(a, b, c), std::invalid_argument);
}

TEST(Gemm, RawAccumulateAddsIntoC) {
  Tensor a = Tensor::from_data(Shape({1, 2}), {1, 2});
  Tensor b = Tensor::from_data(Shape({2, 1}), {3, 4});
  Tensor c({1, 1}, 10.0f);
  gemm_raw(a.data(), b.data(), c.data(), 1, 2, 1,
           {.accumulate = true, .parallel = false});
  EXPECT_FLOAT_EQ(c[0], 21.0f);
  gemm_raw(a.data(), b.data(), c.data(), 1, 2, 1,
           {.accumulate = false, .parallel = false});
  EXPECT_FLOAT_EQ(c[0], 11.0f);
}

TEST(Gemm, LargeParallelMatchesSmallSerial) {
  // A matrix big enough to trigger the parallel path must agree with the
  // naive result (exercises determinism of the partitioned GEMM).
  Rng rng(77);
  Tensor a({70, 50}), b({50, 60});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  Tensor c1, c2;
  gemm(a, b, c1);
  gemm(a, b, c2);
  expect_close(c1, c2, 0.0f);  // bit-identical across runs
  expect_close(c1, naive_matmul(a, b));
}

}  // namespace
}  // namespace adv
