// adv::fault tests: failpoint spec parsing and trigger semantics, plus the
// ModelZoo self-healing cache end to end (quarantine + rebuild of corrupt
// artifacts). tools/ci.sh re-runs everything labeled `fault` with
// ADV_FAULT armed in the environment.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/model_zoo.hpp"
#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "tensor/serialize.hpp"

namespace adv {
namespace {

// First in the file so a manual whole-binary run exercises it before any
// reset() clears the env-armed state; under ctest each test is its own
// process, so order does not matter there.
TEST(FailpointEnv, AdvFaultEnvVarArmsSites) {
  const char* env = std::getenv("ADV_FAULT");
  if (!env || !*env) GTEST_SKIP() << "ADV_FAULT not set";
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::armed_sites().empty());
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(FailpointTest, DisarmedCheckIsNone) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::check("serialize.write"), fault::Action::None);
  EXPECT_EQ(fault::hit_count("serialize.write"), 0u);
}

TEST_F(FailpointTest, PlainActionTriggersEveryHit) {
  fault::arm("a.b:bitflip");
  EXPECT_TRUE(fault::enabled());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fault::check("a.b"), fault::Action::BitFlip);
  }
  EXPECT_EQ(fault::hit_count("a.b"), 3u);
  EXPECT_EQ(fault::check("other.site"), fault::Action::None);
}

TEST_F(FailpointTest, OnceTriggersExactlyOnce) {
  fault::arm("t.loss:nan_once");
  EXPECT_EQ(fault::check("t.loss"), fault::Action::Nan);
  EXPECT_EQ(fault::check("t.loss"), fault::Action::None);
  EXPECT_EQ(fault::check("t.loss"), fault::Action::None);
  EXPECT_EQ(fault::hit_count("t.loss"), 3u);  // counter advances regardless
}

TEST_F(FailpointTest, AfterSkipsInitialHits) {
  fault::arm("s.w:fail_after=2");
  EXPECT_EQ(fault::check("s.w"), fault::Action::None);
  EXPECT_EQ(fault::check("s.w"), fault::Action::None);
  EXPECT_EQ(fault::check("s.w"), fault::Action::Fail);
  EXPECT_EQ(fault::check("s.w"), fault::Action::Fail);  // and every later hit
}

TEST_F(FailpointTest, OnceAfterCombinesBothModifiers) {
  fault::arm("x.y:short_write_once_after=1");
  EXPECT_EQ(fault::check("x.y"), fault::Action::None);
  EXPECT_EQ(fault::check("x.y"), fault::Action::ShortWrite);
  EXPECT_EQ(fault::check("x.y"), fault::Action::None);
}

TEST_F(FailpointTest, MultiSpecArmsAllSites) {
  fault::arm("serialize.write:fail_after=2,trainer.loss:nan_once");
  const auto sites = fault::armed_sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "serialize.write");
  EXPECT_EQ(sites[1], "trainer.loss");
}

TEST_F(FailpointTest, RearmingReplacesAndResetClears) {
  fault::arm("a.b:fail_once");
  EXPECT_EQ(fault::check("a.b"), fault::Action::Fail);
  fault::arm("a.b:fail_once");  // re-arm: hit counter starts over
  EXPECT_EQ(fault::check("a.b"), fault::Action::Fail);
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::check("a.b"), fault::Action::None);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  EXPECT_THROW(fault::arm("nocolon"), std::invalid_argument);
  EXPECT_THROW(fault::arm(":fail"), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:explode"), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:fail_after="), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:fail_often"), std::invalid_argument);
}

// --- latency actions: delay / stall -------------------------------------

TEST_F(FailpointTest, DelaySleepsThenReportsNone) {
  fault::arm("slow.site:delay=30");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(fault::check("slow.site"), fault::Action::None);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The site proceeds normally — the injection is pure latency.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30);
  EXPECT_EQ(fault::hit_count("slow.site"), 1u);
}

TEST_F(FailpointTest, DelayComposesWithOnceAndAfter) {
  fault::arm("s.d:delay=25_once_after=1");
  const auto timed_check = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const fault::Action a = fault::check("s.d");
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_EQ(a, fault::Action::None);
    return ms;
  };
  EXPECT_LT(timed_check(), 25);  // hit 0: before _after
  EXPECT_GE(timed_check(), 25);  // hit 1: the one delayed hit
  EXPECT_LT(timed_check(), 25);  // hit 2: _once already spent
}

TEST_F(FailpointTest, MalformedDelaySpecsThrow) {
  EXPECT_THROW(fault::arm("site:delay"), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:delay="), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:delay=abc"), std::invalid_argument);
  EXPECT_THROW(fault::arm("site:stall=5"), std::invalid_argument);
}

TEST_F(FailpointTest, StallBlocksUntilSiteDisarmed) {
  fault::arm("wedge.site:stall");
  std::atomic<bool> entered{false};
  std::atomic<bool> released{false};
  std::thread stalled([&] {
    entered.store(true);
    EXPECT_EQ(fault::check("wedge.site"), fault::Action::None);
    released.store(true);
  });
  while (!entered.load()) std::this_thread::yield();
  // Long enough that a non-blocking check would certainly have finished.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(released.load());
  fault::reset();  // disarm releases the parked thread
  stalled.join();
  EXPECT_TRUE(released.load());
}

TEST_F(FailpointTest, RearmingStalledSiteReleasesWaiters) {
  fault::arm("wedge.two:stall");
  std::atomic<bool> released{false};
  std::thread stalled([&] {
    EXPECT_EQ(fault::check("wedge.two"), fault::Action::None);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());
  fault::arm("wedge.two:fail");  // replacing the action also releases
  stalled.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(fault::check("wedge.two"), fault::Action::Fail);
}

// --- ModelZoo self-healing cache ---------------------------------------

std::uint64_t quarantined_count() {
  return obs::MetricsRegistry::global()
      .counter("fault/cache_quarantined")
      .value();
}

std::uint64_t rebuilt_count() {
  return obs::MetricsRegistry::global().counter("fault/cache_rebuilt").value();
}

class SelfHealingZooTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    cfg_.train_count = 256;
    cfg_.val_count = 32;
    cfg_.test_count = 64;
    cfg_.classifier_epochs = 4;
    cfg_.ae_epochs = 1;
    cfg_.batch_size = 32;
    cfg_.attack_count = 4;
    cfg_.attack_iterations = 2;
    cfg_.binary_search_steps = 1;
    // Per-test dir: ctest runs each test as its own process, so a shared
    // path would let one test's SetUp remove_all another's staged files.
    cfg_.cache_dir =
        std::filesystem::temp_directory_path() /
        (std::string("adv_self_healing_zoo_test_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(cfg_.cache_dir);
  }
  void TearDown() override {
    fault::reset();
    std::filesystem::remove_all(cfg_.cache_dir);
  }

  std::filesystem::path classifier_path() const {
    return cfg_.cache_dir /
           ("classifier_mnist_" + cfg_.cache_tag() + ".bin");
  }

  static void flip_middle_byte(const std::filesystem::path& p) {
    std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
    const auto mid =
        static_cast<std::streamoff>(std::filesystem::file_size(p) / 2);
    f.seekg(mid);
    char b = 0;
    f.get(b);
    f.seekp(mid);
    f.put(static_cast<char>(b ^ 0x10));
  }

  core::ScaleConfig cfg_;
};

TEST_F(SelfHealingZooTest, BitFlippedClassifierIsQuarantinedAndRebuilt) {
  {
    core::ModelZoo zoo(cfg_);
    zoo.classifier(core::DatasetId::Mnist);  // trains and caches
  }
  ASSERT_TRUE(std::filesystem::exists(classifier_path()));
  flip_middle_byte(classifier_path());

  const std::uint64_t q0 = quarantined_count();
  const std::uint64_t r0 = rebuilt_count();
  core::ModelZoo zoo(cfg_);
  auto model = zoo.classifier(core::DatasetId::Mnist);  // must not throw
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(quarantined_count(), q0 + 1);
  EXPECT_EQ(rebuilt_count(), r0 + 1);
  // The bad bytes moved aside, a fresh valid artifact took their place.
  std::filesystem::path corrupt = classifier_path();
  corrupt += ".corrupt";
  EXPECT_TRUE(std::filesystem::exists(corrupt));
  EXPECT_NO_THROW(load_tensors(classifier_path()));
}

TEST_F(SelfHealingZooTest, TruncatedClassifierIsQuarantinedAndRebuilt) {
  {
    core::ModelZoo zoo(cfg_);
    zoo.classifier(core::DatasetId::Mnist);
  }
  const auto path = classifier_path();
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);

  const std::uint64_t q0 = quarantined_count();
  core::ModelZoo zoo(cfg_);
  EXPECT_NO_THROW(zoo.classifier(core::DatasetId::Mnist));
  EXPECT_EQ(quarantined_count(), q0 + 1);
  EXPECT_NO_THROW(load_tensors(path));
}

TEST_F(SelfHealingZooTest, CorruptAttackCacheIsQuarantinedAndRecrafted) {
  auto attack_files = [this] {
    std::vector<std::filesystem::path> out;
    for (const auto& e : std::filesystem::directory_iterator(cfg_.cache_dir)) {
      if (e.path().filename().string().rfind("atk_", 0) == 0 &&
          e.path().extension() == ".bin") {
        out.push_back(e.path());
      }
    }
    return out;
  };
  {
    core::ModelZoo zoo(cfg_);
    zoo.fgsm(core::DatasetId::Mnist, 0.1f, 1);
  }
  const auto files = attack_files();
  ASSERT_EQ(files.size(), 1u);
  flip_middle_byte(files[0]);

  const std::uint64_t q0 = quarantined_count();
  const std::uint64_t r0 = rebuilt_count();
  core::ModelZoo zoo(cfg_);
  const attacks::AttackResult r = zoo.fgsm(core::DatasetId::Mnist, 0.1f, 1);
  EXPECT_EQ(r.success.size(), 4u);
  EXPECT_EQ(quarantined_count(), q0 + 1);
  EXPECT_EQ(rebuilt_count(), r0 + 1);
  EXPECT_NO_THROW(load_tensors(files[0]));  // rebuilt with valid CRCs
}

TEST_F(SelfHealingZooTest, DifferentScaleFieldsGetDifferentCacheKeys) {
  core::ScaleConfig other = cfg_;
  other.train_count += 1;
  EXPECT_NE(cfg_.cache_tag(), other.cache_tag());
  EXPECT_EQ(cfg_.cache_tag(), core::ScaleConfig(cfg_).cache_tag());
}

}  // namespace
}  // namespace adv
