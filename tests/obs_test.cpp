// adv::obs unit tests: registry thread-safety under the pool, timer
// nesting, JSON/CSV emission, and the disabled path registering nothing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace adv;
using obs::MetricsRegistry;

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Obs, CounterSumsExactlyUnderConcurrentIncrements) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("test/concurrent");
  constexpr std::size_t kN = 100000;
  // Every pool worker hammers the same counter; relaxed fetch_add must
  // lose no increments.
  ThreadPool::global().parallel_for(0, kN,
                                    [&](std::size_t b, std::size_t e) {
                                      for (std::size_t i = b; i < e; ++i) {
                                        c.add(1);
                                      }
                                    });
  EXPECT_EQ(c.value(), kN);
}

TEST(Obs, RegistryLookupIsThreadSafe) {
  MetricsRegistry reg;
  // Concurrent find-or-create of overlapping keys: one entry per key,
  // all increments retained.
  ThreadPool::global().parallel_for(0, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      reg.counter("test/key" + std::to_string(i % 8)).add(1);
    }
  });
  EXPECT_EQ(reg.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& s : reg.snapshot()) total += s.value;
  EXPECT_EQ(total, 64u);
}

TEST(Obs, ReferencesStayStableAcrossLaterRegistrations) {
  MetricsRegistry reg;
  obs::Counter& first = reg.counter("test/a");
  first.add(1);
  for (int i = 0; i < 100; ++i) {
    reg.counter("test/fill" + std::to_string(i));
  }
  obs::Counter& again = reg.counter("test/a");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.value(), 1u);
}

TEST(Obs, TimerRecordsCountTotalMinMax) {
  MetricsRegistry reg;
  obs::Timer& t = reg.timer("test/t");
  t.record_ns(50);
  t.record_ns(10);
  t.record_ns(30);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 90u);
  EXPECT_EQ(t.min_ns(), 10u);
  EXPECT_EQ(t.max_ns(), 50u);
  EXPECT_EQ(reg.timer("test/empty").min_ns(), 0u);
}

TEST(Obs, ScopedTimersNest) {
  MetricsRegistry reg;
  obs::Timer& outer = reg.timer("test/outer");
  obs::Timer& inner = reg.timer("test/inner");
  {
    obs::ScopedTimer o(&outer);
    {
      obs::ScopedTimer i(&inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(outer.count(), 1u);
  EXPECT_EQ(inner.count(), 1u);
  // The inner scope is strictly contained in the outer one.
  EXPECT_GE(outer.total_ns(), inner.total_ns());
  EXPECT_GE(inner.total_ns(), 1000000u);  // slept >= 1ms
}

TEST(Obs, SnapshotFiltersByPrefix) {
  MetricsRegistry reg;
  reg.counter("alpha/one").add(1);
  reg.counter("alpha/two").add(2);
  reg.counter("beta/one").add(3);
  reg.gauge("alpha/g").set(1.5);
  const auto all = reg.snapshot();
  const auto alpha = reg.snapshot("alpha/");
  EXPECT_EQ(all.size(), 4u);
  ASSERT_EQ(alpha.size(), 3u);
  for (const auto& s : alpha) {
    EXPECT_EQ(s.key.rfind("alpha/", 0), 0u) << s.key;
  }
}

TEST(Obs, JsonEmissionRoundTrips) {
  MetricsRegistry reg;
  reg.counter("m/count").add(7);
  reg.gauge("m/rate").set(2.5);
  obs::Timer& t = reg.timer("m/lat\"ency");  // quote must be escaped
  t.record_ns(100);
  t.record_ns(300);

  const std::string json = obs::to_json(reg);
  // Structural checks: every metric present with its kind and values.
  EXPECT_NE(json.find("\"unit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"m/count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
  EXPECT_NE(json.find("\"m/lat\\\"ency\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 400"), std::string::npos);
  EXPECT_NE(json.find("\"min_ns\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 300"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ns\": 200"), std::string::npos);

  // File emission writes the same bytes.
  const auto path =
      std::filesystem::temp_directory_path() / "adv_obs_test.json";
  ASSERT_TRUE(obs::write_json(path, reg));
  EXPECT_EQ(slurp(path), json);
  std::filesystem::remove(path);
}

TEST(Obs, CsvEmission) {
  MetricsRegistry reg;
  reg.counter("c/one").add(3);
  reg.timer("t/one").record_ns(42);
  const std::string csv = obs::to_csv(reg);
  EXPECT_EQ(csv.rfind("key,kind,value,count,total_ns,min_ns,max_ns\n", 0),
            0u);
  EXPECT_NE(csv.find("c/one,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("t/one,timer,"), std::string::npos);
  EXPECT_NE(csv.find("42"), std::string::npos);
}

TEST(Obs, JsonEscapesControlCharactersAndBackslashes) {
  MetricsRegistry reg;
  reg.counter("path\\with\\backslash").add(1);
  reg.counter("line\nbreak\tand\x01" "ctl").add(2);
  const std::string json = obs::to_json(reg);
  EXPECT_NE(json.find("\"path\\\\with\\\\backslash\""), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\tand\\u0001" "ctl"), std::string::npos);
  // The raw control bytes must not leak into the output.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(Obs, JsonOrderIsStableByKindThenKey) {
  // Registration order is scrambled on purpose; emission must come out as
  // counters, gauges, timers — each block key-sorted — so equivalent
  // registries always serialize to identical bytes.
  MetricsRegistry reg;
  reg.timer("z/t").record_ns(1);
  reg.gauge("m/g").set(1.0);
  reg.counter("b/c").add(1);
  reg.counter("a/c").add(1);
  reg.timer("a/t").record_ns(1);
  const std::string json = obs::to_json(reg);
  const std::size_t a_c = json.find("\"a/c\"");
  const std::size_t b_c = json.find("\"b/c\"");
  const std::size_t m_g = json.find("\"m/g\"");
  const std::size_t a_t = json.find("\"a/t\"");
  const std::size_t z_t = json.find("\"z/t\"");
  ASSERT_NE(a_c, std::string::npos);
  ASSERT_NE(z_t, std::string::npos);
  EXPECT_LT(a_c, b_c);
  EXPECT_LT(b_c, m_g);
  EXPECT_LT(m_g, a_t);
  EXPECT_LT(a_t, z_t);
}

TEST(Obs, SamplesToJsonMatchesRegistryEmission) {
  MetricsRegistry reg;
  reg.counter("s/c").add(4);
  reg.gauge("s/g").set(0.25);
  reg.timer("s/t").record_ns(9);
  EXPECT_EQ(obs::samples_to_json(reg.snapshot()), obs::to_json(reg));
}

TEST(Obs, CsvQuotesKeysWithCommasAndQuotes) {
  MetricsRegistry reg;
  reg.counter("plain/key").add(1);
  reg.counter("with,comma").add(2);
  reg.counter("with\"quote").add(3);
  const std::string csv = obs::to_csv(reg);
  EXPECT_NE(csv.find("plain/key,counter,1"), std::string::npos);
  // RFC 4180: embedded comma -> whole field quoted; embedded quote ->
  // quoted and doubled.
  EXPECT_NE(csv.find("\"with,comma\",counter,2"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",counter,3"), std::string::npos);
}

// With instrumentation off (the default for tests), running the full set
// of instrumented operations must not register a single key: the global
// registry's size is unchanged, proving the hot paths do no metric work.
TEST(Obs, DisabledPathRegistersNothing) {
  if (obs::kCompiledIn && obs::enabled_pinned_by_env() && obs::enabled()) {
    GTEST_SKIP() << "ADV_OBS=1 pins instrumentation on";
  }
  obs::set_enabled(false);  // no-op when compiled out or pinned off
  ASSERT_FALSE(obs::enabled());
  const std::size_t size0 = MetricsRegistry::global().size();

  Rng rng(5);
  nn::Sequential m;
  m.emplace<nn::Linear>(8, 8, rng);
  m.emplace<nn::ReLU>();
  Tensor x({4, 8}), g({4, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  fill_uniform(g, rng, -1.0f, 1.0f);
  m.forward(x, nn::Mode::Eval);
  m.backward(g);

  Tensor a({64, 64}), b({64, 64}), c;
  fill_uniform(a, rng, -1.0f, 1.0f);
  fill_uniform(b, rng, -1.0f, 1.0f);
  gemm(a, b, c);

  ThreadPool::global().parallel_for(0, 100, [](std::size_t, std::size_t) {});

  obs::ScopedTimer t("should/not/register");
  EXPECT_EQ(MetricsRegistry::global().size(), size0);
}

// When instrumentation is compiled in and switched on, the same
// operations register and advance the expected keys.
TEST(Obs, EnabledPathRecordsModelAndPoolMetrics) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "built with -DADV_OBS=OFF";
  }
  if (obs::enabled_pinned_by_env() && !obs::enabled()) {
    GTEST_SKIP() << "ADV_OBS=0 pins instrumentation off";
  }
  obs::set_enabled(true);
  auto& reg = MetricsRegistry::global();
  const std::uint64_t fwd0 = reg.counter("model/forward_calls").value();
  const std::uint64_t pool0 = reg.counter("pool/parallel_for_calls").value();

  Rng rng(6);
  nn::Sequential m;
  m.emplace<nn::Linear>(8, 8, rng);
  m.emplace<nn::ReLU>();
  Tensor x({4, 8}), g({4, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  fill_uniform(g, rng, -1.0f, 1.0f);
  m.forward(x, nn::Mode::Eval);
  m.backward(g);
  ThreadPool::global().parallel_for(0, 100, [](std::size_t, std::size_t) {});
  obs::set_enabled(false);

  EXPECT_EQ(reg.counter("model/forward_calls").value(), fwd0 + 1);
  if (ThreadPool::global().thread_count() > 1) {
    // Single-chunk runs stay inline and are deliberately not counted.
    EXPECT_GE(reg.counter("pool/parallel_for_calls").value(), pool0 + 1);
  }
  // Per-layer timers exist and saw the pass.
  EXPECT_GE(reg.timer("layer/0:Linear/forward").count(), 1u);
  EXPECT_GE(reg.timer("layer/1:ReLU/backward").count(), 1u);
}

}  // namespace
