// Sequential model tests: composition, end-to-end input gradients (the
// attack path), and weight serialization.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {
namespace {

Sequential tiny_cnn(Rng& rng) {
  Sequential m;
  m.emplace<Conv2d>(Conv2d::same(1, 2), rng);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(2 * 3 * 3, 4, rng);
  return m;
}

TEST(Sequential, ForwardShapesCompose) {
  Rng rng(1);
  Sequential m = tiny_cnn(rng);
  Tensor x({5, 1, 6, 6});
  Tensor y = m.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({5, 4}));
}

TEST(Sequential, DeprecatedBoolOverloadStillMatchesModeApi) {
  // The bool overload is kept (deprecated) for one transition cycle;
  // it must route to the exact same computation as the Mode enum.
  Rng rng(7);
  Sequential m = tiny_cnn(rng);
  Tensor x({2, 1, 6, 6});
  fill_uniform(x, rng, 0.0f, 1.0f);
  const Tensor want_eval = m.forward(x, Mode::Eval);
  const Tensor want_train = m.forward(x, Mode::Train);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const Tensor got_eval = m.forward(x, false);
  const Tensor got_train = m.forward(x, true);
#pragma GCC diagnostic pop
  ASSERT_EQ(got_eval.shape(), want_eval.shape());
  for (std::size_t i = 0; i < got_eval.numel(); ++i) {
    EXPECT_FLOAT_EQ(got_eval[i], want_eval[i]);
  }
  ASSERT_EQ(got_train.shape(), want_train.shape());
}

TEST(Sequential, ParameterAndGradientAlignment) {
  Rng rng(2);
  Sequential m = tiny_cnn(rng);
  const auto params = m.parameters();
  const auto grads = m.gradients();
  ASSERT_EQ(params.size(), grads.size());
  ASSERT_EQ(params.size(), 4u);  // conv W/b + linear W/b
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->shape(), grads[i]->shape());
  }
  EXPECT_EQ(m.parameter_count(),
            2 * 9 + 2 + (2 * 3 * 3) * 4 + 4);
}

TEST(Sequential, InputGradientMatchesNumericDifference) {
  // This is the exact differentiation path every attack uses.
  Rng rng(3);
  Sequential m = tiny_cnn(rng);
  Tensor x({1, 1, 6, 6});
  fill_uniform(x, rng, 0.1f, 0.9f);
  Tensor w({1, 4});
  fill_uniform(w, rng, -1.0f, 1.0f);

  m.forward(x, nn::Mode::Eval);
  const Tensor dx = m.backward(w);
  ASSERT_EQ(dx.shape(), x.shape());

  auto objective = [&](const Tensor& probe) {
    const Tensor y = m.forward(probe, nn::Mode::Eval);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(w[i]) * y[i];
    }
    return acc;
  };
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, 2e-2f) << "input grad mismatch at " << i;
  }
}

TEST(Sequential, ConvActivationFusionIsBitwiseInvisible) {
  // The Conv->ReLU / Conv->Sigmoid peephole (fused epilogue) must be
  // bitwise invisible: forward outputs, the attack-path input gradient,
  // and every parameter gradient are identical with fusion on and off.
  auto build = [](bool fused) {
    Rng rng(41);
    Sequential m;
    m.emplace<Conv2d>(Conv2d::same(1, 4), rng);
    m.emplace<ReLU>();
    m.emplace<Conv2d>(Conv2d::same(4, 2), rng);
    m.emplace<Sigmoid>();
    m.emplace<Flatten>();
    m.emplace<Linear>(2 * 6 * 6, 3, rng);
    m.set_fusion_enabled(fused);
    return m;
  };
  Sequential on = build(true);
  Sequential off = build(false);
  Rng rng(42);
  Tensor x({3, 1, 6, 6});
  fill_uniform(x, rng, 0.0f, 1.0f);
  Tensor seed({3, 3});
  fill_uniform(seed, rng, -1.0f, 1.0f);

  for (const Mode mode : {Mode::Train, Mode::Eval}) {
    const Tensor y_on = on.forward(x, mode);
    const Tensor y_off = off.forward(x, mode);
    ASSERT_EQ(y_on.shape(), y_off.shape());
    ASSERT_EQ(0, std::memcmp(y_on.data(), y_off.data(),
                             y_on.numel() * sizeof(float)));
    const Tensor dx_on = on.backward(seed);
    const Tensor dx_off = off.backward(seed);
    ASSERT_EQ(0, std::memcmp(dx_on.data(), dx_off.data(),
                             dx_on.numel() * sizeof(float)));
    const auto g_on = on.gradients();
    const auto g_off = off.gradients();
    ASSERT_EQ(g_on.size(), g_off.size());
    for (std::size_t i = 0; i < g_on.size(); ++i) {
      ASSERT_EQ(0, std::memcmp(g_on[i]->data(), g_off[i]->data(),
                               g_on[i]->numel() * sizeof(float)))
          << "parameter gradient " << i;
    }
    on.zero_grad();
    off.zero_grad();
  }

  // Infer-mode forward (no caches) must agree too — this is the serving
  // path, where the fused epilogue matters most.
  const Tensor yi_on = on.forward(x, Mode::Infer);
  const Tensor yi_off = off.forward(x, Mode::Infer);
  ASSERT_EQ(0, std::memcmp(yi_on.data(), yi_off.data(),
                           yi_on.numel() * sizeof(float)));
}

TEST(Sequential, ZeroGradResetsAllLayers) {
  Rng rng(4);
  Sequential m = tiny_cnn(rng);
  Tensor x({2, 1, 6, 6}, 0.5f);
  m.forward(x, nn::Mode::Eval);
  m.backward(Tensor({2, 4}, 1.0f));
  m.zero_grad();
  for (Tensor* g : m.gradients()) {
    for (float v : g->values()) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Sequential, AppendComposesModels) {
  Rng rng(9);
  // Identity-ish front (1x1 conv) + linear head, composed via append.
  Sequential front;
  front.emplace<Conv2d>(Conv2dConfig{1, 1, 1, 1, 0}, rng);
  front.parameters()[0]->fill(2.0f);  // doubles every pixel
  front.parameters()[1]->fill(0.0f);
  Sequential head;
  head.emplace<Flatten>();
  auto& lin = head.emplace<Linear>(4, 2, rng);
  *lin.parameters()[0] =
      Tensor::from_data(Shape({4, 2}), {1, 0, 1, 0, 0, 1, 0, 1});
  lin.parameters()[1]->fill(0.0f);

  const std::size_t head_layers = head.size();
  front.append(std::move(head));
  EXPECT_EQ(front.size(), 1 + head_layers);
  EXPECT_EQ(head.size(), 0u);

  Tensor x = Tensor::from_data(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  const Tensor y = front.forward(x, nn::Mode::Eval);
  // Doubled pixels {2,4,6,8}; W rows (per input pixel): {1,0},{1,0},
  // {0,1},{0,1} -> logits = (2+4, 6+8).
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 14.0f);

  // Backward flows through the composition down to the input:
  // d y0 / d x = 2 (conv gain) * W[:,0] = {2,2,0,0}.
  const Tensor g = front.backward(Tensor::from_data(Shape({1, 2}), {1, 0}));
  EXPECT_FLOAT_EQ(g[0], 2.0f);
  EXPECT_FLOAT_EQ(g[1], 2.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
  EXPECT_FLOAT_EQ(g[3], 0.0f);
}

class SequentialIo : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test dir: ctest runs each test in its own process, so a shared
    // path would let one test's TearDown remove_all another's files.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("adv_seq_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SequentialIo, SaveLoadRoundTripsPredictions) {
  Rng rng(5);
  Sequential m1 = tiny_cnn(rng);
  const auto path = dir_ / "weights.bin";
  m1.save(path);

  Rng rng2(999);  // different init; load must overwrite it
  Sequential m2 = tiny_cnn(rng2);
  m2.load(path);

  Tensor x({3, 1, 6, 6});
  Rng xr(6);
  fill_uniform(x, xr, 0.0f, 1.0f);
  const Tensor y1 = m1.forward(x, nn::Mode::Eval);
  const Tensor y2 = m2.forward(x, nn::Mode::Eval);
  for (std::size_t i = 0; i < y1.numel(); ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]);
  }
}

TEST_F(SequentialIo, LoadRejectsWrongArchitecture) {
  Rng rng(7);
  Sequential m1 = tiny_cnn(rng);
  const auto path = dir_ / "weights.bin";
  m1.save(path);

  Sequential other;
  other.emplace<Linear>(4, 4, rng);
  EXPECT_THROW(other.load(path), std::runtime_error);

  // Same parameter count structure but different shapes must also fail.
  Sequential shapes;
  shapes.emplace<Conv2d>(Conv2d::same(1, 3), rng);
  shapes.emplace<Flatten>();
  shapes.emplace<Linear>(3, 2, rng);
  EXPECT_THROW(shapes.load(path), std::runtime_error);
}

TEST_F(SequentialIo, LoadMissingFileThrows) {
  Rng rng(8);
  Sequential m = tiny_cnn(rng);
  EXPECT_THROW(m.load(dir_ / "missing.bin"), std::runtime_error);
}

}  // namespace
}  // namespace adv::nn
