// Loss and optimizer tests.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {
namespace {

TEST(SoftmaxCrossEntropy, MatchesManualComputation) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data(Shape({2, 3}), {1, 2, 3, 0, 0, 0});
  const float l = loss.forward(logits, {2, 1});
  // Row 0: -log(softmax_2) = log(e^1+e^2+e^3) - 3
  const double row0 =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0)) - 3.0;
  const double row1 = std::log(3.0);
  EXPECT_NEAR(l, (row0 + row1) / 2.0, 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOneHot) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data(Shape({1, 3}), {0.5f, -0.2f, 1.0f});
  loss.forward(logits, {1});
  const Tensor grad = loss.backward();
  const Tensor p = softmax_rows(logits);
  EXPECT_NEAR(grad[0], p[0], 1e-5f);
  EXPECT_NEAR(grad[1], p[1] - 1.0f, 1e-5f);
  EXPECT_NEAR(grad[2], p[2], 1e-5f);
}

TEST(SoftmaxCrossEntropy, NumericalGradientCheck) {
  SoftmaxCrossEntropy loss;
  Rng rng(3);
  Tensor logits({3, 5});
  fill_normal(logits, rng, 0.0f, 1.0f);
  const std::vector<int> labels = {4, 0, 2};
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    SoftmaxCrossEntropy probe;
    const double num =
        (probe.forward(lp, labels) - probe.forward(lm, labels)) / (2.0 * eps);
    EXPECT_NEAR(grad[i], num, 1e-3f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadInputs) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor({2, 3}), {0}), std::invalid_argument);
  EXPECT_THROW(loss.forward(Tensor({1, 3}), {7}), std::invalid_argument);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), std::logic_error);
}

TEST(MseLoss, ValueAndGradient) {
  MseLoss loss;
  Tensor pred = Tensor::from_data(Shape({2, 2}), {1, 2, 3, 4});
  Tensor target = Tensor::from_data(Shape({2, 2}), {0, 2, 3, 2});
  // diffs: 1, 0, 0, 2 -> mean square = (1 + 4) / 4
  EXPECT_NEAR(loss.forward(pred, target), 1.25f, 1e-6f);
  const Tensor g = loss.backward();
  EXPECT_NEAR(g[0], 2.0f * 1.0f / 4.0f, 1e-6f);
  EXPECT_NEAR(g[3], 2.0f * 2.0f / 4.0f, 1e-6f);
}

TEST(MaeLoss, ValueAndGradient) {
  MaeLoss loss;
  Tensor pred = Tensor::from_data(Shape({4}), {1, 2, 3, 4});
  Tensor target = Tensor::from_data(Shape({4}), {2, 2, 2, 2});
  EXPECT_NEAR(loss.forward(pred, target), (1 + 0 + 1 + 2) / 4.0f, 1e-6f);
  const Tensor g = loss.backward();
  EXPECT_FLOAT_EQ(g[0], -0.25f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 0.25f);
  EXPECT_FLOAT_EQ(g[3], 0.25f);
}

TEST(RegressionLoss, BackwardBeforeForwardThrows) {
  MseLoss mse;
  EXPECT_THROW(mse.backward(), std::logic_error);
  MaeLoss mae;
  EXPECT_THROW(mae.backward(), std::logic_error);
}

// --- optimizers ---------------------------------------------------------

TEST(Optimizer, RejectsMismatchedParamsAndGrads) {
  Tensor p({2}), g({3});
  EXPECT_THROW(Sgd({&p}, {&g}, 0.1f), std::invalid_argument);
  Tensor g2({2});
  EXPECT_NO_THROW(Sgd({&p}, {&g2}, 0.1f));
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Tensor p({2}, 1.0f);
  Tensor g = Tensor::from_data(Shape({2}), {0.5f, -0.5f});
  Sgd opt({&p}, {&g}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p[0], 0.95f);
  EXPECT_FLOAT_EQ(p[1], 1.05f);
}

TEST(Sgd, MomentumAccumulates) {
  Tensor p({1}, 0.0f);
  Tensor g({1}, 1.0f);
  Sgd opt({&p}, {&g}, 0.1f, 0.9f);
  opt.step();  // v = -0.1, p = -0.1
  opt.step();  // v = -0.19, p = -0.29
  EXPECT_NEAR(p[0], -0.29f, 1e-6f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(p) = (p - 3)^2 with analytic gradient.
  Tensor p({1}, 0.0f);
  Tensor g({1}, 0.0f);
  Adam opt({&p}, {&g}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0f * (p[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p[0], 3.0f, 0.05f);
}

TEST(Adam, FirstStepHasUnitScaleRegardlessOfGradientMagnitude) {
  // Adam's bias correction makes the first update ~= lr * sign(grad).
  Tensor p1({1}, 0.0f), g1({1}, 1e-4f);
  Tensor p2({1}, 0.0f), g2({1}, 1e4f);
  Adam o1({&p1}, {&g1}, 0.01f);
  Adam o2({&p2}, {&g2}, 0.01f);
  o1.step();
  o2.step();
  EXPECT_NEAR(p1[0], -0.01f, 1e-3f);
  EXPECT_NEAR(p2[0], -0.01f, 1e-3f);
}

TEST(Optimizer, ZeroGradClearsBuffers) {
  Tensor p({2}, 1.0f);
  Tensor g({2}, 5.0f);
  Sgd opt({&p}, {&g}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

}  // namespace
}  // namespace adv::nn
