// AttackTarget: the threat-model seam introduced by the API redesign.
//
// The acceptance bar is bitwise: every registry attack run through an
// ObliviousTarget must reproduce the legacy nn::Sequential& overload
// exactly (same forward/backward call sequence, same floats). On top of
// that, GrayBoxTarget must equal the fused-Sequential composition it
// replaces, and DetectorAwareTarget must sum its auxiliary terms and
// veto "success" on rows that fail to evade them.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "attacks/attack.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/target.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {
namespace {

/// Same analyzable 2-class model the attack tests use: logit_0 =
/// s*(x0+x1), logit_1 = s*(x2+x3).
nn::Sequential linear_model(float s = 8.0f) {
  Rng rng(1);
  nn::Sequential m;
  m.emplace<nn::Flatten>();
  auto& lin = m.emplace<nn::Linear>(4, 2, rng);
  *lin.parameters()[0] =
      Tensor::from_data(Shape({4, 2}), {s, 0, s, 0, 0, s, 0, s});
  lin.parameters()[1]->fill(0.0f);
  return m;
}

Tensor smoke_batch() {
  return Tensor::from_data(Shape({2, 1, 2, 2}), {0.8f, 0.8f, 0.1f, 0.1f,  //
                                                 0.4f, 0.3f, 0.2f, 0.2f});
}

const std::vector<int> kLabels = {0, 0};

void expect_identical(const AttackResult& got, const AttackResult& want) {
  ASSERT_EQ(got.success, want.success);
  ASSERT_EQ(got.adversarial.shape(), want.adversarial.shape());
  for (std::size_t i = 0; i < got.adversarial.numel(); ++i) {
    ASSERT_EQ(got.adversarial[i], want.adversarial[i]) << "pixel " << i;
  }
  ASSERT_EQ(got.l1, want.l1);
  ASSERT_EQ(got.l2, want.l2);
  ASSERT_EQ(got.linf, want.linf);
}

/// Deterministic small AE / classifier pair; a fixed seed makes two
/// builds parameter-identical, so a fused copy can be compared bitwise.
nn::Sequential tiny_ae(unsigned seed = 11) {
  Rng rng(seed);
  nn::Sequential ae;
  ae.emplace<nn::Flatten>();
  ae.emplace<nn::Linear>(4, 6, rng);
  ae.emplace<nn::Tanh>();
  ae.emplace<nn::Linear>(6, 4, rng);
  ae.emplace<nn::Sigmoid>();
  return ae;
}

nn::Sequential tiny_clf(unsigned seed = 13) {
  Rng rng(seed);
  nn::Sequential clf;
  clf.emplace<nn::Linear>(4, 3, rng);
  return clf;
}

/// Synthetic aux term: per-row penalty `constant` with gradient
/// `weight[i] * slope` on every pixel — enough to observe summation and
/// weighting without any model in the loop.
class ConstantTerm final : public AuxObjective {
 public:
  ConstantTerm(float constant, float slope)
      : constant_(constant), slope_(slope) {}
  std::string name() const override { return "constant"; }
  std::vector<float> loss(const Tensor& batch) override {
    return std::vector<float>(batch.dim(0), constant_);
  }
  Tensor input_grad(const Tensor& batch,
                    const std::vector<float>& weight) override {
    Tensor g(batch.shape());
    const std::size_t row = batch.numel() / batch.dim(0);
    for (std::size_t i = 0; i < batch.dim(0); ++i) {
      for (std::size_t j = 0; j < row; ++j) {
        g[i * row + j] = weight[i] * slope_;
      }
    }
    return g;
  }

 private:
  float constant_;
  float slope_;
};

// --- oblivious identity (the redesign's regression gate) ---------------

struct NamedOverrides {
  const char* name;
  AttackOverrides overrides;
};

const NamedOverrides kRegistryCases[] = {
    {"fgsm", {.epsilon = 0.25f}},
    {"ifgsm", {.epsilon = 0.1f, .iterations = 5}},
    {"cw-l2", {.kappa = 0.5f, .iterations = 30, .binary_search_steps = 3}},
    {"deepfool", {}},
    {"ead",
     {.kappa = 0.5f, .beta = 0.01f, .iterations = 30,
      .binary_search_steps = 3}},
};

TEST(AttackTarget, ObliviousBitwiseIdenticalToLegacyForAllRegistryAttacks) {
  for (const auto& c : kRegistryCases) {
    SCOPED_TRACE(c.name);
    const auto attack = make_attack(c.name, c.overrides);

    nn::Sequential legacy_model = linear_model();
    const AttackResult legacy =
        attack->run(legacy_model, smoke_batch(), kLabels);

    nn::Sequential target_model = linear_model();
    ObliviousTarget target(target_model);
    const AttackResult via_target =
        attack->run(target, smoke_batch(), kLabels);

    expect_identical(via_target, legacy);
  }
}

TEST(AttackTarget, TagSuffixesKeepCacheKeysDisjoint) {
  nn::Sequential clf = linear_model();
  nn::Sequential ae = tiny_ae();
  ObliviousTarget obl(clf);
  GrayBoxTarget gray(ae, clf);
  DetectorAwareTarget det(&ae, clf,
                          {std::make_shared<ConstantTerm>(0.0f, 0.0f)});
  // Oblivious MUST stay empty: legacy cache keys carry no threat-model
  // marker and existing artifacts must keep resolving.
  EXPECT_EQ(obl.tag_suffix(), "");
  EXPECT_NE(gray.tag_suffix(), "");
  EXPECT_NE(det.tag_suffix(), "");
  EXPECT_NE(gray.tag_suffix(), det.tag_suffix());
}

// --- gray-box composition ---------------------------------------------

TEST(AttackTarget, GrayBoxEqualsFusedSequential) {
  nn::Sequential ae = tiny_ae();
  nn::Sequential clf = tiny_clf();
  GrayBoxTarget target(ae, clf);

  nn::Sequential fused = tiny_ae();
  fused.append(tiny_clf());

  const Tensor x = smoke_batch();
  const Tensor z_target = target.logits(x, nn::Mode::Eval);
  const Tensor z_fused = fused.forward(x, nn::Mode::Eval);
  ASSERT_EQ(z_target.numel(), z_fused.numel());
  for (std::size_t i = 0; i < z_target.numel(); ++i) {
    ASSERT_EQ(z_target[i], z_fused[i]) << "logit " << i;
  }

  Tensor seed(z_target.shape());
  Rng rng(17);
  fill_uniform(seed, rng, -1.0f, 1.0f);
  const Tensor g_target = target.input_grad(x, seed);
  const Tensor g_fused = fused.backward(seed);
  ASSERT_EQ(g_target.numel(), g_fused.numel());
  for (std::size_t i = 0; i < g_target.numel(); ++i) {
    ASSERT_EQ(g_target[i], g_fused[i]) << "grad " << i;
  }
}

// --- detector-aware aux semantics --------------------------------------

TEST(AttackTarget, DetectorAwareSumsAuxTerms) {
  nn::Sequential clf = linear_model();
  DetectorAwareTarget target(nullptr, clf,
                             {std::make_shared<ConstantTerm>(0.25f, 1.0f),
                              std::make_shared<ConstantTerm>(0.5f, 2.0f)});
  EXPECT_TRUE(target.has_aux());
  EXPECT_EQ(target.aux_count(), 2u);

  const Tensor x = smoke_batch();
  const std::vector<float> loss = target.aux_loss(x);
  ASSERT_EQ(loss.size(), 2u);
  EXPECT_FLOAT_EQ(loss[0], 0.75f);
  EXPECT_FLOAT_EQ(loss[1], 0.75f);

  const std::vector<float> w = {1.0f, 0.5f};
  const Tensor g = target.aux_input_grad(x, w);
  ASSERT_EQ(g.numel(), x.numel());
  // Row 0: 1.0 * (1 + 2) = 3 per pixel; row 1: 0.5 * (1 + 2) = 1.5.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(g[j], 3.0f) << "row 0 pixel " << j;
    EXPECT_FLOAT_EQ(g[4 + j], 1.5f) << "row 1 pixel " << j;
  }
}

TEST(AttackTarget, DetectorAwareNullAeUsesBareClassifier) {
  nn::Sequential clf = linear_model();
  nn::Sequential same = linear_model();
  DetectorAwareTarget target(nullptr, clf,
                             {std::make_shared<ConstantTerm>(0.0f, 0.0f)});
  const Tensor x = smoke_batch();
  const Tensor z = target.logits(x, nn::Mode::Infer);
  const Tensor z_bare = same.forward(x, nn::Mode::Infer);
  for (std::size_t i = 0; i < z.numel(); ++i) {
    ASSERT_EQ(z[i], z_bare[i]) << "logit " << i;
  }
}

TEST(AttackTarget, UnevadableAuxTermVetoesSuccess) {
  // A term that is always positive (and contributes no gradient) cannot
  // be evaded, so the detector-aware run must report zero successes even
  // though the hinge goal itself is reached.
  nn::Sequential clf = linear_model();
  ObliviousTarget plain(clf);
  FgsmConfig cfg;
  cfg.epsilon = 0.25f;
  const AttackResult unaware =
      fgsm_attack(plain, smoke_batch(), kLabels, cfg);
  ASSERT_GT(unaware.success_count(), 0u);  // sanity: the attack works

  DetectorAwareTarget aware(nullptr, clf,
                            {std::make_shared<ConstantTerm>(1.0f, 0.0f)});
  const AttackResult vetoed =
      fgsm_attack(aware, smoke_batch(), kLabels, cfg);
  EXPECT_EQ(vetoed.success_count(), 0u);
  // Failed rows fall back to the natural image.
  const Tensor x = smoke_batch();
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(vetoed.adversarial[i], x[i]) << "pixel " << i;
  }
}

TEST(AttackTarget, AuxDefaultsThrowOnTargetsWithoutAux) {
  nn::Sequential clf = linear_model();
  ObliviousTarget target(clf);
  EXPECT_FALSE(target.has_aux());
  EXPECT_THROW(target.aux_loss(smoke_batch()), std::logic_error);
  EXPECT_THROW(target.aux_input_grad(smoke_batch(), {0.0f, 0.0f}),
               std::logic_error);
}

}  // namespace
}  // namespace adv::attacks
