// Attack registry: by-name construction, override plumbing, and — the
// acceptance bar for the API redesign — bit-identical AttackResults
// between registry-built attacks and the legacy free functions on a
// fixed-seed smoke batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "attacks/attack.hpp"
#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/ead.hpp"
#include "attacks/fgsm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {
namespace {

/// Same analyzable 2-class model the attack tests use: logit_0 =
/// s*(x0+x1), logit_1 = s*(x2+x3).
nn::Sequential linear_model(float s = 8.0f) {
  Rng rng(1);
  nn::Sequential m;
  m.emplace<nn::Flatten>();
  auto& lin = m.emplace<nn::Linear>(4, 2, rng);
  *lin.parameters()[0] =
      Tensor::from_data(Shape({4, 2}), {s, 0, s, 0, 0, s, 0, s});
  lin.parameters()[1]->fill(0.0f);
  return m;
}

/// Fixed-seed smoke batch: two class-0 images at different distances from
/// the decision boundary.
Tensor smoke_batch() {
  return Tensor::from_data(Shape({2, 1, 2, 2}), {0.8f, 0.8f, 0.1f, 0.1f,  //
                                                 0.4f, 0.3f, 0.2f, 0.2f});
}

const std::vector<int> kLabels = {0, 0};

void expect_identical(const AttackResult& got, const AttackResult& want) {
  ASSERT_EQ(got.success, want.success);
  ASSERT_EQ(got.adversarial.shape(), want.adversarial.shape());
  for (std::size_t i = 0; i < got.adversarial.numel(); ++i) {
    ASSERT_EQ(got.adversarial[i], want.adversarial[i]) << "pixel " << i;
  }
  ASSERT_EQ(got.l1, want.l1);
  ASSERT_EQ(got.l2, want.l2);
  ASSERT_EQ(got.linf, want.linf);
}

TEST(AttackRegistry, ListsAllBuiltins) {
  const auto names = AttackRegistry::instance().names();
  for (const char* expected : {"fgsm", "ifgsm", "cw-l2", "deepfool", "ead"}) {
    EXPECT_TRUE(AttackRegistry::instance().contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  }
}

TEST(AttackRegistry, UnknownNameThrowsAndListsRegistered) {
  try {
    make_attack("pgd");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pgd"), std::string::npos);
    EXPECT_NE(msg.find("ead"), std::string::npos);  // lists what exists
  }
}

TEST(AttackRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(AttackRegistry::instance().add(
                   "fgsm", [](const AttackOverrides&) {
                     return std::make_unique<FgsmAttack>();
                   }),
               std::invalid_argument);
}

TEST(AttackRegistry, FgsmMatchesFreeFunction) {
  nn::Sequential m = linear_model();
  FgsmConfig cfg;
  cfg.epsilon = 0.25f;
  const AttackResult legacy = fgsm_attack(m, smoke_batch(), kLabels, cfg);

  const auto attack = make_attack("fgsm", {.epsilon = 0.25f});
  EXPECT_EQ(attack->name(), "fgsm");
  expect_identical(attack->run(m, smoke_batch(), kLabels), legacy);
}

TEST(AttackRegistry, IfgsmIsMultiStepFgsm) {
  nn::Sequential m = linear_model();
  FgsmConfig cfg;
  cfg.epsilon = 0.25f;
  cfg.iterations = 10;
  const AttackResult legacy = fgsm_attack(m, smoke_batch(), kLabels, cfg);

  const auto attack = make_attack("ifgsm", {.epsilon = 0.25f});
  expect_identical(attack->run(m, smoke_batch(), kLabels), legacy);
}

TEST(AttackRegistry, CwL2MatchesFreeFunction) {
  nn::Sequential m = linear_model();
  CwL2Config cfg;
  cfg.kappa = 1.0f;
  cfg.iterations = 60;
  cfg.binary_search_steps = 2;
  cfg.initial_c = 1.0f;
  const AttackResult legacy = cw_l2_attack(m, smoke_batch(), kLabels, cfg);

  const auto attack = make_attack(
      "cw-l2", {.kappa = 1.0f,
                .initial_c = 1.0f,
                .iterations = 60,
                .binary_search_steps = 2});
  expect_identical(attack->run(m, smoke_batch(), kLabels), legacy);
  EXPECT_TRUE(legacy.success[0]);  // the comparison is not vacuous
}

TEST(AttackRegistry, DeepFoolMatchesFreeFunction) {
  nn::Sequential m = linear_model();
  const AttackResult legacy =
      deepfool_attack(m, smoke_batch(), kLabels, DeepFoolConfig{});

  const auto attack = make_attack("deepfool");
  expect_identical(attack->run(m, smoke_batch(), kLabels), legacy);
}

TEST(AttackRegistry, EadMatchesFreeFunction) {
  nn::Sequential m = linear_model();
  EadConfig cfg;
  cfg.beta = 0.01f;
  cfg.kappa = 1.0f;
  cfg.iterations = 60;
  cfg.binary_search_steps = 2;
  cfg.initial_c = 1.0f;
  cfg.rule = DecisionRule::L1;
  const AttackResult legacy = ead_attack(m, smoke_batch(), kLabels, cfg);

  const auto attack = make_attack(
      "ead", {.kappa = 1.0f,
              .beta = 0.01f,
              .initial_c = 1.0f,
              .iterations = 60,
              .binary_search_steps = 2,
              .rule = DecisionRule::L1});
  expect_identical(attack->run(m, smoke_batch(), kLabels), legacy);
  EXPECT_TRUE(legacy.success[0]);
}

TEST(AttackRegistry, OverridesReachTheConfig) {
  const auto base = make_attack("ead");
  const auto& base_cfg = dynamic_cast<const EadAttack&>(*base).config();
  const auto tuned = make_attack(
      "ead", {.kappa = 7.0f, .beta = 0.5f, .rule = DecisionRule::EN});
  const auto& cfg = dynamic_cast<const EadAttack&>(*tuned).config();
  EXPECT_FLOAT_EQ(cfg.kappa, 7.0f);
  EXPECT_FLOAT_EQ(cfg.beta, 0.5f);
  EXPECT_EQ(cfg.rule, DecisionRule::EN);
  // Untouched knobs keep the attack's own defaults.
  EXPECT_EQ(cfg.iterations, base_cfg.iterations);
}

TEST(AttackRegistry, TagsDistinguishConfigurations) {
  const auto a = make_attack("ead", {.kappa = 1.0f});
  const auto b = make_attack("ead", {.kappa = 2.0f});
  const auto c = make_attack("cw-l2", {.kappa = 1.0f});
  EXPECT_NE(a->tag(), b->tag());
  EXPECT_NE(a->tag(), c->tag());
  // Same configuration => same tag (caching depends on it).
  EXPECT_EQ(a->tag(), make_attack("ead", {.kappa = 1.0f})->tag());
}

TEST(AttackRegistry, OutOfTreeAttackCanRegister) {
  // A throwaway attack under a unique name: registry extension point.
  class NullAttack final : public Attack {
   public:
    std::string name() const override { return "null"; }
    std::string tag() const override { return "null"; }

   protected:
    AttackResult run_impl(AttackTarget&, const Tensor& images,
                          const std::vector<int>& labels) const override {
      AttackResult r;
      r.adversarial = images;
      r.success.assign(labels.size(), false);
      fill_distortions(r, images);
      return r;
    }
  };
  auto& reg = AttackRegistry::instance();
  ASSERT_FALSE(reg.contains("null"));
  reg.add("null", [](const AttackOverrides&) {
    return std::make_unique<NullAttack>();
  });
  nn::Sequential m = linear_model();
  const auto r = make_attack("null")->run(m, smoke_batch(), kLabels);
  EXPECT_EQ(r.success_count(), 0u);
}

// --- strict overrides --------------------------------------------------
//
// Builtin registrations declare which AttackOverrides fields the attack
// consumes; create() rejects anything else instead of silently ignoring
// it (the failure mode: a sweep "varying" epsilon against cw-l2 would
// otherwise run the same attack N times).

TEST(AttackRegistry, StrictOverridesRejectIrrelevantField) {
  try {
    make_attack("deepfool", {.epsilon = 0.1f});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("epsilon"), std::string::npos) << msg;  // the field
    EXPECT_NE(msg.find("deepfool"), std::string::npos) << msg;  // the attack
  }
}

TEST(AttackRegistry, StrictOverridesRejectEveryBuiltinMismatch) {
  // One irrelevant field per builtin.
  EXPECT_THROW(make_attack("fgsm", {.kappa = 1.0f}), std::invalid_argument);
  EXPECT_THROW(make_attack("ifgsm", {.beta = 0.1f}), std::invalid_argument);
  EXPECT_THROW(make_attack("cw-l2", {.epsilon = 0.1f}),
               std::invalid_argument);
  EXPECT_THROW(make_attack("deepfool", {.kappa = 1.0f}),
               std::invalid_argument);
  EXPECT_THROW(make_attack("ead", {.overshoot = 0.02f}),
               std::invalid_argument);
}

TEST(AttackRegistry, StrictOverridesAcceptRelevantFields) {
  EXPECT_NO_THROW(make_attack("fgsm", {.epsilon = 0.1f, .iterations = 5}));
  EXPECT_NO_THROW(make_attack(
      "cw-l2", {.kappa = 1.0f, .learning_rate = 0.01f, .initial_c = 0.1f,
                .iterations = 10, .binary_search_steps = 2}));
  EXPECT_NO_THROW(make_attack(
      "ead", {.kappa = 1.0f, .beta = 0.01f, .rule = DecisionRule::L1}));
  EXPECT_NO_THROW(make_attack("deepfool", {.overshoot = 0.02f}));
}

TEST(AttackRegistry, RejectedOverrideBumpsCounter) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& counter =
      obs::MetricsRegistry::global().counter("attack/overrides_rejected");
  const std::uint64_t before = counter.value();
  EXPECT_THROW(make_attack("fgsm", {.kappa = 5.0f}), std::invalid_argument);
  EXPECT_EQ(counter.value(), before + 1);
  obs::set_enabled(was_enabled);
}

TEST(AttackRegistry, LegacyTwoArgRegistrationStaysPermissive) {
  // Out-of-tree attacks registered without a relevant-field list keep the
  // old accept-everything behaviour ("null" was added by the test above;
  // register a fallback if it ran in isolation).
  auto& reg = AttackRegistry::instance();
  if (!reg.contains("null")) {
    class NoopAttack final : public Attack {
     public:
      std::string name() const override { return "null"; }
      std::string tag() const override { return "null"; }

     protected:
      AttackResult run_impl(AttackTarget&, const Tensor& images,
                            const std::vector<int>& labels) const override {
        AttackResult r;
        r.adversarial = images;
        r.success.assign(labels.size(), false);
        fill_distortions(r, images);
        return r;
      }
    };
    reg.add("null", [](const AttackOverrides&) {
      return std::make_unique<NoopAttack>();
    });
  }
  EXPECT_NO_THROW(make_attack("null", {.kappa = 3.0f, .epsilon = 0.7f}));
}

}  // namespace
}  // namespace adv::attacks
