// Layer tests: output shapes, semantics, and numerical gradient checks.
//
// The gradient check validates BOTH parameter gradients and the gradient
// with respect to the layer input — the input path is what every attack
// in this library differentiates through.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"
#include "nn/structural.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace adv::nn {
namespace {

/// Scalar objective L = sum(w .* layer(x)) with fixed random w; compares
/// the analytic input/parameter gradients to central differences.
void check_gradients(Layer& layer, const Tensor& input, std::uint64_t seed,
                     float eps = 1e-3f, float tol = 2e-2f) {
  Tensor x = input;
  Tensor out = layer.forward(x, Mode::Eval);
  Tensor w(out.shape());
  Rng rng(seed);
  fill_uniform(w, rng, -1.0f, 1.0f);

  layer.zero_grad();
  layer.forward(x, nn::Mode::Eval);
  const Tensor dx = layer.backward(w);
  ASSERT_EQ(dx.shape(), x.shape());

  auto objective = [&](const Tensor& probe) {
    const Tensor y = layer.forward(probe, nn::Mode::Eval);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(w[i]) * y[i];
    }
    return acc;
  };

  // Input gradient, spot-checked on a deterministic subset of entries.
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 24);
  for (std::size_t i = 0; i < x.numel(); i += stride) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], num, tol) << "input grad mismatch at " << i;
  }

  // Parameter gradients.
  layer.zero_grad();
  layer.forward(x, nn::Mode::Eval);
  layer.backward(w);
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    const Tensor& grad = *grads[p];
    const std::size_t pstride = std::max<std::size_t>(1, param.numel() / 16);
    for (std::size_t i = 0; i < param.numel(); i += pstride) {
      const float orig = param[i];
      param[i] = orig + eps;
      const double up = objective(x);
      param[i] = orig - eps;
      const double dn = objective(x);
      param[i] = orig;
      const double num = (up - dn) / (2.0 * eps);
      EXPECT_NEAR(grad[i], num, tol)
          << "param " << p << " grad mismatch at " << i;
    }
  }
}

Tensor random_input(Shape shape, std::uint64_t seed, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor t{std::move(shape)};
  Rng rng(seed);
  fill_uniform(t, rng, lo, hi);
  return t;
}

// --- activations -------------------------------------------------------

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::from_data(Shape({4}), {-1.0f, 0.0f, 0.5f, 2.0f});
  Tensor y = relu.forward(x, nn::Mode::Eval);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 0.5f);
  EXPECT_FLOAT_EQ(y[3], 2.0f);
}

TEST(ReLUTest, GradientCheck) {
  ReLU relu;
  // Keep inputs away from the kink at 0 for a clean finite difference.
  Tensor x = random_input({2, 7}, 21);
  for (float& v : x.values()) {
    if (std::fabs(v) < 0.05f) v += 0.1f;
  }
  check_gradients(relu, x, 22);
}

TEST(LeakyReLUTest, NegativeSlopeApplied) {
  LeakyReLU lrelu(0.1f);
  Tensor x = Tensor::from_data(Shape({2}), {-2.0f, 3.0f});
  Tensor y = lrelu.forward(x, nn::Mode::Eval);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(LeakyReLUTest, GradientCheck) {
  LeakyReLU lrelu(0.2f);
  Tensor x = random_input({3, 5}, 31);
  for (float& v : x.values()) {
    if (std::fabs(v) < 0.05f) v += 0.1f;
  }
  check_gradients(lrelu, x, 32);
}

TEST(SigmoidTest, MapsToUnitInterval) {
  Sigmoid sig;
  Tensor x = Tensor::from_data(Shape({3}), {-10.0f, 0.0f, 10.0f});
  Tensor y = sig.forward(x, nn::Mode::Eval);
  EXPECT_NEAR(y[0], 0.0f, 1e-4f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-4f);
}

TEST(SigmoidTest, GradientCheck) {
  Sigmoid sig;
  check_gradients(sig, random_input({2, 6}, 41), 42);
}

TEST(TanhTest, GradientCheck) {
  Tanh t;
  check_gradients(t, random_input({2, 6}, 51), 52);
}

TEST(ActivationTest, BackwardShapeMismatchThrows) {
  ReLU relu;
  relu.forward(Tensor({2, 3}), nn::Mode::Eval);
  EXPECT_THROW(relu.backward(Tensor({3, 2})), std::invalid_argument);
}

// --- linear ------------------------------------------------------------

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(61);
  Linear lin(2, 3, rng);
  // Overwrite parameters with known values.
  Tensor& w = *lin.parameters()[0];
  Tensor& b = *lin.parameters()[1];
  w = Tensor::from_data(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  b = Tensor::from_data(Shape({3}), {10, 20, 30});
  Tensor x = Tensor::from_data(Shape({1, 2}), {1, 1});
  Tensor y = lin.forward(x, nn::Mode::Eval);
  EXPECT_FLOAT_EQ(y[0], 15.0f);
  EXPECT_FLOAT_EQ(y[1], 27.0f);
  EXPECT_FLOAT_EQ(y[2], 39.0f);
}

TEST(LinearTest, RejectsWrongInputWidth) {
  Rng rng(62);
  Linear lin(4, 2, rng);
  EXPECT_THROW(lin.forward(Tensor({1, 3}), nn::Mode::Eval), std::invalid_argument);
}

TEST(LinearTest, GradientCheck) {
  Rng rng(63);
  Linear lin(5, 4, rng);
  check_gradients(lin, random_input({3, 5}, 64), 65);
}

TEST(LinearTest, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(66);
  Linear lin(2, 2, rng);
  Tensor x({1, 2}, 1.0f);
  Tensor g({1, 2}, 1.0f);
  lin.zero_grad();
  lin.forward(x, nn::Mode::Eval);
  lin.backward(g);
  const Tensor once = *lin.gradients()[0];
  lin.forward(x, nn::Mode::Eval);
  lin.backward(g);
  const Tensor twice = *lin.gradients()[0];
  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_FLOAT_EQ(twice[i], 2.0f * once[i]);
  }
}

// --- conv --------------------------------------------------------------

TEST(Conv2dTest, SamePaddingPreservesSpatialDims) {
  Rng rng(71);
  Conv2d conv(Conv2d::same(2, 4), rng);
  Tensor x = random_input({3, 2, 8, 8}, 72);
  Tensor y = conv.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({3, 4, 8, 8}));
}

TEST(Conv2dTest, ValidPaddingShrinksDims) {
  Rng rng(73);
  Conv2d conv(Conv2dConfig{1, 2, 3, 1, 0}, rng);
  Tensor y = conv.forward(random_input({1, 1, 6, 5}, 74), nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 2, 4, 3}));
}

TEST(Conv2dTest, StrideTwoHalvesDims) {
  Rng rng(75);
  Conv2d conv(Conv2dConfig{1, 2, 3, 2, 1}, rng);
  Tensor y = conv.forward(random_input({1, 1, 8, 8}, 76), nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 2, 4, 4}));
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Rng rng(77);
  Conv2d conv(Conv2d::same(1, 1), rng);
  Tensor& w = *conv.parameters()[0];
  w.fill(0.0f);
  w[4] = 1.0f;  // center tap of the 3x3 kernel
  conv.parameters()[1]->fill(0.0f);
  Tensor x = random_input({1, 1, 5, 5}, 78);
  Tensor y = conv.forward(x, nn::Mode::Eval);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-5f);
}

TEST(Conv2dTest, KnownConvolutionValue) {
  Rng rng(79);
  Conv2d conv(Conv2dConfig{1, 1, 2, 1, 0}, rng);
  *conv.parameters()[0] = Tensor::from_data(Shape({1, 4}), {1, 1, 1, 1});
  conv.parameters()[1]->fill(0.5f);
  Tensor x = Tensor::from_data(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  Tensor y = conv.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10.5f);
}

class Conv2dGradient
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Conv2dGradient, MatchesNumericGradient) {
  const auto [in_c, out_c, stride, padding] = GetParam();
  Rng rng(81);
  Conv2d conv(Conv2dConfig{static_cast<std::size_t>(in_c),
                           static_cast<std::size_t>(out_c), 3,
                           static_cast<std::size_t>(stride),
                           static_cast<std::size_t>(padding)},
              rng);
  Tensor x = random_input({2, static_cast<std::size_t>(in_c), 7, 7}, 82);
  check_gradients(conv, x, 83);
}

INSTANTIATE_TEST_SUITE_P(Configs, Conv2dGradient,
                         ::testing::Values(std::tuple{1, 2, 1, 1},
                                           std::tuple{2, 3, 1, 0},
                                           std::tuple{3, 1, 1, 1},
                                           std::tuple{1, 4, 2, 1}));

TEST(Conv2dTest, RejectsWrongChannelCount) {
  Rng rng(84);
  Conv2d conv(Conv2d::same(3, 4), rng);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), nn::Mode::Eval),
               std::invalid_argument);
}

TEST(Conv2dTest, Im2ColColToImAreAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the conv backward pass depends on.
  const std::size_t C = 2, H = 5, W = 6, K = 3, S = 1, P = 1;
  const std::size_t oh = (H + 2 * P - K) / S + 1, ow = (W + 2 * P - K) / S + 1;
  const std::size_t rows = C * K * K, cols = oh * ow;
  Rng rng(85);
  Tensor x({C, H, W});
  Tensor y({rows, cols});
  fill_normal(x, rng, 0.0f, 1.0f);
  fill_normal(y, rng, 0.0f, 1.0f);
  Tensor colx({rows, cols});
  im2col(x.data(), C, H, W, K, S, P, colx.data());
  Tensor xty({C, H, W});
  col2im(y.data(), C, H, W, K, S, P, xty.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < colx.numel(); ++i) {
    lhs += static_cast<double>(colx[i]) * y[i];
  }
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * xty[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Conv2dTest, RejectsDegenerateConfigsAtConstruction) {
  Rng rng(86);
  EXPECT_THROW((Conv2d(Conv2dConfig{0, 2, 3, 1, 1}, rng)),
               std::invalid_argument);
  EXPECT_THROW((Conv2d(Conv2dConfig{2, 0, 3, 1, 1}, rng)),
               std::invalid_argument);
  EXPECT_THROW((Conv2d(Conv2dConfig{1, 1, 0, 1, 0}, rng)),
               std::invalid_argument);
  EXPECT_THROW((Conv2d(Conv2dConfig{1, 1, 3, 0, 1}, rng)),
               std::invalid_argument);
}

TEST(Conv2dTest, OutputDimRejectsKernelBeyondPaddedInput) {
  // kernel > in_dim + 2*padding used to wrap the size_t subtraction into
  // a garbage output shape; it must throw instead.
  Rng rng(87);
  Conv2d conv(Conv2dConfig{1, 1, 5, 1, 0}, rng);
  EXPECT_EQ(conv.output_dim(5), 1u);
  EXPECT_THROW(conv.output_dim(3), std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 3, 3}), nn::Mode::Eval),
               std::invalid_argument);
}

// --- direct-vs-im2col bitwise identity ----------------------------------

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_TRUE(a.same_shape(b)) << what << ": shape mismatch";
  for (std::size_t i = 0; i < a.numel(); ++i) {
    std::uint32_t ba = 0, bb = 0;
    std::memcpy(&ba, a.data() + i, sizeof(ba));
    std::memcpy(&bb, b.data() + i, sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " differs at " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

struct DirectIdCase {
  Conv2dConfig cfg;
  Shape in;
  bool expect_direct;  // false: shape must fall back to im2col
};

class Conv2dDirectIdentity : public ::testing::TestWithParam<DirectIdCase> {};

// The contract every perf PR in this repo clears: the new path must be
// BITWISE identical to the old one, for outputs and all gradients, at
// any thread count. Two same-seeded layers (identical weights) run the
// same batch, one forced onto im2col+GEMM.
TEST_P(Conv2dDirectIdentity, ForwardAndGradientsMatchIm2colBitwise) {
  const DirectIdCase& tc = GetParam();
  Rng r1(4242), r2(4242);
  Conv2d direct(tc.cfg, r1);
  Conv2d baseline(tc.cfg, r2);
  baseline.set_force_im2col(true);
  EXPECT_EQ(direct.uses_direct(), tc.expect_direct);
  EXPECT_FALSE(baseline.uses_direct());

  // ADV_THREADS pins only the global pool, so thread-count coverage uses
  // dedicated pools (the gemm_blocked_test idiom).
  ThreadPool pool1(1), pool4(4);
  const Tensor x = random_input(tc.in, 97);
  for (ThreadPool* pool : {&pool1, &pool4}) {
    direct.set_pool(pool);
    baseline.set_pool(pool);
    const Tensor yd = direct.forward(x, nn::Mode::Eval);
    const Tensor yi = baseline.forward(x, nn::Mode::Eval);
    expect_bitwise_equal(yd, yi, "forward");
    const Tensor g = random_input(yd.shape(), 98);
    direct.zero_grad();
    baseline.zero_grad();
    const Tensor dxd = direct.backward(g);
    const Tensor dxi = baseline.backward(g);
    expect_bitwise_equal(dxd, dxi, "input grad");
    expect_bitwise_equal(*direct.gradients()[0], *baseline.gradients()[0],
                         "weight grad");
    expect_bitwise_equal(*direct.gradients()[1], *baseline.gradients()[1],
                         "bias grad");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2dDirectIdentity,
    ::testing::Values(
        // Every conv shape the MagNet models construct (all 3x3 "same"
        // stride-1: classifier same(1,16)/same(16,32) + ReLU, AE
        // same(c,f)/same(f,f)/same(f,c) + Sigmoid), on small spatial
        // dims for speed.
        DirectIdCase{Conv2d::same(1, 16), Shape({3, 1, 9, 9}), true},
        DirectIdCase{Conv2d::same(16, 32), Shape({2, 16, 7, 7}), true},
        DirectIdCase{Conv2d::same(1, 3), Shape({5, 1, 6, 6}), true},
        DirectIdCase{Conv2d::same(3, 3), Shape({3, 3, 8, 8}), true},
        DirectIdCase{Conv2d::same(3, 1), Shape({2, 3, 6, 6}), true},
        // Wide row: exercises the full-NR vector store path (ow >= 16).
        DirectIdCase{Conv2d::same(1, 8), Shape({2, 1, 6, 20}), true},
        // in_c*k*k = 288 > KC: exercises the multi-strip accumulator.
        DirectIdCase{Conv2d::same(32, 4), Shape({1, 32, 6, 6}), true},
        // Beyond the models: even kernels, valid padding, 5x5.
        DirectIdCase{Conv2dConfig{1, 2, 2, 1, 0}, Shape({2, 1, 5, 5}), true},
        DirectIdCase{Conv2dConfig{2, 2, 2, 1, 1}, Shape({2, 2, 5, 5}), true},
        DirectIdCase{Conv2dConfig{2, 3, 3, 1, 0}, Shape({3, 2, 7, 7}), true},
        DirectIdCase{Conv2dConfig{2, 4, 5, 1, 2}, Shape({2, 2, 9, 9}), true},
        // Fallback shapes: stride 2 and padding >= kernel stay on
        // im2col+GEMM (trivially identical; asserts path selection).
        DirectIdCase{Conv2dConfig{1, 4, 3, 2, 1}, Shape({2, 1, 8, 8}), false},
        DirectIdCase{Conv2dConfig{1, 2, 3, 1, 3}, Shape({2, 1, 5, 5}),
                     false}));

TEST(Conv2dTest, FusedEpilogueMatchesSeparateActivationBitwise) {
  // forward_fused must equal conv-then-activation on BOTH paths (the
  // im2col fallback applies the epilogue as a post-pass).
  for (const bool force_im2col : {false, true}) {
    Rng r1(91), r2(91);
    Conv2d fused(Conv2d::same(2, 4), r1);
    Conv2d plain(Conv2d::same(2, 4), r2);
    fused.set_force_im2col(force_im2col);
    plain.set_force_im2col(force_im2col);
    const Tensor x = random_input({2, 2, 6, 6}, 92);
    ReLU relu;
    Sigmoid sigmoid;
    const Tensor yr = fused.forward_fused(x, nn::Mode::Eval,
                                          conv::Epilogue::ReLU);
    const Tensor yr_ref =
        relu.forward(plain.forward(x, nn::Mode::Eval), nn::Mode::Eval);
    expect_bitwise_equal(yr, yr_ref, "relu epilogue");
    const Tensor ys = fused.forward_fused(x, nn::Mode::Eval,
                                          conv::Epilogue::Sigmoid);
    const Tensor ys_ref =
        sigmoid.forward(plain.forward(x, nn::Mode::Eval), nn::Mode::Eval);
    expect_bitwise_equal(ys, ys_ref, "sigmoid epilogue");
  }
}

// --- pooling / upsample -------------------------------------------------

TEST(AvgPool2dTest, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x = Tensor::from_data(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  Tensor y = pool.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool2dTest, GradientCheck) {
  AvgPool2d pool(2);
  check_gradients(pool, random_input({2, 2, 4, 4}, 91), 92);
}

TEST(AvgPool2dTest, RejectsIndivisibleDims) {
  AvgPool2d pool(2);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 5, 4}), nn::Mode::Eval),
               std::invalid_argument);
}

TEST(MaxPool2dTest, TakesWindowMaximum) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_data(Shape({1, 1, 2, 4}), {1, 5, 2, 0, 3, 4, 1, 9});
  Tensor y = pool.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_data(Shape({1, 1, 2, 2}), {1, 5, 2, 0});
  pool.forward(x, nn::Mode::Eval);
  Tensor g({1, 1, 1, 1}, 3.0f);
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 3.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(MaxPool2dTest, GradientCheck) {
  MaxPool2d pool(2);
  // Distinct values so the argmax is stable under the probe epsilon.
  Tensor x({1, 2, 4, 4});
  Rng rng(93);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) + 0.3f * rng.uniform_f(0.0f, 1.0f);
  }
  check_gradients(pool, x, 94);
}

TEST(Upsample2dTest, RepeatsPixels) {
  Upsample2d up(2);
  Tensor x = Tensor::from_data(Shape({1, 1, 1, 2}), {1, 2});
  Tensor y = up.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 2), 2.0f);
}

TEST(Upsample2dTest, GradientCheck) {
  Upsample2d up(2);
  check_gradients(up, random_input({2, 2, 3, 3}, 95), 96);
}

TEST(PoolUpsampleTest, UpsampleUndoesAvgPoolOnConstantImages) {
  AvgPool2d pool(2);
  Upsample2d up(2);
  Tensor x({1, 1, 4, 4}, 3.7f);
  Tensor y = up.forward(pool.forward(x, nn::Mode::Eval), nn::Mode::Eval);
  ASSERT_EQ(y.shape(), x.shape());
  for (float v : y.values()) EXPECT_FLOAT_EQ(v, 3.7f);
}

// --- structural ---------------------------------------------------------

TEST(FlattenTest, CollapsesTrailingDims) {
  Flatten f;
  Tensor x({2, 3, 4, 5});
  Tensor y = f.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor dx = f.backward(Tensor({2, 60}, 1.0f));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout d(0.5f, 7);
  Tensor x = random_input({4, 8}, 97);
  Tensor y = d.forward(x, Mode::Eval);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
  Tensor g = random_input({4, 8}, 98);
  Tensor dx = d.backward(g);
  for (std::size_t i = 0; i < g.numel(); ++i) EXPECT_FLOAT_EQ(dx[i], g[i]);
}

TEST(DropoutTest, TrainModeZerosAndRescales) {
  Dropout d(0.5f, 7);
  Tensor x({1, 1000}, 1.0f);
  Tensor y = d.forward(x, Mode::Train);
  std::size_t zeros = 0;
  for (float v : y.values()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.07);
}

TEST(DropoutTest, InvalidRateThrows) {
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
}

// --- softmax -------------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits = random_input({5, 10}, 99, -5.0f, 5.0f);
  Tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 5; ++r) {
    double s = 0.0;
    for (std::size_t k = 0; k < 10; ++k) s += p[r * 10 + k];
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, TemperatureFlattensDistribution) {
  Tensor logits = Tensor::from_data(Shape({1, 3}), {0.0f, 1.0f, 5.0f});
  Tensor sharp = softmax_rows(logits, 1.0f);
  Tensor flat = softmax_rows(logits, 40.0f);
  EXPECT_GT(sharp[2], flat[2]);
  EXPECT_LT(sharp[0], flat[0]);
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor logits = Tensor::from_data(Shape({1, 2}), {1000.0f, 1001.0f});
  Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
  EXPECT_GT(p[1], p[0]);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor logits = random_input({3, 6}, 100, -3.0f, 3.0f);
  Tensor p = softmax_rows(logits);
  Tensor lp = log_softmax_rows(logits);
  for (std::size_t i = 0; i < p.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4f);
  }
}

TEST(SoftmaxTest, InvalidInputsThrow) {
  EXPECT_THROW(softmax_rows(Tensor({5})), std::invalid_argument);
  EXPECT_THROW(softmax_rows(Tensor({2, 3}), 0.0f), std::invalid_argument);
  EXPECT_THROW(log_softmax_rows(Tensor({5})), std::invalid_argument);
}

}  // namespace
}  // namespace adv::nn
