// adv::shard tests: range tiling, the --shard CLI protocol, metric-dump
// parse/merge fixtures, attack-result slice/merge identity, artifact-
// cache merging, the 2-shard-vs-unsharded bitwise gate, and the fork/exec
// driver end to end (including crash-retry via ADV_FAULT).
//
// This binary doubles as its own shard worker: when invoked with
// --shard-sim it acts as a tiny shard-aware bench (writes one artifact
// piece and one metric dump, honors the shard.worker failpoints) instead
// of running gtest. The driver tests spawn /proc/self/exe that way.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/model_zoo.hpp"
#include "core/shard.hpp"
#include "fault/failpoint.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"

namespace adv::core {
namespace {

namespace fs = std::filesystem;
using Sample = obs::MetricsRegistry::Sample;
using Kind = Sample::Kind;

// --- helpers ----------------------------------------------------------

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    had_ = v != nullptr;
    if (v) saved_ = v;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

class ScopedChdir {
 public:
  explicit ScopedChdir(const fs::path& p) : old_(fs::current_path()) {
    fs::create_directories(p);
    fs::current_path(p);
  }
  ~ScopedChdir() { fs::current_path(old_); }

 private:
  fs::path old_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path fresh_temp_dir(const std::string& leaf) {
  const fs::path p = fs::temp_directory_path() / leaf;
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

/// 5 rows of 1x2x2 images with distinct values — the fixture the sim
/// worker slices and the merge tests reassemble.
attacks::AttackResult sim_fixture() {
  attacks::AttackResult r;
  r.adversarial = Tensor({5, 1, 2, 2});
  for (std::size_t i = 0; i < r.adversarial.numel(); ++i) {
    r.adversarial[i] = 0.25f * static_cast<float>(i) - 1.0f;
  }
  r.success = {true, false, true, true, false};
  r.l1 = {1.0f, 0.0f, 3.0f, 4.0f, 0.0f};
  r.l2 = {0.5f, 0.0f, 1.5f, 2.0f, 0.0f};
  r.linf = {0.1f, 0.0f, 0.3f, 0.4f, 0.0f};
  return r;
}

void expect_result_eq(const attacks::AttackResult& a,
                      const attacks::AttackResult& b) {
  ASSERT_EQ(a.adversarial.shape(), b.adversarial.shape());
  for (std::size_t i = 0; i < a.adversarial.numel(); ++i) {
    ASSERT_EQ(a.adversarial[i], b.adversarial[i]) << "pixel " << i;
  }
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.l1, b.l1);
  EXPECT_EQ(a.l2, b.l2);
  EXPECT_EQ(a.linf, b.linf);
}

// --- shard_range / shard_suffix ---------------------------------------

TEST(ShardRange, TilesExactlyWithBalancedSizes) {
  for (const std::size_t total : {0u, 1u, 5u, 7u, 64u, 1000u}) {
    for (const std::size_t count : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0, min_sz = total + 1, max_sz = 0;
      std::size_t expect_begin = 0;
      for (std::size_t k = 0; k < count; ++k) {
        const IndexRange r = shard_range(total, k, count);
        EXPECT_EQ(r.begin, expect_begin) << total << " " << k << "/" << count;
        expect_begin = r.end;
        covered += r.size();
        min_sz = std::min(min_sz, r.size());
        max_sz = std::max(max_sz, r.size());
      }
      EXPECT_EQ(expect_begin, total);
      EXPECT_EQ(covered, total);
      if (total >= count) {
        EXPECT_LE(max_sz - min_sz, 1u);
      }
    }
  }
}

TEST(ShardRange, RejectsOutOfRangeIndex) {
  EXPECT_THROW(shard_range(10, 2, 2), std::invalid_argument);
  EXPECT_THROW(shard_range(10, 0, 0), std::invalid_argument);
}

TEST(ShardSuffix, EmptyUnshardedInfixOtherwise) {
  EXPECT_EQ(shard_suffix(0, 1), "");
  EXPECT_EQ(shard_suffix(0, 2), ".shard0of2");
  EXPECT_EQ(shard_suffix(3, 8), ".shard3of8");
}

// --- CLI protocol ------------------------------------------------------

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(ShardArgsParse, DriverFormAndPassthrough) {
  std::vector<std::string> args = {"bench", "--foo", "--shards", "4",
                                   "bar"};
  auto argv = argv_of(args);
  const ShardArgs a =
      parse_shard_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(a.shards, 4u);
  EXPECT_FALSE(a.is_worker);
  EXPECT_FALSE(a.warm_only);
  ASSERT_EQ(a.passthrough.size(), 2u);
  EXPECT_EQ(a.passthrough[0], "--foo");
  EXPECT_EQ(a.passthrough[1], "bar");
}

TEST(ShardArgsParse, WorkerFormWithEquals) {
  std::vector<std::string> args = {"bench", "--shard=1/3",
                                   "--shard-staging=/tmp/x", "--warm-only"};
  auto argv = argv_of(args);
  const ShardArgs a =
      parse_shard_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(a.is_worker);
  EXPECT_EQ(a.worker_index, 1u);
  EXPECT_EQ(a.worker_count, 3u);
  EXPECT_EQ(a.staging, fs::path("/tmp/x"));
  EXPECT_TRUE(a.warm_only);
}

TEST(ShardArgsParse, MalformedInputsThrow) {
  const std::vector<std::vector<std::string>> bad = {
      {"bench", "--shards"},          // missing value
      {"bench", "--shards", "0"},     // zero shards
      {"bench", "--shards", "two"},   // not a number
      {"bench", "--shard", "3"},      // no k/K
      {"bench", "--shard", "3/3",     // k >= K
       "--shard-staging", "/tmp/x"},
      {"bench", "--shard", "0/2"},    // worker without staging
  };
  for (auto args : bad) {
    auto argv = argv_of(args);
    EXPECT_THROW(parse_shard_args(static_cast<int>(argv.size()), argv.data()),
                 std::runtime_error)
        << args[1];
  }
}

// --- metric dump parse + merge ----------------------------------------

TEST(MetricMerge, ParseRoundTripsNastyKeys) {
  std::vector<Sample> in(3);
  in[0].key = "he said \"hi\",\\back\\slash";
  in[0].kind = Kind::Counter;
  in[0].value = 9;
  in[1].key = "line\nbreak\tand\x01" "ctl";
  in[1].kind = Kind::Gauge;
  in[1].gauge_value = 2.5;
  in[2].key = "attack/ead b=0.1 k=40/step";
  in[2].kind = Kind::Timer;
  in[2].count = 3;
  in[2].total_ns = 90;
  in[2].min_ns = 10;
  in[2].max_ns = 50;

  const auto out = parse_metrics_json(obs::samples_to_json(in));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].key, in[i].key) << i;
    EXPECT_EQ(out[i].kind, in[i].kind) << i;
    EXPECT_EQ(out[i].value, in[i].value) << i;
    EXPECT_EQ(out[i].gauge_value, in[i].gauge_value) << i;
    EXPECT_EQ(out[i].count, in[i].count) << i;
    EXPECT_EQ(out[i].total_ns, in[i].total_ns) << i;
    EXPECT_EQ(out[i].min_ns, in[i].min_ns) << i;
    EXPECT_EQ(out[i].max_ns, in[i].max_ns) << i;
  }
}

TEST(MetricMerge, ParseRejectsGarbage) {
  EXPECT_THROW(parse_metrics_json("not json at all"), std::runtime_error);
}

Sample counter_sample(const std::string& key, std::uint64_t v) {
  Sample s;
  s.key = key;
  s.kind = Kind::Counter;
  s.value = v;
  return s;
}

Sample gauge_sample(const std::string& key, double v) {
  Sample s;
  s.key = key;
  s.kind = Kind::Gauge;
  s.gauge_value = v;
  return s;
}

Sample timer_sample(const std::string& key, std::uint64_t count,
                    std::uint64_t total, std::uint64_t mn, std::uint64_t mx) {
  Sample s;
  s.key = key;
  s.kind = Kind::Timer;
  s.count = count;
  s.total_ns = total;
  s.min_ns = mn;
  s.max_ns = mx;
  return s;
}

TEST(MetricMerge, CountersSumGaugesMaxTimersCombine) {
  // Three shards with overlapping keys; shard 1 has an idle timer
  // (count 0, min 0) that must not poison the merged minimum.
  const std::vector<std::vector<Sample>> parts = {
      {counter_sample("img", 3), gauge_sample("peak", 1.5),
       timer_sample("step", 2, 30, 10, 20)},
      {counter_sample("extra", 7), counter_sample("img", 2),
       gauge_sample("peak", 0.5), timer_sample("step", 0, 0, 0, 0)},
      {timer_sample("step", 1, 5, 5, 5)},
  };
  const auto merged = merge_metric_samples(parts);
  ASSERT_EQ(merged.size(), 4u);
  // Stable order: counters (key-sorted), gauges, timers.
  EXPECT_EQ(merged[0].key, "extra");
  EXPECT_EQ(merged[0].value, 7u);
  EXPECT_EQ(merged[1].key, "img");
  EXPECT_EQ(merged[1].value, 5u);
  EXPECT_EQ(merged[2].key, "peak");
  EXPECT_EQ(merged[2].gauge_value, 1.5);
  EXPECT_EQ(merged[3].key, "step");
  EXPECT_EQ(merged[3].count, 3u);
  EXPECT_EQ(merged[3].total_ns, 35u);
  EXPECT_EQ(merged[3].min_ns, 5u);
  EXPECT_EQ(merged[3].max_ns, 20u);
}

TEST(MetricMerge, MergedDumpReEmitsByteCompatible) {
  // A merge of a single part must re-serialize to exactly the bytes a
  // worker would have written for the same registry state.
  obs::MetricsRegistry reg;
  reg.counter("a/c").add(4);
  reg.gauge("b/g").set(0.25);
  reg.timer("c/t").record_ns(7);
  const auto snap = reg.snapshot();
  EXPECT_EQ(obs::samples_to_json(merge_metric_samples({snap})),
            obs::samples_to_json(snap));
}

// --- attack-result slice/merge ----------------------------------------

TEST(AttackSliceMerge, ShardSlicesMergeBackBitwise) {
  const auto full = sim_fixture();
  for (const std::size_t count : {1u, 2u, 3u, 5u}) {
    std::vector<attacks::AttackResult> parts;
    for (std::size_t k = 0; k < count; ++k) {
      parts.push_back(
          slice_attack_result(full, shard_range(full.success.size(), k,
                                                count)));
    }
    expect_result_eq(merge_attack_results(parts), full);
  }
}

TEST(AttackSliceMerge, SliceKeepsRowContents) {
  const auto full = sim_fixture();
  const auto s = slice_attack_result(full, {2, 4});
  ASSERT_EQ(s.success.size(), 2u);
  EXPECT_EQ(s.adversarial.shape()[0], 2u);
  EXPECT_EQ(s.l1[0], full.l1[2]);
  EXPECT_EQ(s.linf[1], full.linf[3]);
  const std::size_t row = full.adversarial.numel() / 5;
  for (std::size_t i = 0; i < 2 * row; ++i) {
    EXPECT_EQ(s.adversarial[i], full.adversarial[2 * row + i]);
  }
}

TEST(AttackSliceMerge, ArtifactGroupsMergeAndIncompleteOnesSurvive) {
  const auto dir = fresh_temp_dir("adv_shard_artifacts");
  const auto full = sim_fixture();
  for (std::size_t k = 0; k < 2; ++k) {
    save_attack_result(
        dir / ("atk_sim" + shard_suffix(k, 2) + ".bin"),
        slice_attack_result(full, shard_range(5, k, 2)));
  }
  // An incomplete group (its shard 1 died) must be skipped, not merged.
  save_attack_result(dir / ("atk_dead" + shard_suffix(0, 2) + ".bin"),
                     slice_attack_result(full, shard_range(5, 0, 2)));

  EXPECT_EQ(merge_shard_artifacts(dir, 2), 1u);
  expect_result_eq(load_attack_result(dir / "atk_sim.bin"), full);
  EXPECT_FALSE(fs::exists(dir / "atk_sim.shard0of2.bin"));
  EXPECT_FALSE(fs::exists(dir / "atk_sim.shard1of2.bin"));
  EXPECT_FALSE(fs::exists(dir / "atk_dead.bin"));
  EXPECT_TRUE(fs::exists(dir / "atk_dead.shard0of2.bin"));
  fs::remove_all(dir);
}

// --- sharded ModelZoo vs unsharded: bitwise identity ------------------

ScaleConfig tiny_config(const fs::path& cache) {
  ScaleConfig cfg;
  cfg.train_count = 48;
  cfg.val_count = 16;
  cfg.test_count = 32;
  cfg.classifier_epochs = 1;
  cfg.ae_epochs = 1;
  cfg.batch_size = 16;
  cfg.attack_count = 6;
  cfg.attack_iterations = 4;
  cfg.binary_search_steps = 1;
  cfg.cache_dir = cache;
  return cfg;
}

TEST(ShardedZoo, TwoShardRecomputeMatchesUnshardedBitwise) {
  const auto cache = fresh_temp_dir("adv_shard_zoo");
  const auto cfg = tiny_config(cache);
  const auto id = DatasetId::Mnist;

  ModelZoo full_zoo(cfg);
  const auto before = [&] {
    std::vector<fs::path> v;
    for (const auto& e : fs::directory_iterator(cache)) v.push_back(e.path());
    return v;
  }();
  const auto r_full = full_zoo.fgsm(id, 0.08f, 3);
  const std::size_t n = r_full.success.size();
  ASSERT_GT(n, 1u);

  // Identify and remove the canonical attack artifact the unsharded run
  // just wrote, so the sharded zoos recompute instead of warm-starting.
  for (const auto& e : fs::directory_iterator(cache)) {
    if (std::find(before.begin(), before.end(), e.path()) == before.end()) {
      fs::remove(e.path());
    }
  }

  std::vector<attacks::AttackResult> parts;
  for (std::size_t k = 0; k < 2; ++k) {
    ModelZoo z(cfg);  // classifier/dataset are cache hits
    z.set_shard(k, 2);
    EXPECT_EQ(z.attack_set(id).labels.size(), shard_range(n, k, 2).size());
    parts.push_back(z.fgsm(id, 0.08f, 3));
  }
  expect_result_eq(merge_attack_results(parts), r_full);
  fs::remove_all(cache);
}

TEST(ShardedZoo, WarmStartsFromCanonicalArtifactBySlicing) {
  const auto cache = fresh_temp_dir("adv_shard_zoo_warm");
  const auto cfg = tiny_config(cache);
  const auto id = DatasetId::Mnist;

  ModelZoo full_zoo(cfg);
  const auto r_full = full_zoo.fgsm(id, 0.08f, 3);
  const std::size_t n = r_full.success.size();

  // With the canonical artifact in the shared cache, a sharded zoo must
  // serve its slice from it (and persist the shard piece) byte-for-byte.
  ModelZoo z(cfg);
  z.set_shard(1, 2);
  const auto r1 = z.fgsm(id, 0.08f, 3);
  expect_result_eq(r1, slice_attack_result(r_full, shard_range(n, 1, 2)));

  bool piece_found = false;
  for (const auto& e : fs::directory_iterator(cache)) {
    if (e.path().filename().string().find(".shard1of2.bin") !=
        std::string::npos) {
      piece_found = true;
    }
  }
  EXPECT_TRUE(piece_found);
  fs::remove_all(cache);
}

TEST(ShardedZoo, SetShardValidates) {
  const auto cache = fresh_temp_dir("adv_shard_zoo_val");
  ModelZoo zoo(tiny_config(cache));
  EXPECT_THROW(zoo.set_shard(2, 2), std::invalid_argument);
  fs::remove_all(cache);
}

// --- driver end to end -------------------------------------------------

fs::path self_exe() { return fs::read_symlink("/proc/self/exe"); }

DriverOptions sim_driver_options(const fs::path& root, std::size_t shards) {
  DriverOptions o;
  o.bench_name = "shard_sim";
  o.shards = shards;
  o.command = {self_exe().string(), "--shard-sim"};
  o.staging_root = root / "staging";
  o.cache_dir = root / "cache";
  fs::create_directories(o.cache_dir);
  return o;
}

TEST(ShardDriver, FanOutMergesArtifactsAndMetricDumps) {
  const auto root = fresh_temp_dir("adv_shard_driver_ok");
  ScopedChdir cd(root / "cwd");
  EnvGuard cache_guard("SHARD_TEST_CACHE");
  EnvGuard threads_guard("ADV_THREADS");
  const auto opts = sim_driver_options(root, 2);
  ::setenv("SHARD_TEST_CACHE", opts.cache_dir.c_str(), 1);
  // An explicit pin must reach the workers untouched (the sim reports
  // the value it saw as a gauge).
  ::setenv("ADV_THREADS", "1", 1);

  const ShardReport rep = run_shard_driver(opts);
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.launched, 2u);
  EXPECT_EQ(rep.retried, 0u);
  EXPECT_EQ(rep.failed, 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  for (const auto& s : rep.shards) {
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.attempts, 1u);
  }
  EXPECT_GT(rep.total_cpu_ns + rep.phase_wall_ns, 0u);

  // Artifact pieces merged into the canonical file.
  expect_result_eq(load_attack_result(opts.cache_dir / "atk_sim.bin"),
                   sim_fixture());

  // Per-shard BENCH dumps merged and published at the cwd.
  const auto merged = parse_metrics_json(slurp("BENCH_sim.json"));
  std::uint64_t images = 0;
  double threads_seen = 0.0;
  std::uint64_t steps = 0;
  for (const auto& s : merged) {
    if (s.key == "sim/images") images = s.value;
    if (s.key == "sim/threads") threads_seen = s.gauge_value;
    if (s.key == "sim/step") steps = s.count;
  }
  EXPECT_EQ(images, 5u);       // 3 + 2 across the two slices
  EXPECT_EQ(threads_seen, 1.0);  // the explicit ADV_THREADS pin won
  EXPECT_EQ(steps, 5u);

  // The shard bench report exists and names the phase.
  const std::string bench = slurp("BENCH_shard.json");
  EXPECT_NE(bench.find("\"bench\": \"shard_sim\""), std::string::npos);
  EXPECT_NE(bench.find("\"shards\": 2"), std::string::npos);
  EXPECT_NE(bench.find("\"speedup\""), std::string::npos);
}

TEST(ShardDriver, CrashedWorkerIsRetriedThenReported) {
  const auto root = fresh_temp_dir("adv_shard_driver_crash");
  ScopedChdir cd(root / "cwd");
  EnvGuard cache_guard("SHARD_TEST_CACHE");
  EnvGuard fault_guard("ADV_FAULT");
  const auto opts = sim_driver_options(root, 2);
  ::setenv("SHARD_TEST_CACHE", opts.cache_dir.c_str(), 1);
  // Workers inherit the environment; shard 1 hits its failpoint on every
  // attempt and exits 42 before doing any work.
  ::setenv("ADV_FAULT", "shard.worker.1:fail", 1);

  const std::uint64_t backoff0 =
      obs::MetricsRegistry::global().counter("shard/retry_backoff_ms").value();
  const ShardReport rep = run_shard_driver(opts);
  EXPECT_FALSE(rep.all_ok());
  EXPECT_EQ(rep.launched, 3u);  // 2 initial spawns + 1 retry
  EXPECT_EQ(rep.retried, 1u);
  EXPECT_EQ(rep.failed, 1u);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_TRUE(rep.shards[0].ok());
  EXPECT_EQ(rep.shards[1].exit_status, 42);
  EXPECT_EQ(rep.shards[1].attempts, 2u);
  // The one relaunch slept its deterministic backoff and recorded it.
  EXPECT_EQ(obs::MetricsRegistry::global()
                    .counter("shard/retry_backoff_ms")
                    .value() -
                backoff0,
            retry_backoff_ms(1, 0, opts.retry_base_ms, opts.retry_cap_ms));

  // The incomplete artifact group is left unmerged: shard 0's piece
  // survives for inspection and no canonical file appears.
  EXPECT_FALSE(fs::exists(opts.cache_dir / "atk_sim.bin"));
  EXPECT_TRUE(fs::exists(opts.cache_dir / "atk_sim.shard0of2.bin"));
}

TEST(ShardDriver, FlakyWorkerSucceedsOnRetry) {
  const auto root = fresh_temp_dir("adv_shard_driver_flaky");
  ScopedChdir cd(root / "cwd");
  EnvGuard cache_guard("SHARD_TEST_CACHE");
  EnvGuard flaky_guard("SHARD_TEST_FLAKY");
  const auto opts = sim_driver_options(root, 2);
  ::setenv("SHARD_TEST_CACHE", opts.cache_dir.c_str(), 1);
  // First attempt of shard 0 drops a marker and exits 7; the retry sees
  // the marker and completes normally.
  const fs::path marker = root / "flaky_marker";
  ::setenv("SHARD_TEST_FLAKY", marker.c_str(), 1);

  const ShardReport rep = run_shard_driver(opts);
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.retried, 1u);
  EXPECT_EQ(rep.failed, 0u);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].attempts, 2u);
  EXPECT_EQ(rep.shards[1].attempts, 1u);
  // Despite the crash, the full merge still lands.
  expect_result_eq(load_attack_result(opts.cache_dir / "atk_sim.bin"),
                   sim_fixture());
}

TEST(ShardDriver, RunCommandDecodesExitStatus) {
  EXPECT_EQ(run_command({"/bin/true"}), 0);
  EXPECT_EQ(run_command({"/bin/false"}), 1);
  EXPECT_EQ(run_command({"/no/such/binary"}), 127);
}

// --- relaunch backoff schedule ----------------------------------------

TEST(ShardDriver, BackoffScheduleIsDeterministicAndCapped) {
  // Pure function: same inputs, same output, across calls and processes.
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t a = 0; a < 8; ++a) {
      EXPECT_EQ(retry_backoff_ms(k, a, 25, 2000),
                retry_backoff_ms(k, a, 25, 2000));
    }
  }
  // Equal-jitter shape: every value sits in [cap/2, cap] where the cap
  // doubles per attempt until retry_cap_ms clamps it.
  for (std::size_t a = 0; a < 12; ++a) {
    const std::uint64_t cap = std::min<std::uint64_t>(25ull << a, 2000);
    const std::uint64_t v = retry_backoff_ms(0, a, 25, 2000);
    EXPECT_GE(v, cap / 2) << "attempt " << a;
    EXPECT_LE(v, cap) << "attempt " << a;
  }
  // Huge attempt numbers must not overflow past the cap.
  EXPECT_LE(retry_backoff_ms(3, 500, 25, 2000), 2000u);
  // Crashed siblings get distinct pauses (no thundering relaunch).
  EXPECT_NE(retry_backoff_ms(0, 0, 1000, 100000),
            retry_backoff_ms(1, 0, 1000, 100000));
  // Disabled backoff stays disabled.
  EXPECT_EQ(retry_backoff_ms(0, 3, 0, 2000), 0u);
}

TEST(ShardDriver, MaxRetriesGrantsExtraAttempts) {
  const auto root = fresh_temp_dir("adv_shard_driver_budget");
  ScopedChdir cd(root / "cwd");
  EnvGuard cache_guard("SHARD_TEST_CACHE");
  EnvGuard fault_guard("ADV_FAULT");
  auto opts = sim_driver_options(root, 2);
  opts.max_retries = 3;
  opts.retry_base_ms = 1;  // keep the test fast; schedule still recorded
  opts.retry_cap_ms = 4;
  ::setenv("SHARD_TEST_CACHE", opts.cache_dir.c_str(), 1);
  ::setenv("ADV_FAULT", "shard.worker.1:fail", 1);

  const ShardReport rep = run_shard_driver(opts);
  EXPECT_FALSE(rep.all_ok());
  EXPECT_EQ(rep.launched, 5u);  // 2 initial + 3 relaunches of shard 1
  EXPECT_EQ(rep.retried, 3u);
  EXPECT_EQ(rep.failed, 1u);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[1].attempts, 4u);
  EXPECT_TRUE(rep.shards[0].ok());
}

}  // namespace
}  // namespace adv::core

// --- shard worker simulator -------------------------------------------
//
// Mirrors what shard_main does for a real bench, minus the ModelZoo:
// honor the shard.worker failpoints, enter the staging dir, write this
// shard's artifact piece into the shared cache and a per-shard metric
// dump, then finalize (rename dumps to .shard<k>.json).
namespace {

int run_shard_sim(int argc, char** argv) {
  using namespace adv;
  namespace fs = std::filesystem;
  const core::ShardArgs args = core::parse_shard_args(argc, argv);
  if (fault::check("shard.worker") == fault::Action::Fail ||
      fault::check("shard.worker." + std::to_string(args.worker_index)) ==
          fault::Action::Fail) {
    std::fprintf(stderr, "shard-sim %zu: injected crash\n",
                 args.worker_index);
    return 42;
  }
  const char* cache = std::getenv("SHARD_TEST_CACHE");
  if (!cache) return 3;
  if (const char* marker = std::getenv("SHARD_TEST_FLAKY")) {
    if (args.worker_index == 0 && !fs::exists(marker)) {
      std::ofstream(marker) << "first attempt\n";
      return 7;
    }
  }

  core::ScaleConfig cfg;
  cfg.cache_dir = cache;
  core::enter_worker(args, cfg);

  attacks::AttackResult full;
  full.adversarial = Tensor({5, 1, 2, 2});
  for (std::size_t i = 0; i < full.adversarial.numel(); ++i) {
    full.adversarial[i] = 0.25f * static_cast<float>(i) - 1.0f;
  }
  full.success = {true, false, true, true, false};
  full.l1 = {1.0f, 0.0f, 3.0f, 4.0f, 0.0f};
  full.l2 = {0.5f, 0.0f, 1.5f, 2.0f, 0.0f};
  full.linf = {0.1f, 0.0f, 0.3f, 0.4f, 0.0f};
  const core::IndexRange range =
      core::shard_range(5, args.worker_index, args.worker_count);
  core::save_attack_result(
      cfg.cache_dir / ("atk_sim" +
                       core::shard_suffix(args.worker_index,
                                          args.worker_count) +
                       ".bin"),
      core::slice_attack_result(full, range));

  obs::MetricsRegistry reg;
  reg.counter("sim/images").add(range.size());
  const char* threads = std::getenv("ADV_THREADS");
  reg.gauge("sim/threads").set(threads ? std::atof(threads) : 0.0);
  obs::Timer& t = reg.timer("sim/step");
  for (std::size_t i = 0; i < range.size(); ++i) {
    t.record_ns(10 * (args.worker_index + 1));
  }
  std::ofstream("BENCH_sim.json") << obs::samples_to_json(reg.snapshot());

  core::finalize_worker(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--shard-sim") {
      return run_shard_sim(argc, argv);
    }
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
