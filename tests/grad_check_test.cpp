// Finite-difference gradient verification for every layer and loss.
//
// For a layer f we probe the scalar L(x) = sum_i w_i * f(x)_i with a fixed
// random weighting w, so d(L)/d(output) = w and one backward() call yields
// the analytic input gradient and (via gradients()) the parameter
// gradients. Each is compared against the central difference
// (L(x + eps e_j) - L(x - eps e_j)) / (2 eps).
//
// Step and tolerance are scaled from fp32 machine epsilon: the optimal
// central-difference step is ~cbrt(eps_f32) and the attainable accuracy is
// ~eps_f32^(2/3), so checks assert a relative error well above that floor
// but far below any real gradient bug (sign flips, missing terms, off-by-
// one window indexing all produce O(1) errors).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "attacks/target.hpp"
#include "magnet/detector.hpp"
#include "magnet/detector_grad.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/structural.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace adv;

const float kEpsF32 = std::numeric_limits<float>::epsilon();
// ~4.9e-3: optimal central-difference step for fp32.
const float kStep = std::cbrt(kEpsF32);
// ~ 100 * eps_f32^(2/3) ~ 2.4e-3: two orders above the accuracy floor.
const float kTol = 100.0f * std::cbrt(kEpsF32) * std::cbrt(kEpsF32);

/// |analytic - numeric| relative to max(1, |analytic|, |numeric|).
float rel_err(float analytic, float numeric) {
  const float scale =
      std::max({1.0f, std::abs(analytic), std::abs(numeric)});
  return std::abs(analytic - numeric) / scale;
}

/// L(x) = sum_i w_i * f(x)_i, accumulated in double to keep the probe's
/// own roundoff below the finite-difference error.
double weighted_output(nn::Layer& layer, const Tensor& x, const Tensor& w) {
  const Tensor y = layer.forward(x, nn::Mode::Eval);
  EXPECT_EQ(y.numel(), w.numel());
  double L = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    L += static_cast<double>(w[i]) * static_cast<double>(y[i]);
  }
  return L;
}

/// Central-difference check of d(L)/d(x) and d(L)/d(theta) for one layer
/// on one input. `w` must match the layer's output shape element count.
void check_layer(nn::Layer& layer, const Tensor& input, Rng& rng) {
  Tensor y = layer.forward(input, nn::Mode::Eval);
  Tensor w = y;  // same shape
  fill_uniform(w, rng, -1.0f, 1.0f);

  // One analytic backward pass: input gradient out, parameter gradients
  // accumulated into layer.gradients().
  layer.zero_grad();
  layer.forward(input, nn::Mode::Eval);
  const Tensor analytic_in = layer.backward(w);
  ASSERT_EQ(analytic_in.numel(), input.numel());
  std::vector<Tensor> analytic_params;
  for (Tensor* g : layer.gradients()) analytic_params.push_back(*g);

  // Input gradient.
  Tensor probe = input;
  for (std::size_t j = 0; j < input.numel(); ++j) {
    const float saved = probe[j];
    probe[j] = saved + kStep;
    const double lp = weighted_output(layer, probe, w);
    probe[j] = saved - kStep;
    const double lm = weighted_output(layer, probe, w);
    probe[j] = saved;
    const float numeric =
        static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
    ASSERT_LT(rel_err(analytic_in[j], numeric), kTol)
        << layer.name() << " d/d(input)[" << j << "]: analytic "
        << analytic_in[j] << " vs numeric " << numeric;
  }

  // Parameter gradients (weights and biases), if any.
  const std::vector<Tensor*> params = layer.parameters();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    for (std::size_t j = 0; j < theta.numel(); ++j) {
      const float saved = theta[j];
      theta[j] = saved + kStep;
      const double lp = weighted_output(layer, input, w);
      theta[j] = saved - kStep;
      const double lm = weighted_output(layer, input, w);
      theta[j] = saved;
      const float numeric =
          static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
      ASSERT_LT(rel_err(analytic_params[p][j], numeric), kTol)
          << layer.name() << " d/d(param " << p << ")[" << j
          << "]: analytic " << analytic_params[p][j] << " vs numeric "
          << numeric;
    }
  }
}

/// Input whose element values stay > 2*step away from each other, so a
/// +-step probe can never change which element wins a max-pool window.
Tensor separated_input(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  std::vector<std::size_t> order(t.numel());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_u64() % i]);
  }
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[order[i]] = -1.0f + 0.05f * static_cast<float>(i);
  }
  return t;
}

/// Input bounded away from 0 (the ReLU kink) by more than the probe step.
Tensor nudged_input(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float mag = rng.uniform_f(0.1f, 1.0f);
    t[i] = (rng.uniform() < 0.5 ? -mag : mag);
  }
  return t;
}

TEST(GradCheck, Linear) {
  Rng rng(11);
  nn::Linear layer(6, 4, rng);
  Tensor x({3, 6});
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

struct ConvCase {
  nn::Conv2dConfig cfg;
  Shape input_shape;
};

class GradCheckConv : public ::testing::TestWithParam<ConvCase> {};

TEST_P(GradCheckConv, InputWeightAndBiasGradients) {
  const ConvCase& c = GetParam();
  Rng rng(13);
  nn::Conv2d layer(c.cfg, rng);
  Tensor x(c.input_shape);
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

// Same cases with the direct-convolution path disabled, so the im2col
// fallback keeps its own gradient coverage even on shapes where the
// direct path is the default.
TEST_P(GradCheckConv, InputWeightAndBiasGradientsIm2colForced) {
  const ConvCase& c = GetParam();
  Rng rng(13);
  nn::Conv2d layer(c.cfg, rng);
  layer.set_force_im2col(true);
  Tensor x(c.input_shape);
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GradCheckConv,
    ::testing::Values(
        // 3x3 "same" (stride 1, padding 1), multi-sample batch.
        ConvCase{{1, 2, 3, 1, 1}, {2, 1, 5, 5}},
        // Stride 2 with padding: (6 + 2 - 3) / 2 + 1 = 3.
        ConvCase{{2, 3, 3, 2, 1}, {1, 2, 6, 6}},
        // Even 2x2 kernel, no padding (valid): 4 -> 3.
        ConvCase{{1, 2, 2, 1, 0}, {1, 1, 4, 4}},
        // Valid 3x3, multi-channel in and out: 5 -> 3.
        ConvCase{{2, 2, 3, 1, 0}, {1, 2, 5, 5}}));

TEST(GradCheck, AvgPool2d) {
  Rng rng(17);
  nn::AvgPool2d layer(2);
  Tensor x({2, 2, 4, 4});
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

TEST(GradCheck, MaxPool2d) {
  Rng rng(19);
  nn::MaxPool2d layer(2);
  // Separated values: the argmax inside each window is stable under the
  // +-step probes, so the subgradient is exact there.
  Tensor x = separated_input({1, 2, 4, 4}, rng);
  check_layer(layer, x, rng);
}

TEST(GradCheck, Upsample2d) {
  Rng rng(23);
  nn::Upsample2d layer(2);
  Tensor x({1, 2, 3, 3});
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

TEST(GradCheck, Flatten) {
  Rng rng(29);
  nn::Flatten layer;
  Tensor x({2, 2, 3, 3});
  fill_uniform(x, rng, -1.0f, 1.0f);
  check_layer(layer, x, rng);
}

TEST(GradCheck, DropoutEvalIsIdentity) {
  Rng rng(31);
  nn::Dropout layer(0.5f, 99);
  Tensor x({2, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  // Attacks differentiate in eval mode; the eval path must be the exact
  // identity map.
  check_layer(layer, x, rng);
}

TEST(GradCheck, ReLU) {
  Rng rng(37);
  nn::ReLU layer;
  // Values bounded away from the kink at 0 by more than the probe step.
  Tensor x = nudged_input({2, 2, 3, 3}, rng);
  check_layer(layer, x, rng);
}

TEST(GradCheck, LeakyReLU) {
  Rng rng(41);
  nn::LeakyReLU layer(0.1f);
  Tensor x = nudged_input({2, 12}, rng);
  check_layer(layer, x, rng);
}

TEST(GradCheck, Sigmoid) {
  Rng rng(43);
  nn::Sigmoid layer;
  Tensor x({2, 10});
  fill_uniform(x, rng, -2.0f, 2.0f);
  check_layer(layer, x, rng);
}

TEST(GradCheck, Tanh) {
  Rng rng(47);
  nn::Tanh layer;
  Tensor x({2, 10});
  fill_uniform(x, rng, -2.0f, 2.0f);
  check_layer(layer, x, rng);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(53);
  Tensor logits({4, 5});
  fill_uniform(logits, rng, -2.0f, 2.0f);
  const std::vector<int> labels = {0, 3, 4, 2};

  nn::SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  const Tensor analytic = loss.backward();
  ASSERT_EQ(analytic.numel(), logits.numel());

  nn::SoftmaxCrossEntropy probe_loss;
  for (std::size_t j = 0; j < logits.numel(); ++j) {
    const float saved = logits[j];
    logits[j] = saved + kStep;
    const double lp =
        static_cast<double>(probe_loss.forward(logits, labels));
    logits[j] = saved - kStep;
    const double lm =
        static_cast<double>(probe_loss.forward(logits, labels));
    logits[j] = saved;
    const float numeric =
        static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
    ASSERT_LT(rel_err(analytic[j], numeric), kTol)
        << "softmax-CE d/d(logit)[" << j << "]";
  }
}

/// Shared central-difference driver for the element-wise regression
/// losses; perturbs `pred` and compares against backward().
void check_regression_loss(nn::RegressionLoss& loss, Tensor pred,
                           const Tensor& target, const char* label) {
  loss.forward(pred, target);
  const Tensor analytic = loss.backward();
  ASSERT_EQ(analytic.numel(), pred.numel());
  for (std::size_t j = 0; j < pred.numel(); ++j) {
    const float saved = pred[j];
    pred[j] = saved + kStep;
    const double lp = static_cast<double>(loss.forward(pred, target));
    pred[j] = saved - kStep;
    const double lm = static_cast<double>(loss.forward(pred, target));
    pred[j] = saved;
    const float numeric =
        static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
    ASSERT_LT(rel_err(analytic[j], numeric), kTol)
        << label << " d/d(pred)[" << j << "]";
  }
}

TEST(GradCheck, MseLoss) {
  Rng rng(59);
  Tensor pred({2, 1, 3, 3}), target({2, 1, 3, 3});
  fill_uniform(pred, rng, 0.0f, 1.0f);
  fill_uniform(target, rng, 0.0f, 1.0f);
  nn::MseLoss loss;
  check_regression_loss(loss, pred, target, "MSE");
}

TEST(GradCheck, MaeLoss) {
  Rng rng(61);
  Tensor pred({2, 1, 3, 3}), target({2, 1, 3, 3});
  fill_uniform(target, rng, 0.0f, 1.0f);
  // |pred - target| > 2*step everywhere: the probes never cross the |.|
  // kink, so the subgradient sign(pred - target)/N is exact.
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float off = rng.uniform_f(0.1f, 0.5f);
    pred[i] = target[i] + (rng.uniform() < 0.5 ? -off : off);
  }
  nn::MaeLoss loss;
  check_regression_loss(loss, pred, target, "MAE");
}

// --- composed attack targets ------------------------------------------
//
// The gray-box threat model differentiates through classifier(AE(x));
// AttackTarget::input_grad chains Sequential backwards across the model
// boundary. Verify the whole composition against central differences:
// L(x) = sum_i w_i * logits(x)_i, analytic d(L)/d(x) =
// target.input_grad(x, w) after one Eval forward.

/// Small smooth AE (Tanh, no pooling kinks) over [N,1,2,2] inputs.
nn::Sequential tiny_autoencoder(Rng& rng) {
  nn::Sequential ae;
  ae.emplace<nn::Flatten>();
  ae.emplace<nn::Linear>(4, 6, rng);
  ae.emplace<nn::Tanh>();
  ae.emplace<nn::Linear>(6, 4, rng);
  ae.emplace<nn::Sigmoid>();
  return ae;
}

nn::Sequential tiny_classifier(Rng& rng) {
  nn::Sequential clf;
  clf.emplace<nn::Flatten>();
  clf.emplace<nn::Linear>(4, 5, rng);
  clf.emplace<nn::Tanh>();
  clf.emplace<nn::Linear>(5, 3, rng);
  return clf;
}

void check_target_input_grad(attacks::AttackTarget& target, const Tensor& x,
                             Rng& rng, const char* label) {
  const Tensor y = target.logits(x, nn::Mode::Eval);
  Tensor w = y;  // same shape
  fill_uniform(w, rng, -1.0f, 1.0f);
  const Tensor analytic = target.input_grad(x, w);
  ASSERT_EQ(analytic.numel(), x.numel());

  Tensor probe = x;
  for (std::size_t j = 0; j < x.numel(); ++j) {
    const float saved = probe[j];
    const auto weighted = [&] {
      const Tensor z = target.logits(probe, nn::Mode::Infer);
      double L = 0.0;
      for (std::size_t i = 0; i < z.numel(); ++i) {
        L += static_cast<double>(w[i]) * static_cast<double>(z[i]);
      }
      return L;
    };
    probe[j] = saved + kStep;
    const double lp = weighted();
    probe[j] = saved - kStep;
    const double lm = weighted();
    probe[j] = saved;
    const float numeric =
        static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
    ASSERT_LT(rel_err(analytic[j], numeric), kTol)
        << label << " d/d(input)[" << j << "]: analytic " << analytic[j]
        << " vs numeric " << numeric;
  }
}

TEST(GradCheck, GrayBoxTargetComposedGradient) {
  Rng rng(67);
  nn::Sequential ae = tiny_autoencoder(rng);
  nn::Sequential clf = tiny_classifier(rng);
  attacks::GrayBoxTarget target(ae, clf);
  Tensor x({2, 1, 2, 2});
  fill_uniform(x, rng, 0.1f, 0.9f);
  check_target_input_grad(target, x, rng, "GrayBoxTarget");
}

TEST(GradCheck, ObliviousTargetMatchesBareModelGradient) {
  Rng rng(71);
  nn::Sequential clf = tiny_classifier(rng);
  attacks::ObliviousTarget target(clf);
  Tensor x({2, 4});
  fill_uniform(x, rng, 0.1f, 0.9f);
  check_target_input_grad(target, x, rng, "ObliviousTarget");
}

// --- detector-evasion aux terms ----------------------------------------
//
// The detector-aware objective adds hinged detector overshoots; their
// analytic input gradients (magnet/detector_grad) chain through the AE
// (reconstruction error) or both classifier branches of the JSD. Probe
// L(x) = sum_i w_i * loss(x)_i against the analytic input_grad(x, w),
// picking the threshold at half the minimum clean score so every row's
// hinge is active and no +-step probe can cross it.

void check_aux_term_grad(attacks::AuxObjective& term, const Tensor& x,
                         const std::vector<float>& w, const char* label) {
  const Tensor analytic = term.input_grad(x, w);
  ASSERT_EQ(analytic.numel(), x.numel());
  Tensor probe = x;
  for (std::size_t j = 0; j < x.numel(); ++j) {
    const float saved = probe[j];
    const auto weighted = [&] {
      const std::vector<float> l = term.loss(probe);
      double L = 0.0;
      for (std::size_t i = 0; i < l.size(); ++i) {
        L += static_cast<double>(w[i]) * static_cast<double>(l[i]);
      }
      return L;
    };
    probe[j] = saved + kStep;
    const double lp = weighted();
    probe[j] = saved - kStep;
    const double lm = weighted();
    probe[j] = saved;
    const float numeric =
        static_cast<float>((lp - lm) / (2.0 * static_cast<double>(kStep)));
    ASSERT_LT(rel_err(analytic[j], numeric), kTol)
        << label << " d/d(input)[" << j << "]: analytic " << analytic[j]
        << " vs numeric " << numeric;
  }
}

TEST(GradCheck, ReconErrorTermGradient) {
  Rng rng(73);
  auto ae = std::make_shared<nn::Sequential>(tiny_autoencoder(rng));
  Tensor x({2, 1, 2, 2});
  fill_uniform(x, rng, 0.1f, 0.9f);

  // p = 2 keeps the score smooth (p = 1 has |.| kinks a probe could
  // cross). Threshold below every row's score => hinge active everywhere.
  magnet::ReconstructionDetector det(ae, 2);
  const std::vector<float> scores = det.scores(x);
  const float thr =
      0.5f * *std::min_element(scores.begin(), scores.end());
  ASSERT_GT(thr, 0.0f);
  magnet::ReconErrorTerm term(ae, 2, thr, "recon-l2");
  check_aux_term_grad(term, x, {0.7f, -1.3f}, "ReconErrorTerm");
}

TEST(GradCheck, JsdEvasionTermGradient) {
  Rng rng(79);
  auto ae = std::make_shared<nn::Sequential>(tiny_autoencoder(rng));
  auto clf = std::make_shared<nn::Sequential>(tiny_classifier(rng));
  Tensor x({2, 1, 2, 2});
  fill_uniform(x, rng, 0.1f, 0.9f);

  const float temperature = 10.0f;
  magnet::JsdDetector det(ae, clf, temperature);
  const std::vector<float> scores = det.scores(x);
  const float thr =
      0.5f * *std::min_element(scores.begin(), scores.end());
  ASSERT_GT(thr, 0.0f);
  magnet::JsdEvasionTerm term(ae, clf, temperature, thr, "jsd");
  check_aux_term_grad(term, x, {1.0f, 0.5f}, "JsdEvasionTerm");
}

}  // namespace
