// adv::quant: per-channel int8 quantization correctness.
//
//  * Per-layer int8-vs-float error, bounded ANALYTICALLY: with per-tensor
//    activation scale s_a and per-channel weight scale s_w[j], each of the
//    k products in an output accumulates at most
//      amax_x * s_w/2 + amax_w * s_a/2 + s_a * s_w / 4
//    of rounding error, so |y_float - y_int8| <= k * that, guaranteed
//    (no tuned tolerances). Tighter empirical ceilings are asserted only
//    on exact-kernel builds (VNNI / scalar), where results are fully
//    deterministic; the AVX2-maddubs fallback may saturate and is
//    excluded from accuracy certification by design (gemm_int8_exact()).
//  * Thread-count determinism: int32 accumulation is associative, so
//    1-thread and 4-thread pools must agree BITWISE. ADV_THREADS only
//    pins the global pool, so the test passes dedicated pools through
//    quant::set_pool — the same seam the serving layer uses.
//  * Serialization: save_quantized/load_quantized round-trips through the
//    CRC'd tensor format and must reproduce forwards bitwise; mismatched
//    architectures and truncated files must throw.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "quant/quantize.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (const float v : t.values()) m = std::max(m, std::fabs(v));
  return m;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

/// Guaranteed worst-case dequantized error of a k-term int8 dot product
/// (see header comment). Scales are the max-abs/127 the quantize pass
/// computes.
float analytic_bound(std::size_t k, float amax_x, float amax_w) {
  const float sa = amax_x / 127.0f;
  const float sw = amax_w / 127.0f;
  return static_cast<float>(k) *
             (amax_x * sw / 2.0f + amax_w * sa / 2.0f + sa * sw / 4.0f) +
         1e-5f;
}

// --- per-layer error bounds ----------------------------------------------

struct LinearShape {
  std::size_t batch, in, out;
};

class QuantLinearShapes : public ::testing::TestWithParam<LinearShape> {};

TEST_P(QuantLinearShapes, MatchesFloatWithinAnalyticBound) {
  const auto [batch, in, out] = GetParam();
  Rng rng(in * 131 + out * 17);
  nn::Sequential model;
  model.emplace<nn::Linear>(in, out, rng);
  Tensor x({batch, in});
  fill_uniform(x, rng, -1.0f, 1.0f);

  nn::Sequential qmodel = quant::quantize(model, x);
  const Tensor yf = model.forward(x, nn::Mode::Infer);
  const Tensor yq = qmodel.forward(x, nn::Mode::Infer);

  const auto& lin = dynamic_cast<const nn::Linear&>(model.layer(0));
  const float bound = analytic_bound(in, max_abs(x), max_abs(lin.weight()));
  EXPECT_LE(max_abs_diff(yf, yq), bound);

  if (gemm_int8_exact()) {
    // Rounding errors do not conspire: the observed error sits far below
    // the triangle-inequality bound on every exact build.
    EXPECT_LE(max_abs_diff(yf, yq), bound / 4.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantLinearShapes,
    ::testing::Values(LinearShape{1, 7, 5},        // sub-tile
                      LinearShape{9, 64, 10},      // ragged rows
                      LinearShape{4, 3136, 10},    // classifier fc head
                      LinearShape{3, 257, 33}));   // all edges ragged

struct ConvShape {
  std::size_t batch, in_c, out_c, kernel, hw;
};

class QuantConvShapes : public ::testing::TestWithParam<ConvShape> {};

TEST_P(QuantConvShapes, MatchesFloatWithinAnalyticBound) {
  const auto [batch, in_c, out_c, kernel, hw] = GetParam();
  Rng rng(in_c * 7 + out_c * 311 + kernel + hw);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(nn::Conv2d::same(in_c, out_c, kernel), rng);
  Tensor x({batch, in_c, hw, hw});
  fill_uniform(x, rng, 0.0f, 1.0f);

  nn::Sequential qmodel = quant::quantize(model, x);
  const Tensor yf = model.forward(x, nn::Mode::Infer);
  const Tensor yq = qmodel.forward(x, nn::Mode::Infer);

  const auto& conv = dynamic_cast<const nn::Conv2d&>(model.layer(0));
  const float bound = analytic_bound(in_c * kernel * kernel, max_abs(x),
                                     max_abs(conv.weight()));
  EXPECT_LE(max_abs_diff(yf, yq), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantConvShapes,
    ::testing::Values(ConvShape{2, 1, 16, 3, 28},   // classifier conv1
                      ConvShape{2, 16, 32, 3, 14},  // classifier conv2
                      ConvShape{2, 1, 3, 3, 28},    // autoencoder in
                      ConvShape{2, 3, 3, 3, 28},    // autoencoder hidden
                      ConvShape{2, 3, 1, 3, 28},    // autoencoder out
                      ConvShape{1, 2, 5, 5, 11}));  // 5x5 kernel, odd hw

// The end-to-end drift the serving A/B reports: a conv+pool+fc stack's
// logits move by less than 0.05 under quantization (exact kernels only —
// deterministic, so this is a regression pin, not a flaky tolerance).
TEST(QuantModel, LogitDriftSmallOnExactKernels) {
  if (!gemm_int8_exact()) GTEST_SKIP() << "saturating int8 kernel";
  Rng rng(10);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(nn::Conv2d::same(1, 16), rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(16 * 14 * 14, 10, rng);
  Tensor x({16, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);

  nn::Sequential qmodel = quant::quantize(model, x);
  const Tensor yf = model.forward(x, nn::Mode::Infer);
  const Tensor yq = qmodel.forward(x, nn::Mode::Infer);
  EXPECT_LE(max_abs_diff(yf, yq), 0.05f);
}

// --- determinism ----------------------------------------------------------

TEST(QuantDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(21);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(nn::Conv2d::same(1, 16), rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(16 * 14 * 14, 10, rng);
  Tensor x({8, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);

  ThreadPool pool1(1), pool4(4);
  quant::set_pool(qmodel, &pool1);
  const Tensor y1 = qmodel.forward(x, nn::Mode::Infer);
  quant::set_pool(qmodel, &pool4);
  const Tensor y4 = qmodel.forward(x, nn::Mode::Infer);
  quant::set_pool(qmodel, nullptr);

  ASSERT_EQ(y1.shape(), y4.shape());
  EXPECT_EQ(0, std::memcmp(y1.data(), y4.data(),
                           y1.numel() * sizeof(float)));
}

TEST(QuantDeterminism, RepeatedForwardsAreBitwiseStable) {
  Rng rng(22);
  nn::Sequential model;
  model.emplace<nn::Linear>(50, 20, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Linear>(20, 4, rng);
  Tensor x({5, 50});
  fill_uniform(x, rng, -1.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  const Tensor y0 = qmodel.forward(x, nn::Mode::Infer);
  const Tensor y1 = qmodel.forward(x, nn::Mode::Infer);
  EXPECT_EQ(0, std::memcmp(y0.data(), y1.data(),
                           y0.numel() * sizeof(float)));
}

// --- contract -------------------------------------------------------------

TEST(QuantContract, InferenceOnly) {
  Rng rng(23);
  nn::Sequential model;
  model.emplace<nn::Linear>(8, 4, rng);
  Tensor x({2, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  EXPECT_THROW(qmodel.forward(x, nn::Mode::Train), std::runtime_error);
  EXPECT_THROW(qmodel.layer(0).backward(x), std::runtime_error);
}

TEST(QuantContract, EmptyCalibrationRejected) {
  Rng rng(24);
  nn::Sequential model;
  model.emplace<nn::Linear>(8, 4, rng);
  EXPECT_THROW(quant::quantize(model, Tensor()), std::invalid_argument);
}

TEST(QuantContract, IsQuantizedDetectsQuantLayers) {
  Rng rng(25);
  nn::Sequential model;
  model.emplace<nn::Linear>(8, 4, rng);
  EXPECT_FALSE(quant::is_quantized(model));
  Tensor x({2, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  EXPECT_TRUE(quant::is_quantized(qmodel));
}

// --- serialization --------------------------------------------------------

class QuantSerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("quant_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(QuantSerializeTest, RoundTripIsBitwiseIdentical) {
  Rng rng(26);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(nn::Conv2d::same(1, 4), rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 10 * 10, 6, rng);
  Tensor x({3, 1, 10, 10});
  fill_uniform(x, rng, 0.0f, 1.0f);

  nn::Sequential qmodel = quant::quantize(model, x);
  const Tensor y_before = qmodel.forward(x, nn::Mode::Infer);
  quant::save_quantized(dir_ / "q.bin", qmodel);

  // A second clone of the same architecture, deliberately calibrated on
  // DIFFERENT data, must reproduce the saved forward bitwise after load.
  Tensor other = x;
  for (std::size_t i = 0; i < other.numel(); ++i) other[i] *= 0.5f;
  nn::Sequential loaded = quant::quantize(model, other);
  quant::load_quantized(dir_ / "q.bin", loaded);
  const Tensor y_after = loaded.forward(x, nn::Mode::Infer);

  ASSERT_EQ(y_before.shape(), y_after.shape());
  EXPECT_EQ(0, std::memcmp(y_before.data(), y_after.data(),
                           y_before.numel() * sizeof(float)));
}

TEST_F(QuantSerializeTest, ArchitectureMismatchThrows) {
  Rng rng(27);
  nn::Sequential model;
  model.emplace<nn::Linear>(8, 4, rng);
  Tensor x({2, 8});
  fill_uniform(x, rng, -1.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  quant::save_quantized(dir_ / "q.bin", qmodel);

  nn::Sequential wrong;
  wrong.emplace<nn::Linear>(8, 5, rng);
  Tensor xw({2, 8});
  fill_uniform(xw, rng, -1.0f, 1.0f);
  nn::Sequential qwrong = quant::quantize(wrong, xw);
  EXPECT_THROW(quant::load_quantized(dir_ / "q.bin", qwrong),
               std::runtime_error);
}

TEST_F(QuantSerializeTest, CorruptedFileRejectedByChecksum) {
  Rng rng(28);
  nn::Sequential model;
  model.emplace<nn::Linear>(16, 4, rng);
  Tensor x({2, 16});
  fill_uniform(x, rng, -1.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  const auto path = dir_ / "q.bin";
  quant::save_quantized(path, qmodel);

  // Flip one payload byte near the end; the CRC'd tensor format must
  // refuse the file instead of loading skewed weights.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-9, std::ios::end);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-9, std::ios::end);
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(quant::load_quantized(path, qmodel), std::exception);
}

}  // namespace
}  // namespace adv
