// Property-based tests of the attack machinery across random seeds and
// configurations (TEST_P sweeps). These pin down the invariants the
// evaluation relies on: box feasibility, confidence satisfaction,
// monotonicity in kappa/epsilon, and shrinkage-operator contraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "attacks/cw.hpp"
#include "attacks/ead.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/fused.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {
namespace {

/// Random small MLP classifier over a 9-pixel image, 3 classes.
nn::Sequential random_mlp(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Flatten>();
  m.emplace<nn::Linear>(9, 12, rng);
  m.emplace<nn::Tanh>();
  m.emplace<nn::Linear>(12, 3, rng);
  // Scale the head so logits have an attackable range.
  scale_inplace(*m.parameters()[2], 6.0f);
  return m;
}

/// Batch of images with known (argmax) labels under the model.
std::pair<Tensor, std::vector<int>> labeled_batch(nn::Sequential& m,
                                                  std::uint64_t seed,
                                                  std::size_t n) {
  Rng rng(seed);
  Tensor x({n, 1, 3, 3});
  fill_uniform(x, rng, 0.1f, 0.9f);
  const Tensor logits = m.forward(x, nn::Mode::Eval);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(argmax_row(logits, i));
  }
  return {x, labels};
}

class AttackProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttackProperties, EadRespectsBoxAndConfidence) {
  nn::Sequential m = random_mlp(GetParam());
  auto [x, labels] = labeled_batch(m, GetParam() + 1, 6);
  EadConfig cfg;
  cfg.beta = 0.02f;
  cfg.kappa = 1.0f;
  cfg.iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 1.0f;
  const AttackResult r = ead_attack(m, x, labels, cfg);
  EXPECT_GE(min_value(r.adversarial), 0.0f);
  EXPECT_LE(max_value(r.adversarial), 1.0f);
  const HingeEval e =
      eval_untargeted_hinge(m, r.adversarial, labels, cfg.kappa);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (r.success[i]) {
      EXPECT_GE(e.margin[i], cfg.kappa - 1e-3f) << "row " << i;
      EXPECT_GT(r.l2[i], 0.0f);
    } else {
      // Failed rows must be the untouched natural image.
      EXPECT_FLOAT_EQ(r.l1[i], 0.0f);
    }
  }
}

TEST_P(AttackProperties, DistortionGrowsWithConfidence) {
  nn::Sequential m = random_mlp(GetParam() + 11);
  auto [x, labels] = labeled_batch(m, GetParam() + 12, 8);
  auto mean_l2_at = [&](float kappa) {
    CwL2Config cfg;
    cfg.kappa = kappa;
    cfg.iterations = 80;
    cfg.binary_search_steps = 3;
    cfg.initial_c = 1.0f;
    const AttackResult r = cw_l2_attack(m, x, labels, cfg);
    return r.success_count() ? r.mean_l2_over_success() : -1.0f;
  };
  const float lo = mean_l2_at(0.2f);
  const float hi = mean_l2_at(3.0f);
  if (lo >= 0.0f && hi >= 0.0f) {
    EXPECT_GE(hi, lo - 1e-3f);
  }
}

TEST_P(AttackProperties, EadL1RuleNeverExceedsEnRuleL1) {
  nn::Sequential m = random_mlp(GetParam() + 21);
  auto [x, labels] = labeled_batch(m, GetParam() + 22, 6);
  EadConfig cfg;
  cfg.beta = 0.03f;
  cfg.kappa = 0.5f;
  cfg.iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 1.0f;
  const DecisionRule rules[2] = {DecisionRule::EN, DecisionRule::L1};
  const auto rs = ead_attack_multi(m, x, labels, cfg, rules);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ASSERT_EQ(rs[0].success[i], rs[1].success[i]);
    if (rs[0].success[i]) {
      EXPECT_LE(rs[1].l1[i], rs[0].l1[i] + 1e-4f) << "row " << i;
    }
  }
}

TEST_P(AttackProperties, FgsmDistortionBoundedByEpsilon) {
  nn::Sequential m = random_mlp(GetParam() + 31);
  auto [x, labels] = labeled_batch(m, GetParam() + 32, 8);
  for (const float eps : {0.05f, 0.2f}) {
    FgsmConfig cfg;
    cfg.epsilon = eps;
    cfg.iterations = 5;
    const AttackResult r = fgsm_attack(m, x, labels, cfg);
    for (const float d : r.linf) EXPECT_LE(d, eps + 1e-5f);
  }
}

TEST_P(AttackProperties, ShrinkageIsContractionTowardNatural) {
  // |S_beta(z) - x0| <= |clip(z) - x0| elementwise: the shrinkage never
  // moves a pixel further from the natural image than plain projection.
  Rng rng(GetParam() + 41);
  Tensor z({40}), x0({40});
  fill_uniform(z, rng, -0.3f, 1.3f);
  fill_uniform(x0, rng, 0.0f, 1.0f);
  Tensor shrunk, clipped;
  shrink_project(z, x0, 0.07f, shrunk);
  shrink_project(z, x0, 0.0f, clipped);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_LE(std::fabs(shrunk[i] - x0[i]),
              std::fabs(clipped[i] - x0[i]) + 1e-6f);
    EXPECT_GE(shrunk[i], 0.0f);
    EXPECT_LE(shrunk[i], 1.0f);
  }
}

TEST_P(AttackProperties, FusedIstaStepMatchesSeparateSweepsBitwise) {
  // fused_ista_step must reproduce the former three-sweep update —
  // regularizer-gradient add, axpy gradient step, shrink_project — bit
  // for bit (the attacks/fused.hpp contract EAD's identity gates assume).
  Rng rng(GetParam() + 71);
  const float lr = 0.013f;
  const float beta = 0.04f;
  Tensor y({3, 17}), grad({3, 17}), x0({3, 17});
  fill_uniform(y, rng, -0.3f, 1.3f);
  fill_uniform(grad, rng, -2.0f, 2.0f);
  fill_uniform(x0, rng, 0.0f, 1.0f);

  // Reference: the literal former code path, one sweep per pass.
  Tensor g2 = grad;
  for (std::size_t i = 0; i < g2.numel(); ++i) {
    g2[i] += 2.0f * (y[i] - x0[i]);
  }
  Tensor z = y;
  axpy_inplace(z, -lr, g2);
  Tensor want;
  shrink_project(z, x0, beta, want);

  Tensor got;
  fused_ista_step(y, grad, x0, lr, beta, got);
  ASSERT_EQ(got.numel(), want.numel());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           want.numel() * sizeof(float)));
}

TEST_P(AttackProperties, FusedSignStepMatchesSeparateSweepsBitwise) {
  // fused_sign_step must match the former separate sign-step + two-clamp
  // loop bitwise, including the moved/fixed-point flag, across iterated
  // application until the row saturates.
  Rng rng(GetParam() + 81);
  const float step = 0.03f;
  const float eps = 0.07f;
  Tensor x0({29}), grad({29});
  fill_uniform(x0, rng, 0.0f, 1.0f);
  fill_uniform(grad, rng, -1.0f, 1.0f);
  grad[3] = 0.0f;  // exercise the zero-gradient (no-step) branch
  Tensor xa = x0;
  Tensor xb = x0;
  for (int k = 0; k < 10; ++k) {
    bool moved_want = false;
    for (std::size_t d = 0; d < xb.numel(); ++d) {
      float v = xb[d] + step * (grad[d] > 0.0f   ? 1.0f
                                : grad[d] < 0.0f ? -1.0f
                                                 : 0.0f);
      v = std::clamp(v, x0[d] - eps, x0[d] + eps);
      v = std::clamp(v, 0.0f, 1.0f);
      if (v != xb[d]) moved_want = true;
      xb[d] = v;
    }
    const bool moved = fused_sign_step(xa.data(), grad.data(), x0.data(),
                                       xa.numel(), step, eps);
    ASSERT_EQ(moved, moved_want) << "iteration " << k;
    ASSERT_EQ(0, std::memcmp(xa.data(), xb.data(),
                             xa.numel() * sizeof(float)))
        << "iteration " << k;
    if (!moved) break;  // fixed point: the attack would retire this row
  }
}

TEST_P(AttackProperties, LargerBetaNeverIncreasesSupport) {
  // Across random problems, the count of touched pixels under beta=0.08
  // must not exceed the count under beta=0.005 (sparsity induction).
  nn::Sequential m = random_mlp(GetParam() + 51);
  auto [x, labels] = labeled_batch(m, GetParam() + 52, 4);
  auto support = [&](float beta) {
    EadConfig cfg;
    cfg.beta = beta;
    cfg.kappa = 0.5f;
    cfg.iterations = 100;
    cfg.binary_search_steps = 3;
    cfg.initial_c = 1.0f;
    cfg.rule = DecisionRule::L1;
    const AttackResult r = ead_attack(m, x, labels, cfg);
    std::size_t touched = 0, successes = 0;
    const std::size_t row = x.numel() / x.dim(0);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (!r.success[i]) continue;
      ++successes;
      for (std::size_t j = 0; j < row; ++j) {
        if (std::fabs(r.adversarial[i * row + j] - x[i * row + j]) > 1e-4f) {
          ++touched;
        }
      }
    }
    return successes ? static_cast<double>(touched) / successes : -1.0;
  };
  const double dense = support(0.005f);
  const double sparse = support(0.08f);
  if (dense >= 0.0 && sparse >= 0.0) {
    EXPECT_LE(sparse, dense + 0.51);  // allow ties within half a pixel
  }
}

TEST_P(AttackProperties, IstaStepNeverIncreasesElasticNetObjective) {
  // One ISTA step on the attack's distortion objective
  //   E(v) = ||v - x0||_2^2 + beta * ||v - x0||_1   over the [0,1] box
  // is v+ = shrink_project(y - lr * 2(y - x0), x0, lr * beta): a gradient
  // step on the smooth part followed by the prox of lr * beta * ||.||_1
  // (which shrink_project's threshold argument realizes). For
  // lr <= 1/L = 1/2 the proximal-gradient majorization guarantees
  // E(v+) <= E(v) — the descent property eq. (4)'s loop relies on.
  Rng rng(GetParam() + 61);
  const float beta = 0.05f;
  const float lr = 0.25f;
  Tensor x0({30}), y({30});
  fill_uniform(x0, rng, 0.0f, 1.0f);
  fill_uniform(y, rng, -0.2f, 1.2f);
  shrink_project(y, x0, 0.0f, y);  // start feasible (clip into the box)

  auto objective = [&](const Tensor& v) {
    double e = 0.0;
    for (std::size_t i = 0; i < v.numel(); ++i) {
      const double d = static_cast<double>(v[i]) - static_cast<double>(x0[i]);
      e += d * d + static_cast<double>(beta) * std::fabs(d);
    }
    return e;
  };

  Tensor z = y, next;
  double prev = objective(y);
  for (int step = 0; step < 10; ++step) {
    Tensor grad_point = z;
    for (std::size_t i = 0; i < z.numel(); ++i) {
      grad_point[i] = z[i] - lr * 2.0f * (z[i] - x0[i]);
    }
    shrink_project(grad_point, x0, lr * beta, next);
    const double cur = objective(next);
    EXPECT_LE(cur, prev + 1e-7) << "step " << step;
    prev = cur;
    std::swap(z, next);
  }
}

TEST_P(AttackProperties, BetaZeroEadReducesToCwL2) {
  // cw_l2_attack is defined as EAD with beta = 0, the L2 decision rule
  // and plain ISTA; an explicitly configured beta = 0 EAD run must
  // reproduce it bit for bit (same optimizer trajectory, same examples).
  nn::Sequential m = random_mlp(GetParam() + 71);
  auto [x, labels] = labeled_batch(m, GetParam() + 72, 6);

  CwL2Config cw;
  cw.kappa = 0.5f;
  cw.iterations = 60;
  cw.binary_search_steps = 3;
  cw.initial_c = 1.0f;
  const AttackResult rc = cw_l2_attack(m, x, labels, cw);

  EadConfig ead;
  ead.beta = 0.0f;
  ead.kappa = cw.kappa;
  ead.iterations = cw.iterations;
  ead.binary_search_steps = cw.binary_search_steps;
  ead.initial_c = cw.initial_c;
  ead.learning_rate = cw.learning_rate;
  ead.rule = DecisionRule::L2;
  ead.use_fista = false;
  const AttackResult re = ead_attack(m, x, labels, ead);

  ASSERT_EQ(rc.success, re.success);
  ASSERT_EQ(rc.adversarial.numel(), re.adversarial.numel());
  for (std::size_t i = 0; i < rc.adversarial.numel(); ++i) {
    ASSERT_EQ(rc.adversarial[i], re.adversarial[i]) << "pixel " << i;
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(rc.l1[i], re.l1[i]);
    EXPECT_EQ(rc.l2[i], re.l2[i]);
    EXPECT_EQ(rc.linf[i], re.linf[i]);
  }
}

TEST_P(AttackProperties, AdversarialExamplesSatisfyExactBoxConstraints) {
  // Every crafting path must emit pixels exactly inside [0, 1] — not
  // within a tolerance: downstream defenses assume valid images, and the
  // projection/clipping operators are exact by construction.
  nn::Sequential m = random_mlp(GetParam() + 81);
  auto [x, labels] = labeled_batch(m, GetParam() + 82, 5);

  auto expect_in_box = [](const AttackResult& r, const char* who) {
    for (std::size_t i = 0; i < r.adversarial.numel(); ++i) {
      ASSERT_GE(r.adversarial[i], 0.0f) << who << " pixel " << i;
      ASSERT_LE(r.adversarial[i], 1.0f) << who << " pixel " << i;
    }
  };

  EadConfig ecfg;
  ecfg.beta = 0.05f;
  ecfg.kappa = 0.5f;
  ecfg.iterations = 40;
  ecfg.binary_search_steps = 2;
  ecfg.initial_c = 1.0f;
  expect_in_box(ead_attack(m, x, labels, ecfg), "ead");

  FgsmConfig fcfg;
  fcfg.epsilon = 0.3f;  // large enough that raw steps would leave the box
  fcfg.iterations = 5;
  expect_in_box(fgsm_attack(m, x, labels, fcfg), "ifgsm");

  // shrink_project itself clamps exactly even from far outside the box.
  Rng rng(GetParam() + 83);
  Tensor z({25}), x0({25}), out;
  fill_uniform(z, rng, -5.0f, 5.0f);
  fill_uniform(x0, rng, 0.0f, 1.0f);
  shrink_project(z, x0, 0.1f, out);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    ASSERT_GE(out[i], 0.0f);
    ASSERT_LE(out[i], 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackProperties,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace adv::attacks
