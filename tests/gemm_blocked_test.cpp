// Blocked/packed GEMM: correctness against a naive reference over
// adversarial shapes (every M/K/N straddling the MR/NR/MC/KC blocking
// edges), all transpose variants, accumulate on/off, and bit-identical
// outputs across thread counts.
//
// Thread scaling is exercised through GemmOpts::pool with dedicated 1-, 2-
// and 8-thread pools: ADV_THREADS pins the *global* pool's size at process
// start, so in-process pools are the only way to compare several thread
// counts in one test run — and they take the exact same code path the
// global pool does.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

const std::size_t kSizes[] = {1, 3, 7, 31, 64, 129, 300};

Tensor random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({r, c});
  fill_normal(t, rng, 0.0f, 1.0f);
  return t;
}

// double-accumulated scalar reference.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transposed(const Tensor& t) {
  Tensor out({t.dim(1), t.dim(0)});
  for (std::size_t i = 0; i < t.dim(0); ++i) {
    for (std::size_t j = 0; j < t.dim(1); ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

void expect_close(const Tensor& got, const Tensor& want, float tol) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

// Relative tolerance scaled by the reduction length: the blocked kernel
// accumulates in float, the reference in double.
float tol_for(std::size_t k) { return 1e-4f * static_cast<float>(k) + 1e-4f; }

class BlockedGemmShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

// All three variants checked against the same naive product, sweeping N
// for each (M, K) pair so edge tiles appear on every axis.
TEST_P(BlockedGemmShapes, AllVariantsMatchNaive) {
  const auto [m, k] = GetParam();
  for (const std::size_t n : kSizes) {
    const Tensor a = random_matrix(m, k, m * 131 + k * 17 + n);
    const Tensor b = random_matrix(k, n, m + k * 313 + n * 71);
    const Tensor want = naive_matmul(a, b);
    Tensor c;
    gemm(a, b, c);
    expect_close(c, want, tol_for(k));
    Tensor c_at;
    gemm_at_b(transposed(a), b, c_at);
    expect_close(c_at, want, tol_for(k));
    Tensor c_bt;
    gemm_a_bt(a, transposed(b), c_bt);
    expect_close(c_bt, want, tol_for(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialShapes, BlockedGemmShapes,
    ::testing::Combine(::testing::ValuesIn(kSizes),
                       ::testing::ValuesIn(kSizes)));

TEST(BlockedGemm, AccumulateAddsIntoCAllVariants) {
  const std::size_t m = 31, k = 129, n = 64;
  const Tensor a = random_matrix(m, k, 1);
  const Tensor b = random_matrix(k, n, 2);
  const Tensor bias = random_matrix(m, n, 3);
  const Tensor prod = naive_matmul(a, b);

  for (int variant = 0; variant < 3; ++variant) {
    Tensor c = bias;
    switch (variant) {
      case 0: gemm(a, b, c, {.accumulate = true}); break;
      case 1: gemm_at_b(transposed(a), b, c, {.accumulate = true}); break;
      case 2: gemm_a_bt(a, transposed(b), c, {.accumulate = true}); break;
    }
    for (std::size_t i = 0; i < c.numel(); ++i) {
      ASSERT_NEAR(c[i], bias[i] + prod[i], tol_for(k))
          << "variant " << variant << " flat index " << i;
    }
  }
}

TEST(BlockedGemm, AccumulateIntoUnshapedCThrows) {
  const Tensor a = random_matrix(4, 5, 11);
  const Tensor b = random_matrix(5, 6, 12);
  Tensor c;  // empty: nothing to accumulate into
  EXPECT_THROW(gemm(a, b, c, {.accumulate = true}), std::invalid_argument);
}

TEST(BlockedGemm, SerialOptOutMatchesParallel) {
  const Tensor a = random_matrix(129, 300, 21);
  const Tensor b = random_matrix(300, 129, 22);
  Tensor par, ser;
  gemm(a, b, par, {.parallel = true});
  gemm(a, b, ser, {.parallel = false});
  ASSERT_EQ(par.shape(), ser.shape());
  EXPECT_EQ(0, std::memcmp(par.data(), ser.data(),
                           par.numel() * sizeof(float)));
}

TEST(BlockedGemm, BitIdenticalAcrossThreadCounts) {
  // Shapes chosen to make chunk boundaries fall mid-tile for every pool
  // size; the serial result is the baseline.
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {300, 257, 129}, {64, 513, 300}, {7, 300, 300}};
  ThreadPool pool1(1), pool2(2), pool8(8);
  for (const auto& [m, k, n] : shapes) {
    const Tensor a = random_matrix(m, k, m + 1000 * k);
    const Tensor b = random_matrix(k, n, k + 1000 * n);
    Tensor serial;
    gemm(a, b, serial, {.parallel = false});
    for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      Tensor c;
      gemm(a, b, c, {.pool = pool});
      ASSERT_EQ(c.shape(), serial.shape());
      EXPECT_EQ(0, std::memcmp(c.data(), serial.data(),
                               c.numel() * sizeof(float)))
          << m << "x" << k << "x" << n << " with "
          << pool->thread_count() << " threads";
      // Transposed variants must be deterministic too (they share the
      // packing core, but check anyway: they are the backward pass).
      Tensor serial_at, c_at;
      gemm_at_b(transposed(a), b, serial_at, {.parallel = false});
      gemm_at_b(transposed(a), b, c_at, {.pool = pool});
      EXPECT_EQ(0, std::memcmp(c_at.data(), serial_at.data(),
                               c_at.numel() * sizeof(float)));
    }
  }
}

TEST(BlockedGemm, AccumulateBitIdenticalAcrossThreadCounts) {
  const std::size_t m = 300, k = 129, n = 257;
  const Tensor a = random_matrix(m, k, 5);
  const Tensor b = random_matrix(k, n, 6);
  const Tensor bias = random_matrix(m, n, 7);
  Tensor serial = bias;
  gemm(a, b, serial, {.accumulate = true, .parallel = false});
  ThreadPool pool8(8);
  Tensor par = bias;
  gemm(a, b, par, {.accumulate = true, .pool = &pool8});
  EXPECT_EQ(0, std::memcmp(par.data(), serial.data(),
                           par.numel() * sizeof(float)));
}

TEST(BlockedGemm, KZeroZeroesOrPreservesC) {
  Tensor a({2, 0}), b({0, 3});
  Tensor c({2, 3}, 5.0f);
  gemm(a, b, c);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], 0.0f);
  Tensor c2({2, 3}, 5.0f);
  gemm(a, b, c2, {.accumulate = true});
  for (std::size_t i = 0; i < c2.numel(); ++i) EXPECT_FLOAT_EQ(c2[i], 5.0f);
}

}  // namespace
}  // namespace adv
