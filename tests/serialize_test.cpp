// Tensor serialization round trips and failure modes: the v2 corruption
// matrix (truncation at every byte, single-byte flips in every section),
// v1 legacy compatibility, atomic writes, and injected write faults.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "fault/failpoint.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    // Per-test dir: ctest runs each test in its own process, so a shared
    // path would let one test's TearDown remove_all another's files.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("adv_serialize_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::reset();
    std::filesystem::remove_all(dir_);
  }

  std::vector<char> read_bytes(const std::filesystem::path& p) {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void write_bytes(const std::filesystem::path& p,
                   const std::vector<char>& bytes) {
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Expects load_tensors(p) to throw a runtime_error mentioning `what`.
  void expect_load_error(const std::filesystem::path& p, const char* what) {
    try {
      load_tensors(p);
      FAIL() << "expected load of " << p << " to throw (" << what << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "got: " << e.what();
    }
  }

  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesShapesAndValues) {
  Rng rng(5);
  Tensor a({3, 4, 5});
  Tensor b({7});
  Tensor c({2, 1, 8, 8});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  fill_normal(c, rng, 0.0f, 1.0f);
  const auto path = dir_ / "trip.bin";
  save_tensors(path, {a, b, c});
  const auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].shape(), a.shape());
  EXPECT_EQ(loaded[1].shape(), b.shape());
  EXPECT_EQ(loaded[2].shape(), c.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(loaded[0][i], a[i]);
  }
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(loaded[2][i], c[i]);
  }
}

TEST_F(SerializeTest, EmptyCollectionRoundTrips) {
  const auto path = dir_ / "empty.bin";
  save_tensors(path, {});
  EXPECT_TRUE(load_tensors(path).empty());
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensors(dir_ / "nonexistent.bin"), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  const auto path = dir_ / "bad_magic.bin";
  std::ofstream os(path, std::ios::binary);
  const std::uint32_t junk = 0xdeadbeef;
  os.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  os.close();
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  const auto path = dir_ / "trunc.bin";
  Tensor a({10, 10}, 1.0f);
  save_tensors(path, {a});
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

TEST_F(SerializeTest, CreatesParentDirectories) {
  const auto path = dir_ / "nested" / "deep" / "file.bin";
  save_tensors(path, {Tensor({2}, 1.0f)});
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(SerializeTest, StreamLevelRoundTrip) {
  std::stringstream ss;
  Tensor t = Tensor::from_data(Shape({2, 2}), {1, 2, 3, 4});
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(back[i], t[i]);
}

TEST_F(SerializeTest, WritesFormatV2WithTrailer) {
  const auto path = dir_ / "v2.bin";
  save_tensors(path, {Tensor({2, 3}, 0.5f)});
  const std::vector<char> bytes = read_bytes(path);
  // header: magic, version=2, count=1
  ASSERT_GE(bytes.size(), 16u);
  std::uint32_t magic = 0, version = 0, trailer = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&trailer, bytes.data() + bytes.size() - 8, 4);
  EXPECT_EQ(magic, kTensorFileMagic);
  EXPECT_EQ(version, kTensorFileVersion);
  EXPECT_EQ(trailer, kTensorFileTrailerMagic);
  // 16 header + 8 rank + 16 dims + 4 crc + 24 payload + 8 trailer
  EXPECT_EQ(bytes.size(), 76u);
}

// --- corruption matrix --------------------------------------------------

TEST_F(SerializeTest, TruncationAtEveryByteThrows) {
  const auto path = dir_ / "full.bin";
  Rng rng(9);
  Tensor a({3, 4});
  Tensor b({2, 2, 2});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  save_tensors(path, {a, b});
  const std::vector<char> bytes = read_bytes(path);
  const auto work = dir_ / "trunc.bin";
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(work, {bytes.begin(), bytes.begin() + len});
    EXPECT_THROW(load_tensors(work), std::runtime_error)
        << "prefix of " << len << "/" << bytes.size()
        << " bytes loaded without error";
  }
}

TEST_F(SerializeTest, EverySingleByteFlipIsDetected) {
  const auto path = dir_ / "flip_src.bin";
  Rng rng(10);
  Tensor a({3, 4});
  Tensor b({5});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  save_tensors(path, {a, b});
  const std::vector<char> bytes = read_bytes(path);
  const auto work = dir_ / "flip.bin";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<char> corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    write_bytes(work, corrupt);
    EXPECT_THROW(load_tensors(work), std::runtime_error)
        << "flip of byte " << i << "/" << bytes.size() << " went undetected";
  }
}

TEST_F(SerializeTest, CorruptionErrorsNameTheFailure) {
  // One tensor {2,3}: magic@0, version@4, count@8, rank@16, dims@24,
  // tensor-crc@40, payload@44(+24), trailer magic@68, file crc@72.
  const auto path = dir_ / "precise_src.bin";
  save_tensors(path, {Tensor({2, 3}, 0.25f)});
  const std::vector<char> bytes = read_bytes(path);
  ASSERT_EQ(bytes.size(), 76u);
  const struct {
    std::size_t offset;
    const char* expect;
  } cases[] = {
      {0, "bad magic"},
      {4, "unsupported version"},
      {45, "tensor CRC mismatch"},       // payload byte
      {40, "tensor CRC mismatch"},       // stored per-tensor crc
      {68, "trailer missing or corrupt"},
      {72, "file CRC mismatch"},
  };
  const auto work = dir_ / "precise.bin";
  for (const auto& c : cases) {
    std::vector<char> corrupt = bytes;
    corrupt[c.offset] = static_cast<char>(corrupt[c.offset] ^ 0xFF);
    write_bytes(work, corrupt);
    expect_load_error(work, c.expect);
  }
}

// --- legacy v1 compatibility --------------------------------------------

TEST_F(SerializeTest, LegacyV1FileStillRoundTrips) {
  // Hand-written v1 file: header without checksums, raw rank/dims/payload
  // records — byte-for-byte what the previous serializer produced.
  const auto path = dir_ / "legacy.bin";
  const std::vector<float> values = {1.5f, -2.0f, 0.25f, 8.0f, -0.5f, 3.0f};
  {
    std::ofstream os(path, std::ios::binary);
    const std::uint32_t version = kTensorFileVersionLegacy;
    const std::uint64_t count = 1, rank = 2, d0 = 2, d1 = 3;
    os.write(reinterpret_cast<const char*>(&kTensorFileMagic), 4);
    os.write(reinterpret_cast<const char*>(&version), 4);
    os.write(reinterpret_cast<const char*>(&count), 8);
    os.write(reinterpret_cast<const char*>(&rank), 8);
    os.write(reinterpret_cast<const char*>(&d0), 8);
    os.write(reinterpret_cast<const char*>(&d1), 8);
    os.write(reinterpret_cast<const char*>(values.data()), 24);
  }
  const std::vector<Tensor> loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].shape(), Shape({2, 3}));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded[0][i], values[i]);
  }
}

TEST_F(SerializeTest, LegacyV1TruncationStillThrows) {
  const auto path = dir_ / "legacy_trunc.bin";
  {
    std::ofstream os(path, std::ios::binary);
    const std::uint32_t version = kTensorFileVersionLegacy;
    const std::uint64_t count = 1, rank = 1, d0 = 100;
    os.write(reinterpret_cast<const char*>(&kTensorFileMagic), 4);
    os.write(reinterpret_cast<const char*>(&version), 4);
    os.write(reinterpret_cast<const char*>(&count), 8);
    os.write(reinterpret_cast<const char*>(&rank), 8);
    os.write(reinterpret_cast<const char*>(&d0), 8);
    const std::vector<float> partial(10, 1.0f);  // 100 promised, 10 present
    os.write(reinterpret_cast<const char*>(partial.data()), 40);
  }
  expect_load_error(path, "truncated");
}

// --- atomic writes and injected faults ----------------------------------

TEST_F(SerializeTest, AtomicWriteLeavesNoTempFile) {
  save_tensors(dir_ / "clean.bin", {Tensor({4}, 1.0f)});
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "temp file left behind: " << entry.path();
  }
}

TEST_F(SerializeTest, InjectedWriteFailureLeavesPreviousFileIntact) {
  const auto path = dir_ / "stable.bin";
  save_tensors(path, {Tensor({3}, 7.0f)});
  fault::arm("serialize.write:fail_once");
  EXPECT_THROW(save_tensors(path, {Tensor({3}, -1.0f)}), std::runtime_error);
  fault::reset();
  const std::vector<Tensor> loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FLOAT_EQ(loaded[0][0], 7.0f);  // old content survived
}

TEST_F(SerializeTest, InjectedShortWriteIsDetectedOnLoad) {
  const auto path = dir_ / "torn.bin";
  fault::arm("serialize.write:short_write_once");
  save_tensors(path, {Tensor({8, 8}, 2.0f)});  // publishes a truncated file
  fault::reset();
  expect_load_error(path, "truncated");
}

TEST_F(SerializeTest, InjectedBitFlipIsDetectedOnLoad) {
  const auto path = dir_ / "flipped.bin";
  fault::arm("serialize.write:bitflip_once");
  save_tensors(path, {Tensor({8, 8}, 2.0f)});  // flips one payload byte
  fault::reset();
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

TEST_F(SerializeTest, FailAfterSkipsInitialWrites) {
  fault::arm("serialize.write:fail_after=2");
  save_tensors(dir_ / "ok1.bin", {Tensor({2}, 1.0f)});  // hit 0: passes
  save_tensors(dir_ / "ok2.bin", {Tensor({2}, 2.0f)});  // hit 1: passes
  EXPECT_THROW(save_tensors(dir_ / "no.bin", {Tensor({2}, 3.0f)}),
               std::runtime_error);  // hit 2: injected failure
  fault::reset();
  EXPECT_EQ(load_tensors(dir_ / "ok2.bin")[0][0], 2.0f);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "no.bin"));
}

}  // namespace
}  // namespace adv
