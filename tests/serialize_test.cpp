// Tensor serialization round trips and failure modes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "adv_serialize_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesShapesAndValues) {
  Rng rng(5);
  Tensor a({3, 4, 5});
  Tensor b({7});
  Tensor c({2, 1, 8, 8});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  fill_normal(c, rng, 0.0f, 1.0f);
  const auto path = dir_ / "trip.bin";
  save_tensors(path, {a, b, c});
  const auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].shape(), a.shape());
  EXPECT_EQ(loaded[1].shape(), b.shape());
  EXPECT_EQ(loaded[2].shape(), c.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(loaded[0][i], a[i]);
  }
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(loaded[2][i], c[i]);
  }
}

TEST_F(SerializeTest, EmptyCollectionRoundTrips) {
  const auto path = dir_ / "empty.bin";
  save_tensors(path, {});
  EXPECT_TRUE(load_tensors(path).empty());
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensors(dir_ / "nonexistent.bin"), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  const auto path = dir_ / "bad_magic.bin";
  std::ofstream os(path, std::ios::binary);
  const std::uint32_t junk = 0xdeadbeef;
  os.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  os.close();
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileThrows) {
  const auto path = dir_ / "trunc.bin";
  Tensor a({10, 10}, 1.0f);
  save_tensors(path, {a});
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_tensors(path), std::runtime_error);
}

TEST_F(SerializeTest, CreatesParentDirectories) {
  const auto path = dir_ / "nested" / "deep" / "file.bin";
  save_tensors(path, {Tensor({2}, 1.0f)});
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(SerializeTest, StreamLevelRoundTrip) {
  std::stringstream ss;
  Tensor t = Tensor::from_data(Shape({2, 2}), {1, 2, 3, 4});
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(back[i], t[i]);
}

}  // namespace
}  // namespace adv
