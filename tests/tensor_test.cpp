// Unit and property tests for Shape, Tensor and tensor_ops.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv {
namespace {

TEST(Shape, RankAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, EmptyShapeHasZeroElements) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 0u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, OutOfRangeIndexThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ConstructionFillsValue) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.values()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_data(Shape({2, 2}), {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_data(Shape({2, 2}), {1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, TwoDimensionalAccess) {
  Tensor t = Tensor::from_data(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
}

TEST(Tensor, FourDimensionalAccessIsNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat index: ((n*C + c)*H + h)*W + w.
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_data(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, SliceRows) {
  Tensor t = Tensor::from_data(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 6.0f);
  EXPECT_THROW(t.slice_rows(2, 4), std::out_of_range);
  EXPECT_THROW(t.slice_rows(2, 1), std::out_of_range);
}

TEST(Tensor, SetRowsWritesBack) {
  Tensor t({3, 2}, 0.0f);
  Tensor rows = Tensor::from_data(Shape({2, 2}), {9, 8, 7, 6});
  t.set_rows(1, rows);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 9.0f);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
  EXPECT_THROW(t.set_rows(2, rows), std::invalid_argument);
}

TEST(Tensor, SliceThenSetRoundTrips) {
  Tensor t = Tensor::from_data(Shape({4, 3}),
                               {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor copy = t;
  Tensor mid = t.slice_rows(1, 3);
  copy.set_rows(1, mid);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_FLOAT_EQ(copy[i], t[i]);
  }
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2, 2}, 1.0f);
  Tensor b = a;
  b[0] = 5.0f;
  EXPECT_FLOAT_EQ(a[0], 1.0f);
}

// --- ops -------------------------------------------------------------

TEST(TensorOps, AddSubMulScale) {
  Tensor a = Tensor::from_data(Shape({2, 2}), {1, 2, 3, 4});
  Tensor b = Tensor::from_data(Shape({2, 2}), {4, 3, 2, 1});
  Tensor c = add(a, b);
  for (float v : c.values()) EXPECT_FLOAT_EQ(v, 5.0f);
  c = sub(a, b);
  EXPECT_FLOAT_EQ(c[0], -3.0f);
  EXPECT_FLOAT_EQ(c[3], 3.0f);
  c = mul(a, b);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  c = scale(a, 2.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(add_inplace(a, b), std::invalid_argument);
  EXPECT_THROW(mul_inplace(a, b), std::invalid_argument);
  EXPECT_THROW(axpy_inplace(a, 1.0f, b), std::invalid_argument);
  EXPECT_THROW(l1_distance(a, b), std::invalid_argument);
}

TEST(TensorOps, AxpyAndClamp) {
  Tensor a = Tensor::from_data(Shape({3}), {0.0f, 0.5f, 1.0f});
  Tensor x = Tensor::from_data(Shape({3}), {1.0f, 1.0f, 1.0f});
  axpy_inplace(a, 2.0f, x);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  clamp_inplace(a, 0.0f, 2.4f);
  EXPECT_FLOAT_EQ(a[2], 2.4f);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_data(Shape({4}), {-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(sum(a), 2.0f);
  EXPECT_FLOAT_EQ(mean(a), 0.5f);
  EXPECT_FLOAT_EQ(min_value(a), -3.0f);
  EXPECT_FLOAT_EQ(max_value(a), 4.0f);
  EXPECT_FLOAT_EQ(norm_l1(a), 10.0f);
  EXPECT_FLOAT_EQ(norm_l2(a), std::sqrt(30.0f));
  EXPECT_FLOAT_EQ(norm_linf(a), 4.0f);
  EXPECT_EQ(argmax(a), 3u);
}

TEST(TensorOps, EmptyReductionsThrow) {
  Tensor e;
  EXPECT_THROW(mean(e), std::invalid_argument);
  EXPECT_THROW(min_value(e), std::invalid_argument);
  EXPECT_THROW(argmax(e), std::invalid_argument);
}

TEST(TensorOps, ArgmaxRow) {
  Tensor a = Tensor::from_data(Shape({2, 3}), {1, 9, 2, 8, 1, 3});
  EXPECT_EQ(argmax_row(a, 0), 1u);
  EXPECT_EQ(argmax_row(a, 1), 0u);
  EXPECT_THROW(argmax_row(a, 2), std::out_of_range);
  Tensor b({6});
  EXPECT_THROW(argmax_row(b, 0), std::invalid_argument);
}

TEST(TensorOps, Distances) {
  Tensor a = Tensor::from_data(Shape({3}), {0, 0, 0});
  Tensor b = Tensor::from_data(Shape({3}), {3, -4, 0});
  EXPECT_FLOAT_EQ(l1_distance(a, b), 7.0f);
  EXPECT_FLOAT_EQ(l2_distance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(linf_distance(a, b), 4.0f);
}

// Property tests: norm identities on random tensors.
class NormProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormProperties, NormOrderingHolds) {
  Rng rng(GetParam());
  Tensor t({37});
  fill_normal(t, rng, 0.0f, 2.0f);
  const float l1 = norm_l1(t), l2 = norm_l2(t), li = norm_linf(t);
  // ||x||_inf <= ||x||_2 <= ||x||_1 <= sqrt(n) * ||x||_2
  EXPECT_LE(li, l2 + 1e-4f);
  EXPECT_LE(l2, l1 + 1e-4f);
  EXPECT_LE(l1, std::sqrt(37.0f) * l2 + 1e-3f);
}

TEST_P(NormProperties, TriangleInequality) {
  Rng rng(GetParam() + 99);
  Tensor a({24}), b({24});
  fill_uniform(a, rng, -1.0f, 1.0f);
  fill_uniform(b, rng, -1.0f, 1.0f);
  EXPECT_LE(norm_l2(add(a, b)), norm_l2(a) + norm_l2(b) + 1e-4f);
  EXPECT_LE(norm_l1(add(a, b)), norm_l1(a) + norm_l1(b) + 1e-4f);
}

TEST_P(NormProperties, DistanceIsTranslationInvariant) {
  Rng rng(GetParam() + 7);
  Tensor a({16}), b({16}), t({16});
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  fill_normal(t, rng, 0.0f, 1.0f);
  const float d0 = l2_distance(a, b);
  const float d1 = l2_distance(add(a, t), add(b, t));
  EXPECT_NEAR(d0, d1, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace adv
