// MagNet component tests: detectors, calibration, JSD, reformer, pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "magnet/autoencoder.hpp"
#include "magnet/detector.hpp"
#include "magnet/pipeline.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::magnet {
namespace {

/// Detector whose score is the mean pixel value — lets calibration logic be
/// tested against hand-computable quantiles.
class MeanDetector final : public Detector {
 public:
  std::vector<float> scores(const Tensor& batch) const override {
    const std::size_t n = batch.dim(0);
    const std::size_t row = batch.numel() / n;
    std::vector<float> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < row; ++j) acc += batch[i * row + j];
      out[i] = static_cast<float>(acc / static_cast<double>(row));
    }
    return out;
  }
  std::string name() const override { return "mean"; }
};

Tensor batch_of_values(std::initializer_list<float> values) {
  std::vector<float> data(values);
  const std::size_t n = data.size();
  return Tensor::from_data(Shape({n, 1, 1, 1}), std::move(data));
}

/// Builds an identity "auto-encoder": one 1x1 conv with weight 1, bias 0,
/// so AE(x) == x and reconstruction error is exactly zero.
std::shared_ptr<nn::Sequential> identity_ae() {
  Rng rng(1);
  auto ae = std::make_shared<nn::Sequential>();
  ae->emplace<nn::Conv2d>(nn::Conv2dConfig{1, 1, 1, 1, 0}, rng);
  ae->parameters()[0]->fill(1.0f);
  ae->parameters()[1]->fill(0.0f);
  return ae;
}

/// A 1-pixel-input "classifier" with fixed logits: class 0 logit = -w*x,
/// class 1 logit = w*x.
std::shared_ptr<nn::Sequential> threshold_classifier(float w = 10.0f) {
  Rng rng(2);
  auto clf = std::make_shared<nn::Sequential>();
  clf->emplace<nn::Flatten>();
  auto& lin = clf->emplace<nn::Linear>(1, 2, rng);
  *lin.parameters()[0] = Tensor::from_data(Shape({1, 2}), {-w, w});
  *lin.parameters()[1] = Tensor::from_data(Shape({2}), {5.0f, -5.0f});
  return clf;
}

// --- calibration ---------------------------------------------------------

TEST(Detector, CalibrateSetsQuantileThreshold) {
  MeanDetector d;
  // Scores 0.01 .. 1.00.
  std::vector<float> vals(100);
  for (std::size_t i = 0; i < 100; ++i) {
    vals[i] = static_cast<float>(i + 1) / 100.0f;
  }
  Tensor batch = Tensor::from_data(Shape({100, 1, 1, 1}),
                                   std::vector<float>(vals));
  d.calibrate(batch, 0.05f);
  // Threshold at (1 - 0.05) quantile: ceil(0.95*100) = index 95 -> 0.96.
  EXPECT_NEAR(d.threshold(), 0.96f, 1e-5f);
  const auto rejected = d.reject(batch);
  const auto n_rejected = std::count(rejected.begin(), rejected.end(), true);
  EXPECT_EQ(n_rejected, 4);  // 0.97, 0.98, 0.99, 1.00
}

TEST(Detector, CalibrateValidatesInputs) {
  MeanDetector d;
  Tensor batch = batch_of_values({0.5f});
  EXPECT_THROW(d.calibrate(batch, 0.0f), std::invalid_argument);
  EXPECT_THROW(d.calibrate(batch, 1.0f), std::invalid_argument);
  EXPECT_THROW(d.threshold(), std::logic_error);
  EXPECT_THROW(d.reject(batch), std::logic_error);
}

TEST(Detector, SetThresholdOverridesCalibration) {
  MeanDetector d;
  d.set_threshold(0.5f);
  const auto r = d.reject(batch_of_values({0.4f, 0.6f}));
  EXPECT_FALSE(r[0]);
  EXPECT_TRUE(r[1]);
}

// --- reconstruction detector ----------------------------------------------

TEST(ReconstructionDetector, ZeroScoreUnderIdentityAe) {
  ReconstructionDetector d(identity_ae(), 1);
  const auto s = d.scores(batch_of_values({0.3f, 0.9f}));
  EXPECT_NEAR(s[0], 0.0f, 1e-6f);
  EXPECT_NEAR(s[1], 0.0f, 1e-6f);
}

TEST(ReconstructionDetector, ScoreMatchesManualError) {
  // AE with weight 0.5: AE(x) = 0.5 x, so per-pixel L1 error = 0.5|x|.
  auto ae = identity_ae();
  ae->parameters()[0]->fill(0.5f);
  ReconstructionDetector d1(ae, 1);
  ReconstructionDetector d2(ae, 2);
  const auto s1 = d1.scores(batch_of_values({0.8f}));
  const auto s2 = d2.scores(batch_of_values({0.8f}));
  EXPECT_NEAR(s1[0], 0.4f, 1e-5f);
  EXPECT_NEAR(s2[0], 0.16f, 1e-5f);
}

TEST(ReconstructionDetector, ValidatesConstruction) {
  EXPECT_THROW(ReconstructionDetector(nullptr, 1), std::invalid_argument);
  EXPECT_THROW(ReconstructionDetector(identity_ae(), 3),
               std::invalid_argument);
}

// --- JSD -------------------------------------------------------------------

TEST(Jsd, IdenticalDistributionsGiveZero) {
  const float p[] = {0.2f, 0.3f, 0.5f};
  EXPECT_NEAR(jensen_shannon_divergence(p, p), 0.0f, 1e-7f);
}

TEST(Jsd, SymmetricAndBounded) {
  const float p[] = {1.0f, 0.0f};
  const float q[] = {0.0f, 1.0f};
  const float d1 = jensen_shannon_divergence(p, q);
  const float d2 = jensen_shannon_divergence(q, p);
  EXPECT_FLOAT_EQ(d1, d2);
  EXPECT_NEAR(d1, std::log(2.0f), 1e-5f);  // maximal for disjoint support
}

TEST(Jsd, IntermediateValue) {
  const float p[] = {0.5f, 0.5f};
  const float q[] = {0.9f, 0.1f};
  const float d = jensen_shannon_divergence(p, q);
  EXPECT_GT(d, 0.0f);
  EXPECT_LT(d, std::log(2.0f));
}

TEST(Jsd, LengthMismatchThrows) {
  const float p[] = {1.0f};
  const float q[] = {0.5f, 0.5f};
  EXPECT_THROW(jensen_shannon_divergence(p, q), std::invalid_argument);
}

TEST(JsdDetector, IdentityAeGivesZeroScores) {
  JsdDetector d(identity_ae(), threshold_classifier(), 10.0f);
  const auto s = d.scores(batch_of_values({0.2f, 0.8f}));
  EXPECT_NEAR(s[0], 0.0f, 1e-6f);
  EXPECT_NEAR(s[1], 0.0f, 1e-6f);
}

TEST(JsdDetector, RespondsWhenAeChangesPrediction) {
  // AE halves the pixel: x = 0.4 gives near-one-hot class-1 probabilities
  // (logits -7, 7) while AE(x) = 0.2 gives much softer ones (logits -1, 1),
  // so the JSD must be clearly nonzero.
  auto ae = identity_ae();
  ae->parameters()[0]->fill(0.5f);
  JsdDetector d(ae, threshold_classifier(30.0f), 1.0f);
  const auto s = d.scores(batch_of_values({0.4f}));
  EXPECT_GT(s[0], 0.02f);
}

TEST(JsdDetector, ValidatesConstruction) {
  EXPECT_THROW(JsdDetector(nullptr, threshold_classifier(), 10.0f),
               std::invalid_argument);
  EXPECT_THROW(JsdDetector(identity_ae(), nullptr, 10.0f),
               std::invalid_argument);
  EXPECT_THROW(JsdDetector(identity_ae(), threshold_classifier(), 0.0f),
               std::invalid_argument);
}

// --- reformer / pipeline ----------------------------------------------------

TEST(Reformer, AppliesAutoencoder) {
  auto ae = identity_ae();
  ae->parameters()[0]->fill(0.5f);
  Reformer r(ae);
  const Tensor out = r.reform(batch_of_values({0.8f}));
  EXPECT_NEAR(out[0], 0.4f, 1e-5f);
}

TEST(Pipeline, SchemeControlsStages) {
  auto clf = threshold_classifier();
  MagNetPipeline pipe(clf);
  auto det = std::make_shared<MeanDetector>();
  det->set_threshold(0.5f);
  pipe.add_detector(det);
  // Reformer that halves pixels: flips classification of x in (0.5, 1.0].
  auto ae = identity_ae();
  ae->parameters()[0]->fill(0.5f);
  pipe.set_reformer(std::make_shared<Reformer>(ae));

  const Tensor x = batch_of_values({0.9f});  // class 1 raw, class 0 reformed
  const auto none = pipe.classify(x, DefenseScheme::None);
  EXPECT_FALSE(none.rejected[0]);
  EXPECT_EQ(none.predicted[0], 1);

  const auto det_only = pipe.classify(x, DefenseScheme::DetectorOnly);
  EXPECT_TRUE(det_only.rejected[0]);
  EXPECT_EQ(det_only.predicted[0], 1);  // reformer off

  const auto ref_only = pipe.classify(x, DefenseScheme::ReformerOnly);
  EXPECT_FALSE(ref_only.rejected[0]);
  EXPECT_EQ(ref_only.predicted[0], 0);

  const auto full = pipe.classify(x, DefenseScheme::Full);
  EXPECT_TRUE(full.rejected[0]);
  EXPECT_EQ(full.predicted[0], 0);
}

TEST(Pipeline, AnyDetectorCanReject) {
  MagNetPipeline pipe(threshold_classifier());
  auto lo = std::make_shared<MeanDetector>();
  lo->set_threshold(10.0f);  // never fires
  auto hi = std::make_shared<MeanDetector>();
  hi->set_threshold(0.1f);  // fires on everything here
  pipe.add_detector(lo);
  pipe.add_detector(hi);
  const auto out =
      pipe.classify(batch_of_values({0.5f}), DefenseScheme::DetectorOnly);
  EXPECT_TRUE(out.rejected[0]);
}

TEST(Pipeline, CleanAccuracyCountsRejectionsAsErrors) {
  MagNetPipeline pipe(threshold_classifier());
  auto det = std::make_shared<MeanDetector>();
  det->set_threshold(0.55f);
  pipe.add_detector(det);
  // x=0.2 -> class 0 (correct, kept); x=0.9 -> class 1 (correct) but
  // rejected by the detector.
  const Tensor x = batch_of_values({0.2f, 0.9f});
  const float acc = pipe.clean_accuracy(x, {0, 1}, DefenseScheme::Full);
  EXPECT_FLOAT_EQ(acc, 0.5f);
  // Without the detector both are right.
  EXPECT_FLOAT_EQ(pipe.clean_accuracy(x, {0, 1}, DefenseScheme::None), 1.0f);
}

TEST(Pipeline, ValidatesConstruction) {
  EXPECT_THROW(MagNetPipeline(nullptr), std::invalid_argument);
  MagNetPipeline pipe(threshold_classifier());
  EXPECT_THROW(pipe.add_detector(nullptr), std::invalid_argument);
  EXPECT_THROW(Reformer(nullptr), std::invalid_argument);
}

TEST(Pipeline, ReadingsExposePerDetectorScoresAndThresholds) {
  MagNetPipeline pipe(threshold_classifier());
  auto lo = std::make_shared<MeanDetector>();
  lo->set_threshold(10.0f);  // never fires
  auto hi = std::make_shared<MeanDetector>();
  hi->set_threshold(0.3f);  // fires on the second row only
  pipe.add_detector(lo);
  pipe.add_detector(hi);

  const Tensor x = batch_of_values({0.2f, 0.5f});
  const auto out = pipe.classify(x, DefenseScheme::DetectorOnly);

  // One reading per detector, in bank order, with raw scores — WHICH
  // detector fired, not just that one did.
  ASSERT_EQ(out.readings.size(), 2u);
  EXPECT_EQ(out.readings[0].name, "mean");
  EXPECT_FLOAT_EQ(out.readings[0].threshold, 10.0f);
  EXPECT_FLOAT_EQ(out.readings[1].threshold, 0.3f);
  ASSERT_EQ(out.readings[0].scores.size(), 2u);
  EXPECT_FLOAT_EQ(out.readings[0].scores[0], 0.2f);
  EXPECT_FLOAT_EQ(out.readings[1].scores[1], 0.5f);
  EXPECT_FALSE(out.readings[0].reject_row(0));
  EXPECT_FALSE(out.readings[0].reject_row(1));
  EXPECT_FALSE(out.readings[1].reject_row(0));
  EXPECT_TRUE(out.readings[1].reject_row(1));

  // `rejected` is exactly the OR of reject_row across readings.
  EXPECT_FALSE(out.rejected[0]);
  EXPECT_TRUE(out.rejected[1]);
}

TEST(Pipeline, ReadingsMatchHandComputedRealDetectorScores) {
  // The full bank of REAL detectors on models simple enough to hand-compute:
  // AE(x) = 0.5 x (1x1 conv, weight 0.5) and the fixed-logit classifier
  // (-10x + 5, 10x - 5). One-pixel inputs x = {0.2, 0.8}.
  auto ae = identity_ae();
  ae->parameters()[0]->fill(0.5f);
  auto clf = threshold_classifier();  // w = 10

  MagNetPipeline pipe(clf);
  auto l1 = std::make_shared<ReconstructionDetector>(ae, 1);
  auto l2 = std::make_shared<ReconstructionDetector>(ae, 2);
  auto jsd = std::make_shared<JsdDetector>(ae, clf, 1.0f);
  // Thresholds chosen so l1/l2 reject exactly the second row and the JSD
  // detector never fires (its scores are bounded by ln 2).
  l1->set_threshold(0.2f);
  l2->set_threshold(0.1f);
  jsd->set_threshold(1.0f);
  pipe.add_detector(l1);
  pipe.add_detector(l2);
  pipe.add_detector(jsd);

  const auto out =
      pipe.classify(batch_of_values({0.2f, 0.8f}), DefenseScheme::DetectorOnly);

  ASSERT_EQ(out.readings.size(), 3u);
  for (const auto& r : out.readings) ASSERT_EQ(r.scores.size(), 2u);

  // recon_l1: mean |x - 0.5x| = 0.5|x|.
  EXPECT_EQ(out.readings[0].name, "recon_l1");
  EXPECT_FLOAT_EQ(out.readings[0].threshold, 0.2f);
  EXPECT_NEAR(out.readings[0].scores[0], 0.1f, 1e-6f);
  EXPECT_NEAR(out.readings[0].scores[1], 0.4f, 1e-6f);
  EXPECT_FALSE(out.readings[0].reject_row(0));
  EXPECT_TRUE(out.readings[0].reject_row(1));

  // recon_l2: mean (x - 0.5x)^2 = 0.25 x^2.
  EXPECT_EQ(out.readings[1].name, "recon_l2");
  EXPECT_FLOAT_EQ(out.readings[1].threshold, 0.1f);
  EXPECT_NEAR(out.readings[1].scores[0], 0.01f, 1e-6f);
  EXPECT_NEAR(out.readings[1].scores[1], 0.16f, 1e-6f);
  EXPECT_FALSE(out.readings[1].reject_row(0));
  EXPECT_TRUE(out.readings[1].reject_row(1));

  // jsd_T1: JSD between softmax(logits(x)) and softmax(logits(0.5x)).
  // With two classes softmax reduces to a sigmoid of the logit gap:
  // p1(x) = sigmoid(20x - 10), and on the reconstruction q1 = sigmoid(10x
  // - 10). Recompute the divergence here from those closed forms.
  EXPECT_EQ(out.readings[2].name, "jsd_T1");
  EXPECT_FLOAT_EQ(out.readings[2].threshold, 1.0f);
  const auto sigmoid = [](double z) { return 1.0 / (1.0 + std::exp(-z)); };
  const auto jsd2 = [](double p1, double q1) {
    const double p[] = {1.0 - p1, p1};
    const double q[] = {1.0 - q1, q1};
    double acc = 0.0;
    for (int i = 0; i < 2; ++i) {
      const double m = 0.5 * (p[i] + q[i]);
      acc += 0.5 * p[i] * std::log(p[i] / m) +
             0.5 * q[i] * std::log(q[i] / m);
    }
    return acc;
  };
  for (int i = 0; i < 2; ++i) {
    const double x = i == 0 ? 0.2 : 0.8;
    const double expected = jsd2(sigmoid(20 * x - 10), sigmoid(10 * x - 10));
    EXPECT_NEAR(out.readings[2].scores[i], expected, 1e-5)
        << "jsd score, row " << i;
    EXPECT_FALSE(out.readings[2].reject_row(i));
  }

  // rejected = OR across the bank; predictions come from the raw input
  // (DetectorOnly runs no reformer): 0.2 -> class 0, 0.8 -> class 1.
  EXPECT_FALSE(out.rejected[0]);
  EXPECT_TRUE(out.rejected[1]);
  EXPECT_EQ(out.predicted[0], 0);
  EXPECT_EQ(out.predicted[1], 1);
}

TEST(DefenseOutcome, SliceRowsExtractsAlignedSubranges) {
  DefenseOutcome o;
  o.rejected = {false, true, false, true};
  o.predicted = {7, 1, 2, 5};
  o.readings.push_back({"recon_l1", 0.5f, {0.1f, 0.9f, 0.2f, 0.8f}});
  o.readings.push_back({"jsd_T10", 0.05f, {0.0f, 0.1f, 0.0f, 0.2f}});

  const DefenseOutcome s = o.slice_rows(1, 3);
  EXPECT_EQ(s.rejected, (std::vector<bool>{true, false}));
  EXPECT_EQ(s.predicted, (std::vector<int>{1, 2}));
  ASSERT_EQ(s.readings.size(), 2u);
  EXPECT_EQ(s.readings[0].name, "recon_l1");
  EXPECT_FLOAT_EQ(s.readings[0].threshold, 0.5f);
  EXPECT_EQ(s.readings[0].scores, (std::vector<float>{0.9f, 0.2f}));
  EXPECT_EQ(s.readings[1].name, "jsd_T10");
  EXPECT_FLOAT_EQ(s.readings[1].threshold, 0.05f);
  EXPECT_EQ(s.readings[1].scores, (std::vector<float>{0.1f, 0.0f}));

  // Full-range slice reproduces the outcome; an empty range is legal.
  const DefenseOutcome all = o.slice_rows(0, 4);
  EXPECT_EQ(all.rejected, o.rejected);
  EXPECT_EQ(all.predicted, o.predicted);
  EXPECT_EQ(all.readings[1].scores, o.readings[1].scores);
  const DefenseOutcome empty = o.slice_rows(2, 2);
  EXPECT_TRUE(empty.predicted.empty());
  ASSERT_EQ(empty.readings.size(), 2u);
  EXPECT_TRUE(empty.readings[0].scores.empty());
}

TEST(DefenseOutcome, SliceRowsRejectsBadRanges) {
  DefenseOutcome o;
  o.rejected = {false, false};
  o.predicted = {0, 1};
  EXPECT_THROW(o.slice_rows(0, 3), std::out_of_range);
  EXPECT_THROW(o.slice_rows(2, 1), std::out_of_range);
}

TEST(Pipeline, ReadingsEmptyWhenSchemeRunsNoDetectors) {
  MagNetPipeline pipe(threshold_classifier());
  auto det = std::make_shared<MeanDetector>();
  det->set_threshold(0.0f);  // would fire on everything
  pipe.add_detector(det);
  const Tensor x = batch_of_values({0.5f});
  EXPECT_TRUE(pipe.classify(x, DefenseScheme::None).readings.empty());
  EXPECT_TRUE(pipe.classify(x, DefenseScheme::ReformerOnly).readings.empty());
  EXPECT_FALSE(
      pipe.classify(x, DefenseScheme::DetectorOnly).readings.empty());
}

TEST(Pipeline, ClassifyIsCallableOnConstPipeline) {
  MagNetPipeline pipe(threshold_classifier());
  const MagNetPipeline& cref = pipe;
  const auto out =
      cref.classify(batch_of_values({0.2f}), DefenseScheme::None);
  EXPECT_EQ(out.predicted.size(), 1u);
}

// --- auto-encoder builders ---------------------------------------------------

TEST(Autoencoder, ArchitecturesPreserveImageShape) {
  Rng rng(3);
  for (const AeArch arch :
       {AeArch::MnistDeep, AeArch::MnistShallow}) {
    AutoencoderConfig cfg;
    cfg.arch = arch;
    cfg.image_channels = 1;
    cfg.filters = 3;
    nn::Sequential ae = build_autoencoder(cfg, rng);
    Tensor x({2, 1, 28, 28}, 0.5f);
    EXPECT_EQ(ae.forward(x, nn::Mode::Eval).shape(), x.shape());
  }
  AutoencoderConfig cfg;
  cfg.arch = AeArch::Cifar;
  cfg.image_channels = 3;
  nn::Sequential ae = build_autoencoder(cfg, rng);
  Tensor x({2, 3, 32, 32}, 0.5f);
  EXPECT_EQ(ae.forward(x, nn::Mode::Eval).shape(), x.shape());
}

TEST(Autoencoder, OutputsAreInUnitInterval) {
  Rng rng(4);
  AutoencoderConfig cfg;
  nn::Sequential ae = build_autoencoder(cfg, rng);
  Tensor x({1, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);
  const Tensor y = ae.forward(x, nn::Mode::Eval);
  EXPECT_GE(min_value(y), 0.0f);
  EXPECT_LE(max_value(y), 1.0f);
}

TEST(Autoencoder, DeepArchHasBottleneck) {
  // The deep architecture must contain the pool/upsample pair.
  Rng rng(5);
  AutoencoderConfig cfg;
  cfg.arch = AeArch::MnistDeep;
  nn::Sequential deep = build_autoencoder(cfg, rng);
  cfg.arch = AeArch::MnistShallow;
  nn::Sequential shallow = build_autoencoder(cfg, rng);
  EXPECT_GT(deep.size(), shallow.size());
}

TEST(MeanReconstructionError, ZeroForIdentity) {
  auto ae = identity_ae();
  Tensor x({4, 1, 1, 1}, 0.7f);
  EXPECT_NEAR(mean_reconstruction_error(*ae, x), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace adv::magnet
