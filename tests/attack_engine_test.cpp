// Active-set attack engine tests: row compaction must be bitwise
// invisible on every attack, early abort must never un-succeed a row, and
// the Workspace arena must hand out correctly-sized (and, when requested,
// zeroed) buffers under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "attacks/attack.hpp"
#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/ead.hpp"
#include "attacks/engine.hpp"
#include "attacks/fgsm.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"
#include "tensor/workspace.hpp"

namespace adv::attacks {
namespace {

/// Small conv classifier over 8x8 single-channel images, 4 classes —
/// exercises Conv2d, pooling, both cached-input and cached-output
/// activations, and Linear in every engine pass.
nn::Sequential conv_classifier(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Conv2d>(nn::Conv2d::same(1, 4), rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::MaxPool2d>(2);
  m.emplace<nn::Flatten>();
  m.emplace<nn::Linear>(4 * 4 * 4, 8, rng);
  m.emplace<nn::Tanh>();
  m.emplace<nn::Linear>(8, 4, rng);
  // Scale the head so logits have an attackable range.
  scale_inplace(*m.parameters()[4], 4.0f);
  return m;
}

std::pair<Tensor, std::vector<int>> labeled_batch(nn::Sequential& m,
                                                  std::uint64_t seed,
                                                  std::size_t n) {
  Rng rng(seed);
  Tensor x({n, 1, 8, 8});
  fill_uniform(x, rng, 0.1f, 0.9f);
  const Tensor logits = m.forward(x, nn::Mode::Infer);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(argmax_row(logits, i));
  }
  return {x, labels};
}

void expect_bitwise_equal(const AttackResult& a, const AttackResult& b) {
  ASSERT_EQ(a.adversarial.numel(), b.adversarial.numel());
  EXPECT_EQ(0, std::memcmp(a.adversarial.data(), b.adversarial.data(),
                           a.adversarial.numel() * sizeof(float)));
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.l1, b.l1);
  EXPECT_EQ(a.l2, b.l2);
  EXPECT_EQ(a.linf, b.linf);
}

// --- ActiveSet / PlateauDetector units ------------------------------------

TEST(ActiveSet, RetireKeepsIndicesSortedAndFlagsConsistent) {
  ActiveSet rows(5);
  EXPECT_TRUE(rows.all_active());
  rows.retire(3);
  rows.retire(0);
  rows.retire(3);  // repeat is a no-op
  EXPECT_EQ(rows.active_count(), 3u);
  EXPECT_EQ(rows.indices(), (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_FALSE(rows.active(0));
  EXPECT_TRUE(rows.active(1));
  rows.retire(1);
  rows.retire(2);
  rows.retire(4);
  EXPECT_TRUE(rows.none_active());
  rows.reset();
  EXPECT_TRUE(rows.all_active());
}

TEST(PlateauDetector, RetiresAfterWindowStaleObservations) {
  PlateauDetector det(1, /*window=*/3, /*rel_tol=*/1e-3f);
  EXPECT_FALSE(det.observe(0, 10.0f));  // first value always improves
  EXPECT_FALSE(det.observe(0, 5.0f));   // improvement resets
  EXPECT_FALSE(det.observe(0, 5.0f));   // stale 1
  EXPECT_FALSE(det.observe(0, 4.9999f));  // within rel_tol: stale 2
  EXPECT_TRUE(det.observe(0, 5.0f));    // stale 3 -> plateau
  det.reset();
  EXPECT_FALSE(det.observe(0, 5.0f));
}

TEST(PlateauDetector, WindowZeroNeverRetires) {
  PlateauDetector det(1, 0, 1e-3f);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(det.observe(0, 1.0f));
}

TEST(GatherScatter, RoundTripsRowsInOrder) {
  Tensor batch = Tensor::from_data(Shape({4, 2}),
                                   {0, 1, 10, 11, 20, 21, 30, 31});
  const std::vector<std::size_t> idx{1, 3};
  const Tensor sub = gather_rows(batch, idx);
  ASSERT_EQ(sub.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(sub[0], 10.0f);
  EXPECT_FLOAT_EQ(sub[3], 31.0f);
  Tensor modified = sub;
  modified[0] = -1.0f;
  modified[3] = -2.0f;
  scatter_rows(modified, idx, batch);
  EXPECT_FLOAT_EQ(batch[2], -1.0f);   // row 1 updated
  EXPECT_FLOAT_EQ(batch[7], -2.0f);   // row 3 updated
  EXPECT_FLOAT_EQ(batch[0], 0.0f);    // row 0 untouched
}

// --- compaction is bitwise invisible, attack by attack --------------------

TEST(Compaction, EadBitwiseIdentical) {
  EadConfig cfg;
  cfg.beta = 0.01f;
  cfg.kappa = 1.0f;
  cfg.iterations = 60;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 0.5f;
  cfg.use_fista = true;
  // Early abort on in BOTH arms so rows actually retire and the compacted
  // arm runs genuinely smaller sub-batches.
  cfg.abort_early_window = 4;
  cfg.abort_early_rel_tol = 1e-3f;

  nn::Sequential m1 = conv_classifier(7);
  nn::Sequential m2 = conv_classifier(7);
  auto [x, labels] = labeled_batch(m1, 8, 6);

  cfg.compact = true;
  const AttackResult fast = ead_attack(m1, x, labels, cfg);
  cfg.compact = false;
  const AttackResult dense = ead_attack(m2, x, labels, cfg);
  expect_bitwise_equal(fast, dense);
}

TEST(Compaction, CwL2BitwiseIdentical) {
  CwL2Config cfg;
  cfg.kappa = 0.5f;
  cfg.iterations = 50;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 0.5f;
  cfg.abort_early_window = 4;
  cfg.abort_early_rel_tol = 1e-3f;

  nn::Sequential m1 = conv_classifier(17);
  nn::Sequential m2 = conv_classifier(17);
  auto [x, labels] = labeled_batch(m1, 18, 6);

  cfg.compact = true;
  const AttackResult fast = cw_l2_attack(m1, x, labels, cfg);
  cfg.compact = false;
  const AttackResult dense = cw_l2_attack(m2, x, labels, cfg);
  expect_bitwise_equal(fast, dense);
}

TEST(Compaction, IfgsmBitwiseIdentical) {
  FgsmConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.iterations = 12;

  nn::Sequential m1 = conv_classifier(27);
  nn::Sequential m2 = conv_classifier(27);
  auto [x, labels] = labeled_batch(m1, 28, 8);

  cfg.compact = true;
  const AttackResult fast = fgsm_attack(m1, x, labels, cfg);
  cfg.compact = false;
  const AttackResult dense = fgsm_attack(m2, x, labels, cfg);
  expect_bitwise_equal(fast, dense);
}

TEST(Compaction, DeepFoolBitwiseIdentical) {
  DeepFoolConfig cfg;
  cfg.max_iterations = 25;

  nn::Sequential m1 = conv_classifier(37);
  nn::Sequential m2 = conv_classifier(37);
  auto [x, labels] = labeled_batch(m1, 38, 8);

  cfg.compact = true;
  const AttackResult fast = deepfool_attack(m1, x, labels, cfg);
  cfg.compact = false;
  const AttackResult dense = deepfool_attack(m2, x, labels, cfg);
  expect_bitwise_equal(fast, dense);
}

// --- early abort ----------------------------------------------------------

TEST(EarlyAbort, NeverFlipsASuccessToFailure) {
  EadConfig cfg;
  cfg.beta = 0.01f;
  cfg.kappa = 0.5f;
  cfg.iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 0.5f;

  nn::Sequential m1 = conv_classifier(47);
  nn::Sequential m2 = conv_classifier(47);
  auto [x, labels] = labeled_batch(m1, 48, 6);

  cfg.abort_early_window = 0;
  const AttackResult full = ead_attack(m1, x, labels, cfg);
  cfg.abort_early_window = 3;
  cfg.abort_early_rel_tol = 1e-3f;
  const AttackResult aborted = ead_attack(m2, x, labels, cfg);

  // The aborted run visits a prefix of the full run's iterates per row, so
  // any success it reports was also reported by the full run.
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (aborted.success[i]) {
      EXPECT_TRUE(full.success[i]) << "row " << i;
    }
  }
}

TEST(EarlyAbort, AbortKnobsChangeTheCacheTag) {
  // Abort changes results, so it must be part of the cache identity;
  // compaction must NOT be (bitwise-neutral, cached artifacts stay valid).
  EadConfig a;
  EadConfig b = a;
  b.abort_early_window = 5;
  EadConfig c = a;
  c.compact = !c.compact;
  // Tags come from the adapter layer.
  // (Constructed inline to keep this test free of the registry.)
  const std::string ta = EadAttack(a).tag();
  const std::string tb = EadAttack(b).tag();
  const std::string tc = EadAttack(c).tag();
  EXPECT_NE(ta, tb);
  EXPECT_EQ(ta, tc);
}

// --- ead_attack vs ead_attack_multi (single-rule extraction) --------------

TEST(EadMulti, SingleRuleMatchesMultiRuleZero) {
  EadConfig cfg;
  cfg.beta = 0.02f;
  cfg.kappa = 0.5f;
  cfg.iterations = 40;
  cfg.binary_search_steps = 2;
  cfg.initial_c = 0.5f;
  cfg.rule = DecisionRule::L1;

  nn::Sequential m1 = conv_classifier(57);
  nn::Sequential m2 = conv_classifier(57);
  auto [x, labels] = labeled_batch(m1, 58, 4);

  const AttackResult single = ead_attack(m1, x, labels, cfg);
  const DecisionRule rules[2] = {DecisionRule::L1, DecisionRule::EN};
  const std::vector<AttackResult> multi =
      ead_attack_multi(m2, x, labels, cfg, rules);
  ASSERT_EQ(multi.size(), 2u);
  expect_bitwise_equal(single, multi[0]);
}

// --- workspace ------------------------------------------------------------

TEST(WorkspaceArena, RecyclesBuffersAndTracksStats) {
  Workspace ws;
  Tensor a = ws.acquire(Shape({2, 3}));
  EXPECT_EQ(a.shape(), Shape({2, 3}));
  a.fill(7.0f);
  ws.release(std::move(a));
  EXPECT_EQ(ws.pooled_buffers(), 1u);
  EXPECT_EQ(ws.pooled_bytes(), 6u * sizeof(float));

  // Pooling is keyed on the full dims vector: a [3, 2] request must NOT
  // be served by the parked [2, 3] buffer even though numel matches.
  Tensor b = ws.acquire(Shape({3, 2}));
  EXPECT_EQ(b.shape(), Shape({3, 2}));
  EXPECT_EQ(ws.reuses(), 0u);
  EXPECT_EQ(ws.misses(), 2u);
  ws.release(std::move(b));
  EXPECT_EQ(ws.pooled_buffers(), 2u);

  // A same-shape request is a reuse and keeps the old bytes when not
  // zeroed.
  Tensor c = ws.acquire(Shape({2, 3}));
  EXPECT_EQ(ws.reuses(), 1u);
  EXPECT_FLOAT_EQ(c[0], 7.0f);
  c.fill(9.0f);
  ws.release(std::move(c));

  // zeroed=true must scrub recycled contents.
  Tensor z = ws.acquire(Shape({2, 3}), /*zeroed=*/true);
  EXPECT_EQ(ws.reuses(), 2u);
  for (std::size_t i = 0; i < z.numel(); ++i) {
    ASSERT_FLOAT_EQ(z[i], 0.0f) << i;
  }
}

TEST(WorkspaceArena, TrimFreesLargestShapesFirstAndResetsHighWater) {
  Workspace ws;
  // Park one big and two small buffers: 1000, 10, 10 floats.
  ws.release(ws.acquire(Shape({1000})));
  ws.release(ws.acquire(Shape({10})));
  ws.release(ws.acquire(Shape({2, 5})));
  const std::uint64_t full = (1000 + 10 + 10) * sizeof(float);
  EXPECT_EQ(ws.pooled_bytes(), full);
  EXPECT_EQ(ws.high_water_bytes(), full);

  // Trimming to half the high-water mark must evict the big buffer (the
  // largest shape goes first) and keep both small ones.
  ws.trim(0.5);
  EXPECT_EQ(ws.pooled_bytes(), 20u * sizeof(float));
  EXPECT_EQ(ws.pooled_buffers(), 2u);
  // ... and the mark resets to the trimmed level.
  EXPECT_EQ(ws.high_water_bytes(), 20u * sizeof(float));

  // trim(0) empties the pool; subsequent acquires still work (plain
  // allocation miss).
  ws.trim(0.0);
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  EXPECT_EQ(ws.pooled_bytes(), 0u);
  Tensor t = ws.acquire(Shape({10}), /*zeroed=*/true);
  for (std::size_t i = 0; i < t.numel(); ++i) ASSERT_FLOAT_EQ(t[i], 0.0f);
}

TEST(WorkspaceArena, PerShapePoolIsCapped) {
  Workspace ws;
  std::vector<Tensor> live;
  for (int i = 0; i < 40; ++i) live.push_back(ws.acquire(Shape({4})));
  for (auto& t : live) ws.release(std::move(t));
  // Only kMaxPooledPerShape (16) buffers of one shape may park; the rest
  // are dropped to the allocator.
  EXPECT_EQ(ws.pooled_buffers(), 16u);
}

TEST(WorkspaceArena, DisabledMeansFreshZeroedAllocations) {
  Workspace ws;
  ws.set_enabled(false);
  Tensor a = ws.acquire(Shape({4}));
  a.fill(3.0f);
  ws.release(std::move(a));  // dropped, not pooled
  EXPECT_EQ(ws.pooled_buffers(), 0u);
  Tensor b = ws.acquire(Shape({4}));
  EXPECT_EQ(ws.reuses(), 0u);
  for (std::size_t i = 0; i < b.numel(); ++i) {
    ASSERT_FLOAT_EQ(b[i], 0.0f);
  }
}

TEST(WorkspaceArena, ConcurrentAcquireReleaseIsSafeAndCorrect) {
  Workspace ws;
  auto& pool = ThreadPool::global();
  std::atomic<int> failures{0};
  // Hammer the arena from every pool worker: each task acquires a zeroed
  // buffer (must be all-zero), stamps it, and releases it back.
  pool.parallel_for(0, 256, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t t = b0; t < b1; ++t) {
      const Shape shape({(t % 7) + 1, 5});
      Tensor buf = ws.acquire(shape, /*zeroed=*/true);
      if (buf.shape() != shape) failures.fetch_add(1);
      for (std::size_t i = 0; i < buf.numel(); ++i) {
        if (buf[i] != 0.0f) {
          failures.fetch_add(1);
          break;
        }
      }
      buf.fill(static_cast<float>(t));
      ws.release(std::move(buf));
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(ws.reuses() + ws.misses(), 0u);
}

TEST(WorkspaceArena, ModelOutputsIdenticalWithWorkspaceOnAndOff) {
  nn::Sequential m1 = conv_classifier(67);
  nn::Sequential m2 = conv_classifier(67);
  m2.set_workspace_enabled(false);
  Rng rng(68);
  Tensor x({5, 1, 8, 8});
  fill_uniform(x, rng, 0.0f, 1.0f);

  for (int pass = 0; pass < 3; ++pass) {
    const Tensor y1 = m1.forward(x, nn::Mode::Eval);
    const Tensor y2 = m2.forward(x, nn::Mode::Eval);
    ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(),
                             y1.numel() * sizeof(float)));
    Tensor seed(y1.shape());
    seed.fill(0.25f);
    const Tensor g1 = m1.backward(seed);
    const Tensor g2 = m2.backward(seed);
    ASSERT_EQ(0, std::memcmp(g1.data(), g2.data(),
                             g1.numel() * sizeof(float)));
  }
  EXPECT_GT(m1.workspace().reuses(), 0u);
  EXPECT_EQ(m2.workspace().reuses(), 0u);
}

TEST(WorkspaceArena, DirectConvForwardDropsHighWaterVsIm2col) {
  // The direct-convolution forward needs only the padded-input scratch —
  // it never materializes the im2col column matrix — so a conv-heavy
  // forward pass must leave a strictly lower workspace high-water mark
  // than the same model forced onto the im2col fallback.
  auto build = [](bool force_im2col) {
    Rng rng(91);
    nn::Sequential m;
    nn::Conv2d& c1 = m.emplace<nn::Conv2d>(nn::Conv2d::same(1, 8), rng);
    m.emplace<nn::ReLU>();
    nn::Conv2d& c2 = m.emplace<nn::Conv2d>(nn::Conv2d::same(8, 8), rng);
    m.emplace<nn::Sigmoid>();
    c1.set_force_im2col(force_im2col);
    c2.set_force_im2col(force_im2col);
    return m;
  };
  nn::Sequential direct = build(false);
  nn::Sequential im2col = build(true);
  Rng rng(92);
  Tensor x({4, 1, 8, 8});
  fill_uniform(x, rng, 0.0f, 1.0f);
  const Tensor yd = direct.forward(x, nn::Mode::Infer);
  const Tensor yi = im2col.forward(x, nn::Mode::Infer);
  ASSERT_EQ(0,
            std::memcmp(yd.data(), yi.data(), yd.numel() * sizeof(float)));
  EXPECT_GT(im2col.workspace().high_water_bytes(), 0u);
  EXPECT_LT(direct.workspace().high_water_bytes(),
            im2col.workspace().high_water_bytes());
}

TEST(WorkspaceArena, InferMatchesEvalForwardBitwise) {
  nn::Sequential m = conv_classifier(77);
  Rng rng(78);
  Tensor x({4, 1, 8, 8});
  fill_uniform(x, rng, 0.0f, 1.0f);
  const Tensor eval_out = m.forward(x, nn::Mode::Eval);
  const Tensor infer_out = m.forward(x, nn::Mode::Infer);
  ASSERT_EQ(0, std::memcmp(eval_out.data(), infer_out.data(),
                           eval_out.numel() * sizeof(float)));
}

}  // namespace
}  // namespace adv::attacks
