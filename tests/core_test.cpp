// Core experiment-framework tests: config parsing, defense evaluation
// accounting, curve output, and cache keys.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/config.hpp"
#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"
#include "nn/linear.hpp"
#include "nn/structural.hpp"

namespace adv::core {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (old_.has_value()) {
      ::setenv(name_, old_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

TEST(ScaleConfig, FastIsDefault) {
  EnvGuard guard("REPRO_SCALE", nullptr);
  const ScaleConfig cfg = scale_from_env();
  EXPECT_FALSE(cfg.full);
  EXPECT_EQ(cfg.tag(), "fast");
  EXPECT_GT(cfg.attack_count, 0u);
  EXPECT_FALSE(cfg.mnist_kappas.empty());
  EXPECT_FALSE(cfg.cifar_kappas.empty());
}

TEST(ScaleConfig, FullRaisesCounts) {
  EnvGuard guard("REPRO_SCALE", "full");
  const ScaleConfig full = scale_from_env();
  EnvGuard guard2("REPRO_SCALE", "fast");
  const ScaleConfig fast = scale_from_env();
  EXPECT_TRUE(full.full);
  EXPECT_GT(full.attack_iterations, fast.attack_iterations);
  EXPECT_GT(full.attack_count, fast.attack_count);
  EXPECT_GT(full.mnist_kappas.size(), fast.mnist_kappas.size());
  EXPECT_EQ(full.tag(), "full");
}

TEST(ScaleConfig, RejectsUnknownScale) {
  EnvGuard guard("REPRO_SCALE", "enormous");
  EXPECT_THROW(scale_from_env(), std::runtime_error);
}

TEST(ScaleConfig, CacheDirOverride) {
  EnvGuard guard("REPRO_SCALE", nullptr);
  EnvGuard guard2("REPRO_CACHE_DIR", "/tmp/adv_custom_cache");
  const ScaleConfig cfg = scale_from_env();
  EXPECT_EQ(cfg.cache_dir, std::filesystem::path("/tmp/adv_custom_cache"));
}

TEST(ScaleConfig, KappaAccessorSelectsDataset) {
  EnvGuard guard("REPRO_SCALE", nullptr);
  const ScaleConfig cfg = scale_from_env();
  EXPECT_EQ(&cfg.kappas(DatasetId::Mnist), &cfg.mnist_kappas);
  EXPECT_EQ(&cfg.kappas(DatasetId::Cifar), &cfg.cifar_kappas);
}

TEST(DatasetId, Names) {
  EXPECT_STREQ(to_string(DatasetId::Mnist), "mnist");
  EXPECT_STREQ(to_string(DatasetId::Cifar), "cifar");
}

TEST(MagnetVariant, Names) {
  EXPECT_STREQ(to_string(MagnetVariant::Default), "D");
  EXPECT_STREQ(to_string(MagnetVariant::Jsd), "D+JSD");
  EXPECT_STREQ(to_string(MagnetVariant::Wide), "D+256");
  EXPECT_STREQ(to_string(MagnetVariant::WideJsd), "D+256+JSD");
}

// --- evaluate_defense accounting -----------------------------------------

/// Classifier mapping pixel > 0.5 to class 1.
std::shared_ptr<nn::Sequential> step_classifier() {
  Rng rng(2);
  auto clf = std::make_shared<nn::Sequential>();
  clf->emplace<nn::Flatten>();
  auto& lin = clf->emplace<nn::Linear>(1, 2, rng);
  *lin.parameters()[0] = Tensor::from_data(Shape({1, 2}), {-10.0f, 10.0f});
  *lin.parameters()[1] = Tensor::from_data(Shape({2}), {5.0f, -5.0f});
  return clf;
}

class FixedDetector final : public magnet::Detector {
 public:
  explicit FixedDetector(std::vector<float> scores)
      : scores_(std::move(scores)) {}
  std::vector<float> scores(const Tensor&) const override { return scores_; }
  std::string name() const override { return "fixed"; }

 private:
  std::vector<float> scores_;
};

TEST(EvaluateDefense, CountsDetectedAndCorrectlyClassified) {
  auto pipe = std::make_shared<magnet::MagNetPipeline>(step_classifier());
  // Scores: row 0 fires, rows 1-3 pass.
  auto det = std::make_shared<FixedDetector>(
      std::vector<float>{1.0f, 0.0f, 0.0f, 0.0f});
  det->set_threshold(0.5f);
  pipe->add_detector(det);

  // Pixels: 0.9 (class 1), 0.9 (class 1), 0.1 (class 0), 0.9 (class 1).
  const Tensor crafted = Tensor::from_data(Shape({4, 1, 1, 1}),
                                           {0.9f, 0.9f, 0.1f, 0.9f});
  // True labels: 0, 0, 0, 1.
  // Row 0: detected -> defended. Row 1: predicted 1 != 0 -> attack wins.
  // Row 2: predicted 0 == 0 -> defended. Row 3: predicted 1 == 1 -> defended.
  const DefenseEval e = evaluate_defense(*pipe, crafted, {0, 0, 0, 1},
                                         magnet::DefenseScheme::Full);
  EXPECT_FLOAT_EQ(e.accuracy, 0.75f);
  EXPECT_FLOAT_EQ(e.detection_rate, 0.25f);
  EXPECT_FLOAT_EQ(e.asr, 0.25f);
}

TEST(EvaluateDefense, SchemeNoneIgnoresDetectors) {
  auto pipe = std::make_shared<magnet::MagNetPipeline>(step_classifier());
  auto det = std::make_shared<FixedDetector>(std::vector<float>{100.0f});
  det->set_threshold(0.5f);
  pipe->add_detector(det);
  const Tensor crafted = Tensor::from_data(Shape({1, 1, 1, 1}), {0.9f});
  const DefenseEval e =
      evaluate_defense(*pipe, crafted, {0}, magnet::DefenseScheme::None);
  EXPECT_FLOAT_EQ(e.detection_rate, 0.0f);
  EXPECT_FLOAT_EQ(e.accuracy, 0.0f);  // misclassified, not detected
}

TEST(EvaluateDefense, MismatchedLabelsThrow) {
  auto pipe = std::make_shared<magnet::MagNetPipeline>(step_classifier());
  const Tensor crafted({2, 1, 1, 1});
  EXPECT_THROW(
      evaluate_defense(*pipe, crafted, {0}, magnet::DefenseScheme::None),
      std::invalid_argument);
}

// --- curves ----------------------------------------------------------------

TEST(Curves, CsvRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "adv_core_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "curves.csv";
  std::vector<SweepCurve> curves(2);
  curves[0] = {"cw", {0.0f, 5.0f}, {90.0f, 95.0f}};
  curves[1] = {"ead", {0.0f, 5.0f}, {50.0f, 20.0f}};
  write_curves_csv(path, curves);
  std::ifstream is(path);
  std::string header, row0, row1;
  std::getline(is, header);
  std::getline(is, row0);
  std::getline(is, row1);
  EXPECT_EQ(header, "kappa,cw,ead");
  EXPECT_EQ(row0, "0,90,50");
  EXPECT_EQ(row1, "5,95,20");
  std::filesystem::remove_all(dir);
}

TEST(Curves, RaggedCurvesThrowOnPrint) {
  std::vector<SweepCurve> curves(2);
  curves[0] = {"a", {0.0f, 5.0f}, {1.0f, 2.0f}};
  curves[1] = {"b", {0.0f}, {1.0f}};
  EXPECT_THROW(print_curves("t", curves), std::invalid_argument);
}

// --- magnet factory (cheap error paths only; full builds are in
// integration_test) ----------------------------------------------------------

TEST(MagnetFactory, CifarJsdVariantIsRejected) {
  ScaleConfig cfg;
  cfg.train_count = 30;
  cfg.val_count = 10;
  cfg.test_count = 10;
  cfg.classifier_epochs = 1;
  cfg.ae_epochs = 1;
  cfg.cache_dir = std::filesystem::temp_directory_path() / "adv_mf_test";
  ModelZoo zoo(cfg);
  EXPECT_THROW(build_magnet(zoo, DatasetId::Cifar, MagnetVariant::Jsd),
               std::invalid_argument);
  std::filesystem::remove_all(cfg.cache_dir);
}

}  // namespace
}  // namespace adv::core
