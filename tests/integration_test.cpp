// End-to-end integration tests at a micro scale: the full zoo -> train ->
// attack -> defend flow, plus cache round trips and determinism.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"
#include "nn/trainer.hpp"

namespace adv::core {
namespace {

// Per-test root: ctest runs each test as its own process, and a shared
// root would let one test's TearDown remove_all race another's writes.
std::filesystem::path integration_root() {
  return std::filesystem::temp_directory_path() /
         (std::string("adv_integration_") +
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

ScaleConfig micro_config(const std::string& subdir) {
  ScaleConfig cfg;
  cfg.full = false;
  cfg.train_count = 1000;
  cfg.val_count = 100;
  cfg.test_count = 150;
  cfg.classifier_epochs = 8;
  cfg.ae_epochs = 20;
  cfg.attack_count = 12;
  cfg.attack_iterations = 40;
  cfg.binary_search_steps = 2;
  cfg.initial_c = 1.0f;
  cfg.mnist_kappas = {0.0f};
  cfg.cifar_kappas = {0.0f};
  cfg.cache_dir = integration_root() / subdir;
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove_all(integration_root()); }
};

TEST_F(IntegrationTest, MnistPipelineEndToEnd) {
  ModelZoo zoo(micro_config("mnist"));
  const auto mnist = DatasetId::Mnist;

  // Splits are disjoint and sized as configured.
  const auto& ds = zoo.dataset(mnist);
  EXPECT_EQ(ds.train.size(), 1000u);
  EXPECT_EQ(ds.val.size(), 100u);
  EXPECT_EQ(ds.test.size(), 150u);

  // The classifier learns the synthetic digits.
  const float acc = zoo.clean_test_accuracy(mnist);
  EXPECT_GT(acc, 0.85f);

  // MagNet keeps most of the clean accuracy.
  auto pipeline = build_magnet(zoo, mnist, MagnetVariant::Default);
  const float def_acc =
      pipeline->clean_accuracy(ds.test.images, ds.test.labels);
  EXPECT_GT(def_acc, acc - 0.15f);

  // Attack set contains only correctly classified images.
  const auto& aset = zoo.attack_set(mnist);
  const auto pred = nn::predict_labels(*zoo.classifier(mnist), aset.images);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    EXPECT_EQ(pred[i], aset.labels[i]);
  }

  // EAD at kappa 0 succeeds on most of the attack set (undefended).
  const attacks::AttackResult ead =
      zoo.ead(mnist, 0.01f, 0.0f, attacks::DecisionRule::EN);
  EXPECT_GT(ead.success_rate(), 0.6f);

  // Defense evaluation returns coherent numbers.
  const DefenseEval e = evaluate_defense(*pipeline, ead.adversarial,
                                         aset.labels,
                                         magnet::DefenseScheme::Full);
  EXPECT_GE(e.accuracy, 0.0f);
  EXPECT_LE(e.accuracy, 1.0f);
  EXPECT_NEAR(e.asr, 1.0f - e.accuracy, 1e-6f);
  EXPECT_LE(e.detection_rate, 1.0f);
}

TEST_F(IntegrationTest, AttackCacheRoundTripsExactly) {
  const ScaleConfig cfg = micro_config("cache");
  attacks::AttackResult first;
  {
    ModelZoo zoo(cfg);
    first = zoo.cw(DatasetId::Mnist, 0.0f);
  }
  // A fresh zoo must load identical results from disk (no recompute drift).
  ModelZoo zoo2(cfg);
  const attacks::AttackResult second = zoo2.cw(DatasetId::Mnist, 0.0f);
  ASSERT_EQ(first.success, second.success);
  ASSERT_EQ(first.adversarial.shape(), second.adversarial.shape());
  for (std::size_t i = 0; i < first.adversarial.numel(); ++i) {
    EXPECT_FLOAT_EQ(first.adversarial[i], second.adversarial[i]);
  }
  for (std::size_t i = 0; i < first.l1.size(); ++i) {
    EXPECT_FLOAT_EQ(first.l1[i], second.l1[i]);
    EXPECT_FLOAT_EQ(first.l2[i], second.l2[i]);
  }
}

TEST_F(IntegrationTest, EadCachesBothDecisionRulesFromOneRun) {
  const ScaleConfig cfg = micro_config("rules");
  ModelZoo zoo(cfg);
  zoo.ead(DatasetId::Mnist, 0.01f, 0.0f, attacks::DecisionRule::EN);
  // The sibling rule must already be on disk.
  bool found_l1 = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(cfg.cache_dir)) {
    if (entry.path().filename().string().find("_L1") != std::string::npos) {
      found_l1 = true;
    }
  }
  EXPECT_TRUE(found_l1);
}

TEST_F(IntegrationTest, ClassifierCacheAvoidsRetraining) {
  const ScaleConfig cfg = micro_config("clfcache");
  Tensor logits1, logits2;
  {
    ModelZoo zoo(cfg);
    auto clf = zoo.classifier(DatasetId::Mnist);
    logits1 = clf->forward(zoo.dataset(DatasetId::Mnist).test.images
                               .slice_rows(0, 4),
                           nn::Mode::Eval);
  }
  {
    ModelZoo zoo(cfg);  // loads weights from cache
    auto clf = zoo.classifier(DatasetId::Mnist);
    logits2 = clf->forward(zoo.dataset(DatasetId::Mnist).test.images
                               .slice_rows(0, 4),
                           nn::Mode::Eval);
  }
  for (std::size_t i = 0; i < logits1.numel(); ++i) {
    EXPECT_FLOAT_EQ(logits1[i], logits2[i]);
  }
}

TEST_F(IntegrationTest, MagnetVariantsDiffer) {
  ModelZoo zoo(micro_config("variants"));
  const auto mnist = DatasetId::Mnist;
  auto d = build_magnet(zoo, mnist, MagnetVariant::Default);
  auto dj = build_magnet(zoo, mnist, MagnetVariant::Jsd);
  EXPECT_EQ(d->detector_count(), 2u);
  EXPECT_EQ(dj->detector_count(), 4u);
}

TEST_F(IntegrationTest, DatasetsAreDeterministicAcrossZoos) {
  const ScaleConfig cfg = micro_config("det");
  ModelZoo a(cfg), b(cfg);
  const auto& da = a.dataset(DatasetId::Mnist);
  const auto& db = b.dataset(DatasetId::Mnist);
  EXPECT_EQ(da.train.labels, db.train.labels);
  for (std::size_t i = 0; i < da.train.images.numel(); i += 97) {
    EXPECT_FLOAT_EQ(da.train.images[i], db.train.images[i]);
  }
}

}  // namespace
}  // namespace adv::core
