// Training-loop tests: losses decrease, classifiers learn, inference
// helpers batch correctly, and the divergence guard survives injected
// NaN losses (skip-batch + LR backoff + last-good-weights restore).
#include <gtest/gtest.h>

#include <cmath>

#include "data/syn_digits.hpp"
#include "fault/failpoint.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/structural.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {
namespace {

/// Small linearly-separable 2-class problem in 4 dimensions.
void make_blobs(Tensor& x, std::vector<int>& y, std::size_t n,
                std::uint64_t seed) {
  Rng rng(seed);
  x = Tensor({n, 4});
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    y[i] = cls;
    const float center = cls == 0 ? -1.0f : 1.0f;
    for (std::size_t d = 0; d < 4; ++d) {
      x.at(i, d) = center + static_cast<float>(rng.normal(0.0, 0.3));
    }
  }
}

Sequential mlp(Rng& rng) {
  Sequential m;
  m.emplace<Linear>(4, 8, rng);
  m.emplace<ReLU>();
  m.emplace<Linear>(8, 2, rng);
  return m;
}

TEST(FitClassifier, LearnsSeparableBlobs) {
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 200, 11);
  Rng rng(12);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients(), 1e-2f);
  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 16;
  const TrainStats stats = fit_classifier(m, x, y, opt, tc);
  ASSERT_EQ(stats.epoch_losses.size(), 15u);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
  EXPECT_GT(classification_accuracy(m, x, y), 0.95f);
}

TEST(FitClassifier, RejectsMismatchedData) {
  Rng rng(13);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients());
  Tensor x({4, 4});
  std::vector<int> y = {0, 1};
  EXPECT_THROW(fit_classifier(m, x, y, opt, TrainConfig{}),
               std::invalid_argument);
}

TEST(FitClassifier, DeterministicGivenSeed) {
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 100, 14);
  auto train_once = [&] {
    Rng rng(15);
    Sequential m = mlp(rng);
    Adam opt(m.parameters(), m.gradients(), 1e-2f);
    TrainConfig tc;
    tc.epochs = 5;
    tc.shuffle_seed = 77;
    fit_classifier(m, x, y, opt, tc);
    return m.forward(x.slice_rows(0, 4), nn::Mode::Eval);
  };
  const Tensor a = train_once();
  const Tensor b = train_once();
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

bool all_parameters_finite(Sequential& m) {
  for (Tensor* p : m.parameters()) {
    for (float v : p->values()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

TEST(FitClassifier, CleanRunReportsNoDivergence) {
  fault::reset();
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 100, 31);
  Rng rng(32);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients(), 1e-2f);
  TrainConfig tc;
  tc.epochs = 3;
  const TrainStats stats = fit_classifier(m, x, y, opt, tc);
  EXPECT_EQ(stats.skipped_batches, 0u);
  EXPECT_EQ(stats.lr_backoffs, 0u);
  EXPECT_EQ(stats.snapshot_restores, 0u);
}

TEST(FitClassifier, InjectedNanLossSkipsBatchAndBacksOff) {
  fault::reset();
  fault::arm("trainer.loss:nan_once");
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 200, 33);
  Rng rng(34);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients(), 1e-2f);
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  const TrainStats stats = fit_classifier(m, x, y, opt, tc);
  fault::reset();
  // Exactly the one poisoned batch was dropped, with one backoff+restore.
  EXPECT_EQ(stats.skipped_batches, 1u);
  EXPECT_EQ(stats.lr_backoffs, 1u);
  EXPECT_EQ(stats.snapshot_restores, 1u);
  EXPECT_FLOAT_EQ(opt.lr(), 5e-3f);
  // The run still converges on finite weights despite the fault.
  EXPECT_TRUE(all_parameters_finite(m));
  EXPECT_TRUE(std::isfinite(stats.epoch_losses.back()));
  EXPECT_GT(classification_accuracy(m, x, y), 0.9f);
}

TEST(FitClassifier, PersistentNanLossNeverPoisonsWeights) {
  fault::reset();
  fault::arm("trainer.loss:nan");  // every batch poisoned
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 64, 35);
  Rng rng(36);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients(), 1e-2f);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  const TrainStats stats = fit_classifier(m, x, y, opt, tc);
  fault::reset();
  EXPECT_EQ(stats.skipped_batches, 8u);  // 4 batches x 2 epochs, all dropped
  EXPECT_EQ(stats.lr_backoffs, 8u);
  EXPECT_TRUE(all_parameters_finite(m));  // no step ever ran on bad data
}

TEST(FitAutoencoder, InjectedNanLossSkipsAndRecovers) {
  fault::reset();
  fault::arm("trainer.loss:nan_once");
  data::SynDigitsConfig dc;
  dc.count = 96;
  dc.height = 16;
  dc.width = 16;
  const data::Dataset ds = data::make_syn_digits(dc);
  Rng rng(37);
  Sequential ae;
  ae.emplace<Conv2d>(Conv2d::same(1, 4), rng);
  ae.emplace<Sigmoid>();
  ae.emplace<Conv2d>(Conv2d::same(4, 1), rng);
  ae.emplace<Sigmoid>();
  Adam opt(ae.parameters(), ae.gradients(), 3e-3f);
  MseLoss loss;
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  const TrainStats stats =
      fit_autoencoder(ae, ds.images, loss, /*noise_std=*/0.05f, opt, tc);
  fault::reset();
  EXPECT_EQ(stats.skipped_batches, 1u);
  EXPECT_EQ(stats.lr_backoffs, 1u);
  EXPECT_TRUE(all_parameters_finite(ae));
  EXPECT_TRUE(std::isfinite(stats.epoch_losses.back()));
}

TEST(FitAutoencoder, ReconstructionLossDecreases) {
  data::SynDigitsConfig dc;
  dc.count = 120;
  dc.height = 16;
  dc.width = 16;
  const data::Dataset ds = data::make_syn_digits(dc);
  Rng rng(16);
  Sequential ae;
  ae.emplace<Conv2d>(Conv2d::same(1, 4), rng);
  ae.emplace<Sigmoid>();
  ae.emplace<Conv2d>(Conv2d::same(4, 1), rng);
  ae.emplace<Sigmoid>();
  Adam opt(ae.parameters(), ae.gradients(), 3e-3f);
  MseLoss loss;
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  const TrainStats stats =
      fit_autoencoder(ae, ds.images, loss, /*noise_std=*/0.05f, opt, tc);
  EXPECT_LT(stats.epoch_losses.back(), 0.8f * stats.epoch_losses.front());
}

TEST(Predict, BatchesMatchSinglePass) {
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 50, 17);
  Rng rng(18);
  Sequential m = mlp(rng);
  const Tensor whole = m.forward(x, nn::Mode::Eval);
  const Tensor batched = predict(m, x, /*batch_size=*/7);
  ASSERT_EQ(whole.shape(), batched.shape());
  for (std::size_t i = 0; i < whole.numel(); ++i) {
    EXPECT_FLOAT_EQ(whole[i], batched[i]);
  }
}

TEST(PredictLabels, MatchesArgmax) {
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 20, 19);
  Rng rng(20);
  Sequential m = mlp(rng);
  const Tensor logits = m.forward(x, nn::Mode::Eval);
  const std::vector<int> labels = predict_labels(m, x, 6);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], static_cast<int>(argmax_row(logits, i)));
  }
}

TEST(ClassificationAccuracy, PerfectAndZero) {
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 40, 21);
  Rng rng(22);
  Sequential m = mlp(rng);
  Adam opt(m.parameters(), m.gradients(), 1e-2f);
  TrainConfig tc;
  tc.epochs = 20;
  fit_classifier(m, x, y, opt, tc);
  EXPECT_GT(classification_accuracy(m, x, y), 0.95f);
  std::vector<int> wrong(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) wrong[i] = 1 - y[i];
  EXPECT_LT(classification_accuracy(m, x, wrong), 0.05f);
}

}  // namespace
}  // namespace adv::nn
