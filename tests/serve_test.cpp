// adv::serve battery: protocol encode/decode, micro-batching bitwise
// identity vs the serial path, fault containment + soak, and socket-level
// protocol robustness. Models are 1-pixel hand-computable stand-ins (the
// same style as magnet_test.cpp) so every test runs in milliseconds; the
// real-model end-to-end path is serve_bench's CI gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "magnet/detector.hpp"
#include "magnet/pipeline.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/structural.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace adv::serve {
namespace {

using magnet::DefenseOutcome;
using magnet::DefenseScheme;
using magnet::MagNetPipeline;

// --- tiny hand-computable pipeline (cf. magnet_test.cpp) ----------------

std::shared_ptr<nn::Sequential> scaling_ae(float factor) {
  Rng rng(1);
  auto ae = std::make_shared<nn::Sequential>();
  ae->emplace<nn::Conv2d>(nn::Conv2dConfig{1, 1, 1, 1, 0}, rng);
  ae->parameters()[0]->fill(factor);
  ae->parameters()[1]->fill(0.0f);
  return ae;
}

std::shared_ptr<nn::Sequential> threshold_classifier(float w = 10.0f) {
  Rng rng(2);
  auto clf = std::make_shared<nn::Sequential>();
  clf->emplace<nn::Flatten>();
  auto& lin = clf->emplace<nn::Linear>(1, 2, rng);
  *lin.parameters()[0] = Tensor::from_data(Shape({1, 2}), {-w, w});
  *lin.parameters()[1] = Tensor::from_data(Shape({2}), {5.0f, -5.0f});
  return clf;
}

/// Full pipeline: one real ReconstructionDetector (AE halves the pixel,
/// so L1 score = 0.5|x|), a reformer on the same AE, and the threshold
/// classifier. All stages are row-independent and hand-computable.
std::shared_ptr<const MagNetPipeline> build_pipeline(
    bool workspace_enabled = true) {
  auto clf = threshold_classifier();
  auto ae = scaling_ae(0.5f);
  clf->set_workspace_enabled(workspace_enabled);
  ae->set_workspace_enabled(workspace_enabled);
  auto pipe = std::make_shared<MagNetPipeline>(clf);
  auto det = std::make_shared<magnet::ReconstructionDetector>(ae, 1);
  det->set_threshold(0.2f);  // fires when 0.5|x| > 0.2, i.e. x > 0.4
  pipe->add_detector(det);
  pipe->set_reformer(std::make_shared<magnet::Reformer>(ae));
  return pipe;
}

Tensor rows_tensor(std::size_t n, float base) {
  Tensor t({n, 1, 1, 1});
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = base + 0.01f * static_cast<float>(i);
  }
  return t;
}

bool outcomes_bitwise_equal(const DefenseOutcome& a, const DefenseOutcome& b) {
  if (a.rejected != b.rejected || a.predicted != b.predicted) return false;
  if (a.readings.size() != b.readings.size()) return false;
  for (std::size_t d = 0; d < a.readings.size(); ++d) {
    const auto& x = a.readings[d];
    const auto& y = b.readings[d];
    if (x.name != y.name) return false;
    if (std::memcmp(&x.threshold, &y.threshold, sizeof(float)) != 0) {
      return false;
    }
    if (x.scores.size() != y.scores.size()) return false;
    if (std::memcmp(x.scores.data(), y.scores.data(),
                    x.scores.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

std::filesystem::path test_socket_path() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::filesystem::temp_directory_path() /
         ("adv_srv_" + std::to_string(::getpid()) + "_" + info->name() +
          ".sock");
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::reset();
    if (!obs::enabled_pinned_by_env()) obs::set_enabled(true);
  }
  void TearDown() override { fault::reset(); }

  std::uint64_t counter_value(const std::string& key) {
    return obs::MetricsRegistry::global().counter(key).value();
  }
};

// --- protocol unit tests ------------------------------------------------

TEST_F(ServeTest, ClassifyRequestRoundTrips) {
  const Tensor batch = rows_tensor(3, 0.25f);
  const auto body =
      encode_classify_request(DefenseScheme::DetectorOnly, batch);
  const Request req = decode_request(body);
  EXPECT_EQ(req.type, MessageType::Classify);
  EXPECT_EQ(req.scheme, DefenseScheme::DetectorOnly);
  ASSERT_EQ(req.batch.shape(), batch.shape());
  EXPECT_EQ(std::memcmp(req.batch.data(), batch.data(),
                        batch.numel() * sizeof(float)),
            0);
}

TEST_F(ServeTest, QuantBitRoundTripsAndLegacyFramesDecodeFloat) {
  const Tensor batch = rows_tensor(2, 0.25f);
  // Marked frame: high bit set on the scheme byte, low bits intact.
  const auto marked = encode_classify_request(DefenseScheme::Full, batch,
                                              /*deadline_ms=*/0,
                                              /*quantized=*/true);
  const Request rq = decode_request(marked);
  EXPECT_TRUE(rq.quantized);
  EXPECT_EQ(rq.scheme, DefenseScheme::Full);
  // Unmarked frame — exactly what pre-quantization encoders emitted —
  // decodes as float execution (wire compatibility by construction).
  const Request rf =
      decode_request(encode_classify_request(DefenseScheme::Full, batch));
  EXPECT_FALSE(rf.quantized);
  EXPECT_EQ(rf.scheme, DefenseScheme::Full);
}

TEST_F(ServeTest, PingRequestRoundTrips) {
  const Request req = decode_request(encode_ping_request());
  EXPECT_EQ(req.type, MessageType::Ping);
}

TEST_F(ServeTest, ResponseRoundTripsReadingsBitwise) {
  DefenseOutcome out;
  out.rejected = {false, true};
  out.predicted = {1, 0};
  magnet::DetectorReading r;
  r.name = "recon_l1";
  r.threshold = 0.125f;
  r.scores = {0.1f, 0.75f};
  out.readings.push_back(r);
  const auto body = encode_ok_response(MessageType::Classify, out);
  const ClassifyResponse resp = decode_response(body);
  ASSERT_TRUE(resp.ok);
  EXPECT_TRUE(outcomes_bitwise_equal(resp.outcome, out));

  const ClassifyResponse err = decode_response(
      encode_error_response(MessageType::Classify, "kaboom"));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "kaboom");
}

TEST_F(ServeTest, DecodeRejectsMalformedBodies) {
  // Unknown message type.
  EXPECT_THROW(decode_request(std::vector<std::uint8_t>{9}), ProtocolError);
  // Trailing bytes after a ping.
  EXPECT_THROW(decode_request(std::vector<std::uint8_t>{2, 0}),
               ProtocolError);
  // Bad scheme.
  auto body = encode_classify_request(DefenseScheme::Full, rows_tensor(1, 0));
  body[1] = 77;
  EXPECT_THROW(decode_request(body), ProtocolError);
  // Payload shorter than dims promise.
  body = encode_classify_request(DefenseScheme::Full, rows_tensor(2, 0));
  body.pop_back();
  EXPECT_THROW(decode_request(body), ProtocolError);
  // Zero dimension.
  body = encode_classify_request(DefenseScheme::Full, rows_tensor(1, 0));
  std::uint32_t zero = 0;
  std::memcpy(body.data() + 4, &zero, sizeof(zero));
  EXPECT_THROW(decode_request(body), ProtocolError);
  // Empty body.
  EXPECT_THROW(decode_request(std::span<const std::uint8_t>{}),
               ProtocolError);
}

// --- micro-batching bitwise identity ------------------------------------

struct RequestSpec {
  std::size_t rows;
  float base;
  DefenseScheme scheme;
};

std::vector<RequestSpec> identity_workload() {
  std::vector<RequestSpec> specs;
  for (std::size_t i = 0; i < 24; ++i) {
    specs.push_back({1 + i % 3, 0.05f * static_cast<float>(i % 13),
                     DefenseScheme::Full});
  }
  return specs;
}

/// Batched responses for N concurrent requests must be bitwise identical
/// to running each request alone — across batch sizes, flush deadlines
/// and with the Workspace arena on and off.
TEST_F(ServeTest, BatchedResponsesMatchSerialBitwise) {
  const auto specs = identity_workload();
  for (const bool workspace_on : {true, false}) {
    auto pipe = build_pipeline(workspace_on);
    // Serial baseline: one classify per request, no coalescing anywhere.
    std::vector<DefenseOutcome> serial;
    for (const auto& s : specs) {
      serial.push_back(
          pipe->classify(rows_tensor(s.rows, s.base), s.scheme));
    }
    for (const std::size_t max_rows : {std::size_t{1}, std::size_t{4},
                                       std::size_t{8}}) {
      for (const auto deadline :
           {std::chrono::microseconds{0}, std::chrono::microseconds{2000}}) {
        MicroBatcher batcher([pipe] { return pipe; },
                             {max_rows, deadline});
        std::vector<std::future<ServeResult>> futures(specs.size());
        // 4 concurrent submitters, interleaved striding so coalesced
        // batches mix requests from different threads.
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < 4; ++t) {
          threads.emplace_back([&, t] {
            for (std::size_t i = t; i < specs.size(); i += 4) {
              futures[i] = batcher.submit(
                  rows_tensor(specs[i].rows, specs[i].base),
                  specs[i].scheme);
            }
          });
        }
        for (auto& th : threads) th.join();
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const ServeResult r = futures[i].get();
          ASSERT_TRUE(r.ok) << r.error;
          EXPECT_TRUE(outcomes_bitwise_equal(r.outcome, serial[i]))
              << "request " << i << " max_rows=" << max_rows
              << " deadline_us=" << deadline.count()
              << " workspace=" << workspace_on;
        }
        EXPECT_EQ(batcher.pending(), 0u);
      }
    }
  }
}

/// Requests under different schemes are never coalesced into one forward
/// batch, but all of them are served and each matches its serial result.
TEST_F(ServeTest, MixedSchemesServedCorrectly) {
  auto pipe = build_pipeline();
  const DefenseScheme schemes[] = {
      DefenseScheme::None, DefenseScheme::DetectorOnly,
      DefenseScheme::ReformerOnly, DefenseScheme::Full};
  std::vector<DefenseOutcome> serial;
  for (std::size_t i = 0; i < 16; ++i) {
    serial.push_back(pipe->classify(rows_tensor(1, 0.04f * i),
                                    schemes[i % 4]));
  }
  MicroBatcher batcher([pipe] { return pipe; },
                       {8, std::chrono::microseconds{1000}});
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(
        batcher.submit(rows_tensor(1, 0.04f * i), schemes[i % 4]));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const ServeResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(r.outcome, serial[i])) << i;
  }
}

TEST_F(ServeTest, MixedExecModesServedCorrectly) {
  // One pipeline with a prepared int8 bank; float and int8 submissions
  // interleave through one batcher and each must match its serial answer
  // bitwise (the coalescing key includes the exec mode, so a batch never
  // mixes banks).
  auto clf = threshold_classifier();
  auto ae = scaling_ae(0.5f);
  auto pipe = std::make_shared<MagNetPipeline>(clf);
  auto det = std::make_shared<magnet::ReconstructionDetector>(ae, 1);
  det->set_threshold(0.2f);
  pipe->add_detector(det);
  pipe->set_reformer(std::make_shared<magnet::Reformer>(ae));
  pipe->prepare_quantized(rows_tensor(8, 0.05f));
  std::shared_ptr<const MagNetPipeline> cpipe = pipe;

  std::vector<DefenseOutcome> serial;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto mode =
        i % 2 == 0 ? magnet::ExecMode::Float : magnet::ExecMode::Int8;
    serial.push_back(
        cpipe->classify(rows_tensor(1, 0.04f * i), DefenseScheme::Full, mode));
  }
  MicroBatcher batcher([cpipe] { return cpipe; },
                       {8, std::chrono::microseconds{1000}});
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto mode =
        i % 2 == 0 ? magnet::ExecMode::Float : magnet::ExecMode::Int8;
    futures.push_back(
        batcher.submit(rows_tensor(1, 0.04f * i), DefenseScheme::Full, mode));
  }
  for (std::size_t i = 0; i < 12; ++i) {
    const ServeResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(r.outcome, serial[i])) << i;
  }
}

TEST_F(ServeTest, CoalescingActuallyBatches) {
  if (!obs::enabled()) GTEST_SKIP() << "obs pinned off";
  auto pipe = build_pipeline();
  const std::uint64_t batches_before = counter_value("serve/batches");
  const std::uint64_t rows_before = counter_value("serve/batch_rows");
  {
    // Long deadline: 8 quick single-row submits close one full batch.
    MicroBatcher batcher([pipe] { return pipe; },
                         {8, std::chrono::microseconds{200000}});
    std::vector<std::future<ServeResult>> futures;
    for (std::size_t i = 0; i < 8; ++i) {
      futures.push_back(
          batcher.submit(rows_tensor(1, 0.1f * i), DefenseScheme::Full));
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok);
  }
  const std::uint64_t batches = counter_value("serve/batches") - batches_before;
  const std::uint64_t rows = counter_value("serve/batch_rows") - rows_before;
  EXPECT_EQ(rows, 8u);
  EXPECT_LE(batches, 2u);  // nearly always 1; 2 tolerates scheduler jitter
}

TEST_F(ServeTest, SubmitValidatesAndStops) {
  auto pipe = build_pipeline();
  MicroBatcher batcher([pipe] { return pipe; });
  // Rank != 4 rejected without touching the queue.
  ServeResult bad = batcher.submit(Tensor({2, 2}), DefenseScheme::Full).get();
  EXPECT_FALSE(bad.ok);
  batcher.stop();
  ServeResult after = batcher.submit(rows_tensor(1, 0.1f),
                                     DefenseScheme::Full)
                          .get();
  EXPECT_FALSE(after.ok);
  EXPECT_NE(after.error.find("stopped"), std::string::npos);
}

// --- fault containment --------------------------------------------------

TEST_F(ServeTest, ModelLoadFaultDegradesToErrorResponse) {
  auto pipe = build_pipeline();
  std::size_t factory_calls = 0;
  MicroBatcher batcher(
      [pipe, &factory_calls] {
        ++factory_calls;
        return pipe;
      },
      {4, std::chrono::microseconds{0}});
  fault::arm("serve.model_load:fail_once");
  const ServeResult r1 =
      batcher.submit(rows_tensor(1, 0.3f), DefenseScheme::Full).get();
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("serve.model_load"), std::string::npos);
  EXPECT_FALSE(batcher.pipeline_loaded());
  // The daemon keeps serving: the next request reloads and succeeds.
  const ServeResult r2 =
      batcher.submit(rows_tensor(1, 0.3f), DefenseScheme::Full).get();
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(batcher.pipeline_loaded());
  EXPECT_EQ(factory_calls, 1u);
  EXPECT_TRUE(outcomes_bitwise_equal(
      r2.outcome, pipe->classify(rows_tensor(1, 0.3f), DefenseScheme::Full)));
}

TEST_F(ServeTest, MidBatchForwardFaultFailsOnlyThatBatch) {
  auto pipe = build_pipeline();
  MicroBatcher batcher([pipe] { return pipe; },
                       {4, std::chrono::microseconds{0}});
  fault::arm("serve.batch_forward:fail_once");
  const ServeResult r1 =
      batcher.submit(rows_tensor(2, 0.2f), DefenseScheme::Full).get();
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("serve.batch_forward"), std::string::npos);
  const ServeResult r2 =
      batcher.submit(rows_tensor(2, 0.2f), DefenseScheme::Full).get();
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(outcomes_bitwise_equal(
      r2.outcome, pipe->classify(rows_tensor(2, 0.2f), DefenseScheme::Full)));
}

TEST_F(ServeTest, DaemonSurvivesFaultsEndToEnd) {
  auto pipe = build_pipeline();
  ServeConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.batch = {4, std::chrono::microseconds{0}};
  ServeDaemon daemon([pipe] { return pipe; }, cfg);
  daemon.start();
  // First request: model load fails. Second: forward fails mid-batch.
  // Third: healthy. The daemon answers all three.
  fault::arm("serve.model_load:fail_once,serve.batch_forward:fail_once");
  ServeClient client(cfg.socket_path);
  const Tensor x = rows_tensor(1, 0.35f);
  const ClassifyResponse r1 = client.classify(x, DefenseScheme::Full);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("serve.model_load"), std::string::npos);
  const ClassifyResponse r2 = client.classify(x, DefenseScheme::Full);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("serve.batch_forward"), std::string::npos);
  const ClassifyResponse r3 = client.classify(x, DefenseScheme::Full);
  ASSERT_TRUE(r3.ok) << r3.error;
  EXPECT_TRUE(outcomes_bitwise_equal(
      r3.outcome, pipe->classify(x, DefenseScheme::Full)));
  daemon.stop();
}

/// Soak: hundreds of mixed-size requests from several threads drain with
/// no stuck queue and monotone obs counters that add up exactly.
TEST_F(ServeTest, SoakMixedSizesDrainsCleanly) {
  auto pipe = build_pipeline();
  const bool counters = obs::enabled();
  const std::uint64_t req_before = counter_value("serve/requests");
  const std::uint64_t ok_before = counter_value("serve/responses_ok");
  const std::uint64_t err_before = counter_value("serve/responses_error");
  const std::uint64_t rows_before = counter_value("serve/batch_rows");

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 75;
  // Workload parameters are deterministic in (t, i); precompute every
  // serial baseline BEFORE the batcher exists — classify() runs on the
  // batcher thread during the soak, so workers must never call it.
  std::vector<std::vector<DefenseOutcome>> expected(3);  // [rows-1][mod29]
  for (std::size_t rows = 1; rows <= 3; ++rows) {
    for (std::size_t mod = 0; mod < 29; ++mod) {
      expected[rows - 1].push_back(pipe->classify(
          rows_tensor(rows, 0.03f * static_cast<float>(mod)),
          DefenseScheme::Full));
    }
  }
  std::atomic<std::size_t> total_rows{0};
  std::atomic<std::size_t> failures{0};
  {
    MicroBatcher batcher([pipe] { return pipe; },
                         {8, std::chrono::microseconds{100}});
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::size_t rows = 1 + (t + i) % 3;
          const std::size_t mod = (t * 31 + i) % 29;
          total_rows.fetch_add(rows);
          const ServeResult r =
              batcher
                  .submit(rows_tensor(rows,
                                      0.03f * static_cast<float>(mod)),
                          DefenseScheme::Full)
                  .get();
          if (!r.ok ||
              !outcomes_bitwise_equal(r.outcome,
                                      expected[rows - 1][mod])) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(batcher.pending(), 0u);  // no stuck queue
  }
  EXPECT_EQ(failures.load(), 0u);
  if (counters) {
    constexpr std::uint64_t kRequests = kThreads * kPerThread;
    // Soak spot-checks call classify() directly on the main thread too,
    // but those do not pass through serve/ counters — the serve deltas
    // must match the submitted workload exactly, and stay monotone.
    EXPECT_EQ(counter_value("serve/requests") - req_before, kRequests);
    EXPECT_EQ(counter_value("serve/responses_ok") - ok_before, kRequests);
    EXPECT_EQ(counter_value("serve/responses_error") - err_before, 0u);
    EXPECT_EQ(counter_value("serve/batch_rows") - rows_before,
              total_rows.load());
    EXPECT_GE(counter_value("serve/batches"), 1u);
  }
}

// --- protocol robustness over the socket --------------------------------

struct DaemonFixture {
  std::shared_ptr<const MagNetPipeline> pipe = build_pipeline();
  ServeConfig cfg;
  std::unique_ptr<ServeDaemon> daemon;

  explicit DaemonFixture(std::size_t max_body = 1 << 20) {
    cfg.socket_path = test_socket_path();
    cfg.batch = {4, std::chrono::microseconds{100}};
    cfg.max_body_bytes = max_body;
    auto p = pipe;
    daemon = std::make_unique<ServeDaemon>([p] { return p; }, cfg);
    daemon->start();
  }

  /// The post-abuse liveness probe: a fresh well-behaved client must get
  /// correct service, proving the batcher was not wedged.
  void expect_alive() {
    ServeClient client(cfg.socket_path);
    EXPECT_TRUE(client.ping());
    const Tensor x = rows_tensor(2, 0.3f);
    const ClassifyResponse r = client.classify(x, DefenseScheme::Full);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(
        r.outcome, pipe->classify(x, DefenseScheme::Full)));
  }
};

TEST_F(ServeTest, DaemonServesClassifyAndPing) {
  DaemonFixture fx;
  fx.expect_alive();
  // Several sequential requests on one connection.
  ServeClient client(fx.cfg.socket_path);
  for (std::size_t i = 0; i < 5; ++i) {
    const Tensor x = rows_tensor(1 + i % 2, 0.1f * static_cast<float>(i));
    const ClassifyResponse r = client.classify(x, DefenseScheme::Full);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(
        r.outcome, fx.pipe->classify(x, DefenseScheme::Full)));
  }
}

std::shared_ptr<const MagNetPipeline> build_quant_pipeline() {
  auto clf = threshold_classifier();
  auto ae = scaling_ae(0.5f);
  auto pipe = std::make_shared<MagNetPipeline>(clf);
  auto det = std::make_shared<magnet::ReconstructionDetector>(ae, 1);
  det->set_threshold(0.2f);
  pipe->add_detector(det);
  pipe->set_reformer(std::make_shared<magnet::Reformer>(ae));
  pipe->prepare_quantized(rows_tensor(8, 0.05f));
  return pipe;
}

TEST_F(ServeTest, QuantizedAndFloatClassifyBothRoundTripOverWire) {
  auto pipe = build_quant_pipeline();
  ServeConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.batch = {4, std::chrono::microseconds{100}};
  ServeDaemon daemon([pipe] { return pipe; }, cfg);
  daemon.start();

  ServeClient client(cfg.socket_path);
  const Tensor x = rows_tensor(3, 0.15f);
  const ClassifyResponse rf = client.classify(x, DefenseScheme::Full);
  const ClassifyResponse ri =
      client.classify(x, DefenseScheme::Full, /*deadline_ms=*/0,
                      /*quantized=*/true);
  ASSERT_TRUE(rf.ok) << rf.error;
  ASSERT_TRUE(ri.ok) << ri.error;
  // Both responses carry detector readings and match their serial bank.
  EXPECT_FALSE(rf.outcome.readings.empty());
  EXPECT_FALSE(ri.outcome.readings.empty());
  EXPECT_TRUE(outcomes_bitwise_equal(
      rf.outcome,
      pipe->classify(x, DefenseScheme::Full, magnet::ExecMode::Float)));
  EXPECT_TRUE(outcomes_bitwise_equal(
      ri.outcome,
      pipe->classify(x, DefenseScheme::Full, magnet::ExecMode::Int8)));
  daemon.stop();
}

TEST_F(ServeTest, QuantDefaultModeAppliesToUnmarkedRequests) {
  // serve_daemon --quant: unmarked requests follow the daemon default
  // (int8 here); marked requests run int8 regardless.
  auto pipe = build_quant_pipeline();
  ServeConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.batch = {4, std::chrono::microseconds{100}};
  cfg.default_mode = magnet::ExecMode::Int8;
  ServeDaemon daemon([pipe] { return pipe; }, cfg);
  daemon.start();

  ServeClient client(cfg.socket_path);
  const Tensor x = rows_tensor(2, 0.35f);
  const ClassifyResponse unmarked = client.classify(x, DefenseScheme::Full);
  ASSERT_TRUE(unmarked.ok) << unmarked.error;
  EXPECT_TRUE(outcomes_bitwise_equal(
      unmarked.outcome,
      pipe->classify(x, DefenseScheme::Full, magnet::ExecMode::Int8)));
  daemon.stop();
}

TEST_F(ServeTest, GarbageBytesDropConnectionCleanly) {
  DaemonFixture fx;
  {
    RawConnection raw(fx.cfg.socket_path);
    std::uint8_t junk[64];
    for (std::size_t i = 0; i < sizeof(junk); ++i) {
      junk[i] = static_cast<std::uint8_t>(37 * i + 11);
    }
    raw.send_bytes(junk, sizeof(junk));
    EXPECT_TRUE(raw.wait_for_close(std::chrono::milliseconds{2000}));
  }
  fx.expect_alive();
}

TEST_F(ServeTest, OversizeLengthPrefixRejected) {
  DaemonFixture fx(/*max_body=*/4096);
  {
    RawConnection raw(fx.cfg.socket_path);
    // Valid magic/version, body_len far beyond the daemon's limit. The
    // daemon must reject it WITHOUT allocating or reading that much.
    const std::uint32_t header[3] = {kRequestMagic, kProtocolVersion,
                                     0x40000000u};  // 1 GiB
    raw.send_bytes(header, sizeof(header));
    EXPECT_TRUE(raw.wait_for_close(std::chrono::milliseconds{2000}));
  }
  fx.expect_alive();
}

TEST_F(ServeTest, TruncatedFrameThenDisconnect) {
  DaemonFixture fx;
  {
    // Header promises 256 body bytes; client sends 10 and hangs up.
    RawConnection raw(fx.cfg.socket_path);
    const std::uint32_t header[3] = {kRequestMagic, kProtocolVersion, 256};
    raw.send_bytes(header, sizeof(header));
    std::uint8_t partial[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    raw.send_bytes(partial, sizeof(partial));
    raw.close();
  }
  fx.expect_alive();
}

TEST_F(ServeTest, UndecodableBodyGetsErrorAndKeepsConnection) {
  DaemonFixture fx;
  RawConnection raw(fx.cfg.socket_path);
  // Well-framed body whose type byte is unknown.
  const std::uint8_t bad_type = 9;
  const std::uint32_t header[3] = {kRequestMagic, kProtocolVersion, 1};
  raw.send_bytes(header, sizeof(header));
  raw.send_bytes(&bad_type, 1);
  // Expect a complete error-response frame back.
  std::uint32_t resp_header[3];
  std::size_t got = 0;
  auto* p = reinterpret_cast<std::uint8_t*>(resp_header);
  while (got < sizeof(resp_header)) {
    const std::size_t r = raw.recv_some(p + got, sizeof(resp_header) - got);
    ASSERT_GT(r, 0u) << "daemon closed instead of answering";
    got += r;
  }
  EXPECT_EQ(resp_header[0], kResponseMagic);
  std::vector<std::uint8_t> body(resp_header[2]);
  got = 0;
  while (got < body.size()) {
    const std::size_t r = raw.recv_some(body.data() + got, body.size() - got);
    ASSERT_GT(r, 0u);
    got += r;
  }
  const ClassifyResponse resp = decode_response(body);
  EXPECT_FALSE(resp.ok);
  // Framing stayed intact: the SAME connection still serves a valid ping.
  const auto ping = encode_ping_request();
  const std::uint32_t ping_header[3] = {
      kRequestMagic, kProtocolVersion, static_cast<std::uint32_t>(ping.size())};
  raw.send_bytes(ping_header, sizeof(ping_header));
  raw.send_bytes(ping.data(), ping.size());
  got = 0;
  while (got < sizeof(resp_header)) {
    const std::size_t r = raw.recv_some(p + got, sizeof(resp_header) - got);
    ASSERT_GT(r, 0u);
    got += r;
  }
  EXPECT_EQ(resp_header[0], kResponseMagic);
  fx.expect_alive();
}

TEST_F(ServeTest, AbuseBarrageNeverWedgesBatcher) {
  DaemonFixture fx(/*max_body=*/4096);
  // A volley of every abuse at once, interleaved with real traffic.
  for (std::size_t round = 0; round < 3; ++round) {
    {
      RawConnection raw(fx.cfg.socket_path);
      const std::uint32_t bad[3] = {0xDEADBEEF, 1, 4};
      raw.send_bytes(bad, sizeof(bad));
    }
    {
      RawConnection raw(fx.cfg.socket_path);
      const std::uint32_t header[3] = {kRequestMagic, kProtocolVersion,
                                       0xFFFFFFFFu};
      raw.send_bytes(header, sizeof(header));
    }
    {
      RawConnection raw(fx.cfg.socket_path);
      const std::uint32_t header[3] = {kRequestMagic, kProtocolVersion, 128};
      raw.send_bytes(header, sizeof(header));
      // disconnect mid-request
    }
    fx.expect_alive();
  }
  // Concurrent well-formed clients still get exact service. Verification
  // is deferred past the joins — classify() may only run on the batcher
  // thread while traffic is in flight.
  std::vector<std::thread> threads;
  std::vector<std::vector<ClassifyResponse>> responses(4);
  std::atomic<std::size_t> transport_failures{0};
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ServeClient client(fx.cfg.socket_path);
      for (std::size_t i = 0; i < 10; ++i) {
        const Tensor x = rows_tensor(1, 0.07f * static_cast<float>(t + i));
        try {
          responses[t].push_back(client.classify(x, DefenseScheme::Full));
        } catch (const std::exception&) {
          transport_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(transport_failures.load(), 0u);
  for (std::size_t t = 0; t < 4; ++t) {
    ASSERT_EQ(responses[t].size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
      const Tensor x = rows_tensor(1, 0.07f * static_cast<float>(t + i));
      ASSERT_TRUE(responses[t][i].ok) << responses[t][i].error;
      EXPECT_TRUE(outcomes_bitwise_equal(
          responses[t][i].outcome,
          fx.pipe->classify(x, DefenseScheme::Full)));
    }
  }
}

// --- overload protection: admission, deadlines, watchdog, drain ---------

/// Wedges the batcher's first forward with a `stall` failpoint so the
/// queue can be populated deterministically behind it; fault::reset()
/// releases the wedge.
TEST_F(ServeTest, AdmissionQueueShedsWhenFull) {
  auto pipe = build_pipeline();
  const std::uint64_t shed_before = counter_value("serve/shed");
  MicroBatcher batcher([pipe] { return pipe; },
                       {.max_batch_rows = 1,
                        .flush_deadline = std::chrono::microseconds{0},
                        .max_queue_rows = 4});
  fault::arm("serve.batch_forward:stall");
  auto wedged = batcher.submit(rows_tensor(1, 0.1f), DefenseScheme::Full);
  while (batcher.pending() != 0) std::this_thread::yield();  // taken, wedged

  // Fill the admission queue exactly to its bound...
  std::vector<std::future<ServeResult>> admitted;
  for (std::size_t i = 0; i < 4; ++i) {
    admitted.push_back(
        batcher.submit(rows_tensor(1, 0.2f), DefenseScheme::Full));
  }
  EXPECT_EQ(batcher.pending(), 4u);
  // ...then one more row must be shed immediately: resolved future, no
  // compute spent, Overloaded status.
  auto shed = batcher.submit(rows_tensor(1, 0.3f), DefenseScheme::Full);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ServeResult r = shed.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, ResultStatus::Overloaded);
  EXPECT_NE(r.error.find("overloaded"), std::string::npos);
  if (obs::enabled()) {
    EXPECT_EQ(counter_value("serve/shed") - shed_before, 1u);
  }

  // Releasing the wedge drains everything that WAS admitted, correctly.
  fault::reset();
  ASSERT_TRUE(wedged.get().ok);
  for (auto& f : admitted) {
    const ServeResult a = f.get();
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_TRUE(outcomes_bitwise_equal(
        a.outcome, pipe->classify(rows_tensor(1, 0.2f),
                                  DefenseScheme::Full)));
  }
}

/// An oversized lone request (> max_queue_rows) is still admitted into an
/// empty queue — it runs as its own batch, mirroring the oversized-batch
/// rule.
TEST_F(ServeTest, OversizedRequestAdmittedIntoEmptyQueue) {
  auto pipe = build_pipeline();
  MicroBatcher batcher([pipe] { return pipe; },
                       {.max_batch_rows = 2,
                        .flush_deadline = std::chrono::microseconds{0},
                        .max_queue_rows = 2});
  const ServeResult r =
      batcher.submit(rows_tensor(5, 0.1f), DefenseScheme::Full).get();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(outcomes_bitwise_equal(
      r.outcome, pipe->classify(rows_tensor(5, 0.1f), DefenseScheme::Full)));
}

/// A queued request whose deadline ran out is answered DeadlineExceeded
/// at dequeue — no forward pass is spent on it — while a no-deadline
/// request behind the same wedge is served normally.
TEST_F(ServeTest, DeadlineExpiresInQueueWithoutForwardPass) {
  auto pipe = build_pipeline();
  const std::uint64_t ddl_before = counter_value("serve/deadline_expired");
  const std::uint64_t rows_before = counter_value("serve/batch_rows");
  MicroBatcher batcher([pipe] { return pipe; },
                       {.max_batch_rows = 1,
                        .flush_deadline = std::chrono::microseconds{0}});
  fault::arm("serve.batch_forward:stall");
  auto wedged = batcher.submit(rows_tensor(1, 0.1f), DefenseScheme::Full);
  while (batcher.pending() != 0) std::this_thread::yield();

  auto doomed = batcher.submit(rows_tensor(1, 0.2f), DefenseScheme::Full,
                               magnet::ExecMode::Float,
                               std::chrono::milliseconds(20));
  auto patient = batcher.submit(rows_tensor(1, 0.3f), DefenseScheme::Full);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // budget gone
  fault::reset();

  ASSERT_TRUE(wedged.get().ok);
  const ServeResult d = doomed.get();
  EXPECT_FALSE(d.ok);
  EXPECT_EQ(d.status, ResultStatus::DeadlineExceeded);
  const ServeResult p = patient.get();
  ASSERT_TRUE(p.ok) << p.error;
  if (obs::enabled()) {
    EXPECT_EQ(counter_value("serve/deadline_expired") - ddl_before, 1u);
    // Only the wedged and patient rows ever reached a forward batch.
    EXPECT_EQ(counter_value("serve/batch_rows") - rows_before, 2u);
  }
}

/// Watchdog: a stuck forward pass fails ITS batch with an error result
/// while the batcher spawns a replacement executor and keeps serving.
/// The factory builds a fresh pipeline per call, as the watchdog
/// contract requires (batcher.hpp).
TEST_F(ServeTest, WatchdogTripFailsBatchAndKeepsServing) {
  const std::uint64_t trips_before = counter_value("serve/watchdog_trips");
  MicroBatcher batcher([] { return build_pipeline(); },
                       {.max_batch_rows = 1,
                        .flush_deadline = std::chrono::microseconds{0},
                        .watchdog_timeout = std::chrono::milliseconds{100}});
  // Only the FIRST forward stalls; the replacement executor's batches
  // sail through without needing a disarm.
  fault::arm("serve.batch_forward:stall_once");
  const ServeResult tripped =
      batcher.submit(rows_tensor(1, 0.1f), DefenseScheme::Full).get();
  EXPECT_FALSE(tripped.ok);
  EXPECT_EQ(tripped.status, ResultStatus::Error);
  EXPECT_NE(tripped.error.find("watchdog"), std::string::npos);
  if (obs::enabled()) {
    EXPECT_EQ(counter_value("serve/watchdog_trips") - trips_before, 1u);
  }

  const ServeResult next =
      batcher.submit(rows_tensor(1, 0.2f), DefenseScheme::Full).get();
  ASSERT_TRUE(next.ok) << next.error;
  EXPECT_TRUE(outcomes_bitwise_equal(
      next.outcome, build_pipeline()->classify(rows_tensor(1, 0.2f),
                                               DefenseScheme::Full)));
  // Release the abandoned executor BEFORE stop() so the drain grace is
  // not spent waiting on a thread the test itself wedged.
  fault::reset();
  batcher.stop();
}

/// With the watchdog enabled but never tripping, batched results remain
/// bitwise identical to the serial path (the executor thread changes
/// WHERE classify runs, not what it computes).
TEST_F(ServeTest, WatchdogIdleKeepsBitwiseIdentity) {
  auto pipe = build_pipeline();
  MicroBatcher batcher([pipe] { return pipe; },
                       {.max_batch_rows = 4,
                        .flush_deadline = std::chrono::microseconds{500},
                        .watchdog_timeout = std::chrono::seconds{30}});
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 12; ++i) {
    futures.push_back(batcher.submit(rows_tensor(1 + i % 2, 0.05f * i),
                                     DefenseScheme::Full));
  }
  for (std::size_t i = 0; i < 12; ++i) {
    const ServeResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(
        r.outcome, pipe->classify(rows_tensor(1 + i % 2, 0.05f * i),
                                  DefenseScheme::Full)));
  }
}

/// stop() drains: the in-flight batch finishes, everything still queued
/// is answered with an Overloaded shed result, and stop() returns.
TEST_F(ServeTest, StopShedsQueuedRequests) {
  auto pipe = build_pipeline();
  const std::uint64_t shed_before = counter_value("serve/shed");
  MicroBatcher batcher([pipe] { return pipe; },
                       {.max_batch_rows = 1,
                        .flush_deadline = std::chrono::microseconds{0}});
  fault::arm("serve.batch_forward:stall");
  auto wedged = batcher.submit(rows_tensor(1, 0.1f), DefenseScheme::Full);
  while (batcher.pending() != 0) std::this_thread::yield();
  std::vector<std::future<ServeResult>> queued;
  for (std::size_t i = 0; i < 3; ++i) {
    queued.push_back(
        batcher.submit(rows_tensor(1, 0.2f), DefenseScheme::Full));
  }
  std::thread stopper([&] { batcher.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fault::reset();  // in-flight batch completes; drain takes over
  stopper.join();

  ASSERT_TRUE(wedged.get().ok);  // finished, not abandoned
  for (auto& f : queued) {
    const ServeResult r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, ResultStatus::Overloaded);
    EXPECT_NE(r.error.find("draining"), std::string::npos);
  }
  if (obs::enabled()) {
    EXPECT_EQ(counter_value("serve/shed") - shed_before, 3u);
  }
  EXPECT_EQ(batcher.pending(), 0u);
}

/// `delay` latency faults are transparent: injected latency, identical
/// bytes.
TEST_F(ServeTest, DelayFaultPreservesBitwiseResults) {
  auto pipe = build_pipeline();
  MicroBatcher batcher([pipe] { return pipe; },
                       {4, std::chrono::microseconds{100}});
  fault::arm("serve.batch_forward:delay=5");
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(
        batcher.submit(rows_tensor(1, 0.08f * i), DefenseScheme::Full));
  }
  for (std::size_t i = 0; i < 6; ++i) {
    const ServeResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(outcomes_bitwise_equal(
        r.outcome,
        pipe->classify(rows_tensor(1, 0.08f * i), DefenseScheme::Full)));
  }
}

// --- typed client errors, retries, deadline over the socket -------------

TEST_F(ServeTest, RetryBackoffScheduleIsDeterministic) {
  RetryPolicy rp;
  rp.base_backoff = std::chrono::milliseconds(10);
  rp.max_backoff = std::chrono::milliseconds(80);
  rp.jitter_seed = 7;
  for (std::uint32_t a = 0; a < 10; ++a) {
    const std::uint64_t v = rp.backoff_ms(a);
    EXPECT_EQ(v, rp.backoff_ms(a)) << a;  // pure in (seed, attempt)
    const std::uint64_t cap = std::min<std::uint64_t>(10ull << a, 80);
    EXPECT_GE(v, cap / 2) << a;
    EXPECT_LE(v, cap) << a;
  }
  RetryPolicy other = rp;
  other.jitter_seed = 8;
  bool any_differ = false;
  for (std::uint32_t a = 0; a < 10; ++a) {
    any_differ = any_differ || other.backoff_ms(a) != rp.backoff_ms(a);
  }
  EXPECT_TRUE(any_differ);  // the seed actually decorrelates schedules
}

TEST_F(ServeTest, ConnectToMissingSocketThrowsTypedError) {
  const auto path = test_socket_path();
  std::filesystem::remove(path);
  EXPECT_THROW(ServeClient{path}, ConnectError);
}

/// A wedged daemon surfaces as TimeoutError through recv_timeout instead
/// of hanging the caller; the daemon itself stays healthy once released.
TEST_F(ServeTest, RecvTimeoutSurfacesAsTypedError) {
  DaemonFixture fx;
  fault::arm("serve.batch_forward:stall");
  {
    ClientConfig ccfg;
    ccfg.recv_timeout = std::chrono::milliseconds(150);
    ServeClient client(fx.cfg.socket_path, ccfg);
    EXPECT_THROW(client.classify(rows_tensor(1, 0.2f), DefenseScheme::Full),
                 TimeoutError);
  }
  fault::reset();
  fx.expect_alive();
}

/// Overloaded responses are retried (and only those): a client with a
/// retry budget spends it against a saturated daemon, counts its
/// retries, and still comes back Overloaded once the budget is gone.
TEST_F(ServeTest, ClientRetriesShedRequestsWithBackoff) {
  auto pipe = build_pipeline();
  const std::uint64_t retries_before = counter_value("serve/client_retries");
  ServeConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.batch = {.max_batch_rows = 1,
               .flush_deadline = std::chrono::microseconds{0},
               .max_queue_rows = 1};
  ServeDaemon daemon([pipe] { return pipe; }, cfg);
  daemon.start();
  fault::arm("serve.batch_forward:stall");

  // Wedge the daemon: one request parked in-flight at the stall, then a
  // second filling the 1-row admission queue behind it. hit_count flips
  // exactly when the first batch reaches the failpoint, so the ordering
  // is deterministic; the queued row cannot leave while the (inline)
  // batcher thread is stalled.
  std::thread wedge_inflight([&] {
    ServeClient c(cfg.socket_path);
    const auto r = c.classify(rows_tensor(1, 0.1f), DefenseScheme::Full);
    EXPECT_TRUE(r.ok) << r.error;
  });
  while (fault::hit_count("serve.batch_forward") == 0) {
    std::this_thread::yield();
  }
  std::thread wedge_queued([&] {
    ServeClient c(cfg.socket_path);
    const auto r = c.classify(rows_tensor(1, 0.15f), DefenseScheme::Full);
    EXPECT_TRUE(r.ok) << r.error;
  });
  while (daemon.batcher().pending() == 0) std::this_thread::yield();

  ClientConfig ccfg;
  ccfg.retry.max_attempts = 3;
  ccfg.retry.base_backoff = std::chrono::milliseconds(1);
  ccfg.retry.max_backoff = std::chrono::milliseconds(4);
  ServeClient retrier(cfg.socket_path, ccfg);
  const ClassifyResponse shed =
      retrier.classify(rows_tensor(1, 0.2f), DefenseScheme::Full);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.status, Status::Overloaded);
  EXPECT_EQ(retrier.retries(), 2u);  // 3 attempts = 2 retries
  if (obs::enabled()) {
    EXPECT_EQ(counter_value("serve/client_retries") - retries_before, 2u);
  }

  fault::reset();
  wedge_inflight.join();
  wedge_queued.join();
  daemon.stop();
}

/// deadline_ms rides the wire: a request queued behind a wedge with a
/// small budget comes back DeadlineExceeded, not Ok and not Error.
TEST_F(ServeTest, DeadlineTravelsOverSocket) {
  DaemonFixture fx;
  fault::arm("serve.batch_forward:stall");
  std::thread wedge([&] {
    ServeClient c(fx.cfg.socket_path);
    const auto r = c.classify(rows_tensor(1, 0.1f), DefenseScheme::Full);
    EXPECT_TRUE(r.ok) << r.error;
  });
  // The wedge is provably in-flight (not merely queued) once the forward
  // failpoint records a hit, so `doomed` lands in the queue behind it.
  while (fault::hit_count("serve.batch_forward") == 0) {
    std::this_thread::yield();
  }

  std::thread doomed([&] {
    ServeClient c(fx.cfg.socket_path);
    const auto r = c.classify(rows_tensor(1, 0.2f), DefenseScheme::Full,
                              /*deadline_ms=*/20);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.status, Status::DeadlineExceeded);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  fault::reset();
  doomed.join();
  wedge.join();
  fx.expect_alive();
}

/// Chaos soak (the ISSUE's acceptance scenario in miniature): a tiny
/// daemon with delay faults armed, saturated by concurrent clients with
/// mixed deadlines and retry budgets. Nothing may deadlock, every
/// request resolves with a legal status, the batcher accounting
/// invariant holds exactly, and shutdown drains cleanly.
TEST_F(ServeTest, ChaosSoakUnderLatencyFaultsDrainsAndAccounts) {
  auto pipe = build_pipeline();
  const std::uint64_t req0 = counter_value("serve/requests");
  const std::uint64_t ok0 = counter_value("serve/responses_ok");
  const std::uint64_t err0 = counter_value("serve/responses_error");
  const std::uint64_t shed0 = counter_value("serve/shed");
  const std::uint64_t ddl0 = counter_value("serve/deadline_expired");

  ServeConfig cfg;
  cfg.socket_path = test_socket_path();
  cfg.batch = {.max_batch_rows = 1,
               .flush_deadline = std::chrono::microseconds{0},
               .max_queue_rows = 2,
               .watchdog_timeout = std::chrono::seconds{20}};
  ServeDaemon daemon([pipe] { return pipe; }, cfg);
  daemon.start();
  fault::arm("serve.model_load:delay=10,serve.batch_forward:delay=5");

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 12;
  std::atomic<std::size_t> transport_failures{0};
  std::atomic<std::size_t> illegal_statuses{0};
  std::atomic<std::size_t> served_ok{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ClientConfig ccfg;
        ccfg.recv_timeout = std::chrono::milliseconds(10000);
        if (c % 3 == 0) {
          ccfg.retry.max_attempts = 2;
          ccfg.retry.base_backoff = std::chrono::milliseconds(2);
          ccfg.retry.jitter_seed = c;
        }
        const std::uint32_t deadline_ms = (c % 2 == 0) ? 30 : 0;
        ServeClient client(cfg.socket_path, ccfg);
        for (std::size_t i = 0; i < kPerClient; ++i) {
          const auto r = client.classify(rows_tensor(1, 0.05f * (i % 7)),
                                         DefenseScheme::Full, deadline_ms);
          if (r.ok) {
            served_ok.fetch_add(1);
          } else if (r.status != Status::Overloaded &&
                     r.status != Status::DeadlineExceeded) {
            // delay faults are transparent: Error would be a real bug
            illegal_statuses.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        transport_failures.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(transport_failures.load(), 0u);
  EXPECT_EQ(illegal_statuses.load(), 0u);
  EXPECT_GT(served_ok.load(), 0u);  // overload shed SOME, not ALL
  EXPECT_EQ(daemon.batcher().pending(), 0u);
  daemon.stop();  // must not hang (drain ordering, server.hpp)
  fault::reset();

  if (obs::enabled()) {
    const std::uint64_t requests = counter_value("serve/requests") - req0;
    const std::uint64_t ok = counter_value("serve/responses_ok") - ok0;
    const std::uint64_t err = counter_value("serve/responses_error") - err0;
    const std::uint64_t shed = counter_value("serve/shed") - shed0;
    const std::uint64_t ddl = counter_value("serve/deadline_expired") - ddl0;
    EXPECT_EQ(requests, ok + err + shed + ddl);  // nothing lost, ever
    EXPECT_EQ(err, 0u);
    EXPECT_EQ(ok, served_ok.load());
  }
}

}  // namespace
}  // namespace adv::serve
