// Property tests for MagNet calibration and scoring across random seeds.
#include <gtest/gtest.h>

#include <algorithm>

#include "magnet/detector.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::magnet {
namespace {

class SumDetector final : public Detector {
 public:
  std::vector<float> scores(const Tensor& batch) const override {
    const std::size_t n = batch.dim(0);
    const std::size_t row = batch.numel() / n;
    std::vector<float> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < row; ++j) acc += batch[i * row + j];
      out[i] = static_cast<float>(acc);
    }
    return out;
  }
  std::string name() const override { return "sum"; }
};

class CalibrationProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Tensor random_batch(std::size_t n, std::uint64_t seed) {
    Tensor t({n, 1, 2, 2});
    Rng rng(seed);
    fill_uniform(t, rng, 0.0f, 1.0f);
    return t;
  }
};

TEST_P(CalibrationProperties, ThresholdDecreasesWithFpr) {
  SumDetector d;
  const Tensor val = random_batch(200, GetParam());
  float prev = std::numeric_limits<float>::infinity();
  for (const float fpr : {0.01f, 0.05f, 0.2f, 0.5f}) {
    d.calibrate(val, fpr);
    EXPECT_LE(d.threshold(), prev + 1e-6f) << "fpr " << fpr;
    prev = d.threshold();
  }
}

TEST_P(CalibrationProperties, EmpiricalFprIsBounded) {
  SumDetector d;
  const Tensor val = random_batch(500, GetParam() + 1);
  for (const float fpr : {0.02f, 0.1f}) {
    d.calibrate(val, fpr);
    const auto rejected = d.reject(val);
    const auto count =
        static_cast<float>(std::count(rejected.begin(), rejected.end(), true));
    // By construction the in-sample rejection rate never exceeds fpr.
    EXPECT_LE(count / 500.0f, fpr + 1e-4f);
  }
}

TEST_P(CalibrationProperties, RejectionIsMonotoneInScore) {
  // If a sample is rejected, any sample with a strictly larger score in
  // the same batch must also be rejected.
  SumDetector d;
  const Tensor val = random_batch(100, GetParam() + 2);
  d.calibrate(val, 0.1f);
  const Tensor batch = random_batch(100, GetParam() + 3);
  const auto scores = d.scores(batch);
  const auto rejected = d.reject(batch);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (rejected[i] && scores[j] > scores[i]) {
        EXPECT_TRUE(rejected[j]);
      }
    }
  }
}

TEST_P(CalibrationProperties, JsdIsSymmetricAndNonNegativeOnRandomDists) {
  Rng rng(GetParam() + 4);
  std::vector<float> p(10), q(10);
  float sp = 0.0f, sq = 0.0f;
  for (std::size_t i = 0; i < 10; ++i) {
    p[i] = rng.uniform_f(0.0f, 1.0f);
    q[i] = rng.uniform_f(0.0f, 1.0f);
    sp += p[i];
    sq += q[i];
  }
  for (std::size_t i = 0; i < 10; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  const float d1 = jensen_shannon_divergence(p, q);
  const float d2 = jensen_shannon_divergence(q, p);
  EXPECT_NEAR(d1, d2, 1e-6f);
  EXPECT_GE(d1, 0.0f);
  EXPECT_LE(d1, std::log(2.0f) + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace adv::magnet
