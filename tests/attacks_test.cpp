// Attack tests: shrinkage operator, hinge loss machinery, and the full
// C&W / EAD / FGSM / DeepFool attacks against small analyzable models.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/ead.hpp"
#include "attacks/fgsm.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/structural.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {
namespace {

/// Linear 2-class model over a 4-pixel image: logit_0 = +s*(x0+x1),
/// logit_1 = +s*(x2+x3). Decision boundary: x0+x1 vs x2+x3.
nn::Sequential linear_model(float s = 8.0f) {
  Rng rng(1);
  nn::Sequential m;
  m.emplace<nn::Flatten>();
  auto& lin = m.emplace<nn::Linear>(4, 2, rng);
  *lin.parameters()[0] =
      Tensor::from_data(Shape({4, 2}), {s, 0, s, 0, 0, s, 0, s});
  lin.parameters()[1]->fill(0.0f);
  return m;
}

Tensor class0_image() {
  // Strongly class 0: x0+x1 = 1.6, x2+x3 = 0.2.
  return Tensor::from_data(Shape({1, 1, 2, 2}), {0.8f, 0.8f, 0.1f, 0.1f});
}

// --- shrink_project (paper eq. (5)) ---------------------------------------

TEST(ShrinkProject, ThreeRegimes) {
  const Tensor x0 = Tensor::from_data(Shape({3}), {0.5f, 0.5f, 0.5f});
  const Tensor z = Tensor::from_data(Shape({3}), {0.75f, 0.55f, 0.25f});
  Tensor out;
  shrink_project(z, x0, 0.1f, out);
  EXPECT_FLOAT_EQ(out[0], 0.65f);  // diff 0.25 > beta: z - beta
  EXPECT_FLOAT_EQ(out[1], 0.5f);   // |diff| <= beta: keep x0
  EXPECT_FLOAT_EQ(out[2], 0.35f);  // diff -0.25 < -beta: z + beta
}

TEST(ShrinkProject, ProjectsIntoUnitBox) {
  const Tensor x0 = Tensor::from_data(Shape({2}), {0.5f, 0.5f});
  const Tensor z = Tensor::from_data(Shape({2}), {1.4f, -0.4f});
  Tensor out;
  shrink_project(z, x0, 0.1f, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(ShrinkProject, BetaZeroIsPlainBoxClip) {
  const Tensor x0 = Tensor::from_data(Shape({4}), {0.5f, 0.5f, 0.5f, 0.5f});
  const Tensor z = Tensor::from_data(Shape({4}), {0.7f, 0.2f, 1.5f, -0.5f});
  Tensor out;
  shrink_project(z, x0, 0.0f, out);
  EXPECT_FLOAT_EQ(out[0], 0.7f);
  EXPECT_FLOAT_EQ(out[1], 0.2f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(ShrinkProject, ShapeMismatchThrows) {
  Tensor out;
  EXPECT_THROW(shrink_project(Tensor({2}), Tensor({3}), 0.1f, out),
               std::invalid_argument);
}

TEST(ShrinkProject, IdempotentOnFixedPoint) {
  // Points already within beta of x0 collapse to x0 and stay there.
  const Tensor x0 = Tensor::from_data(Shape({2}), {0.3f, 0.6f});
  const Tensor z = Tensor::from_data(Shape({2}), {0.35f, 0.58f});
  Tensor once, twice;
  shrink_project(z, x0, 0.1f, once);
  shrink_project(once, x0, 0.1f, twice);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(once[i], twice[i]);
}

// --- hinge machinery --------------------------------------------------------

TEST(HingeEval, MarginAndLossMatchManual) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  // logit0 = 8*1.6 = 12.8, logit1 = 8*0.2 = 1.6; margin = 1.6 - 12.8 = -11.2
  const HingeEval e = eval_untargeted_hinge(m, x, {0}, 5.0f);
  EXPECT_NEAR(e.margin[0], -11.2f, 1e-4f);
  // f = max(-margin, -kappa) = max(11.2, -5) = 11.2
  EXPECT_NEAR(e.f[0], 11.2f, 1e-4f);
}

TEST(HingeEval, SaturatesAtMinusKappa) {
  nn::Sequential m = linear_model(8.0f);
  // Strongly class-1 input evaluated with label 0: margin large positive.
  const Tensor x =
      Tensor::from_data(Shape({1, 1, 2, 2}), {0.0f, 0.0f, 0.9f, 0.9f});
  const HingeEval e = eval_untargeted_hinge(m, x, {0}, 5.0f);
  EXPECT_GT(e.margin[0], 5.0f);
  EXPECT_FLOAT_EQ(e.f[0], -5.0f);
}

TEST(HingeGradient, PointsTowardOtherClass) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  const HingeEval e = eval_untargeted_hinge(m, x, {0}, 5.0f);
  const Tensor g = hinge_input_gradient(m, e, {0}, 5.0f, {1.0f});
  // d f / d x = d(logit0 - logit1)/dx = s*(1,1,-1,-1).
  EXPECT_NEAR(g[0], 8.0f, 1e-4f);
  EXPECT_NEAR(g[1], 8.0f, 1e-4f);
  EXPECT_NEAR(g[2], -8.0f, 1e-4f);
  EXPECT_NEAR(g[3], -8.0f, 1e-4f);
}

TEST(HingeGradient, ZeroWhenHingeInactive) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x =
      Tensor::from_data(Shape({1, 1, 2, 2}), {0.0f, 0.0f, 0.9f, 0.9f});
  const HingeEval e = eval_untargeted_hinge(m, x, {0}, 5.0f);
  const Tensor g = hinge_input_gradient(m, e, {0}, 5.0f, {1.0f});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 0.0f);
}

TEST(AttackResult, SuccessStatsAndDistortionMeans) {
  AttackResult r;
  r.adversarial = Tensor({3, 1, 1, 2});
  r.success = {true, false, true};
  r.l1 = {1.0f, 99.0f, 3.0f};
  r.l2 = {0.5f, 99.0f, 1.5f};
  EXPECT_EQ(r.success_count(), 2u);
  EXPECT_FLOAT_EQ(r.success_rate(), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(r.mean_l1_over_success(), 2.0f);
  EXPECT_FLOAT_EQ(r.mean_l2_over_success(), 1.0f);
}

TEST(FillDistortions, ComputesRowwiseNorms) {
  AttackResult r;
  const Tensor nat = Tensor::from_data(Shape({2, 1, 1, 2}), {0, 0, 0, 0});
  r.adversarial =
      Tensor::from_data(Shape({2, 1, 1, 2}), {0.3f, -0.4f, 0.0f, 0.0f});
  fill_distortions(r, nat);
  EXPECT_FLOAT_EQ(r.l1[0], 0.7f);
  EXPECT_FLOAT_EQ(r.l2[0], 0.5f);
  EXPECT_FLOAT_EQ(r.linf[0], 0.4f);
  EXPECT_FLOAT_EQ(r.l1[1], 0.0f);
}

// --- EAD / C&W ---------------------------------------------------------------

TEST(Ead, FlipsLinearModelWithRequestedMargin) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  EadConfig cfg;
  cfg.beta = 0.01f;
  cfg.kappa = 2.0f;
  cfg.iterations = 150;
  cfg.binary_search_steps = 4;
  cfg.initial_c = 1.0f;
  const AttackResult r = ead_attack(m, x, {0}, cfg);
  ASSERT_TRUE(r.success[0]);
  // Verify the margin on the crafted example.
  const HingeEval e =
      eval_untargeted_hinge(m, r.adversarial, {0}, cfg.kappa);
  EXPECT_GE(e.margin[0], cfg.kappa - 1e-3f);
  // Box constraint holds.
  EXPECT_GE(min_value(r.adversarial), 0.0f);
  EXPECT_LE(max_value(r.adversarial), 1.0f);
  // Distortion recorded and nonzero.
  EXPECT_GT(r.l1[0], 0.0f);
  EXPECT_GT(r.l2[0], 0.0f);
}

TEST(Ead, FailedRowsKeepNaturalImage) {
  nn::Sequential m = linear_model(1000.0f);  // margin unreachable in budget
  const Tensor x = class0_image();
  EadConfig cfg;
  cfg.kappa = 1e6f;
  cfg.iterations = 5;
  cfg.binary_search_steps = 1;
  cfg.initial_c = 1e-6f;
  const AttackResult r = ead_attack(m, x, {0}, cfg);
  EXPECT_FALSE(r.success[0]);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(r.adversarial[i], x[i]);
  }
  EXPECT_FLOAT_EQ(r.l1[0], 0.0f);
}

TEST(Ead, LargerBetaGivesSparserPerturbation) {
  nn::Sequential m = linear_model(8.0f);
  // 16-pixel image so sparsity is measurable; class 0 active on the first
  // half of pixels.
  Rng rng(9);
  nn::Sequential wide;
  wide.emplace<nn::Flatten>();
  auto& lin = wide.emplace<nn::Linear>(16, 2, rng);
  Tensor w({16, 2});
  for (std::size_t i = 0; i < 16; ++i) {
    // Varying weights so the attack has "important" and "unimportant"
    // pixels to choose between.
    w.at(i, 0) = (i < 8) ? 4.0f + 0.5f * static_cast<float>(i) : 0.0f;
    w.at(i, 1) = (i < 8) ? 0.0f : 4.0f + 0.5f * static_cast<float>(i - 8);
  }
  *lin.parameters()[0] = w;
  lin.parameters()[1]->fill(0.0f);

  Tensor x({1, 1, 4, 4}, 0.0f);
  for (std::size_t i = 0; i < 8; ++i) x[i] = 0.6f;  // class 0 ink

  auto run = [&](float beta) {
    EadConfig cfg;
    cfg.beta = beta;
    cfg.kappa = 1.0f;
    cfg.iterations = 200;
    cfg.binary_search_steps = 4;
    cfg.initial_c = 1.0f;
    cfg.rule = DecisionRule::L1;
    return ead_attack(wide, x, {0}, cfg);
  };
  const AttackResult dense = run(0.0f);
  const AttackResult sparse = run(0.05f);
  ASSERT_TRUE(dense.success[0]);
  ASSERT_TRUE(sparse.success[0]);
  auto nonzeros = [&](const AttackResult& r) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      if (std::fabs(r.adversarial[i] - x[i]) > 1e-4f) ++n;
    }
    return n;
  };
  EXPECT_LT(nonzeros(sparse), nonzeros(dense));
  EXPECT_LT(sparse.l1[0], dense.l1[0] + 1e-3f);
}

TEST(Ead, MultiRuleSharesSuccessesAndOrdersDistortion) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  EadConfig cfg;
  cfg.beta = 0.02f;
  cfg.kappa = 1.0f;
  cfg.iterations = 120;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 1.0f;
  const DecisionRule rules[2] = {DecisionRule::EN, DecisionRule::L1};
  const auto rs = ead_attack_multi(m, x, {0}, cfg, rules);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].success[0], rs[1].success[0]);
  ASSERT_TRUE(rs[0].success[0]);
  // The L1-rule pick cannot have larger L1 than the EN-rule pick.
  EXPECT_LE(rs[1].l1[0], rs[0].l1[0] + 1e-4f);
}

TEST(Ead, ValidatesConfiguration) {
  nn::Sequential m = linear_model();
  const Tensor x = class0_image();
  EadConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(ead_attack(m, x, {0}, cfg), std::invalid_argument);
  cfg.iterations = 10;
  cfg.binary_search_steps = 0;
  EXPECT_THROW(ead_attack(m, x, {0}, cfg), std::invalid_argument);
  cfg.binary_search_steps = 1;
  EXPECT_THROW(ead_attack(m, x, {0, 1}, cfg), std::invalid_argument);
  EXPECT_THROW(
      ead_attack_multi(m, x, {0}, cfg, std::span<const DecisionRule>{}),
      std::invalid_argument);
}

TEST(CwL2, IsEadWithZeroBeta) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  CwL2Config cw;
  cw.kappa = 1.0f;
  cw.iterations = 120;
  cw.binary_search_steps = 3;
  cw.initial_c = 1.0f;
  const AttackResult a = cw_l2_attack(m, x, {0}, cw);

  EadConfig ead;
  ead.beta = 0.0f;
  ead.kappa = 1.0f;
  ead.iterations = 120;
  ead.binary_search_steps = 3;
  ead.initial_c = 1.0f;
  ead.rule = DecisionRule::L2;
  const AttackResult b = ead_attack(m, x, {0}, ead);
  ASSERT_TRUE(a.success[0]);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.adversarial[i], b.adversarial[i]);
  }
}

TEST(CwL2, HigherConfidenceCostsMoreDistortion) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  auto run = [&](float kappa) {
    CwL2Config cfg;
    cfg.kappa = kappa;
    cfg.iterations = 150;
    cfg.binary_search_steps = 4;
    cfg.initial_c = 1.0f;
    return cw_l2_attack(m, x, {0}, cfg);
  };
  const AttackResult lo = run(0.5f);
  const AttackResult hi = run(8.0f);
  ASSERT_TRUE(lo.success[0]);
  ASSERT_TRUE(hi.success[0]);
  EXPECT_GT(hi.l2[0], lo.l2[0]);
}

TEST(TargetedHinge, MarginOrientedTowardTarget) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  // Target class 1: margin = z_1 - z_0 = 1.6 - 12.8 = -11.2 (not reached).
  const HingeEval e =
      eval_attack_hinge(m, x, {1}, 2.0f, HingeMode::Targeted);
  EXPECT_NEAR(e.margin[0], -11.2f, 1e-4f);
  EXPECT_NEAR(e.f[0], 11.2f, 1e-4f);
  // Gradient ascends z_1 and descends z_0: d(z0 - z1)/dx = s*(1,1,-1,-1).
  const Tensor g = attack_hinge_input_gradient(m, e, {1}, 2.0f, {1.0f},
                                               HingeMode::Targeted);
  EXPECT_NEAR(g[0], 8.0f, 1e-4f);   // descending -g pushes x0, x1 down
  EXPECT_NEAR(g[2], -8.0f, 1e-4f);  // and x2, x3 up -> toward class 1
}

TEST(TargetedEad, ReachesRequestedTargetClass) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();  // naturally class 0
  EadConfig cfg;
  cfg.beta = 0.01f;
  cfg.kappa = 1.0f;
  cfg.iterations = 150;
  cfg.binary_search_steps = 4;
  cfg.initial_c = 1.0f;
  cfg.mode = HingeMode::Targeted;
  const AttackResult r = ead_attack(m, x, {1}, cfg);  // labels = targets
  ASSERT_TRUE(r.success[0]);
  const Tensor logits = m.forward(r.adversarial, nn::Mode::Eval);
  EXPECT_EQ(argmax_row(logits, 0), 1u);
  // Confidence gap satisfied.
  EXPECT_GE(logits[1] - logits[0], cfg.kappa - 1e-3f);
}

TEST(TargetedEad, HingeInactiveOnceTargetConfident) {
  nn::Sequential m = linear_model(8.0f);
  // Already strongly class 1; targeting class 1 means the hinge is
  // saturated and the gradient is zero.
  const Tensor x =
      Tensor::from_data(Shape({1, 1, 2, 2}), {0.0f, 0.0f, 0.9f, 0.9f});
  const HingeEval e =
      eval_attack_hinge(m, x, {1}, 2.0f, HingeMode::Targeted);
  EXPECT_GT(e.margin[0], 2.0f);
  const Tensor g = attack_hinge_input_gradient(m, e, {1}, 2.0f, {1.0f},
                                               HingeMode::Targeted);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 0.0f);
}

TEST(TargetedHinge, RejectsOutOfRangeLabel) {
  nn::Sequential m = linear_model();
  EXPECT_THROW(
      eval_attack_hinge(m, class0_image(), {7}, 0.0f, HingeMode::Targeted),
      std::invalid_argument);
}

// --- FGSM ---------------------------------------------------------------------

TEST(Fgsm, RespectsEpsilonBall) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  FgsmConfig cfg;
  cfg.epsilon = 0.15f;
  const AttackResult r = fgsm_attack(m, x, {0}, cfg);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::fabs(r.adversarial[i] - x[i]), cfg.epsilon + 1e-5f);
  }
  EXPECT_GE(min_value(r.adversarial), 0.0f);
  EXPECT_LE(max_value(r.adversarial), 1.0f);
}

TEST(Fgsm, LargeEpsilonFlipsLinearModel) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  FgsmConfig cfg;
  cfg.epsilon = 0.8f;
  const AttackResult r = fgsm_attack(m, x, {0}, cfg);
  EXPECT_TRUE(r.success[0]);
  EXPECT_GT(r.linf[0], 0.0f);
}

TEST(Fgsm, IterativeIsNoWeakerThanOneShot) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  FgsmConfig one;
  one.epsilon = 0.5f;
  one.iterations = 1;
  FgsmConfig many = one;
  many.iterations = 10;
  const auto r1 = fgsm_attack(m, x, {0}, one);
  const auto rn = fgsm_attack(m, x, {0}, many);
  EXPECT_GE(static_cast<int>(rn.success[0]), static_cast<int>(r1.success[0]));
}

TEST(Fgsm, ValidatesInputs) {
  nn::Sequential m = linear_model();
  FgsmConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(fgsm_attack(m, class0_image(), {0}, cfg),
               std::invalid_argument);
  cfg.iterations = 1;
  EXPECT_THROW(fgsm_attack(m, class0_image(), {0, 1}, cfg),
               std::invalid_argument);
}

// --- DeepFool -------------------------------------------------------------------

TEST(DeepFool, FlipsLinearModelWithSmallPerturbation) {
  nn::Sequential m = linear_model(8.0f);
  // Start near the boundary: x0+x1 = 0.6 vs x2+x3 = 0.4.
  const Tensor x =
      Tensor::from_data(Shape({1, 1, 2, 2}), {0.3f, 0.3f, 0.2f, 0.2f});
  DeepFoolConfig cfg;
  const AttackResult r = deepfool_attack(m, x, {0}, cfg);
  ASSERT_TRUE(r.success[0]);
  // DeepFool finds a near-minimal perturbation: boundary distance is
  // |0.2| * s / (s * 2) = 0.1 in L2 over the 4-pixel gradient direction.
  EXPECT_LT(r.l2[0], 0.3f);
  EXPECT_GE(min_value(r.adversarial), 0.0f);
  EXPECT_LE(max_value(r.adversarial), 1.0f);
}

TEST(DeepFool, LeavesAlreadyMisclassifiedAlone) {
  nn::Sequential m = linear_model(8.0f);
  const Tensor x = class0_image();
  // Deliberately wrong label: the model already "misclassifies".
  const AttackResult r = deepfool_attack(m, x, {1}, DeepFoolConfig{});
  EXPECT_TRUE(r.success[0]);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(r.adversarial[i], x[i]);
  }
}

TEST(DeepFool, ValidatesInputs) {
  nn::Sequential m = linear_model();
  EXPECT_THROW(deepfool_attack(m, class0_image(), {0, 1}, DeepFoolConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace adv::attacks
