// ROC utility tests.
#include <gtest/gtest.h>

#include "core/roc.hpp"
#include "tensor/rng.hpp"

namespace adv::core {
namespace {

TEST(Roc, PerfectlySeparableGivesAucOne) {
  const std::vector<float> clean = {0.1f, 0.2f, 0.3f};
  const std::vector<float> adv = {0.7f, 0.8f, 0.9f};
  EXPECT_FLOAT_EQ(roc_auc(clean, adv), 1.0f);
  EXPECT_FLOAT_EQ(tpr_at_fpr(clean, adv, 0.01f), 1.0f);
}

TEST(Roc, InvertedScoresGiveAucZero) {
  const std::vector<float> clean = {0.7f, 0.8f, 0.9f};
  const std::vector<float> adv = {0.1f, 0.2f, 0.3f};
  EXPECT_FLOAT_EQ(roc_auc(clean, adv), 0.0f);
  EXPECT_FLOAT_EQ(tpr_at_fpr(clean, adv, 0.01f), 0.0f);
}

TEST(Roc, IdenticalDistributionsNearChance) {
  Rng rng(5);
  std::vector<float> clean(2000), adv(2000);
  for (auto& v : clean) v = rng.uniform_f(0.0f, 1.0f);
  for (auto& v : adv) v = rng.uniform_f(0.0f, 1.0f);
  EXPECT_NEAR(roc_auc(clean, adv), 0.5f, 0.03f);
}

TEST(Roc, CurveIsMonotoneAndAnchored) {
  Rng rng(6);
  std::vector<float> clean(100), adv(100);
  for (auto& v : clean) v = rng.uniform_f(0.0f, 0.8f);
  for (auto& v : adv) v = rng.uniform_f(0.2f, 1.0f);
  const auto curve = roc_curve(clean, adv);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_FLOAT_EQ(curve.front().fpr, 0.0f);
  EXPECT_FLOAT_EQ(curve.front().tpr, 0.0f);
  EXPECT_FLOAT_EQ(curve.back().fpr, 1.0f);
  EXPECT_FLOAT_EQ(curve.back().tpr, 1.0f);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(Roc, TiedScoresHandledConsistently) {
  // All scores identical: a single threshold step from (0,0) to (1,1);
  // AUC is 0.5 by trapezoid.
  const std::vector<float> clean = {0.5f, 0.5f};
  const std::vector<float> adv = {0.5f, 0.5f};
  EXPECT_FLOAT_EQ(roc_auc(clean, adv), 0.5f);
}

TEST(Roc, TprAtFprIsMonotoneInFpr) {
  Rng rng(7);
  std::vector<float> clean(300), adv(300);
  for (auto& v : clean) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& v : adv) v = static_cast<float>(rng.normal(1.0, 1.0));
  float prev = -1.0f;
  for (const float f : {0.01f, 0.05f, 0.2f, 0.5f}) {
    const float t = tpr_at_fpr(clean, adv, f);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Roc, EmptyInputsThrow) {
  EXPECT_THROW(roc_curve({}, {1.0f}), std::invalid_argument);
  EXPECT_THROW(roc_auc({1.0f}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace adv::core
