// defense_schemes: the paper's supplementary ablation in miniature —
// evaluates one EAD attack batch against every defense configuration
// (no defense / detector only / reformer only / detector & reformer) at
// two confidence levels, showing how the two MagNet stages trade off:
// the reformer handles low-confidence attacks, the detectors handle
// high-confidence ones, and the mid-confidence "dip" is where EAD wins.
//
// Shares the quickstart cache, so it is fast after quickstart has run.
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"

int main() {
  using namespace adv;

  core::ScaleConfig cfg = core::scale_from_env();
  cfg.full = false;
  cfg.train_count = 1500;
  cfg.val_count = 300;
  cfg.test_count = 500;
  cfg.attack_count = 50;
  cfg.attack_iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.cache_dir = cfg.cache_dir / "quickstart";
  core::ModelZoo zoo(cfg);
  const auto id = core::DatasetId::Mnist;

  auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
  const auto& labels = zoo.attack_set(id).labels;

  const magnet::DefenseScheme schemes[] = {
      magnet::DefenseScheme::None, magnet::DefenseScheme::DetectorOnly,
      magnet::DefenseScheme::ReformerOnly, magnet::DefenseScheme::Full};

  std::printf("EAD (beta=0.1, EN rule) vs MagNet defense schemes on "
              "SynDigits\n\n");
  std::printf("%-24s", "scheme \\ kappa");
  const float kappas[] = {0.0f, 8.0f, 15.0f};
  for (const float k : kappas) std::printf("  k=%-6.0f", k);
  std::printf("\n");

  for (const auto scheme : schemes) {
    std::printf("%-24s", magnet::to_string(scheme));
    for (const float k : kappas) {
      const auto r = zoo.ead(id, 0.1f, k, attacks::DecisionRule::EN);
      const auto e =
          core::evaluate_defense(*pipe, r.adversarial, labels, scheme);
      std::printf("  %-8.1f", static_cast<double>(100.0f * e.accuracy));
    }
    std::printf("\n");
  }
  std::printf(
      "\nRead each column top to bottom: the reformer rescues low-kappa\n"
      "attacks, the detectors catch high-kappa ones, and neither covers\n"
      "the middle — the paper's central observation about MagNet's gap.\n");
  return 0;
}
