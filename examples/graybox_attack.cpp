// graybox_attack: the threat-model contrast the paper draws in §I.
//
// Carlini & Wagner (arXiv:1711.08478, ref [20]) bypass MagNet with a
// GRAY-BOX attack: the attacker knows an auto-encoder reformer is
// deployed (though not the defender's exact weights) and differentiates
// through a surrogate reformer + classifier composition. The reproduced
// paper's point is that such knowledge is NOT needed — oblivious EAD
// suffices. This example implements the gray-box baseline and compares:
//
//   1. oblivious C&W-L2 (crafted on the plain classifier)
//   2. oblivious EAD-L1 (crafted on the plain classifier)
//   3. gray-box C&W-L2 (crafted through surrogate reformer + classifier)
//
// reproducing the paper's conclusion: EAD reaches gray-box-level attack
// success while needing a strictly weaker threat model.
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"
#include "magnet/autoencoder.hpp"
#include "nn/trainer.hpp"

int main() {
  using namespace adv;

  core::ScaleConfig cfg = core::scale_from_env();
  cfg.full = false;
  cfg.train_count = 1500;
  cfg.val_count = 300;
  cfg.test_count = 500;
  cfg.attack_count = 40;
  cfg.attack_iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.cache_dir = cfg.cache_dir / "graybox";
  core::ModelZoo zoo(cfg);
  const auto id = core::DatasetId::Mnist;
  const float kappa = 10.0f;

  auto classifier = zoo.classifier(id);
  auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
  const auto& aset = zoo.attack_set(id);

  // Oblivious attacks: crafted on the undefended classifier only.
  const attacks::AttackResult cw = zoo.cw(id, kappa);
  const attacks::AttackResult ead =
      zoo.ead(id, 0.1f, kappa, attacks::DecisionRule::EN);

  // Gray-box attack: the attacker trains its OWN surrogate auto-encoder
  // (knows the defense family, not the defender's weights) and points
  // C&W-L2 at a GrayBoxTarget — the attack differentiates through the
  // surrogate-reformer -> classifier composition without fusing the
  // models (attacks/target.hpp; the defender keeps its own instances).
  magnet::AutoencoderConfig ac;
  ac.arch = magnet::AeArch::MnistDeep;
  ac.image_channels = 1;
  ac.filters = cfg.default_filters(id);
  ac.epochs = cfg.ae_epochs;
  ac.seed = 4242;  // different seed: surrogate != defender's AE
  auto surrogate =
      magnet::train_autoencoder(ac, zoo.dataset(id).train.images);

  attacks::GrayBoxTarget target(*surrogate, *classifier,
                                "_tmgray_surrogate");
  attacks::CwL2Config gb;
  gb.kappa = kappa;
  gb.iterations = cfg.attack_iterations;
  gb.binary_search_steps = cfg.binary_search_steps;
  gb.initial_c = 1.0f;
  const attacks::AttackResult graybox =
      attacks::cw_l2_attack(target, aset.images, aset.labels, gb);

  const auto scheme = magnet::DefenseScheme::Full;
  const auto e_cw =
      core::evaluate_defense(*pipe, cw.adversarial, aset.labels, scheme);
  const auto e_ead =
      core::evaluate_defense(*pipe, ead.adversarial, aset.labels, scheme);
  const auto e_gb =
      core::evaluate_defense(*pipe, graybox.adversarial, aset.labels, scheme);

  std::printf("\nMagNet accuracy against each attack (kappa=%g):\n",
              static_cast<double>(kappa));
  std::printf("  oblivious C&W-L2  : %5.1f%%  (threat model: none)\n",
              100.0 * e_cw.accuracy);
  std::printf("  oblivious EAD-L1  : %5.1f%%  (threat model: none)\n",
              100.0 * e_ead.accuracy);
  std::printf("  gray-box C&W-L2   : %5.1f%%  (threat model: knows the "
              "defense family)\n",
              100.0 * e_gb.accuracy);
  std::printf(
      "\nCompare the rows: oblivious EAD attains attack success comparable\n"
      "to (here, better than) the gray-box attack while assuming strictly\n"
      "less knowledge — the paper's 'substantially weaker threat model'\n"
      "claim. (The plain gray-box C&W pays for routing its gradient through\n"
      "a surrogate reformer: the perturbations grow and the detectors fire;\n"
      "Carlini & Wagner's full attack also handles the detectors "
      "explicitly.)\n");
  return 0;
}
