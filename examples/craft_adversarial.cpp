// craft_adversarial: reproduces the spirit of the paper's Figure 1 —
// crafts C&W (L2) and EAD (L1) adversarial examples for a handful of
// SynDigits/SynObjects images and writes natural / adversarial /
// perturbation images as PGM/PPM files under adversarial_gallery/.
//
// Usage: craft_adversarial [output_dir]
#include <cstdio>
#include <filesystem>

#include "core/model_zoo.hpp"
#include "data/image_io.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace adv;
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "adversarial_gallery";

  core::ScaleConfig cfg = core::scale_from_env();
  cfg.full = false;
  cfg.train_count = 1500;
  cfg.val_count = 300;
  cfg.test_count = 500;
  cfg.attack_count = 10;
  cfg.attack_iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.cache_dir = cfg.cache_dir / "gallery";
  core::ModelZoo zoo(cfg);

  for (const auto id : {core::DatasetId::Mnist, core::DatasetId::Cifar}) {
    const float kappa = id == core::DatasetId::Mnist ? 10.0f : 20.0f;
    const auto& aset = zoo.attack_set(id);
    // Both attacks are picked by name from the AttackRegistry; the zoo
    // fills in scale-matched iteration budgets and caches the runs.
    attacks::AttackOverrides o = zoo.attack_defaults(id);
    o.kappa = kappa;
    const attacks::AttackResult cw =
        zoo.run_attack(id, *attacks::make_attack("cw-l2", o));
    o.beta = 0.1f;
    o.rule = attacks::DecisionRule::EN;
    const attacks::AttackResult ead =
        zoo.run_attack(id, *attacks::make_attack("ead", o));

    const std::size_t n = std::min<std::size_t>(5, aset.labels.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string stem = std::string(core::to_string(id)) + "_" +
                               std::to_string(i) + "_label" +
                               std::to_string(aset.labels[i]);
      const Tensor nat = aset.images.slice_rows(i, i + 1);
      data::write_image(out_dir / (stem + "_natural.pnm"), nat);
      data::write_image(out_dir / (stem + "_cw.pnm"),
                        cw.adversarial.slice_rows(i, i + 1));
      data::write_image(out_dir / (stem + "_ead.pnm"),
                        ead.adversarial.slice_rows(i, i + 1));
      // Perturbation visualization: 0.5 + delta/2 (gray = untouched).
      Tensor delta = sub(ead.adversarial.slice_rows(i, i + 1), nat);
      scale_inplace(delta, 0.5f);
      for (float& v : delta.values()) v += 0.5f;
      data::write_image(out_dir / (stem + "_ead_delta.pnm"), delta);
    }
    std::printf("%s: wrote %zu example triplets (kappa=%g): C&W ASR %.0f%%, "
                "EAD ASR %.0f%%\n",
                core::to_string(id), n, static_cast<double>(kappa),
                100.0 * cw.success_rate(), 100.0 * ead.success_rate());
  }
  std::printf("gallery written to %s\n", out_dir.string().c_str());
  return 0;
}
