// detector_calibration: shows how MagNet's detector thresholds are chosen
// and what they cost — sweeps the false-positive rate and reports, for
// each detector, the threshold, the clean-accuracy cost, and the
// detection rate on a batch of EAD adversarial examples.
//
// This is the knob the paper's "robust MagNet" discussion turns: a lower
// fpr keeps more clean accuracy but lets more adversarial examples
// through.
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"
#include "core/roc.hpp"

int main() {
  using namespace adv;

  core::ScaleConfig cfg = core::scale_from_env();
  cfg.full = false;
  cfg.train_count = 1500;
  cfg.val_count = 400;
  cfg.test_count = 500;
  cfg.attack_count = 40;
  cfg.attack_iterations = 64;
  cfg.binary_search_steps = 3;
  cfg.cache_dir = cfg.cache_dir / "calibration";
  core::ModelZoo zoo(cfg);
  const auto id = core::DatasetId::Mnist;

  const auto& ds = zoo.dataset(id);
  const auto& aset = zoo.attack_set(id);
  const attacks::AttackResult ead =
      zoo.ead(id, 0.1f, 10.0f, attacks::DecisionRule::EN);
  std::printf("EAD (beta=0.1, kappa=10) undefended ASR: %.0f%%\n\n",
              100.0 * ead.success_rate());

  std::printf("%-8s  %-22s  %-22s  %-14s  %-12s\n", "fpr",
              "thr(recon-L2, deep AE)", "thr(recon-L1, shallow)",
              "clean acc (%)", "EAD det (%)");
  for (const float fpr : {0.001f, 0.005f, 0.01f, 0.02f, 0.05f, 0.1f}) {
    auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
    pipe->calibrate(ds.val.images, fpr);
    const float clean =
        100.0f * pipe->clean_accuracy(ds.test.images, ds.test.labels);
    const core::DefenseEval e =
        core::evaluate_defense(*pipe, ead.adversarial, aset.labels,
                               magnet::DefenseScheme::DetectorOnly);
    std::printf("%-8g  %-22.5f  %-22.5f  %-14.1f  %-12.1f\n",
                static_cast<double>(fpr),
                static_cast<double>(pipe->detector(0).threshold()),
                static_cast<double>(pipe->detector(1).threshold()),
                static_cast<double>(clean),
                static_cast<double>(100.0f * e.detection_rate));
  }
  // Threshold-free view: per-detector ROC AUC for C&W vs EAD examples.
  // The paper's claim in one number per cell: every detector separates
  // C&W's L2 examples from clean data better than EAD's L1 examples.
  const attacks::AttackResult cw = zoo.cw(id, 10.0f);
  auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
  std::printf("\nDetector ROC AUC (clean vs adversarial scores, kappa=10):\n");
  std::printf("%-24s  %-10s  %-10s\n", "detector", "C&W", "EAD");
  for (std::size_t i = 0; i < pipe->detector_count(); ++i) {
    auto& det = pipe->detector(i);
    const auto clean_scores = det.scores(ds.test.images);
    const float auc_cw = core::roc_auc(clean_scores,
                                       det.scores(cw.adversarial));
    const float auc_ead = core::roc_auc(clean_scores,
                                        det.scores(ead.adversarial));
    std::printf("%-24s  %-10.3f  %-10.3f\n", det.name().c_str(),
                static_cast<double>(auc_cw), static_cast<double>(auc_ead));
  }
  std::printf(
      "\nLower fpr keeps clean accuracy but weakens detection — the paper's\n"
      "point is that NO threshold separates EAD's L1 examples from clean "
      "data\nas cleanly as it separates C&W's L2 examples.\n");
  return 0;
}
