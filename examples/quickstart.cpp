// Quickstart: the full pipeline in one file.
//
//   1. Generate a synthetic MNIST-like dataset.
//   2. Train a CNN classifier and the MagNet auto-encoders.
//   3. Build + calibrate the default MagNet defense.
//   4. Craft C&W (L2) and EAD (L1) transfer attacks on the UNDEFENDED
//      classifier (the oblivious threat model).
//   5. Evaluate both against MagNet: EAD bypasses, C&W does not.
//
// Runs in under a couple of minutes on a laptop CPU. Uses a reduced scale
// independent of REPRO_SCALE so it always stays snappy.
#include <cstdio>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"

int main() {
  using namespace adv;

  core::ScaleConfig cfg = core::scale_from_env();
  cfg.full = false;
  cfg.train_count = 1500;
  cfg.val_count = 300;
  cfg.test_count = 500;
  cfg.attack_count = 50;
  cfg.attack_iterations = 80;
  cfg.binary_search_steps = 3;
  cfg.cache_dir = cfg.cache_dir / "quickstart";

  core::ModelZoo zoo(cfg);
  const auto mnist = core::DatasetId::Mnist;

  std::printf("== quickstart: MagNet vs L1 attacks on SynDigits ==\n");
  std::printf("clean test accuracy (no defense): %.1f%%\n",
              100.0f * zoo.clean_test_accuracy(mnist));

  auto pipeline = core::build_magnet(zoo, mnist, core::MagnetVariant::Default);
  const auto& ds = zoo.dataset(mnist);
  std::printf("clean test accuracy (with MagNet): %.1f%%\n",
              100.0f * pipeline->clean_accuracy(ds.test.images,
                                                ds.test.labels));

  // Mid confidence, where MagNet's reformer no longer fixes attacks and
  // its detectors do not yet fire (the paper's headline region; on the
  // synthetic dataset the dip sits near kappa 5-10, see EXPERIMENTS.md).
  const float kappa = 5.0f;
  const auto& aset = zoo.attack_set(mnist);

  const attacks::AttackResult cw = zoo.cw(mnist, kappa);
  const attacks::AttackResult ead =
      zoo.ead(mnist, 1e-1f, kappa, attacks::DecisionRule::EN);

  std::printf("\nattack success on the UNDEFENDED model (kappa=%.0f):\n",
              static_cast<double>(kappa));
  std::printf("  C&W L2          : %5.1f%%  (mean L1 %.2f, L2 %.2f)\n",
              100.0f * cw.success_rate(), cw.mean_l1_over_success(),
              cw.mean_l2_over_success());
  std::printf("  EAD (EN, b=0.1) : %5.1f%%  (mean L1 %.2f, L2 %.2f)\n",
              100.0f * ead.success_rate(), ead.mean_l1_over_success(),
              ead.mean_l2_over_success());

  const auto scheme = magnet::DefenseScheme::Full;
  const core::DefenseEval e_cw =
      core::evaluate_defense(*pipeline, cw.adversarial, aset.labels, scheme);
  const core::DefenseEval e_ead =
      core::evaluate_defense(*pipeline, ead.adversarial, aset.labels, scheme);

  std::printf("\ndefense performance of MagNet (oblivious setting):\n");
  std::printf("  vs C&W L2       : accuracy %5.1f%%  (detected %4.1f%%)\n",
              100.0f * e_cw.accuracy, 100.0f * e_cw.detection_rate);
  std::printf("  vs EAD (L1)     : accuracy %5.1f%%  (detected %4.1f%%)\n",
              100.0f * e_ead.accuracy, 100.0f * e_ead.detection_rate);
  std::printf(
      "\nThe gap above is the paper's headline result in miniature: L1-based\n"
      "EAD examples evade MagNet more often than pure-L2 C&W examples at the\n"
      "same confidence. The bench binaries (build/bench/) run the full-size\n"
      "version of this comparison for every table and figure in the paper.\n");
  return 0;
}
