// Figure 4: C&W-L2 attack vs the four MNIST MagNet variants, with the
// defense-scheme ablation (no defense / detector / reformer / both).
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Mnist;
  core::ShardedBench sb;
  sb.name = "fig4_mnist_cw_ablation";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(zoo, id,
                         {core::MagnetVariant::Default, core::MagnetVariant::Jsd,
                          core::MagnetVariant::Wide,
                          core::MagnetVariant::WideJsd});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    std::printf("== Figure 4: C&W ablation on MNIST ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    const std::pair<core::MagnetVariant, const char*> panels[] = {
        {core::MagnetVariant::Default, "a_default"},
        {core::MagnetVariant::Jsd, "b_jsd"},
        {core::MagnetVariant::Wide, "c_256"},
        {core::MagnetVariant::WideJsd, "d_256_jsd"},
    };
    for (const auto& [variant, tag] : panels) {
      auto pipe = core::build_magnet(zoo, id, variant);
      const auto curves = bench::scheme_ablation_curves(
          zoo, id, *pipe, [&](float k) { return zoo.cw(id, k); });
      bench::emit(std::string("Fig 4 (") + tag + ") — C&W vs MagNet " +
                      core::to_string(variant) + " (accuracy %)",
                  std::string("fig4_") + tag + ".csv", curves);
    }
  };
  return core::shard_main(argc, argv, sb);
}
