// Table I: comparison of attacks on the DEFAULT MagNet on MNIST and
// CIFAR-10 — attack success rate against the defended pipeline plus mean
// L1/L2 distortion over successful examples. Extra baseline rows (FGSM,
// I-FGSM, DeepFool) cover the attacks §I says MagNet defends.
#include "bench_common.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"

using namespace adv;

namespace {

void row(const char* name, float asr_pct, const attacks::AttackResult& r) {
  std::printf("%-24s  ASR %6.1f%%   L1 %8.3f   L2 %7.3f\n", name, asr_pct,
              r.mean_l1_over_success(), r.mean_l2_over_success());
}

void dataset_block(core::ModelZoo& zoo, core::DatasetId id,
                   float cw_kappa_paper, float ead_kappa_paper) {
  const float cw_kappa = bench::snap_kappa(zoo.scale(), id, cw_kappa_paper);
  const float ead_kappa = bench::snap_kappa(zoo.scale(), id, ead_kappa_paper);
  auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
  const auto& labels = zoo.attack_set(id).labels;
  const auto scheme = magnet::DefenseScheme::Full;

  std::printf("\n--- %s (default MagNet; C&W kappa=%g, EAD kappa=%g) ---\n",
              core::to_string(id), static_cast<double>(cw_kappa),
              static_cast<double>(ead_kappa));

  // Attacks are selected by name through the AttackRegistry; the zoo
  // supplies scale-matched defaults and caches each run by attack tag.
  attacks::AttackOverrides cw_overrides = zoo.attack_defaults(id);
  cw_overrides.kappa = cw_kappa;
  const auto cw =
      zoo.run_attack(id, *attacks::make_attack("cw-l2", cw_overrides));
  row("C&W (L2)", 100.0f - bench::defended_accuracy_pct(*pipe, cw, labels,
                                                        scheme),
      cw);

  for (const attacks::DecisionRule rule :
       {attacks::DecisionRule::EN, attacks::DecisionRule::L1}) {
    for (const float beta : {1e-3f, 1e-2f, 5e-2f, 1e-1f}) {
      const auto r = zoo.ead(id, beta, ead_kappa, rule);
      char name[64];
      std::snprintf(name, sizeof(name), "EAD (%s rule) b=%g",
                    attacks::to_string(rule), static_cast<double>(beta));
      row(name,
          100.0f - bench::defended_accuracy_pct(*pipe, r, labels, scheme),
          r);
    }
  }

  // Baseline rows beyond the paper's table (attacks MagNet defends),
  // likewise registry-selected by name.
  const struct {
    const char* label;
    const char* name;
    attacks::AttackOverrides overrides;
  } baselines[] = {
      {"FGSM (eps=0.1)", "fgsm", {.epsilon = 0.1f}},
      {"I-FGSM (eps=0.1, 10it)", "ifgsm", {.epsilon = 0.1f}},
      {"DeepFool", "deepfool", {}},
  };
  for (const auto& b : baselines) {
    const auto r =
        zoo.run_attack(id, *attacks::make_attack(b.name, b.overrides));
    row(b.label,
        100.0f - bench::defended_accuracy_pct(*pipe, r, labels, scheme), r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Per-attack metrics (iterations, gradient queries, time-to-success) are
  // part of this driver's output; ADV_OBS=0 in the environment pins them off.
  // Workers re-enter main, so the fanned-out processes inherit the same
  // obs policy.
  if (!obs::enabled_pinned_by_env()) obs::set_enabled(true);
  core::ShardedBench sb;
  sb.name = "table1_attack_comparison";
  sb.warm = [](core::ModelZoo& zoo) {
    for (const auto id : {core::DatasetId::Mnist, core::DatasetId::Cifar}) {
      bench::warm_variants(zoo, id, {core::MagnetVariant::Default});
    }
  };
  sb.body = [](core::ModelZoo& zoo) {
    std::printf("== Table I: attacks vs default MagNet ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    std::printf("(paper: MNIST C&W ASR 10%% vs EAD ~90%%; CIFAR C&W 52%% vs "
                "EAD ~80%%)\n");
    dataset_block(zoo, core::DatasetId::Mnist, 15.0f, 15.0f);
    dataset_block(zoo, core::DatasetId::Cifar, 20.0f, 15.0f);
    if (obs::kCompiledIn && obs::enabled() &&
        obs::write_json("BENCH_attacks.json", "attack/")) {
      std::printf("wrote BENCH_attacks.json\n");
    }
    // Self-healing counters (fault/cache_quarantined, fault/cache_rebuilt,
    // fault/train_diverged) are recorded unconditionally — emit them even
    // when the per-attack instrumentation is pinned off.
    if (obs::write_json("BENCH_fault.json", "fault/")) {
      std::printf("wrote BENCH_fault.json\n");
    }
  };
  return core::shard_main(argc, argv, sb);
}
