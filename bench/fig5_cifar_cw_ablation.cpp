// Figure 5: C&W-L2 attack vs the CIFAR MagNet variants with the
// defense-scheme ablation.
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Cifar;
  core::ShardedBench sb;
  sb.name = "fig5_cifar_cw_ablation";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(
        zoo, id, {core::MagnetVariant::Default, core::MagnetVariant::Wide});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    std::printf("== Figure 5: C&W ablation on CIFAR ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    const std::pair<core::MagnetVariant, const char*> panels[] = {
        {core::MagnetVariant::Default, "a_default"},
        {core::MagnetVariant::Wide, "b_256"},
    };
    for (const auto& [variant, tag] : panels) {
      auto pipe = core::build_magnet(zoo, id, variant);
      const auto curves = bench::scheme_ablation_curves(
          zoo, id, *pipe, [&](float k) { return zoo.cw(id, k); });
      bench::emit(std::string("Fig 5 (") + tag + ") — C&W vs MagNet " +
                      core::to_string(variant) + " (accuracy %)",
                  std::string("fig5_") + tag + ".csv", curves);
    }
  };
  return core::shard_main(argc, argv, sb);
}
