// Figure 7: EAD (beta x decision rule) vs the DEFAULT MagNet on CIFAR-10,
// with the defense-scheme ablation.
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig7_cifar_ead_ablation", "7",
                                       adv::core::DatasetId::Cifar,
                                       adv::core::MagnetVariant::Default);
}
