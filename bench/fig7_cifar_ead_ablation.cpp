// Figure 7: EAD (beta x decision rule) vs the DEFAULT MagNet on CIFAR-10,
// with the defense-scheme ablation.
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("7", adv::core::DatasetId::Cifar,
                                      adv::core::MagnetVariant::Default);
  return 0;
}
