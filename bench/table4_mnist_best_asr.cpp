// Table IV: best (max over kappa) attack success rate of EAD against each
// MNIST MagNet variant, per decision rule and beta.
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Mnist;
  core::ShardedBench sb;
  sb.name = "table4_mnist_best_asr";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(zoo, id,
                         {core::MagnetVariant::Default, core::MagnetVariant::Jsd,
                          core::MagnetVariant::Wide,
                          core::MagnetVariant::WideJsd});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    const auto& cfg = zoo.scale();
    std::printf("== Table IV: best EAD ASR (%%) on MNIST ==\n");
    std::printf("scale: %s\n", bench::scale_banner(cfg));
    std::printf("(paper, EN rule b=0.1: D 90.2, D+JSD 55.6, D+256 94.3, "
                "D+256+JSD 65.1)\n\n");

    const core::MagnetVariant variants[] = {
        core::MagnetVariant::Default, core::MagnetVariant::Jsd,
        core::MagnetVariant::Wide, core::MagnetVariant::WideJsd};
    std::vector<std::shared_ptr<magnet::MagNetPipeline>> pipes;
    for (const auto v : variants) {
      pipes.push_back(core::build_magnet(zoo, id, v));
    }
    const auto& labels = zoo.attack_set(id).labels;

    std::printf("%-8s %-8s %10s %10s %10s %12s\n", "rule", "beta", "D",
                "D+JSD", "D+256", "D+256+JSD");
    for (const auto rule :
         {attacks::DecisionRule::EN, attacks::DecisionRule::L1}) {
      for (const float beta : {1e-3f, 1e-2f, 5e-2f, 1e-1f}) {
        std::printf("%-8s %-8g", attacks::to_string(rule),
                    static_cast<double>(beta));
        for (std::size_t p = 0; p < pipes.size(); ++p) {
          float best_asr = 0.0f;
          for (const float k : cfg.kappas(id)) {
            const auto r = zoo.ead(id, beta, k, rule);
            const float asr = 100.0f - bench::defended_accuracy_pct(
                                           *pipes[p], r, labels,
                                           magnet::DefenseScheme::Full);
            best_asr = std::max(best_asr, asr);
          }
          std::printf(" %10.1f", static_cast<double>(best_asr));
          if (p == 3) std::printf("  ");
        }
        std::printf("\n");
      }
    }
  };
  return core::shard_main(argc, argv, sb);
}
