// Figure 11: EAD vs the robust CIFAR MagNet with widened auto-encoders.
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig11_cifar_ead_256", "11",
                                       adv::core::DatasetId::Cifar,
                                       adv::core::MagnetVariant::Wide);
}
