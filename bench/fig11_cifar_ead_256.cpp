// Figure 11: EAD vs the robust CIFAR MagNet with widened auto-encoders.
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("11", adv::core::DatasetId::Cifar,
                                      adv::core::MagnetVariant::Wide);
  return 0;
}
