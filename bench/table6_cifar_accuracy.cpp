// Table VI: CIFAR-10 test accuracy with and without MagNet (D, D+256).
#include "bench_common.hpp"

using namespace adv;

int main() {
  core::ModelZoo zoo(core::scale_from_env());
  const auto id = core::DatasetId::Cifar;
  std::printf("== Table VI: CIFAR test accuracy (%%) ==\n");
  std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
  std::printf("(paper: without 86.91; with MagNet 83.33 / 83.40)\n\n");
  const float base = 100.0f * zoo.clean_test_accuracy(id);
  const auto& ds = zoo.dataset(id);
  std::printf("%-10s  %-16s  %-14s\n", "variant", "without MagNet",
              "with MagNet");
  for (const auto v :
       {core::MagnetVariant::Default, core::MagnetVariant::Wide}) {
    auto pipe = core::build_magnet(zoo, id, v);
    std::printf("%-10s  %-16.2f  %-14.2f\n", core::to_string(v),
                static_cast<double>(base),
                static_cast<double>(100.0f * pipe->clean_accuracy(
                                        ds.test.images, ds.test.labels)));
  }
  return 0;
}
