// Threat-model axis of Table I (Carlini & Wagner, arXiv:1711.08478):
// every registry attack crafted under the oblivious, gray-box and
// detector-aware threat models against the default MNIST MagNet, scored
// against all four defense schemes. The paper's tables assume the
// oblivious attacker; this bench quantifies how much of the defense
// survives once the attacker models the reformer (gray-box) and the
// detector bank (detector-aware).
//
// Emits BENCH_threatmodel.json (gauges under threat/): per
// attack x threat-model cell the crafting success rate and mean L1/L2
// over successful rows, per scheme the attack success rate against the
// defended pipeline, plus threat/oblivious_identity — 1 when the new
// ObliviousTarget path reproduced the legacy nn::Sequential& attack path
// bitwise for every attack (the API-redesign regression gate; ci.sh
// asserts it).
#include <cstring>

#include "bench_common.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"

using namespace adv;

namespace {

const char* kAttacks[] = {"fgsm", "ifgsm", "cw-l2", "deepfool", "ead"};

constexpr attacks::ThreatModel kThreatModels[] = {
    attacks::ThreatModel::Oblivious, attacks::ThreatModel::GrayBox,
    attacks::ThreatModel::DetectorAware};

constexpr magnet::DefenseScheme kSchemes[] = {
    magnet::DefenseScheme::None, magnet::DefenseScheme::DetectorOnly,
    magnet::DefenseScheme::ReformerOnly, magnet::DefenseScheme::Full};

// Short stable scheme keys for metric names (to_string has spaces/&).
const char* scheme_key(magnet::DefenseScheme s) {
  switch (s) {
    case magnet::DefenseScheme::None: return "none";
    case magnet::DefenseScheme::DetectorOnly: return "detector";
    case magnet::DefenseScheme::ReformerOnly: return "reformer";
    case magnet::DefenseScheme::Full: return "full";
  }
  return "?";
}

attacks::AttackOverrides overrides_for(core::ModelZoo& zoo,
                                       core::DatasetId id, float kappa,
                                       const std::string& name) {
  attacks::AttackOverrides o;
  if (name == "fgsm" || name == "ifgsm") {
    o.epsilon = 0.1f;
    return o;
  }
  if (name == "deepfool") return o;
  o = zoo.attack_defaults(id);
  o.kappa = kappa;
  if (name == "ead") {
    o.beta = 1e-2f;
    o.rule = attacks::DecisionRule::EN;
  }
  return o;
}

bool bitwise_equal(const attacks::AttackResult& a,
                   const attacks::AttackResult& b) {
  if (a.adversarial.numel() != b.adversarial.numel()) return false;
  if (std::memcmp(a.adversarial.data(), b.adversarial.data(),
                  a.adversarial.numel() * sizeof(float)) != 0) {
    return false;
  }
  return a.success == b.success && a.l1 == b.l1 && a.l2 == b.l2 &&
         a.linf == b.linf;
}

void dataset_block(core::ModelZoo& zoo, core::DatasetId id, float kappa) {
  auto& reg = obs::MetricsRegistry::global();
  const auto& labels = zoo.attack_set(id).labels;
  auto eval_pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);

  std::printf("\n--- %s (default MagNet; kappa=%g) ---\n",
              core::to_string(id), static_cast<double>(kappa));
  std::printf("%-10s %-15s  craft%%   L1      L2     | ASR%% none/det/ref/full\n",
              "attack", "threat model");

  bool identity = true;
  for (const attacks::ThreatModel tm : kThreatModels) {
    core::AttackTargetBundle bundle =
        core::build_attack_target(zoo, id, tm, core::MagnetVariant::Default);
    for (const char* name : kAttacks) {
      const auto attack =
          attacks::make_attack(name, overrides_for(zoo, id, kappa, name));
      const attacks::AttackResult r =
          zoo.run_attack(id, *attack, *bundle.target);

      if (tm == attacks::ThreatModel::Oblivious) {
        // Regression gate: the oblivious target must reproduce the legacy
        // nn::Sequential& path bitwise (uncached, straight through the
        // old overload).
        const auto& s = zoo.attack_set(id);
        const attacks::AttackResult legacy =
            attack->run(*bundle.classifier, s.images, s.labels);
        if (!bitwise_equal(r, legacy)) {
          identity = false;
          std::printf("!! oblivious/%s diverges from the legacy path\n",
                      name);
        }
      }

      const std::string base = std::string("threat/") + core::to_string(id) +
                               "/" + name + "/" +
                               attacks::to_string(tm) + "/";
      reg.gauge(base + "craft_success_rate").set(r.success_rate());
      reg.gauge(base + "mean_l1").set(r.mean_l1_over_success());
      reg.gauge(base + "mean_l2").set(r.mean_l2_over_success());
      float asr[4];
      for (std::size_t s = 0; s < 4; ++s) {
        asr[s] = 100.0f - bench::defended_accuracy_pct(*eval_pipe, r, labels,
                                                       kSchemes[s]);
        reg.gauge(base + scheme_key(kSchemes[s]) + "/asr_pct").set(asr[s]);
      }
      std::printf(
          "%-10s %-15s  %5.1f  %7.3f %7.3f |  %5.1f %5.1f %5.1f %5.1f\n",
          name, attacks::to_string(tm), 100.0f * r.success_rate(),
          r.mean_l1_over_success(), r.mean_l2_over_success(), asr[0], asr[1],
          asr[2], asr[3]);
    }
  }
  reg.gauge("threat/oblivious_identity").set(identity ? 1.0 : 0.0);
  std::printf("oblivious-vs-legacy bitwise identity: %s\n",
              identity ? "OK" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  if (!obs::enabled_pinned_by_env()) obs::set_enabled(true);
  core::ShardedBench sb;
  sb.name = "table1_threat_models";
  sb.warm = [](core::ModelZoo& zoo) {
    bench::warm_variants(zoo, core::DatasetId::Mnist,
                         {core::MagnetVariant::Default});
  };
  sb.body = [](core::ModelZoo& zoo) {
    std::printf("== Table I extension: threat-model axis ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    // Low confidence is the operating point where the threat models
    // separate (Carlini & Wagner's setting): oblivious kappa=0 examples
    // sit on the decision boundary and the reformer snaps them back,
    // while gray-box examples craft THROUGH the reformer and survive it
    // with far smaller (detector-evading) distortion. At the paper's
    // kappa=15 the oblivious EAD rows already beat the reformer — that
    // story belongs to table1_attack_comparison.
    const float kappa =
        bench::snap_kappa(zoo.scale(), core::DatasetId::Mnist, 0.0f);
    dataset_block(zoo, core::DatasetId::Mnist, kappa);
    if (obs::write_json("BENCH_threatmodel.json", "threat/")) {
      std::printf("wrote BENCH_threatmodel.json\n");
    }
  };
  return core::shard_main(argc, argv, sb);
}
