// Table III: MNIST test accuracy with and without MagNet for the four
// defensive variants (D, D+JSD, D+256, D+256+JSD).
#include "bench_common.hpp"

using namespace adv;

int main() {
  core::ModelZoo zoo(core::scale_from_env());
  const auto id = core::DatasetId::Mnist;
  std::printf("== Table III: MNIST test accuracy (%%) ==\n");
  std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
  std::printf("(paper: without 99.42; with MagNet 99.13 / 97.75 / 99.24 / "
              "97.55)\n\n");
  const float base = 100.0f * zoo.clean_test_accuracy(id);
  const auto& ds = zoo.dataset(id);
  std::printf("%-14s  %-16s  %-14s\n", "variant", "without MagNet",
              "with MagNet");
  for (const auto v :
       {core::MagnetVariant::Default, core::MagnetVariant::Jsd,
        core::MagnetVariant::Wide, core::MagnetVariant::WideJsd}) {
    auto pipe = core::build_magnet(zoo, id, v);
    const float with_magnet =
        100.0f * pipe->clean_accuracy(ds.test.images, ds.test.labels);
    std::printf("%-14s  %-16.2f  %-14.2f\n", core::to_string(v),
                static_cast<double>(base), static_cast<double>(with_magnet));
  }
  return 0;
}
