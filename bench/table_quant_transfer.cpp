// Float -> int8 attack-transfer study (DESIGN.md §17): adversarial
// examples are crafted with full-precision gradients against the FLOAT
// defended pipeline (the only gradients an attacker can take — the int8
// path has no backward), then replayed through BOTH execution banks of
// the same pipeline. For every attack x defense-scheme cell the bench
// reports the attack success rate under float and int8 execution and
// their delta, plus the per-detector mean |score drift| the quantized
// models induce — the quantity that says whether the float-calibrated
// thresholds are still meaningful on the int8 path.
//
// Emits BENCH_quant_transfer.json (gauges under qtransfer/):
//   qtransfer/mnist/<attack>/<scheme>/asr_float_pct | asr_int8_pct |
//     asr_delta_pct            (delta = int8 - float)
//   qtransfer/mnist/<attack>/drift/<detector>        (mean |s_f - s_i|)
//   qtransfer/mnist/clean_top1_{float,int8,drift}_pct (undefended
//     classifier on the test split — the ci.sh <= 0.5% drift gate)
//   qtransfer/int8_exact (0 on AVX2-maddubs builds, where the kernel
//     saturates and the accuracy story is not certified)
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm_int8.hpp"

using namespace adv;

namespace {

constexpr magnet::DefenseScheme kSchemes[] = {
    magnet::DefenseScheme::None, magnet::DefenseScheme::DetectorOnly,
    magnet::DefenseScheme::ReformerOnly, magnet::DefenseScheme::Full};

const char* scheme_key(magnet::DefenseScheme s) {
  switch (s) {
    case magnet::DefenseScheme::None: return "none";
    case magnet::DefenseScheme::DetectorOnly: return "detector";
    case magnet::DefenseScheme::ReformerOnly: return "reformer";
    case magnet::DefenseScheme::Full: return "full";
  }
  return "?";
}

/// Accuracy (%) of the pipeline on `images` under one scheme and exec
/// mode: a row counts iff no detector rejected it AND the (possibly
/// reformed) prediction matches. ASR is its complement.
float defended_acc_pct(const magnet::MagNetPipeline& pipe,
                       const Tensor& images, const std::vector<int>& labels,
                       magnet::DefenseScheme scheme, magnet::ExecMode mode) {
  const magnet::DefenseOutcome out = pipe.classify(images, scheme, mode);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!out.rejected[i] && out.predicted[i] == labels[i]) ++correct;
  }
  return 100.0f * static_cast<float>(correct) /
         static_cast<float>(labels.size());
}

void transfer_block(core::ModelZoo& zoo, core::DatasetId id, float kappa) {
  auto& reg = obs::MetricsRegistry::global();
  auto pipe = core::build_magnet(zoo, id, core::MagnetVariant::Default);
  const auto& labels = zoo.attack_set(id).labels;
  const std::string ds = core::to_string(id);

  struct Crafted {
    const char* name;
    attacks::AttackResult result;
  };
  // Float-crafted (oblivious, undefended classifier — the zoo cache these
  // other tables already paid for): the paper's L1 attack, the L2
  // baseline, and the fast-gradient family.
  const Crafted crafted[] = {
      {"ead", zoo.ead(id, 1e-2f, kappa, attacks::DecisionRule::L1)},
      {"cw-l2", zoo.cw(id, kappa)},
      {"ifgsm", zoo.fgsm(id, 0.1f, 10)},
  };

  std::printf("%-7s %-9s  ASR%% float  ASR%% int8   delta\n", "attack",
              "scheme");
  for (const Crafted& c : crafted) {
    const std::string base = "qtransfer/" + ds + "/" + c.name + "/";
    for (const magnet::DefenseScheme s : kSchemes) {
      const float asr_f = 100.0f - defended_acc_pct(*pipe, c.result.adversarial,
                                                    labels, s,
                                                    magnet::ExecMode::Float);
      const float asr_i = 100.0f - defended_acc_pct(*pipe, c.result.adversarial,
                                                    labels, s,
                                                    magnet::ExecMode::Int8);
      const std::string cell = base + scheme_key(s) + "/";
      reg.gauge(cell + "asr_float_pct").set(asr_f);
      reg.gauge(cell + "asr_int8_pct").set(asr_i);
      reg.gauge(cell + "asr_delta_pct").set(asr_i - asr_f);
      std::printf("%-7s %-9s  %9.1f  %9.1f  %+6.1f\n", c.name, scheme_key(s),
                  asr_f, asr_i, asr_i - asr_f);
    }
    // Per-detector score drift on the crafted batch: how far each int8
    // detector reading moves from the float one whose threshold it keeps.
    const magnet::DefenseOutcome of = pipe->classify(
        c.result.adversarial, magnet::DefenseScheme::DetectorOnly,
        magnet::ExecMode::Float);
    const magnet::DefenseOutcome oi = pipe->classify(
        c.result.adversarial, magnet::DefenseScheme::DetectorOnly,
        magnet::ExecMode::Int8);
    for (std::size_t d = 0; d < of.readings.size(); ++d) {
      double drift = 0.0;
      for (std::size_t i = 0; i < of.readings[d].scores.size(); ++i) {
        drift += std::abs(static_cast<double>(of.readings[d].scores[i]) -
                          static_cast<double>(oi.readings[d].scores[i]));
      }
      drift /= static_cast<double>(of.readings[d].scores.size());
      reg.gauge(base + "drift/" + of.readings[d].name).set(drift);
      std::printf("%-7s drift %-10s  mean |ds| = %.3g  (threshold %.3g)\n",
                  c.name, of.readings[d].name.c_str(), drift,
                  static_cast<double>(of.readings[d].threshold));
    }
  }

  // Clean top-1 drift of the undefended classifier on the test split —
  // the quantization-accuracy contract ci.sh gates at <= 0.5%.
  const auto& test = zoo.dataset(id).test;
  const float top1_f = defended_acc_pct(*pipe, test.images, test.labels,
                                        magnet::DefenseScheme::None,
                                        magnet::ExecMode::Float);
  const float top1_i = defended_acc_pct(*pipe, test.images, test.labels,
                                        magnet::DefenseScheme::None,
                                        magnet::ExecMode::Int8);
  reg.gauge("qtransfer/" + ds + "/clean_top1_float_pct").set(top1_f);
  reg.gauge("qtransfer/" + ds + "/clean_top1_int8_pct").set(top1_i);
  reg.gauge("qtransfer/" + ds + "/clean_top1_drift_pct")
      .set(std::abs(top1_f - top1_i));
  std::printf("clean top-1 (%zu test rows): float %.2f%%  int8 %.2f%%  "
              "drift %.2f%%\n",
              static_cast<std::size_t>(test.labels.size()), top1_f, top1_i,
              std::abs(top1_f - top1_i));
}

}  // namespace

int main(int argc, char** argv) {
  if (!obs::enabled_pinned_by_env()) obs::set_enabled(true);
  core::ShardedBench sb;
  sb.name = "table_quant_transfer";
  sb.warm = [](core::ModelZoo& zoo) {
    bench::warm_variants(zoo, core::DatasetId::Mnist,
                         {core::MagnetVariant::Default});
  };
  sb.body = [](core::ModelZoo& zoo) {
    std::printf("== Float -> int8 attack transfer (default MNIST MagNet) ==\n");
    std::printf("scale: %s\nint8 kernel: %s (exact=%d)\n",
                bench::scale_banner(zoo.scale()), gemm_int8_kernel_name(),
                gemm_int8_exact() ? 1 : 0);
    obs::MetricsRegistry::global()
        .gauge("qtransfer/int8_exact")
        .set(gemm_int8_exact() ? 1.0 : 0.0);
    const float kappa =
        bench::snap_kappa(zoo.scale(), core::DatasetId::Mnist, 0.0f);
    transfer_block(zoo, core::DatasetId::Mnist, kappa);
    if (obs::write_json("BENCH_quant_transfer.json", "qtransfer/")) {
      std::printf("wrote BENCH_quant_transfer.json\n");
    }
  };
  return core::shard_main(argc, argv, sb);
}
