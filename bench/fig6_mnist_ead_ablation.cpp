// Figure 6: EAD (beta x decision rule) vs the DEFAULT MagNet on MNIST,
// with the defense-scheme ablation.
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("6", adv::core::DatasetId::Mnist,
                                      adv::core::MagnetVariant::Default);
  return 0;
}
