// Figure 6: EAD (beta x decision rule) vs the DEFAULT MagNet on MNIST,
// with the defense-scheme ablation.
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig6_mnist_ead_ablation", "6",
                                       adv::core::DatasetId::Mnist,
                                       adv::core::MagnetVariant::Default);
}
