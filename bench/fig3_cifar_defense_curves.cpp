// Figure 3 (a-b): classification accuracy of the CIFAR MagNet variants
// (default, D+256) against C&W-L2 and EAD (beta = 0.1) vs confidence.
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Cifar;
  core::ShardedBench sb;
  sb.name = "fig3_cifar_defense_curves";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(
        zoo, id, {core::MagnetVariant::Default, core::MagnetVariant::Wide});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    std::printf("== Figure 3: CIFAR defense performance vs confidence ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    const std::pair<core::MagnetVariant, const char*> panels[] = {
        {core::MagnetVariant::Default, "a_default"},
        {core::MagnetVariant::Wide, "b_256"},
    };
    for (const auto& [variant, tag] : panels) {
      auto pipe = core::build_magnet(zoo, id, variant);
      const auto curves = bench::headline_curves(zoo, id, *pipe);
      bench::emit(std::string("Fig 3 (") + tag + ") — MagNet " +
                      core::to_string(variant) + " (accuracy %)",
                  std::string("fig3_") + tag + ".csv", curves);
    }
  };
  return core::shard_main(argc, argv, sb);
}
