// Table VII: best (max over kappa) EAD attack success rate against the
// CIFAR MagNet variants (D, D+256) per decision rule and beta.
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Cifar;
  core::ShardedBench sb;
  sb.name = "table7_cifar_best_asr";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(
        zoo, id, {core::MagnetVariant::Default, core::MagnetVariant::Wide});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    const auto& cfg = zoo.scale();
    std::printf("== Table VII: best EAD ASR (%%) on CIFAR-10 ==\n");
    std::printf("scale: %s\n", bench::scale_banner(cfg));
    std::printf("(paper, EN rule b=0.1: D 78.6, D+256 91.5)\n\n");

    auto d = core::build_magnet(zoo, id, core::MagnetVariant::Default);
    auto wide = core::build_magnet(zoo, id, core::MagnetVariant::Wide);
    const auto& labels = zoo.attack_set(id).labels;

    std::printf("%-8s %-8s %10s %10s\n", "rule", "beta", "D", "D+256");
    for (const auto rule :
         {attacks::DecisionRule::EN, attacks::DecisionRule::L1}) {
      for (const float beta : {1e-3f, 1e-2f, 5e-2f, 1e-1f}) {
        float best_d = 0.0f, best_w = 0.0f;
        for (const float k : cfg.kappas(id)) {
          const auto r = zoo.ead(id, beta, k, rule);
          best_d = std::max(
              best_d, 100.0f - bench::defended_accuracy_pct(
                                   *d, r, labels, magnet::DefenseScheme::Full));
          best_w = std::max(best_w,
                            100.0f - bench::defended_accuracy_pct(
                                         *wide, r, labels,
                                         magnet::DefenseScheme::Full));
        }
        std::printf("%-8s %-8g %10.1f %10.1f\n", attacks::to_string(rule),
                    static_cast<double>(beta), static_cast<double>(best_d),
                    static_cast<double>(best_w));
      }
    }
  };
  return core::shard_main(argc, argv, sb);
}
