// Figure 9: EAD vs the robust MNIST MagNet with widened auto-encoders
// (the paper's 256-filter variant).
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig9_mnist_ead_256", "9",
                                       adv::core::DatasetId::Mnist,
                                       adv::core::MagnetVariant::Wide);
}
