// Figure 9: EAD vs the robust MNIST MagNet with widened auto-encoders
// (the paper's 256-filter variant).
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("9", adv::core::DatasetId::Mnist,
                                      adv::core::MagnetVariant::Wide);
  return 0;
}
