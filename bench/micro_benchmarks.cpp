// Micro benchmarks (google-benchmark): throughput of the substrate
// operations that dominate experiment wall-clock — GEMM, conv forward and
// backward, auto-encoder inference, detector scoring, and single ISTA /
// plain-GD attack steps (the paper's eq. (4) loop body).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/ead.hpp"
#include "magnet/autoencoder.hpp"
#include "magnet/detector.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/structural.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"
#include "quant/quantize.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace adv;

void BM_TensorAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Tensor a({n}, 1.0f), b({n}, 2.0f);
  for (auto _ : state) {
    axpy_inplace(a, 0.5f, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TensorAxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c;
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

/// Conv-shaped (tall-skinny) GEMMs: the im2col products behind Conv2d
/// forward (M=out_ch, K=in_ch*k^2, N=H*W) and its two backward products.
void BM_GemmConvShape(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  Tensor a({m, k}), b({k, n}), c;
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(m * k * n));
}
BENCHMARK(BM_GemmConvShape)
    ->Args({32, 144, 12544})   // conv fwd: 16ch 3x3 -> 32ch, 64 x 14x14 imgs
    ->Args({32, 12544, 144})   // conv dW: grad_out x col^T
    ->Args({144, 32, 12544});  // conv dX: W^T x grad_out

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(nn::Conv2d::same(16, 32), rng);
  Tensor x({8, 16, 14, 14});
  fill_uniform(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::Eval);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(nn::Conv2d::same(16, 32), rng);
  Tensor x({8, 16, 14, 14});
  fill_uniform(x, rng, 0.0f, 1.0f);
  Tensor g({8, 32, 14, 14});
  fill_uniform(g, rng, -1.0f, 1.0f);
  conv.forward(x, nn::Mode::Eval);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

nn::Sequential small_classifier(Rng& rng) {
  nn::Sequential m;
  m.emplace<nn::Conv2d>(nn::Conv2d::same(1, 16), rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::MaxPool2d>(2);
  m.emplace<nn::Flatten>();
  m.emplace<nn::Linear>(16 * 14 * 14, 10, rng);
  return m;
}

void BM_AutoencoderForward(benchmark::State& state) {
  Rng rng(4);
  magnet::AutoencoderConfig cfg;
  cfg.filters = static_cast<std::size_t>(state.range(0));
  nn::Sequential ae = magnet::build_autoencoder(cfg, rng);
  Tensor x({16, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = ae.forward(x, nn::Mode::Eval);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AutoencoderForward)->Arg(3)->Arg(12);

void BM_DetectorScoring(benchmark::State& state) {
  Rng rng(5);
  magnet::AutoencoderConfig cfg;
  auto ae = std::make_shared<nn::Sequential>(magnet::build_autoencoder(cfg, rng));
  magnet::ReconstructionDetector det(ae, 2);
  Tensor x({32, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    auto s = det.scores(x);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_DetectorScoring);

/// One ISTA iteration of EAD (forward + hinge gradient + shrink) vs the
/// beta = 0 special case — the ablation of the paper's eq. (4) step cost.
void BM_AttackStep(benchmark::State& state) {
  const float beta = static_cast<float>(state.range(0)) * 1e-2f;
  Rng rng(6);
  nn::Sequential m = small_classifier(rng);
  Tensor x0({16, 1, 28, 28});
  fill_uniform(x0, rng, 0.0f, 1.0f);
  std::vector<int> labels(16, 0);
  std::vector<float> c(16, 1.0f);
  Tensor x = x0;
  Tensor shrunk;
  for (auto _ : state) {
    const attacks::HingeEval eval =
        attacks::eval_untargeted_hinge(m, x, labels, 10.0f);
    Tensor grad = attacks::hinge_input_gradient(m, eval, labels, 10.0f, c);
    axpy_inplace(x, -0.01f, grad);
    attacks::shrink_project(x, x0, beta, shrunk);
    std::swap(x, shrunk);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AttackStep)->Arg(0)->Arg(1)->Arg(10);

void BM_ShrinkProject(benchmark::State& state) {
  Rng rng(7);
  Tensor z({64, 1, 28, 28}), x0({64, 1, 28, 28}), out;
  fill_uniform(z, rng, -0.2f, 1.2f);
  fill_uniform(x0, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    attacks::shrink_project(z, x0, 0.05f, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(z.numel()));
}
BENCHMARK(BM_ShrinkProject);

/// Times one GEMM shape (best of `reps` runs after one warmup) and
/// returns achieved GFLOP/s.
double gemm_gflops(std::size_t m, std::size_t k, std::size_t n, int reps) {
  Rng rng(1);
  Tensor a({m, k}), b({k, n}), c;
  fill_normal(a, rng, 0.0f, 1.0f);
  fill_normal(b, rng, 0.0f, 1.0f);
  gemm(a, b, c);  // warmup: touches pages, spins up the pool
  double best_s = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    gemm(a, b, c);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  benchmark::DoNotOptimize(c.data());
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n) / best_s / 1e9;
}

/// Machine-readable GEMM perf snapshot so later changes can track the
/// trajectory: square and conv-shaped cases, GFLOP/s, to BENCH_gemm.json
/// in the working directory.
void write_gemm_json(const char* path) {
  struct Case {
    const char* name;
    std::size_t m, k, n;
  };
  const Case cases[] = {
      {"square_256", 256, 256, 256},    {"square_512", 512, 512, 512},
      {"square_1024", 1024, 1024, 1024}, {"conv_fwd", 32, 144, 12544},
      {"conv_dw", 32, 12544, 144},      {"conv_dx", 144, 32, 12544},
  };
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "micro_benchmarks: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"unit\": \"GFLOP/s\",\n  \"threads\": %zu,\n"
               "  \"cases\": [\n",
               ThreadPool::global().thread_count());
  bool first = true;
  for (const Case& c : cases) {
    const double gflops = gemm_gflops(c.m, c.k, c.n, 3);
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"m\": %zu, \"k\": %zu, "
                 "\"n\": %zu, \"gflops\": %.2f}",
                 first ? "" : ",\n", c.name, c.m, c.k, c.n, gflops);
    std::printf("BENCH_gemm %-12s %4zux%5zux%5zu  %7.2f GFLOP/s\n", c.name,
                c.m, c.k, c.n, gflops);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Per-shape direct-vs-im2col conv A/B over the MagNet model shapes.
/// Each case times forward and backward on both paths (best of `reps`
/// after warmup) and checks bitwise identity of the forward output, the
/// input gradient and the weight/bias gradients. Writes per-case times,
/// speedups and identity flags plus the aggregate "identity" and
/// "min_same3x3_fwd_speedup" fields to BENCH_conv.json; tools/ci.sh
/// gates on identity == 1 and min_same3x3_fwd_speedup >= 2.
void write_conv_json(const char* path) {
  struct Case {
    const char* name;
    nn::Conv2dConfig cfg;
    std::size_t batch, hw;
    // 3x3 "same" conv of the MagNet defense stack (autoencoder I/II,
    // filters 3 and 12): these are the shapes the >= 2x gate covers. The
    // clf_* cases are the attacked classifier's convs, reported for
    // information (identity-gated, but not speed-gated: their direct
    // path already runs near GEMM peak, so the headroom over im2col is
    // structurally smaller).
    bool magnet_same3x3;
  };
  const Case cases[] = {
      {"ae_in_1to3_28", nn::Conv2d::same(1, 3), 16, 28, true},
      {"ae_hidden_3to3_28", nn::Conv2d::same(3, 3), 16, 28, true},
      {"ae_out_3to1_28", nn::Conv2d::same(3, 1), 16, 28, true},
      {"ae_hidden_12to12_28", nn::Conv2d::same(12, 12), 16, 28, true},
      {"clf_1to16_28", nn::Conv2d::same(1, 16), 16, 28, false},
      {"clf_16to32_14", nn::Conv2d::same(16, 32), 8, 14, false},
  };
  constexpr int kReps = 7;

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "micro_benchmarks: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"unit\": \"ms\",\n  \"threads\": %zu,\n",
               ThreadPool::global().thread_count());

  // Path-split counters over THIS A/B (delta, not process totals): every
  // direct-layer forward below bumps conv/direct_hits, every forced
  // fallback bumps conv/im2col_fallback — so both being > 0 certifies the
  // A/B really exercised both paths. Zero when obs is pinned off.
  const auto conv_counter = [](const char* key) {
    return obs::enabled()
               ? obs::MetricsRegistry::global().counter(key).value()
               : 0;
  };
  const std::uint64_t direct_hits0 = conv_counter("conv/direct_hits");
  const std::uint64_t im2col0 = conv_counter("conv/im2col_fallback");

  bool all_identical = true;
  double min_same3x3_fwd = 1e30;
  std::string rows;
  for (const Case& c : cases) {
    Rng wrng(11);
    nn::Conv2d direct(c.cfg, wrng);
    Rng wrng2(11);
    nn::Conv2d fallback(c.cfg, wrng2);
    fallback.set_force_im2col(true);

    Rng rng(12);
    Tensor x({c.batch, c.cfg.in_channels, c.hw, c.hw});
    fill_uniform(x, rng, 0.0f, 1.0f);
    const std::size_t od = direct.output_dim(c.hw);
    Tensor g({c.batch, c.cfg.out_channels, od, od});
    fill_uniform(g, rng, -1.0f, 1.0f);

    auto best_ms = [&](auto&& fn) {
      fn();  // warmup: pages, pool spin-up, packed-weight scratch
      double best_s = 1e30;
      for (int r = 0; r < kReps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best_s =
            std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
      }
      return best_s * 1e3;
    };

    const double fwd_d = best_ms([&] {
      Tensor y = direct.forward(x, nn::Mode::Infer);
      benchmark::DoNotOptimize(y.data());
    });
    const double fwd_i = best_ms([&] {
      Tensor y = fallback.forward(x, nn::Mode::Infer);
      benchmark::DoNotOptimize(y.data());
    });
    direct.forward(x, nn::Mode::Eval);
    fallback.forward(x, nn::Mode::Eval);
    const double bwd_d = best_ms([&] {
      direct.zero_grad();
      Tensor dx = direct.backward(g);
      benchmark::DoNotOptimize(dx.data());
    });
    const double bwd_i = best_ms([&] {
      fallback.zero_grad();
      Tensor dx = fallback.backward(g);
      benchmark::DoNotOptimize(dx.data());
    });

    // Bitwise identity across the whole layer contract.
    bool same = true;
    {
      const Tensor yd = direct.forward(x, nn::Mode::Eval);
      const Tensor yi = fallback.forward(x, nn::Mode::Eval);
      same &= std::memcmp(yd.data(), yi.data(),
                          yd.numel() * sizeof(float)) == 0;
      direct.zero_grad();
      fallback.zero_grad();
      const Tensor dxd = direct.backward(g);
      const Tensor dxi = fallback.backward(g);
      same &= std::memcmp(dxd.data(), dxi.data(),
                          dxd.numel() * sizeof(float)) == 0;
      const auto gd = direct.gradients();
      const auto gi = fallback.gradients();
      for (std::size_t p = 0; p < gd.size(); ++p) {
        same &= std::memcmp(gd[p]->data(), gi[p]->data(),
                            gd[p]->numel() * sizeof(float)) == 0;
      }
    }
    all_identical &= same;

    const double fwd_speedup = fwd_i / fwd_d;
    const double bwd_speedup = bwd_i / bwd_d;
    if (c.magnet_same3x3) {
      min_same3x3_fwd = std::min(min_same3x3_fwd, fwd_speedup);
    }

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "%s    {\"name\": \"%s\", \"magnet_same3x3\": %d, \"identity\": %d,\n"
        "     \"fwd_ms_direct\": %.4f, \"fwd_ms_im2col\": %.4f, "
        "\"fwd_speedup\": %.2f,\n"
        "     \"bwd_ms_direct\": %.4f, \"bwd_ms_im2col\": %.4f, "
        "\"bwd_speedup\": %.2f}",
        rows.empty() ? "" : ",\n", c.name, c.magnet_same3x3 ? 1 : 0,
        same ? 1 : 0, fwd_d, fwd_i, fwd_speedup, bwd_d, bwd_i, bwd_speedup);
    rows += row;
    std::printf(
        "BENCH_conv %-18s fwd %.2fx (%.3f -> %.3f ms)  bwd %.2fx  "
        "identity %d\n",
        c.name, fwd_speedup, fwd_i, fwd_d, bwd_speedup, same ? 1 : 0);
  }
  const std::uint64_t direct_hits =
      conv_counter("conv/direct_hits") - direct_hits0;
  const std::uint64_t im2col_fallback =
      conv_counter("conv/im2col_fallback") - im2col0;
  std::fprintf(f,
               "  \"identity\": %d,\n"
               "  \"min_same3x3_fwd_speedup\": %.2f,\n"
               "  \"counters\": {\"conv/direct_hits\": %llu, "
               "\"conv/im2col_fallback\": %llu},\n"
               "  \"cases\": [\n%s\n  ]\n}\n",
               all_identical ? 1 : 0, min_same3x3_fwd,
               static_cast<unsigned long long>(direct_hits),
               static_cast<unsigned long long>(im2col_fallback),
               rows.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Float-vs-int8 A/B (BENCH_int8.json): the quantized GEMM kernel against
/// the float one on the attacked classifier's forward shapes (the im2row
/// products and the fc head — the shapes ExecMode::Int8 serving actually
/// runs), plus a whole-model quantized-vs-float forward. Records which
/// int8 kernel the build dispatched to and whether it accumulates exactly
/// (AVX2 maddubs saturates; VNNI and scalar do not). tools/ci.sh gates
/// min_clf_gemm_speedup >= 2.
void write_int8_json(const char* path) {
  struct Case {
    const char* name;
    std::size_t m, k, n;
    // Cases in min_clf_gemm_speedup (the ci.sh >= 2x gate). conv1's k = 9
    // panel is memory-bound — 288 multiply-adds per 64-byte C row leave
    // the dot-product units idle, so its ratio hovers right at 2x and
    // would make the gate a coin flip. It stays reported (same precedent
    // as the im2col-fallback conv rows above) but only the compute-bound
    // shapes are gated.
    bool gated;
  };
  const Case cases[] = {
      {"clf_conv1_as_gemm", 25088, 9, 16, false},  // 32 x [1,28,28] im2row
      {"clf_conv2_as_gemm", 6272, 144, 32, true},  // 32 x [16,14,14] im2row
      {"clf_fc", 256, 3136, 10, true},             // serving-batch fc head
  };
  constexpr int kReps = 5;

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "micro_benchmarks: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"unit\": \"GFLOP/s\",\n  \"threads\": %zu,\n"
               "  \"kernel\": \"%s\",\n  \"exact\": %d,\n",
               ThreadPool::global().thread_count(), gemm_int8_kernel_name(),
               gemm_int8_exact() ? 1 : 0);

  double min_speedup = 1e30;
  std::string rows;
  for (const Case& c : cases) {
    const double f32 = gemm_gflops(c.m, c.k, c.n, kReps);

    // Value patterns are irrelevant to int8 throughput; a cheap
    // deterministic fill keeps the A/B reproducible without an RNG pass.
    std::vector<std::uint8_t> a(c.m * c.k);
    std::vector<std::int8_t> b(c.k * c.n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xFF);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::int8_t>(static_cast<int>((i * 53 + 7) % 255) -
                                      127);
    }
    std::vector<std::int8_t> packed(packed_b_int8_size(c.k, c.n));
    pack_b_s8(b.data(), c.k, c.n, packed.data());
    std::vector<std::int32_t> acc(c.m * c.n);

    gemm_u8s8_packed(a.data(), packed.data(), acc.data(), c.m, c.k, c.n);
    double best_s = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      gemm_u8s8_packed(a.data(), packed.data(), acc.data(), c.m, c.k, c.n);
      const auto t1 = std::chrono::steady_clock::now();
      best_s =
          std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    benchmark::DoNotOptimize(acc.data());
    const double i8 = 2.0 * static_cast<double>(c.m) *
                      static_cast<double>(c.k) * static_cast<double>(c.n) /
                      best_s / 1e9;
    const double speedup = i8 / f32;
    if (c.gated) min_speedup = std::min(min_speedup, speedup);

    char row[384];
    std::snprintf(row, sizeof(row),
                  "%s    {\"name\": \"%s\", \"m\": %zu, \"k\": %zu, "
                  "\"n\": %zu, \"gflops_f32\": %.2f, \"gops_int8\": %.2f, "
                  "\"speedup\": %.2f, \"gated\": %s}",
                  rows.empty() ? "" : ",\n", c.name, c.m, c.k, c.n, f32, i8,
                  speedup, c.gated ? "true" : "false");
    rows += row;
    std::printf("BENCH_int8 %-18s %6zux%5zux%3zu  f32 %7.2f  int8 %7.2f  "
                "%.2fx%s\n",
                c.name, c.m, c.k, c.n, f32, i8, speedup,
                c.gated ? "" : "  (reported, not gated)");
  }

  // Whole-model A/B: the small classifier quantized against itself. The
  // int8 arm pays quantize/dequantize at every boundary, so its speedup
  // is a lower bound on what the GEMM ratio promises.
  Rng mrng(10);
  nn::Sequential model = small_classifier(mrng);
  Rng xrng(13);
  Tensor x({64, 1, 28, 28});
  fill_uniform(x, xrng, 0.0f, 1.0f);
  nn::Sequential qmodel = quant::quantize(model, x);
  const auto best_ms = [&](nn::Sequential& m) {
    m.forward(x, nn::Mode::Infer);  // warmup
    double best_s = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      Tensor y = m.forward(x, nn::Mode::Infer);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(y.data());
      best_s =
          std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    return best_s * 1e3;
  };
  const double fwd_f32 = best_ms(model);
  const double fwd_i8 = best_ms(qmodel);
  const Tensor yf = model.forward(x, nn::Mode::Infer);
  const Tensor yq = qmodel.forward(x, nn::Mode::Infer);
  double max_err = 0.0;
  for (std::size_t i = 0; i < yf.numel(); ++i) {
    max_err = std::max(
        max_err, static_cast<double>(std::abs(yf.data()[i] - yq.data()[i])));
  }

  std::fprintf(f,
               "  \"min_clf_gemm_speedup\": %.2f,\n"
               "  \"model_fwd_ms_float\": %.4f,\n"
               "  \"model_fwd_ms_int8\": %.4f,\n"
               "  \"model_fwd_speedup\": %.2f,\n"
               "  \"model_logit_max_abs_err\": %.5f,\n"
               "  \"cases\": [\n%s\n  ]\n}\n",
               min_speedup, fwd_f32, fwd_i8, fwd_f32 / fwd_i8, max_err,
               rows.c_str());
  std::fclose(f);
  std::printf(
      "BENCH_int8 model fwd  f32 %.3f ms  int8 %.3f ms  %.2fx  "
      "max |dlogit| %.4f  (min gemm speedup %.2fx, kernel %s)\n",
      fwd_f32, fwd_i8, fwd_f32 / fwd_i8, max_err, min_speedup,
      gemm_int8_kernel_name());
  std::printf("wrote %s\n", path);
}

/// End-to-end active-set engine A/B: one full EAD run (kappa = 15, the
/// paper's high-confidence setting) over a synthetic MNIST-like batch,
/// with row compaction + workspace reuse ON vs OFF. Early abort is enabled
/// in BOTH arms, so the optimization schedule is identical and the ratio
/// isolates the engine: compacted model passes and recycled activations.
/// Writes images/sec per arm, the speedup, and passes_saved to
/// BENCH_attack_engine.json; tools/ci.sh gates on speedup >= 2.
void write_attack_engine_json(const char* path) {
  constexpr std::size_t kImages = 32;
  Rng rng(9);
  Tensor x({kImages, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);

  // Easy rows plateau and retire early; hard rows run to the iteration
  // cap — the spread is what compaction converts into wall-clock.
  attacks::EadConfig cfg;
  cfg.beta = 1e-2f;
  cfg.kappa = 15.0f;
  cfg.iterations = 100;
  cfg.binary_search_steps = 3;
  cfg.initial_c = 1.0f;
  cfg.learning_rate = 0.2f;
  cfg.use_fista = true;
  cfg.abort_early_window = 10;
  cfg.abort_early_rel_tol = 1e-3f;

  // Both arms attack identically-seeded models on identical labels
  // (argmax of the clean batch), so the work differs only in engine mode.
  auto run_arm = [&](bool engine_on) {
    Rng mrng(10);
    nn::Sequential m = small_classifier(mrng);
    // Scale the head so kappa = 15 is reachable: rows then succeed and
    // plateau at different iterations, which is what compaction exploits.
    scale_inplace(*m.parameters()[2], 6.0f);
    m.set_workspace_enabled(engine_on);
    cfg.compact = engine_on;
    const Tensor logits = m.forward(x, nn::Mode::Infer);
    std::vector<int> labels(kImages);
    for (std::size_t i = 0; i < kImages; ++i) {
      labels[i] = static_cast<int>(argmax_row(logits, i));
    }
    attacks::ead_attack(m, x, labels, cfg);  // warmup (pool + pages)
    const auto t0 = std::chrono::steady_clock::now();
    const attacks::AttackResult r = attacks::ead_attack(m, x, labels, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(r.adversarial.data());
    return std::chrono::duration<double>(t1 - t0).count();
  };

  std::uint64_t passes_saved = 0;
  const std::uint64_t saved0 =
      obs::enabled()
          ? obs::MetricsRegistry::global().counter("attack/ead/passes_saved")
                .value()
          : 0;
  const double t_on = run_arm(true);
  if (obs::enabled()) {
    // Delta over the timed arm (plus its warmup; per-run savings are half).
    passes_saved =
        (obs::MetricsRegistry::global().counter("attack/ead/passes_saved")
             .value() -
         saved0) /
        2;
  }
  const double t_off = run_arm(false);

  const double ips_on = static_cast<double>(kImages) / t_on;
  const double ips_off = static_cast<double>(kImages) / t_off;
  const double speedup = t_off / t_on;

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "micro_benchmarks: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"attack\": \"ead\",\n  \"kappa\": %.0f,\n"
               "  \"images\": %zu,\n  \"threads\": %zu,\n"
               "  \"images_per_sec_engine_on\": %.3f,\n"
               "  \"images_per_sec_engine_off\": %.3f,\n"
               "  \"passes_saved\": %llu,\n"
               "  \"speedup\": %.2f\n}\n",
               static_cast<double>(cfg.kappa), kImages,
               ThreadPool::global().thread_count(), ips_on, ips_off,
               static_cast<unsigned long long>(passes_saved), speedup);
  std::fclose(f);
  std::printf(
      "BENCH_attack_engine ead k=%.0f  on: %.2f img/s  off: %.2f img/s  "
      "saved %llu passes  speedup %.2fx\n",
      static_cast<double>(cfg.kappa), ips_on, ips_off,
      static_cast<unsigned long long>(passes_saved), speedup);
  std::printf("wrote %s\n", path);
}

/// Drives a few instrumented forward/backward passes of the small
/// classifier so BENCH_layers.json carries per-layer timings even when the
/// benchmark filter skips the model-level cases. No-op when adv::obs is
/// compiled out or pinned off via ADV_OBS=0.
void emit_layer_metrics(const char* path) {
  if (!obs::kCompiledIn || !obs::enabled()) return;
  Rng rng(8);
  nn::Sequential m = small_classifier(rng);
  Tensor x({8, 1, 28, 28});
  fill_uniform(x, rng, 0.0f, 1.0f);
  Tensor g({8, 10});
  fill_uniform(g, rng, -1.0f, 1.0f);
  for (int i = 0; i < 3; ++i) {
    m.forward(x, nn::Mode::Eval);
    m.backward(g);
  }
  // Per-layer timings plus the conv path metrics (per-shape
  // conv/<shape>/{direct,im2col} timers and the direct_hits /
  // im2col_fallback counters) in one dump.
  auto samples = obs::MetricsRegistry::global().snapshot("conv/");
  const auto layers = obs::MetricsRegistry::global().snapshot("layer/");
  samples.insert(samples.end(), layers.begin(), layers.end());
  const std::string json = obs::samples_to_json(samples);
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "micro_benchmarks: cannot write %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Benchmarks measure the instrumented production paths; ADV_OBS=0 in the
  // environment pins observation off for overhead A/B runs.
  if (!adv::obs::enabled_pinned_by_env()) adv::obs::set_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_gemm_json("BENCH_gemm.json");
  write_conv_json("BENCH_conv.json");
  write_int8_json("BENCH_int8.json");
  write_attack_engine_json("BENCH_attack_engine.json");
  emit_layer_metrics("BENCH_layers.json");
  return 0;
}
