// Shared helpers for the table/figure reproduction binaries.
//
// Each bench binary regenerates one table or figure from the paper using
// the shared ModelZoo artifact cache (build/model_cache by default), so
// the first binary that runs pays for training and attack crafting and
// the rest reuse everything. Curves are printed as aligned text tables and
// also written as CSV under bench_results/ for external plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/magnet_factory.hpp"
#include "core/model_zoo.hpp"
#include "core/shard.hpp"

namespace adv::bench {

/// Warm phase shared by the sharded benches: trains/publishes (through
/// the zoo cache) the classifier and the MagNet variants the body needs,
/// so fanned-out workers only craft attacks. Idempotent — everything is
/// cached by ScaleConfig::cache_tag().
inline void warm_variants(
    core::ModelZoo& zoo, core::DatasetId id,
    std::initializer_list<core::MagnetVariant> variants,
    magnet::ReconLoss ae_loss = magnet::ReconLoss::Mse) {
  zoo.classifier(id);
  for (const core::MagnetVariant v : variants) {
    core::build_magnet(zoo, id, v, ae_loss);
  }
}

/// The paper quotes some table rows at specific confidences (e.g. kappa =
/// 15 on MNIST). Under REPRO_SCALE=full we use them exactly; the fast
/// profile snaps to the nearest point of the sweep grid so no extra attack
/// runs are needed.
inline float snap_kappa(const core::ScaleConfig& cfg, core::DatasetId id,
                        float requested) {
  if (cfg.full) return requested;
  const auto& grid = cfg.kappas(id);
  float best = grid.front();
  for (const float k : grid) {
    if (std::abs(k - requested) < std::abs(best - requested)) best = k;
  }
  return best;
}

/// Accuracy (%) of a pipeline against crafted examples.
inline float defended_accuracy_pct(magnet::MagNetPipeline& pipe,
                                   const attacks::AttackResult& attack,
                                   const std::vector<int>& labels,
                                   magnet::DefenseScheme scheme) {
  return 100.0f *
         core::evaluate_defense(pipe, attack.adversarial, labels, scheme)
             .accuracy;
}

/// Builds the kappa-sweep curves {C&W, EAD-L1 beta, EAD-EN beta} used by
/// the paper's Figure 2 / Figure 3 panels.
inline std::vector<core::SweepCurve> headline_curves(
    core::ModelZoo& zoo, core::DatasetId id, magnet::MagNetPipeline& pipe,
    float beta = 0.1f,
    magnet::DefenseScheme scheme = magnet::DefenseScheme::Full) {
  const auto& kappas = zoo.scale().kappas(id);
  const auto& labels = zoo.attack_set(id).labels;
  std::vector<core::SweepCurve> curves(3);
  curves[0].name = "C&W-L2";
  curves[1].name = "EAD-L1 b=" + std::to_string(beta).substr(0, 4);
  curves[2].name = "EAD-EN b=" + std::to_string(beta).substr(0, 4);
  for (const float k : kappas) {
    const auto cw = zoo.cw(id, k);
    const auto el = zoo.ead(id, beta, k, attacks::DecisionRule::L1);
    const auto en = zoo.ead(id, beta, k, attacks::DecisionRule::EN);
    for (auto& c : curves) c.kappas.push_back(k);
    curves[0].accuracy_pct.push_back(
        defended_accuracy_pct(pipe, cw, labels, scheme));
    curves[1].accuracy_pct.push_back(
        defended_accuracy_pct(pipe, el, labels, scheme));
    curves[2].accuracy_pct.push_back(
        defended_accuracy_pct(pipe, en, labels, scheme));
  }
  return curves;
}

/// Defense-scheme ablation curves (paper supplementary figures): accuracy
/// vs kappa for {no defense, detector, reformer, detector & reformer}
/// against one attack family.
template <typename AttackFn>
std::vector<core::SweepCurve> scheme_ablation_curves(
    core::ModelZoo& zoo, core::DatasetId id, magnet::MagNetPipeline& pipe,
    AttackFn&& attack_at) {
  using magnet::DefenseScheme;
  const auto& kappas = zoo.scale().kappas(id);
  const auto& labels = zoo.attack_set(id).labels;
  const DefenseScheme schemes[4] = {
      DefenseScheme::None, DefenseScheme::DetectorOnly,
      DefenseScheme::ReformerOnly, DefenseScheme::Full};
  std::vector<core::SweepCurve> curves(4);
  for (std::size_t s = 0; s < 4; ++s) {
    curves[s].name = magnet::to_string(schemes[s]);
  }
  for (const float k : kappas) {
    const attacks::AttackResult r = attack_at(k);
    for (std::size_t s = 0; s < 4; ++s) {
      curves[s].kappas.push_back(k);
      curves[s].accuracy_pct.push_back(
          defended_accuracy_pct(pipe, r, labels, schemes[s]));
    }
  }
  return curves;
}

inline void emit(const std::string& title, const std::string& csv_name,
                 const std::vector<core::SweepCurve>& curves) {
  core::print_curves(title, curves);
  core::write_curves_csv(std::filesystem::path("bench_results") / csv_name,
                         curves);
}

inline const char* scale_banner(const core::ScaleConfig& cfg) {
  if (cfg.full) return "full (paper-scale counts)";
  if (cfg.smoke) return "smoke (CI-gate counts; determinism only)";
  return "fast (reduced counts; set REPRO_SCALE=full for paper-scale)";
}

}  // namespace adv::bench
