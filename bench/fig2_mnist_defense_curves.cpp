// Figure 2 (a-d): classification accuracy of the four MNIST MagNet
// variants against C&W-L2 and EAD (L1 and EN rules, beta = 0.1) as a
// function of the attack confidence kappa.
#include "bench_common.hpp"

using namespace adv;

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Mnist;
  core::ShardedBench sb;
  sb.name = "fig2_mnist_defense_curves";
  sb.warm = [id](core::ModelZoo& zoo) {
    bench::warm_variants(zoo, id,
                         {core::MagnetVariant::Default, core::MagnetVariant::Jsd,
                          core::MagnetVariant::Wide,
                          core::MagnetVariant::WideJsd});
  };
  sb.body = [id](core::ModelZoo& zoo) {
    std::printf("== Figure 2: MNIST defense performance vs confidence ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    std::printf("(paper shape: C&W stays >~90%%, EAD dips far below at mid "
                "kappa)\n");
    const std::pair<core::MagnetVariant, const char*> panels[] = {
        {core::MagnetVariant::Default, "a_default"},
        {core::MagnetVariant::Jsd, "b_jsd"},
        {core::MagnetVariant::Wide, "c_256"},
        {core::MagnetVariant::WideJsd, "d_256_jsd"},
    };
    for (const auto& [variant, tag] : panels) {
      auto pipe = core::build_magnet(zoo, id, variant);
      const auto curves = bench::headline_curves(zoo, id, *pipe);
      bench::emit(std::string("Fig 2 (") + tag + ") — MagNet " +
                      core::to_string(variant) + " (accuracy %)",
                  std::string("fig2_") + tag + ".csv", curves);
    }
  };
  return core::shard_main(argc, argv, sb);
}
