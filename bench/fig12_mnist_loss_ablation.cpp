// Figure 12: default MNIST MagNet with auto-encoders trained under MSE vs
// MAE reconstruction loss — both defend C&W but stay vulnerable to EAD.
#include "bench_common.hpp"

using namespace adv;

namespace {

std::vector<core::SweepCurve> loss_panel(core::ModelZoo& zoo,
                                         core::DatasetId id,
                                         magnet::MagNetPipeline& pipe) {
  const auto& kappas = zoo.scale().kappas(id);
  const auto& labels = zoo.attack_set(id).labels;
  const auto scheme = magnet::DefenseScheme::Full;
  std::vector<core::SweepCurve> curves(5);
  curves[0].name = "C&W-L2";
  curves[1].name = "EAD-L1 b=1e-3";
  curves[2].name = "EAD-L1 b=1e-1";
  curves[3].name = "EAD-EN b=1e-3";
  curves[4].name = "EAD-EN b=1e-1";
  for (const float k : kappas) {
    const attacks::AttackResult rs[5] = {
        zoo.cw(id, k),
        zoo.ead(id, 1e-3f, k, attacks::DecisionRule::L1),
        zoo.ead(id, 1e-1f, k, attacks::DecisionRule::L1),
        zoo.ead(id, 1e-3f, k, attacks::DecisionRule::EN),
        zoo.ead(id, 1e-1f, k, attacks::DecisionRule::EN)};
    for (std::size_t c = 0; c < 5; ++c) {
      curves[c].kappas.push_back(k);
      curves[c].accuracy_pct.push_back(
          bench::defended_accuracy_pct(pipe, rs[c], labels, scheme));
    }
  }
  return curves;
}

}  // namespace

int main(int argc, char** argv) {
  const auto id = core::DatasetId::Mnist;
  core::ShardedBench sb;
  sb.name = "fig12_mnist_loss_ablation";
  sb.warm = [id](core::ModelZoo& zoo) {
    for (const auto loss : {magnet::ReconLoss::Mse, magnet::ReconLoss::Mae}) {
      bench::warm_variants(zoo, id, {core::MagnetVariant::Default}, loss);
    }
  };
  sb.body = [id](core::ModelZoo& zoo) {
    std::printf("== Figure 12: AE reconstruction-loss ablation on MNIST ==\n");
    std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));
    const std::pair<magnet::ReconLoss, const char*> panels[] = {
        {magnet::ReconLoss::Mse, "a_mse"},
        {magnet::ReconLoss::Mae, "b_mae"},
    };
    for (const auto& [loss, tag] : panels) {
      auto pipe =
          core::build_magnet(zoo, id, core::MagnetVariant::Default, loss);
      bench::emit(std::string("Fig 12 (") + tag + ") (accuracy %)",
                  std::string("fig12_") + tag + ".csv",
                  loss_panel(zoo, id, *pipe));
    }
  };
  return core::shard_main(argc, argv, sb);
}
