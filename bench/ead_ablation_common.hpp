// Shared driver for the supplementary EAD ablation figures (Figs. 6-11):
// for one dataset and one MagNet variant, sweep beta x decision rule and
// print the defense-scheme ablation curves for each combination. Each
// figure binary is one ead_ablation_main call, which also wires it
// through the process-sharding driver (--shards N).
#pragma once

#include "bench_common.hpp"

namespace adv::bench {

inline void run_ead_ablation_figure(core::ModelZoo& zoo, const char* figure,
                                    core::DatasetId id,
                                    core::MagnetVariant variant) {
  std::printf("== Figure %s: EAD ablation on %s, MagNet %s ==\n", figure,
              core::to_string(id), core::to_string(variant));
  std::printf("scale: %s\n", scale_banner(zoo.scale()));
  auto pipe = core::build_magnet(zoo, id, variant);
  for (const auto rule :
       {attacks::DecisionRule::L1, attacks::DecisionRule::EN}) {
    for (const float beta : {1e-3f, 1e-2f, 5e-2f, 1e-1f}) {
      const auto curves = scheme_ablation_curves(
          zoo, id, *pipe,
          [&](float k) { return zoo.ead(id, beta, k, rule); });
      char title[160], csv[96];
      std::snprintf(title, sizeof(title),
                    "Fig %s — EAD %s rule, beta=%g (accuracy %%)", figure,
                    attacks::to_string(rule), static_cast<double>(beta));
      std::snprintf(csv, sizeof(csv), "fig%s_%s_b%g.csv", figure,
                    attacks::to_string(rule), static_cast<double>(beta));
      emit(title, csv, curves);
    }
  }
}

inline int ead_ablation_main(int argc, char** argv, const char* bench_name,
                             const char* figure, core::DatasetId id,
                             core::MagnetVariant variant) {
  core::ShardedBench sb;
  sb.name = bench_name;
  sb.warm = [id, variant](core::ModelZoo& zoo) {
    warm_variants(zoo, id, {variant});
  };
  sb.body = [figure, id, variant](core::ModelZoo& zoo) {
    run_ead_ablation_figure(zoo, figure, id, variant);
  };
  return core::shard_main(argc, argv, sb);
}

}  // namespace adv::bench
