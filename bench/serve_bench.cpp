// serve_bench: closed-loop load study of the adv::serve daemon.
//
// Builds the default MNIST MagNet through the ModelZoo cache, starts a
// ServeDaemon on a private unix socket, and drives it with closed-loop
// clients at several in-flight depths (each client submits one-image
// requests back to back — the paper's serving case). Per depth it reports
// request latency (p50/p99), throughput, the mean rows per forward batch
// the micro-batcher achieved, and the process CPU/wall ratio (the CI host
// is single-core, so the ratio doubles as a sanity check that batching,
// not parallelism, provides the speedup).
//
// Before any load runs, an identity gate replays a fixed request set
// through the daemon (max_batch_rows = 8, concurrent submitters, so
// coalescing actually happens) and compares every response against the
// pipeline run serially one-request-at-a-time: the gate passes only on
// BITWISE identical predictions, rejections, thresholds and detector
// scores (see batcher.hpp for why this must hold). ci.sh asserts
// serve/bench/identity == 1.
//
// Emits BENCH_serve.json (every metric under serve/, including the
// daemon's own counters and timers).
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fault/failpoint.hpp"
#include "obs/emit.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace adv;

namespace {

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * t.tv_usec;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

double percentile_ms(std::vector<double>& latencies_ms, double pct) {
  if (latencies_ms.empty()) return 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double rank = pct / 100.0 * static_cast<double>(latencies_ms.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  idx = idx == 0 ? 0 : idx - 1;
  if (idx >= latencies_ms.size()) idx = latencies_ms.size() - 1;
  return latencies_ms[idx];
}

bool outcomes_identical(const magnet::DefenseOutcome& a,
                        const magnet::DefenseOutcome& b) {
  if (a.predicted != b.predicted || a.rejected != b.rejected ||
      a.readings.size() != b.readings.size()) {
    return false;
  }
  for (std::size_t d = 0; d < a.readings.size(); ++d) {
    const auto& ra = a.readings[d];
    const auto& rb = b.readings[d];
    if (ra.name != rb.name || ra.scores.size() != rb.scores.size()) {
      return false;
    }
    if (std::memcmp(&ra.threshold, &rb.threshold, sizeof(float)) != 0 ||
        std::memcmp(ra.scores.data(), rb.scores.data(),
                    ra.scores.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Replays `count` single-image requests through the daemon from 4
/// concurrent submitters and compares each response bitwise against the
/// precomputed serial baseline.
bool identity_gate(const std::filesystem::path& socket,
                   const Tensor& images,
                   const std::vector<magnet::DefenseOutcome>& baseline) {
  const std::size_t count = baseline.size();
  std::vector<char> same(count, 0);
  std::vector<std::thread> threads;
  const std::size_t kThreads = 4;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      serve::ServeClient client(socket);
      for (std::size_t i = t; i < count; i += kThreads) {
        const auto resp = client.classify(images.slice_rows(i, i + 1),
                                          magnet::DefenseScheme::Full);
        same[i] = resp.ok && outcomes_identical(resp.outcome, baseline[i]);
      }
    });
  }
  for (auto& th : threads) th.join();
  return std::all_of(same.begin(), same.end(), [](char c) { return c != 0; });
}

struct DepthStats {
  double p50_ms = 0.0, p99_ms = 0.0;
  double throughput_rps = 0.0;
  double mean_batch_rows = 0.0;
  double cpu_wall_ratio = 0.0;
};

DepthStats run_depth(const std::filesystem::path& socket,
                     const Tensor& images, std::size_t depth,
                     std::size_t requests_per_client) {
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t batches0 = reg.counter("serve/batches").value();
  const std::uint64_t rows0 = reg.counter("serve/batch_rows").value();

  std::vector<std::vector<double>> lat(depth);
  const double cpu0 = cpu_seconds();
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(depth);
  for (std::size_t c = 0; c < depth; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client(socket);
      lat[c].reserve(requests_per_client);
      const std::size_t n = images.dim(0);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const std::size_t row = (c * requests_per_client + i) % n;
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp = client.classify(images.slice_rows(row, row + 1),
                                          magnet::DefenseScheme::Full);
        const auto t1 = std::chrono::steady_clock::now();
        if (!resp.ok) continue;  // fault-free run; counted via ok/err metrics
        lat[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& th : clients) th.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();
  const double cpu = cpu_seconds() - cpu0;

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());

  DepthStats s;
  s.p50_ms = percentile_ms(all, 50.0);
  s.p99_ms = percentile_ms(all, 99.0);
  s.throughput_rps = wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;
  const std::uint64_t batches = reg.counter("serve/batches").value() - batches0;
  const std::uint64_t rows = reg.counter("serve/batch_rows").value() - rows0;
  s.mean_batch_rows =
      batches > 0 ? static_cast<double>(rows) / static_cast<double>(batches)
                  : 0.0;
  s.cpu_wall_ratio = wall > 0.0 ? cpu / wall : 0.0;

  const std::string base = "serve/bench/depth" + std::to_string(depth) + "/";
  reg.gauge(base + "p50_ms").set(s.p50_ms);
  reg.gauge(base + "p99_ms").set(s.p99_ms);
  reg.gauge(base + "throughput_rps").set(s.throughput_rps);
  reg.gauge(base + "mean_batch_rows").set(s.mean_batch_rows);
  reg.gauge(base + "cpu_wall_ratio").set(s.cpu_wall_ratio);
  return s;
}

/// Overload scenario (DESIGN.md §15): a deliberately tiny daemon (2-row
/// batches, 8-row admission queue, watchdog armed) under a
/// `serve.batch_forward:delay` failpoint and 16 closed-loop clients —
/// half carrying a deadline, a quarter retrying sheds with deterministic
/// backoff. Emits serve/bench/overload/* gauges; ci.sh asserts shed and
/// deadline_expired are NONZERO and that the batcher's accounting
/// invariant (requests == ok + errors + shed + deadline_expired) held.
/// Returns false if the accounting check fails.
bool run_overload(const std::filesystem::path& socket, const Tensor& images,
                  std::size_t requests_per_client) {
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t req0 = reg.counter("serve/requests").value();
  const std::uint64_t ok0 = reg.counter("serve/responses_ok").value();
  const std::uint64_t err0 = reg.counter("serve/responses_error").value();
  const std::uint64_t shed0 = reg.counter("serve/shed").value();
  const std::uint64_t ddl0 = reg.counter("serve/deadline_expired").value();
  const std::uint64_t retry0 = reg.counter("serve/client_retries").value();

  const std::size_t kClients = 16;
  std::vector<std::vector<double>> lat(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ClientConfig ccfg;
      ccfg.recv_timeout = std::chrono::milliseconds(10000);
      if (c % 4 == 0) {
        // Retrying clients: a shed is an invitation to back off and try
        // again, on a schedule seeded per client.
        ccfg.retry.max_attempts = 3;
        ccfg.retry.base_backoff = std::chrono::milliseconds(5);
        ccfg.retry.max_backoff = std::chrono::milliseconds(50);
        ccfg.retry.jitter_seed = c;
      }
      // Half the clients spend a deadline budget; the rest wait it out.
      const std::uint32_t deadline_ms = (c % 2 == 0) ? 40 : 0;
      serve::ServeClient client(socket, ccfg);
      const std::size_t n = images.dim(0);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const std::size_t row = (c * requests_per_client + i) % n;
        const auto t0 = std::chrono::steady_clock::now();
        const auto resp = client.classify(images.slice_rows(row, row + 1),
                                          magnet::DefenseScheme::Full,
                                          deadline_ms);
        const auto t1 = std::chrono::steady_clock::now();
        if (!resp.ok) continue;  // sheds/expiries show up in the counters
        lat[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& th : clients) th.join();

  const double requests =
      static_cast<double>(reg.counter("serve/requests").value() - req0);
  const double ok =
      static_cast<double>(reg.counter("serve/responses_ok").value() - ok0);
  const double errors =
      static_cast<double>(reg.counter("serve/responses_error").value() - err0);
  const double shed =
      static_cast<double>(reg.counter("serve/shed").value() - shed0);
  const double expired =
      static_cast<double>(reg.counter("serve/deadline_expired").value() - ddl0);
  const double retries =
      static_cast<double>(reg.counter("serve/client_retries").value() - retry0);
  const bool accounted = requests == ok + errors + shed + expired;

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  const double p99 = percentile_ms(all, 99.0);

  reg.gauge("serve/bench/overload/requests").set(requests);
  reg.gauge("serve/bench/overload/ok").set(ok);
  reg.gauge("serve/bench/overload/errors").set(errors);
  reg.gauge("serve/bench/overload/shed").set(shed);
  reg.gauge("serve/bench/overload/deadline_expired").set(expired);
  reg.gauge("serve/bench/overload/client_retries").set(retries);
  reg.gauge("serve/bench/overload/p99_ms").set(p99);
  reg.gauge("serve/bench/overload/accounted").set(accounted ? 1.0 : 0.0);

  std::printf(
      "overload: %.0f requests -> %.0f ok, %.0f shed, %.0f expired, %.0f "
      "errors (%.0f client retries), served p99 %.1f ms, accounting %s\n",
      requests, ok, shed, expired, errors, retries, p99,
      accounted ? "OK" : "BROKEN");
  return accounted;
}

}  // namespace

int main() {
  if (!obs::enabled_pinned_by_env()) obs::set_enabled(true);
  core::ModelZoo zoo(core::scale_from_env());
  std::printf("== serve_bench: defended-inference serving study ==\n");
  std::printf("scale: %s\n", bench::scale_banner(zoo.scale()));

  // Pays for training once (through the zoo cache); detectors arrive
  // calibrated.
  auto pipe = core::build_magnet(zoo, core::DatasetId::Mnist,
                                 core::MagnetVariant::Default);
  const Tensor& images = zoo.attack_set(core::DatasetId::Mnist).images;

  // Serial identity baseline — computed BEFORE the daemon exists because
  // classify() may not run concurrently with the batcher thread.
  const std::size_t kIdentityRequests = std::min<std::size_t>(
      24, images.dim(0));
  std::vector<magnet::DefenseOutcome> baseline;
  baseline.reserve(kIdentityRequests);
  for (std::size_t i = 0; i < kIdentityRequests; ++i) {
    baseline.push_back(pipe->classify(images.slice_rows(i, i + 1),
                                      magnet::DefenseScheme::Full));
  }

  serve::ServeConfig cfg;
  cfg.socket_path = std::filesystem::temp_directory_path() /
                    ("adv_serve_bench_" + std::to_string(::getpid()) +
                     ".sock");
  cfg.batch.max_batch_rows = 8;
  cfg.batch.flush_deadline = std::chrono::microseconds(200);
  serve::ServeDaemon daemon(
      [pipe]() -> std::shared_ptr<const magnet::MagNetPipeline> {
        return pipe;
      },
      cfg);
  daemon.start();

  auto& reg = obs::MetricsRegistry::global();
  const bool identical = identity_gate(cfg.socket_path, images, baseline);
  reg.gauge("serve/bench/identity").set(identical ? 1.0 : 0.0);
  std::printf("batched-vs-serial bitwise identity (%zu requests): %s\n",
              kIdentityRequests, identical ? "OK" : "FAILED");

  const std::size_t per_client =
      zoo.scale().smoke ? 30 : (zoo.scale().full ? 600 : 150);
  const std::size_t depths[] = {1, 2, 4, 8};
  std::printf("%6s %10s %10s %14s %12s %10s\n", "depth", "p50 ms", "p99 ms",
              "throughput/s", "batch rows", "cpu/wall");
  for (const std::size_t d : depths) {
    const DepthStats s = run_depth(cfg.socket_path, images, d, per_client);
    std::printf("%6zu %10.3f %10.3f %14.1f %12.2f %10.2f\n", d, s.p50_ms,
                s.p99_ms, s.throughput_rps, s.mean_batch_rows,
                s.cpu_wall_ratio);
  }
  daemon.stop();

  // Overload study on a fresh, deliberately tiny daemon: 2-row batches
  // behind an 8-row admission queue, watchdog armed, and every forward
  // pass slowed by a latency failpoint so saturation is guaranteed.
  serve::ServeConfig ocfg;
  ocfg.socket_path = std::filesystem::temp_directory_path() /
                     ("adv_serve_bench_ovl_" + std::to_string(::getpid()) +
                      ".sock");
  ocfg.batch.max_batch_rows = 2;
  ocfg.batch.flush_deadline = std::chrono::microseconds(200);
  ocfg.batch.max_queue_rows = 8;
  ocfg.batch.watchdog_timeout = std::chrono::milliseconds(5000);
  serve::ServeDaemon overload_daemon(
      [pipe]() -> std::shared_ptr<const magnet::MagNetPipeline> {
        return pipe;
      },
      ocfg);
  overload_daemon.start();
  fault::arm("serve.batch_forward:delay=25");
  const std::size_t overload_per_client = zoo.scale().smoke ? 8 : 20;
  const bool accounted =
      run_overload(ocfg.socket_path, images, overload_per_client);
  fault::reset();
  overload_daemon.stop();

  if (obs::write_json("BENCH_serve.json", "serve/")) {
    std::printf("wrote BENCH_serve.json\n");
  }
  return identical && accounted ? 0 : 1;
}
