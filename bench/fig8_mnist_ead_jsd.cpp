// Figure 8: EAD vs the robust MNIST MagNet with two extra JSD detectors.
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig8_mnist_ead_jsd", "8",
                                       adv::core::DatasetId::Mnist,
                                       adv::core::MagnetVariant::Jsd);
}
