// Figure 8: EAD vs the robust MNIST MagNet with two extra JSD detectors.
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("8", adv::core::DatasetId::Mnist,
                                      adv::core::MagnetVariant::Jsd);
  return 0;
}
