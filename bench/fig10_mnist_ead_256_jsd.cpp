// Figure 10: EAD vs the robust MNIST MagNet with widened auto-encoders
// AND two extra JSD detectors.
#include "ead_ablation_common.hpp"
int main() {
  adv::bench::run_ead_ablation_figure("10", adv::core::DatasetId::Mnist,
                                      adv::core::MagnetVariant::WideJsd);
  return 0;
}
