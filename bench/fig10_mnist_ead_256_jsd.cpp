// Figure 10: EAD vs the robust MNIST MagNet with widened auto-encoders
// AND two extra JSD detectors.
#include "ead_ablation_common.hpp"
int main(int argc, char** argv) {
  return adv::bench::ead_ablation_main(argc, argv, "fig10_mnist_ead_256_jsd", "10",
                                       adv::core::DatasetId::Mnist,
                                       adv::core::MagnetVariant::WideJsd);
}
