// Client side of the adv::serve protocol.
//
// ServeClient is the blocking request/response library used by
// bench/serve_bench and tests: one connection, classify()/ping() calls
// that frame a request, wait, and decode the response. Transport and
// framing failures throw (IoError/ProtocolError); an application-level
// rejection (the daemon's degraded mode) comes back as a ClassifyResponse
// with ok == false — callers choose whether that is fatal.
//
// RawConnection bypasses the protocol entirely — the robustness tests use
// it to feed the daemon truncated frames, garbage magics and oversize
// length prefixes, and to hang up mid-frame.
#pragma once

#include <chrono>
#include <filesystem>

#include "serve/protocol.hpp"

namespace adv::serve {

class ServeClient {
 public:
  /// Connects immediately; throws IoError on failure.
  explicit ServeClient(const std::filesystem::path& socket_path,
                       std::size_t max_body_bytes = kDefaultMaxBodyBytes);
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;

  /// One classify round-trip. `rows` is a rank-4 NCHW batch (1 row is the
  /// common serving case).
  ClassifyResponse classify(const Tensor& rows, magnet::DefenseScheme scheme);

  /// Liveness probe; returns true iff the daemon answered Ok.
  bool ping();

  int fd() const { return fd_; }

 private:
  ClassifyResponse round_trip(const std::vector<std::uint8_t>& request_body);

  int fd_ = -1;
  std::size_t max_body_;
};

/// A bare connected socket for protocol-robustness tests: write any bytes,
/// read whatever comes back, hang up whenever.
class RawConnection {
 public:
  explicit RawConnection(const std::filesystem::path& socket_path);
  ~RawConnection();
  RawConnection(const RawConnection&) = delete;
  RawConnection& operator=(const RawConnection&) = delete;

  /// Throws IoError if the daemon already dropped the connection.
  void send_bytes(const void* data, std::size_t len);

  /// Reads up to `len` bytes; returns the count, 0 on EOF (daemon hung
  /// up). Never throws on EOF — that IS the signal under test.
  std::size_t recv_some(void* out, std::size_t len);

  /// Blocks until the daemon closes its end (returns true) or `timeout`
  /// expires (false), discarding any response bytes in between.
  bool wait_for_close(std::chrono::milliseconds timeout);

  void close();
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace adv::serve
