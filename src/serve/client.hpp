// Client side of the adv::serve protocol.
//
// ServeClient is the blocking request/response library used by
// bench/serve_bench and tests: one connection, classify()/ping() calls
// that frame a request, wait, and decode the response. Transport and
// framing failures throw typed errors (serve/protocol.hpp —
// ConnectError / TimeoutError / RemoteClosedError, all IoError;
// ProtocolError for malformed frames); an application-level rejection
// (degraded mode, shed, deadline) comes back as a ClassifyResponse with
// ok == false and a Status saying which — callers choose whether that is
// fatal.
//
// Timeouts: ClientConfig arms connect/send/recv timeouts (non-blocking
// connect + poll; SO_SNDTIMEO / SO_RCVTIMEO on the connected socket), so
// a wedged daemon surfaces as TimeoutError instead of hanging the
// caller forever. Zero disables each (the pre-timeout behaviour).
//
// Retries: opt-in via RetryPolicy (max_attempts > 1). Only failures
// that provably cost the daemon nothing are retried —
//   * ConnectError (nothing was ever sent),
//   * TimeoutError (the budget is the caller's; a late response to a
//     shed-or-slow request is discarded with the torn-down connection),
//   * a Status::Overloaded response (the daemon explicitly did no work).
// RemoteClosedError is NOT retried (the request may have executed),
// and Error / DeadlineExceeded responses are terminal by contract.
// Between attempts the client tears the connection down, sleeps a
// capped exponential backoff with DETERMINISTIC seeded jitter
// (RetryPolicy::backoff_ms is a pure function — tests assert the exact
// schedule), reconnects, and resends. Each retry bumps the
// serve/client_retries counter.
//
// RawConnection bypasses the protocol entirely — the robustness tests use
// it to feed the daemon truncated frames, garbage magics and oversize
// length prefixes, and to hang up mid-frame.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>

#include "serve/protocol.hpp"

namespace adv::serve {

/// Capped exponential backoff with deterministic jitter. max_attempts is
/// the TOTAL number of tries; 1 (the default) means no retries.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Seeds the jitter; same (seed, attempt) -> same backoff, always.
  std::uint64_t jitter_seed = 0;

  /// Pure: backoff before retry number `attempt` (0-based — the sleep
  /// between the first failure and the second try is backoff_ms(0)).
  /// Equal-jitter shape: uniformly in [cap/2, cap] where cap doubles
  /// from base_backoff up to max_backoff.
  std::uint64_t backoff_ms(std::uint32_t attempt) const;
};

struct ClientConfig {
  /// 0 disables the respective timeout (block indefinitely).
  std::chrono::milliseconds connect_timeout{0};
  std::chrono::milliseconds send_timeout{0};
  std::chrono::milliseconds recv_timeout{0};
  RetryPolicy retry;
  std::size_t max_body_bytes = kDefaultMaxBodyBytes;
};

class ServeClient {
 public:
  /// Connects immediately; throws ConnectError (daemon absent/refusing)
  /// or TimeoutError (connect_timeout elapsed). The initial connect is
  /// NOT retried — only requests are.
  explicit ServeClient(const std::filesystem::path& socket_path,
                       ClientConfig cfg = {});
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;

  /// One classify exchange (plus retries per the policy). `rows` is a
  /// rank-4 NCHW batch (1 row is the common serving case); `deadline_ms`
  /// > 0 rides the wire and bounds the request's queue wait server-side.
  /// `quantized` sets kSchemeQuantBit: the daemon runs the request on the
  /// int8 pipeline instead of its configured default mode.
  ClassifyResponse classify(const Tensor& rows, magnet::DefenseScheme scheme,
                            std::uint32_t deadline_ms = 0,
                            bool quantized = false);

  /// Liveness probe; returns true iff the daemon answered Ok.
  bool ping();

  int fd() const { return fd_; }
  /// Retries spent by this client instance (sums across requests).
  std::uint64_t retries() const { return retries_; }

 private:
  /// One attempt: (re)connect if needed, send, receive, decode. Tears
  /// the connection down before rethrowing any transport error.
  ClassifyResponse round_trip(const std::vector<std::uint8_t>& request_body);
  /// round_trip + the retry loop described in the header comment.
  ClassifyResponse request(const std::vector<std::uint8_t>& request_body);
  void disconnect();

  std::filesystem::path path_;
  ClientConfig cfg_;
  int fd_ = -1;
  std::uint64_t retries_ = 0;
};

/// A bare connected socket for protocol-robustness tests: write any bytes,
/// read whatever comes back, hang up whenever.
class RawConnection {
 public:
  explicit RawConnection(const std::filesystem::path& socket_path);
  ~RawConnection();
  RawConnection(const RawConnection&) = delete;
  RawConnection& operator=(const RawConnection&) = delete;

  /// Throws IoError if the daemon already dropped the connection.
  void send_bytes(const void* data, std::size_t len);

  /// Reads up to `len` bytes; returns the count, 0 on EOF (daemon hung
  /// up). Never throws on EOF — that IS the signal under test.
  std::size_t recv_some(void* out, std::size_t len);

  /// Blocks until the daemon closes its end (returns true) or `timeout`
  /// expires (false), discarding any response bytes in between.
  bool wait_for_close(std::chrono::milliseconds timeout);

  void close();
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace adv::serve
