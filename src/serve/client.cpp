#include "serve/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace adv::serve {
namespace {

int connect_unix(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  if (s.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path too long: " + s);
  }
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    ::close(fd);
    throw IoError("connect " + s + ": " + std::strerror(e));
  }
  return fd;
}

}  // namespace

ServeClient::ServeClient(const std::filesystem::path& socket_path,
                         std::size_t max_body_bytes)
    : fd_(connect_unix(socket_path)), max_body_(max_body_bytes) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), max_body_(other.max_body_) {
  other.fd_ = -1;
}

ClassifyResponse ServeClient::round_trip(
    const std::vector<std::uint8_t>& request_body) {
  write_frame(fd_, kRequestMagic, request_body);
  std::vector<std::uint8_t> body;
  if (!read_frame(fd_, kResponseMagic, max_body_, body)) {
    throw IoError("daemon closed the connection");
  }
  return decode_response(body);
}

ClassifyResponse ServeClient::classify(const Tensor& rows,
                                       magnet::DefenseScheme scheme) {
  return round_trip(encode_classify_request(scheme, rows));
}

bool ServeClient::ping() {
  const ClassifyResponse r = round_trip(encode_ping_request());
  return r.ok && r.type == MessageType::Ping;
}

RawConnection::RawConnection(const std::filesystem::path& socket_path)
    : fd_(connect_unix(socket_path)) {}

RawConnection::~RawConnection() { close(); }

void RawConnection::send_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t w = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

std::size_t RawConnection::recv_some(void* out, std::size_t len) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, len, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    return 0;  // connection reset counts as closed for the tests
  }
}

bool RawConnection::wait_for_close(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::uint8_t sink[512];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int rc = ::poll(&pfd, 1, std::max(ms, 1));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return true;  // socket error: treat as closed
    }
    if (rc == 0) return false;  // timeout
    if (recv_some(sink, sizeof(sink)) == 0) return true;
  }
}

void RawConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace adv::serve
