#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace adv::serve {
namespace {

sockaddr_un make_addr(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  if (s.size() >= sizeof(addr.sun_path)) {
    throw ConnectError("socket path too long: " + s);
  }
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

void set_io_timeout(int fd, int optname, std::chrono::milliseconds t) {
  if (t.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(t.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((t.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

/// Connect with an optional bound: non-blocking connect, poll for
/// writability, then check SO_ERROR. A refused/missing socket throws
/// ConnectError (guaranteed pre-send, so always retry-safe); an elapsed
/// connect_timeout throws TimeoutError.
int connect_unix(const std::filesystem::path& path, const ClientConfig& cfg) {
  const sockaddr_un addr = make_addr(path);
  const std::string s = path.string();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket: ") + std::strerror(errno));
  }
  const bool bounded = cfg.connect_timeout.count() > 0;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (bounded) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && bounded && (errno == EINPROGRESS || errno == EAGAIN)) {
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(
        &pfd, 1, static_cast<int>(cfg.connect_timeout.count()));
    if (pr == 0) {
      ::close(fd);
      throw TimeoutError("connect " + s + ": timed out");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (pr < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      const int e = pr < 0 ? errno : soerr;
      ::close(fd);
      throw ConnectError("connect " + s + ": " + std::strerror(e));
    }
  } else if (rc < 0) {
    const int e = errno;
    ::close(fd);
    throw ConnectError("connect " + s + ": " + std::strerror(e));
  }
  if (bounded) ::fcntl(fd, F_SETFL, flags);
  set_io_timeout(fd, SO_SNDTIMEO, cfg.send_timeout);
  set_io_timeout(fd, SO_RCVTIMEO, cfg.recv_timeout);
  return fd;
}

/// splitmix64 — tiny, seedable, stateless; good enough to decorrelate
/// backoff schedules across clients without any global RNG state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void count_retry() {
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("serve/client_retries").add(1);
  }
}

}  // namespace

std::uint64_t RetryPolicy::backoff_ms(std::uint32_t attempt) const {
  const auto base = static_cast<std::uint64_t>(
      std::max<std::int64_t>(base_backoff.count(), 0));
  const auto cap_limit = static_cast<std::uint64_t>(
      std::max<std::int64_t>(max_backoff.count(), 0));
  if (base == 0 || cap_limit == 0) return 0;
  // Doubling cap, clamped before the shift can overflow.
  const std::uint32_t exp = std::min<std::uint32_t>(attempt, 40);
  std::uint64_t cap = base << exp;
  if (cap > cap_limit || (cap >> exp) != base) cap = cap_limit;
  // Equal jitter: [cap/2, cap], deterministic in (seed, attempt).
  const std::uint64_t half = cap / 2;
  return half + mix64(jitter_seed ^ (0x5EEDull + attempt)) % (cap - half + 1);
}

ServeClient::ServeClient(const std::filesystem::path& socket_path,
                         ClientConfig cfg)
    : path_(socket_path),
      cfg_(cfg),
      fd_(connect_unix(socket_path, cfg)) {}

ServeClient::~ServeClient() { disconnect(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : path_(std::move(other.path_)),
      cfg_(other.cfg_),
      fd_(other.fd_),
      retries_(other.retries_) {
  other.fd_ = -1;
}

void ServeClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ClassifyResponse ServeClient::round_trip(
    const std::vector<std::uint8_t>& request_body) {
  if (fd_ < 0) fd_ = connect_unix(path_, cfg_);
  try {
    write_frame(fd_, kRequestMagic, request_body);
    std::vector<std::uint8_t> body;
    if (!read_frame(fd_, kResponseMagic, cfg_.max_body_bytes, body)) {
      throw RemoteClosedError("daemon closed the connection");
    }
    return decode_response(body);
  } catch (const IoError&) {
    // The stream is no longer at a frame boundary (short write, torn
    // read, late response still in flight) — never reuse it.
    disconnect();
    throw;
  }
}

ClassifyResponse ServeClient::request(
    const std::vector<std::uint8_t>& request_body) {
  const RetryPolicy& rp = cfg_.retry;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool last = attempt + 1 >= std::max<std::uint32_t>(rp.max_attempts, 1);
    try {
      ClassifyResponse r = round_trip(request_body);
      if (r.status != Status::Overloaded || last) return r;
      // Shed: the daemon spent nothing on us; backing off and retrying
      // is exactly what the Overloaded contract invites.
    } catch (const TimeoutError&) {
      if (last) throw;
    } catch (const ConnectError&) {
      if (last) throw;
    }
    // RemoteClosedError / plain IoError / ProtocolError propagate: the
    // request may have executed, so resending is not idempotent-safe.
    ++retries_;
    count_retry();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rp.backoff_ms(attempt)));
  }
}

ClassifyResponse ServeClient::classify(const Tensor& rows,
                                       magnet::DefenseScheme scheme,
                                       std::uint32_t deadline_ms,
                                       bool quantized) {
  return request(
      encode_classify_request(scheme, rows, deadline_ms, quantized));
}

bool ServeClient::ping() {
  const ClassifyResponse r = request(encode_ping_request());
  return r.ok && r.type == MessageType::Ping;
}

RawConnection::RawConnection(const std::filesystem::path& socket_path)
    : fd_(connect_unix(socket_path, ClientConfig{})) {}

RawConnection::~RawConnection() { close(); }

void RawConnection::send_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t w = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

std::size_t RawConnection::recv_some(void* out, std::size_t len) {
  for (;;) {
    const ssize_t r = ::recv(fd_, out, len, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    return 0;  // connection reset counts as closed for the tests
  }
}

bool RawConnection::wait_for_close(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::uint8_t sink[512];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int rc = ::poll(&pfd, 1, std::max(ms, 1));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return true;  // socket error: treat as closed
    }
    if (rc == 0) return false;  // timeout
    if (recv_some(sink, sizeof(sink)) == 0) return true;
  }
}

void RawConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace adv::serve
