// MicroBatcher — continuous micro-batching for defended inference, with
// overload protection (DESIGN.md §15).
//
// Concurrent callers submit() independent classify requests; one batcher
// thread coalesces whatever is in flight into dense forward batches so
// the blocked GEMM always sees multi-row work even when every client
// sends single images. The coalescing window is bounded two ways:
//
//   * max_batch_rows — a batch closes as soon as the queue holds that
//     many rows (a single oversized request still runs, alone);
//   * flush_deadline — a batch closes this long after work first became
//     available, so a lone request is never parked waiting for company.
//
// Only requests with the SAME defense scheme, execution mode (float vs
// int8) and per-row image shape are coalesced (earlier compatible requests are never reordered behind later
// ones; incompatible ones simply wait for the next batch). Because every
// stage of MagNetPipeline::classify is row-independent — detector scores,
// the reformer AE and the classifier forward all process rows separately,
// and the blocked GEMM accumulates each output row in a K-order
// independent of the batch row count (the same property the active-set
// engine's dense sub-batches rely on, DESIGN.md §11) — a coalesced
// response sliced back out is BITWISE IDENTICAL to running that request
// alone. tests/serve_test.cpp and the serve_bench CI gate assert this.
//
// All model execution happens on one thread at a time: classify() is
// const but the underlying Sequentials mutate layer caches and the
// per-model Workspace arena, so serializing passes is what makes the
// shared pipeline safe under concurrent clients (and is also what lets
// the arena's steady-state reuse work — one pass in flight at a time).
//
// Overload semantics (time-shaped faults; crash-shaped ones below):
//   * ADMISSION CONTROL — the queue is bounded by max_queue_rows. A
//     submit that would push the queued row count past the bound is shed
//     immediately with ResultStatus::Overloaded: nothing is computed, no
//     forward pass is owed, and the client may retry later. A request
//     larger than the whole bound is still admitted when the queue is
//     empty (it runs as its own oversized batch, as before).
//   * DEADLINES — a request may carry a relative deadline. It is
//     enforced AT DEQUEUE: when the batcher extracts the next group,
//     requests whose budget already ran out are answered
//     ResultStatus::DeadlineExceeded without spending any forward-pass
//     work on them. A request that starts executing inside its budget is
//     finished even if the budget expires mid-pass.
//   * WATCHDOG — with watchdog_timeout > 0, batches execute on a
//     replaceable executor thread. If one batch (including a lazy model
//     load) runs past the timeout, the watchdog fails that batch's
//     requests with error results, discards the possibly-tainted
//     pipeline (mid-forward layer caches are unusable — the factory
//     rebuilds a fresh one), retires the stuck executor and spawns a
//     replacement, so the daemon keeps serving while the old thread is
//     still wedged. A retired executor that eventually wakes finds its
//     batch already failed and exits without touching anything shared.
//   * DRAIN — stop() finishes the in-flight batch, then answers every
//     still-queued request with an Overloaded shed result (stop
//     accepting, finish in-flight, shed the rest — never serve a queue
//     of unknown depth during shutdown), waits up to drain_grace for
//     retired executors to unwind, and joins. Idempotent; the destructor
//     calls it.
//
// Failure containment for crash-shaped faults (tests label
// `serve`/`fault`):
//   * the pipeline is acquired LAZILY through the factory on the first
//     batch (and re-acquired after a failed load or a watchdog trip). A
//     factory that throws — e.g. the `serve.model_load` failpoint, or a
//     ModelZoo rebuild that fails — turns into error responses for that
//     batch only; the next batch retries the load. The factory is
//     expected to go through the self-healing ModelZoo layer so a
//     corrupt cached model is quarantined and rebuilt rather than
//     failing forever. With a watchdog in play the factory should build
//     a FRESH pipeline per call (the zoo factory does): after a trip the
//     abandoned executor may still be touching the old instance.
//   * the `serve.batch_forward` failpoint (and any exception escaping
//     classify) fails the requests of that batch with error results; the
//     batcher thread and every queued request keep going. The `delay`
//     and `stall` failpoint actions (fault/failpoint.hpp) inject latency
//     at the same two sites — that is what the watchdog and the chaos
//     soak in serve_test exercise.
//
// Observability (adv::obs, prefix serve/): requests, responses_ok,
// responses_error, batches, batch_rows (mean occupancy = batch_rows /
// batches), model_load_failures, batch_failures, shed, deadline_expired,
// watchdog_trips; gauge queue_depth; timers queue_wait (submit -> batch
// extraction) and batch_forward (classify wall time). Accounting
// invariant (asserted by the soak tests and the serve_bench overload
// gate): requests == responses_ok + responses_error + shed +
// deadline_expired once the queue is drained. Per-stage latency lives
// one level down under magnet/stage/* (pipeline.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "magnet/pipeline.hpp"
#include "tensor/tensor.hpp"

namespace adv::serve {

struct BatchConfig {
  /// Rows at which a batch closes immediately. 1 degenerates to the
  /// serial one-request-at-a-time path (the identity baseline).
  std::size_t max_batch_rows = 8;
  /// How long a batch may wait for more rows after work first arrives.
  std::chrono::microseconds flush_deadline{200};
  /// Admission bound: a submit that would push the queued row count past
  /// this is shed with ResultStatus::Overloaded instead of queued.
  std::size_t max_queue_rows = 1024;
  /// 0 disables the watchdog (batches run inline on the batcher thread —
  /// bitwise-identical to the pre-watchdog behaviour). > 0 runs batches
  /// on a replaceable executor thread and fails any batch that exceeds
  /// this bound.
  std::chrono::milliseconds watchdog_timeout{0};
  /// How long stop() waits for watchdog-retired executors to unwind
  /// before giving up on them (they hold only refcounted state, so
  /// abandoning a truly-wedged one is safe, just untidy).
  std::chrono::milliseconds drain_grace{2000};
};

/// How a request left the batcher. Mirrors the wire Status codes
/// (serve/protocol.hpp) without depending on the protocol header.
enum class ResultStatus : std::uint8_t {
  Ok = 0,
  Error = 1,             // degraded mode: load/forward failed, watchdog trip
  Overloaded = 2,        // shed at admission or during drain
  DeadlineExceeded = 3,  // budget ran out in queue; no forward pass spent
};

/// Per-request outcome: either a DefenseOutcome slice covering exactly
/// the submitted rows, or a status + message describing why not.
struct ServeResult {
  bool ok = false;
  ResultStatus status = ResultStatus::Error;
  std::string error;
  magnet::DefenseOutcome outcome;
};

class MicroBatcher {
 public:
  /// Produces the pipeline on first use; called again after a failure or
  /// a watchdog trip.
  using PipelineFactory =
      std::function<std::shared_ptr<const magnet::MagNetPipeline>()>;

  explicit MicroBatcher(PipelineFactory factory, BatchConfig cfg = {});
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues `rows` (rank-4, leading dim = row count) for classification
  /// under `scheme`, executed under `mode` (ExecMode::Int8 requires the
  /// pipeline to have prepare_quantized() done — the zoo factory always
  /// does). Thread-safe; returns immediately — possibly with an
  /// already-resolved future (admission shed, stopped batcher, bad
  /// shape). `deadline` > 0 bounds how long the request may wait in the
  /// queue (enforced at dequeue); 0 waits as long as it takes.
  std::future<ServeResult> submit(
      Tensor rows, magnet::DefenseScheme scheme,
      magnet::ExecMode mode = magnet::ExecMode::Float,
      std::chrono::milliseconds deadline = std::chrono::milliseconds{0});

  /// Graceful drain: finishes the in-flight batch, sheds everything
  /// still queued with Overloaded results, then joins the batcher
  /// thread. Idempotent; the destructor calls it.
  void stop();

  /// Requests queued but not yet taken into a batch (tests: a drained
  /// soak run must end at 0).
  std::size_t pending() const;
  bool pipeline_loaded() const;
  const BatchConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Tensor rows;
    std::size_t row_count = 0;
    magnet::DefenseScheme scheme = magnet::DefenseScheme::Full;
    magnet::ExecMode mode = magnet::ExecMode::Float;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// time_point::max() when the request carries no deadline.
    std::chrono::steady_clock::time_point deadline;
  };
  /// Lazily-loaded pipeline shared between the batcher and executors;
  /// outlives the MicroBatcher so a retired executor never dangles.
  struct PipelineSlot;
  /// One batch in flight between the batcher thread and an executor.
  struct BatchTicket;
  /// The replaceable execution thread the watchdog supervises.
  class Executor;
  /// Count of retired-but-still-running executors; shared so they can
  /// check out after the MicroBatcher itself is gone.
  struct DrainState;

  void run();
  /// Pops the maximal in-order prefix-compatible group: every queued
  /// request matching the front one's (scheme, exec mode, row shape)
  /// until max_batch_rows is reached; the rest keep their order.
  std::vector<Pending> take_group_locked();
  std::size_t queued_rows_locked() const;
  /// Deadline enforcement at dequeue: resolves every queued request
  /// whose budget already ran out with DeadlineExceeded.
  void expire_locked(std::chrono::steady_clock::time_point now);
  /// Resolves everything still queued with Overloaded (drain path).
  void shed_queue_locked(const char* reason);
  /// Runs one group inline or through the executor under the watchdog.
  void dispatch(std::vector<Pending> group);
  static void execute_ticket(const std::shared_ptr<BatchTicket>& ticket,
                             const PipelineFactory& factory,
                             const std::shared_ptr<PipelineSlot>& slot);
  static std::shared_ptr<const magnet::MagNetPipeline> ensure_pipeline(
      const PipelineFactory& factory,
      const std::shared_ptr<PipelineSlot>& slot);

  PipelineFactory factory_;
  BatchConfig cfg_;
  std::shared_ptr<PipelineSlot> slot_;
  std::shared_ptr<DrainState> drain_;
  std::shared_ptr<Executor> executor_;  // only when watchdog enabled

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace adv::serve
