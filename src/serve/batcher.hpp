// MicroBatcher — continuous micro-batching for defended inference.
//
// Concurrent callers submit() independent classify requests; one batcher
// thread coalesces whatever is in flight into dense forward batches so
// the blocked GEMM always sees multi-row work even when every client
// sends single images. The coalescing window is bounded two ways:
//
//   * max_batch_rows — a batch closes as soon as the queue holds that
//     many rows (a single oversized request still runs, alone);
//   * flush_deadline — a batch closes this long after work first became
//     available, so a lone request is never parked waiting for company.
//
// Only requests with the SAME defense scheme and per-row image shape are
// coalesced (earlier compatible requests are never reordered behind later
// ones; incompatible ones simply wait for the next batch). Because every
// stage of MagNetPipeline::classify is row-independent — detector scores,
// the reformer AE and the classifier forward all process rows separately,
// and the blocked GEMM accumulates each output row in a K-order
// independent of the batch row count (the same property the active-set
// engine's dense sub-batches rely on, DESIGN.md §11) — a coalesced
// response sliced back out is BITWISE IDENTICAL to running that request
// alone. tests/serve_test.cpp and the serve_bench CI gate assert this.
//
// All model execution happens on the single batcher thread: classify()
// is const but the underlying Sequentials mutate layer caches and the
// per-model Workspace arena, so serializing passes is what makes the
// shared pipeline safe under concurrent clients (and is also what lets
// the arena's steady-state reuse work — one pass in flight at a time).
//
// Failure containment (tests label `serve`/`fault`):
//   * the pipeline is acquired LAZILY through the factory on the first
//     batch (and re-acquired after a failed load). A factory that throws
//     — e.g. the `serve.model_load` failpoint, or a ModelZoo rebuild that
//     fails — turns into error responses for that batch only; the next
//     batch retries the load. The factory is expected to go through the
//     self-healing ModelZoo layer so a corrupt cached model is
//     quarantined and rebuilt rather than failing forever.
//   * the `serve.batch_forward` failpoint (and any exception escaping
//     classify) fails the requests of that batch with error results; the
//     batcher thread and every queued request keep going.
//
// Observability (adv::obs, prefix serve/): requests, responses_ok,
// responses_error, batches, batch_rows (mean occupancy = batch_rows /
// batches), model_load_failures, batch_failures; gauge queue_depth;
// timers queue_wait (submit -> batch extraction) and batch_forward
// (classify wall time). Per-stage latency lives one level down under
// magnet/stage/* (pipeline.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>

#include "magnet/pipeline.hpp"
#include "tensor/tensor.hpp"

namespace adv::serve {

struct BatchConfig {
  /// Rows at which a batch closes immediately. 1 degenerates to the
  /// serial one-request-at-a-time path (the identity baseline).
  std::size_t max_batch_rows = 8;
  /// How long a batch may wait for more rows after work first arrives.
  std::chrono::microseconds flush_deadline{200};
};

/// Per-request outcome: either a DefenseOutcome slice covering exactly
/// the submitted rows, or an error string (the daemon's degraded mode).
struct ServeResult {
  bool ok = false;
  std::string error;
  magnet::DefenseOutcome outcome;
};

class MicroBatcher {
 public:
  /// Produces the pipeline on first use; called again after a failure.
  using PipelineFactory =
      std::function<std::shared_ptr<const magnet::MagNetPipeline>()>;

  explicit MicroBatcher(PipelineFactory factory, BatchConfig cfg = {});
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues `rows` (rank-4, leading dim = row count) for classification
  /// under `scheme`. Thread-safe; returns immediately. After stop() the
  /// future resolves to an error result.
  std::future<ServeResult> submit(Tensor rows, magnet::DefenseScheme scheme);

  /// Drains the queue (every pending future resolves), then joins the
  /// batcher thread. Idempotent; the destructor calls it.
  void stop();

  /// Requests queued but not yet taken into a batch (tests: a drained
  /// soak run must end at 0).
  std::size_t pending() const;
  bool pipeline_loaded() const;
  const BatchConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Tensor rows;
    std::size_t row_count = 0;
    magnet::DefenseScheme scheme = magnet::DefenseScheme::Full;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void run();
  /// Pops the maximal in-order prefix-compatible group: every queued
  /// request matching the front one's (scheme, row shape) until
  /// max_batch_rows is reached; the rest keep their order.
  std::vector<Pending> take_group_locked();
  std::size_t queued_rows_locked() const;
  void execute(std::vector<Pending>& group);
  std::shared_ptr<const magnet::MagNetPipeline> ensure_pipeline();

  PipelineFactory factory_;
  BatchConfig cfg_;
  std::shared_ptr<const magnet::MagNetPipeline> pipeline_;  // batcher thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace adv::serve
