#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"

namespace adv::serve {
namespace {

// Instrumentation handles (stable for the process lifetime; see
// obs/metrics.hpp — sites cache references in function-local statics).
obs::Counter& requests_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/requests");
  return c;
}
obs::Counter& ok_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/responses_ok");
  return c;
}
obs::Counter& error_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/responses_error");
  return c;
}
obs::Counter& batches_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/batches");
  return c;
}
obs::Counter& batch_rows_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/batch_rows");
  return c;
}
obs::Counter& model_load_failures_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/model_load_failures");
  return c;
}
obs::Counter& batch_failures_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/batch_failures");
  return c;
}

bool same_row_shape(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank()) return false;
  for (std::size_t i = 1; i < a.rank(); ++i) {
    if (a.dim(i) != b.dim(i)) return false;
  }
  return true;
}

}  // namespace

MicroBatcher::MicroBatcher(PipelineFactory factory, BatchConfig cfg)
    : factory_(std::move(factory)), cfg_(cfg) {
  if (!factory_) throw std::invalid_argument("MicroBatcher: null factory");
  if (cfg_.max_batch_rows == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch_rows must be >= 1");
  }
  thread_ = std::thread([this] { run(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

std::future<ServeResult> MicroBatcher::submit(Tensor rows,
                                              magnet::DefenseScheme scheme) {
  std::promise<ServeResult> promise;
  std::future<ServeResult> future = promise.get_future();
  if (rows.rank() != 4 || rows.dim(0) == 0) {
    promise.set_value({false,
                       "submit: batch must be rank-4 with >= 1 row, got " +
                           rows.shape_string(),
                       {}});
    return future;
  }
  if (obs::enabled()) requests_counter().add(1);
  Pending p;
  p.row_count = rows.dim(0);
  p.rows = std::move(rows);
  p.scheme = scheme;
  p.promise = std::move(promise);
  p.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard lk(mu_);
    if (stop_) {
      p.promise.set_value({false, "batcher stopped", {}});
      return future;
    }
    queue_.push_back(std::move(p));
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("serve/queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();
  return future;
}

void MicroBatcher::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t MicroBatcher::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

bool MicroBatcher::pipeline_loaded() const {
  std::lock_guard lk(mu_);
  return pipeline_ != nullptr;
}

std::size_t MicroBatcher::queued_rows_locked() const {
  std::size_t rows = 0;
  for (const Pending& p : queue_) rows += p.row_count;
  return rows;
}

std::vector<MicroBatcher::Pending> MicroBatcher::take_group_locked() {
  std::vector<Pending> group;
  std::deque<Pending> rest;
  std::size_t rows = 0;
  for (Pending& p : queue_) {
    const bool fits = rows < cfg_.max_batch_rows;
    const bool compatible =
        group.empty() || (p.scheme == group.front().scheme &&
                          same_row_shape(p.rows, group.front().rows));
    if (fits && compatible) {
      rows += p.row_count;
      group.push_back(std::move(p));
    } else {
      rest.push_back(std::move(p));
    }
  }
  queue_ = std::move(rest);
  return group;
}

void MicroBatcher::run() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: every submitted future has resolved
      continue;
    }
    // Work exists. Hold the batch open until the deadline or until the
    // queue carries a full batch of rows, whichever comes first.
    const auto deadline =
        std::chrono::steady_clock::now() + cfg_.flush_deadline;
    while (!stop_ && queued_rows_locked() < cfg_.max_batch_rows) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    std::vector<Pending> group = take_group_locked();
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("serve/queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    lk.unlock();
    execute(group);
    lk.lock();
  }
}

std::shared_ptr<const magnet::MagNetPipeline> MicroBatcher::ensure_pipeline() {
  // Double duty: lazy first load AND reload after a failed load. The
  // factory is expected to route through the self-healing ModelZoo, so a
  // corrupt cached model quarantines and rebuilds here instead of
  // permanently wedging the daemon.
  std::shared_ptr<const magnet::MagNetPipeline> pipe;
  {
    std::lock_guard lk(mu_);
    pipe = pipeline_;
  }
  if (pipe) return pipe;
  if (fault::check("serve.model_load") != fault::Action::None) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw std::runtime_error("injected fault: serve.model_load");
  }
  try {
    pipe = factory_();
  } catch (...) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw;
  }
  if (!pipe) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw std::runtime_error("pipeline factory returned null");
  }
  std::lock_guard lk(mu_);
  pipeline_ = pipe;
  return pipe;
}

void MicroBatcher::execute(std::vector<Pending>& group) {
  if (group.empty()) return;
  const auto extracted = std::chrono::steady_clock::now();
  std::size_t total_rows = 0;
  for (const Pending& p : group) total_rows += p.row_count;
  if (obs::enabled()) {
    batches_counter().add(1);
    batch_rows_counter().add(total_rows);
    static auto& wait_timer =
        obs::MetricsRegistry::global().timer("serve/queue_wait");
    for (const Pending& p : group) {
      wait_timer.record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(extracted -
                                                               p.enqueued)
              .count()));
    }
  }
  try {
    const auto pipe = ensure_pipeline();
    if (fault::check("serve.batch_forward") != fault::Action::None) {
      throw std::runtime_error("injected fault: serve.batch_forward");
    }
    // Coalesce into one dense NCHW batch (a lone request's tensor is
    // forwarded as-is — no copy on the serial path).
    Tensor input;
    if (group.size() == 1) {
      input = std::move(group.front().rows);
    } else {
      std::vector<std::size_t> dims = group.front().rows.shape().dims();
      dims[0] = total_rows;
      input = Tensor(Shape(dims));
      std::size_t off = 0;
      for (Pending& p : group) {
        input.set_rows(off, p.rows);
        off += p.row_count;
        p.rows = Tensor();  // free the staged copy early
      }
    }
    magnet::DefenseOutcome out;
    {
      obs::ScopedTimer t("serve/batch_forward");
      out = pipe->classify(input, group.front().scheme);
    }
    if (group.size() == 1) {
      group.front().promise.set_value({true, {}, std::move(out)});
    } else {
      std::size_t off = 0;
      for (Pending& p : group) {
        p.promise.set_value(
            {true, {}, out.slice_rows(off, off + p.row_count)});
        off += p.row_count;
      }
    }
    if (obs::enabled()) ok_counter().add(group.size());
  } catch (const std::exception& e) {
    // Degraded mode: this batch's requests get error responses; the
    // batcher thread survives to serve the next batch.
    for (Pending& p : group) {
      p.promise.set_value({false, e.what(), {}});
    }
    if (obs::enabled()) {
      batch_failures_counter().add(1);
      error_counter().add(group.size());
    }
  }
}

}  // namespace adv::serve
