#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"

namespace adv::serve {
namespace {

// Instrumentation handles (stable for the process lifetime; see
// obs/metrics.hpp — sites cache references in function-local statics).
obs::Counter& requests_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/requests");
  return c;
}
obs::Counter& ok_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/responses_ok");
  return c;
}
obs::Counter& error_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/responses_error");
  return c;
}
obs::Counter& batches_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/batches");
  return c;
}
obs::Counter& batch_rows_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/batch_rows");
  return c;
}
obs::Counter& model_load_failures_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/model_load_failures");
  return c;
}
obs::Counter& batch_failures_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/batch_failures");
  return c;
}
obs::Counter& shed_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("serve/shed");
  return c;
}
obs::Counter& deadline_expired_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/deadline_expired");
  return c;
}
obs::Counter& watchdog_trips_counter() {
  static auto& c =
      obs::MetricsRegistry::global().counter("serve/watchdog_trips");
  return c;
}

bool same_row_shape(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank()) return false;
  for (std::size_t i = 1; i < a.rank(); ++i) {
    if (a.dim(i) != b.dim(i)) return false;
  }
  return true;
}

}  // namespace

// --- shared state outliving the MicroBatcher ----------------------------
//
// A watchdog-retired executor may still be wedged inside classify() (or a
// `stall` failpoint) when the MicroBatcher is destroyed. Everything such
// a thread can touch therefore lives behind shared_ptr: the ticket that
// owns its batch, the pipeline slot, and the drain counter it checks out
// of on exit. It never dereferences the MicroBatcher itself.

struct MicroBatcher::PipelineSlot {
  std::mutex mu;
  std::shared_ptr<const magnet::MagNetPipeline> pipeline;
  /// Bumped by every watchdog trip. A load that started under an older
  /// generation may USE the pipeline it built (it holds the only
  /// reference), but its attempt to publish into the slot is rejected —
  /// an abandoned executor must never share an instance with the
  /// replacement that superseded it.
  std::uint64_t generation = 0;
};

struct MicroBatcher::BatchTicket {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Pending> group;
  bool failed = false;  // watchdog already resolved the promises
  bool done = false;    // executor finished (delivered or dropped)
};

struct MicroBatcher::DrainState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t retired_live = 0;  // retired executors still running
};

/// One long-lived execution thread. The batcher assigns it a ticket and
/// waits (bounded by the watchdog); on a trip the executor is retire()d —
/// detached, counted in DrainState — and replaced. The thread keeps
/// itself alive via the self shared_ptr captured in its loop.
class MicroBatcher::Executor {
 public:
  static std::shared_ptr<Executor> spawn(
      PipelineFactory factory, std::shared_ptr<PipelineSlot> slot,
      std::shared_ptr<DrainState> drain) {
    auto ex = std::shared_ptr<Executor>(new Executor(
        std::move(factory), std::move(slot), std::move(drain)));
    ex->thread_ = std::thread([ex] { ex->loop(); });
    return ex;
  }

  ~Executor() {
    // Healthy path: shutdown() joined already. Retired path: detached.
    if (thread_.joinable()) {
      shutdown();
    }
  }

  void assign(std::shared_ptr<BatchTicket> ticket) {
    {
      std::lock_guard lk(mu_);
      ticket_ = std::move(ticket);
    }
    cv_.notify_all();
  }

  /// Watchdog trip: mark retired, register with the drain counter and
  /// detach. The loop exits after its current ticket (whenever the
  /// wedged call finally returns).
  void retire() {
    {
      std::lock_guard lk(mu_);
      retired_ = true;
    }
    {
      std::lock_guard lk(drain_->mu);
      ++drain_->retired_live;
    }
    cv_.notify_all();
    thread_.detach();
  }

  /// Healthy shutdown: no ticket in flight, thread joins promptly.
  void shutdown() {
    {
      std::lock_guard lk(mu_);
      quit_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  Executor(PipelineFactory factory, std::shared_ptr<PipelineSlot> slot,
           std::shared_ptr<DrainState> drain)
      : factory_(std::move(factory)),
        slot_(std::move(slot)),
        drain_(std::move(drain)) {}

  void loop() {
    for (;;) {
      std::shared_ptr<BatchTicket> ticket;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return quit_ || retired_ || ticket_ != nullptr; });
        if (!ticket_) break;  // quit or retired while idle
        ticket = std::move(ticket_);
      }
      execute_ticket(ticket, factory_, slot_);
      std::lock_guard lk(mu_);
      if (quit_ || retired_) break;
    }
    bool was_retired;
    {
      std::lock_guard lk(mu_);
      was_retired = retired_;
    }
    if (was_retired) {
      // Check out so MicroBatcher::stop can tell "unwound" from "still
      // wedged" within its drain grace.
      std::lock_guard lk(drain_->mu);
      --drain_->retired_live;
      drain_->cv.notify_all();
    }
  }

  PipelineFactory factory_;
  std::shared_ptr<PipelineSlot> slot_;
  std::shared_ptr<DrainState> drain_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<BatchTicket> ticket_;
  bool quit_ = false;
  bool retired_ = false;
  std::thread thread_;
};

MicroBatcher::MicroBatcher(PipelineFactory factory, BatchConfig cfg)
    : factory_(std::move(factory)),
      cfg_(cfg),
      slot_(std::make_shared<PipelineSlot>()),
      drain_(std::make_shared<DrainState>()) {
  if (!factory_) throw std::invalid_argument("MicroBatcher: null factory");
  if (cfg_.max_batch_rows == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch_rows must be >= 1");
  }
  if (cfg_.max_queue_rows == 0) {
    throw std::invalid_argument("MicroBatcher: max_queue_rows must be >= 1");
  }
  if (cfg_.watchdog_timeout.count() > 0) {
    executor_ = Executor::spawn(factory_, slot_, drain_);
  }
  thread_ = std::thread([this] { run(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

std::future<ServeResult> MicroBatcher::submit(
    Tensor rows, magnet::DefenseScheme scheme, magnet::ExecMode mode,
    std::chrono::milliseconds deadline) {
  std::promise<ServeResult> promise;
  std::future<ServeResult> future = promise.get_future();
  if (rows.rank() != 4 || rows.dim(0) == 0) {
    promise.set_value({false, ResultStatus::Error,
                       "submit: batch must be rank-4 with >= 1 row, got " +
                           rows.shape_string(),
                       {}});
    return future;
  }
  if (obs::enabled()) requests_counter().add(1);
  Pending p;
  p.row_count = rows.dim(0);
  p.rows = std::move(rows);
  p.scheme = scheme;
  p.mode = mode;
  p.promise = std::move(promise);
  p.enqueued = std::chrono::steady_clock::now();
  p.deadline = deadline.count() > 0
                   ? p.enqueued + deadline
                   : std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard lk(mu_);
    if (stop_) {
      if (obs::enabled()) shed_counter().add(1);
      p.promise.set_value(
          {false, ResultStatus::Overloaded, "batcher stopped", {}});
      return future;
    }
    // Admission control: never let the queue grow past max_queue_rows.
    // An oversized lone request is still admitted into an EMPTY queue —
    // it runs as its own batch, same as the oversized-batch rule.
    if (!queue_.empty() &&
        queued_rows_locked() + p.row_count > cfg_.max_queue_rows) {
      if (obs::enabled()) shed_counter().add(1);
      p.promise.set_value({false, ResultStatus::Overloaded,
                           "overloaded: admission queue full (" +
                               std::to_string(cfg_.max_queue_rows) +
                               " rows)",
                           {}});
      return future;
    }
    queue_.push_back(std::move(p));
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("serve/queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();
  return future;
}

void MicroBatcher::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (executor_) {
    executor_->shutdown();
    executor_.reset();
  }
  // Give watchdog-retired executors a bounded chance to unwind (a test
  // that disarmed its stall wants no thread left behind); a truly wedged
  // one only holds refcounted state, so walking away is safe.
  std::unique_lock lk(drain_->mu);
  drain_->cv.wait_for(lk, cfg_.drain_grace,
                      [&] { return drain_->retired_live == 0; });
}

std::size_t MicroBatcher::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

bool MicroBatcher::pipeline_loaded() const {
  std::lock_guard lk(slot_->mu);
  return slot_->pipeline != nullptr;
}

std::size_t MicroBatcher::queued_rows_locked() const {
  std::size_t rows = 0;
  for (const Pending& p : queue_) rows += p.row_count;
  return rows;
}

void MicroBatcher::expire_locked(
    std::chrono::steady_clock::time_point now) {
  bool any = false;
  for (const Pending& p : queue_) {
    if (p.deadline <= now) {
      any = true;
      break;
    }
  }
  if (!any) return;  // common case: nothing is touched, let alone moved
  std::deque<Pending> keep;
  std::size_t expired = 0;
  for (Pending& p : queue_) {
    if (p.deadline <= now) {
      ++expired;
      p.promise.set_value({false, ResultStatus::DeadlineExceeded,
                           "deadline exceeded while queued", {}});
    } else {
      keep.push_back(std::move(p));
    }
  }
  queue_ = std::move(keep);
  if (obs::enabled()) deadline_expired_counter().add(expired);
}

void MicroBatcher::shed_queue_locked(const char* reason) {
  if (queue_.empty()) return;
  if (obs::enabled()) shed_counter().add(queue_.size());
  for (Pending& p : queue_) {
    p.promise.set_value({false, ResultStatus::Overloaded, reason, {}});
  }
  queue_.clear();
}

std::vector<MicroBatcher::Pending> MicroBatcher::take_group_locked() {
  std::vector<Pending> group;
  std::deque<Pending> rest;
  std::size_t rows = 0;
  for (Pending& p : queue_) {
    const bool fits = rows < cfg_.max_batch_rows;
    const bool compatible =
        group.empty() || (p.scheme == group.front().scheme &&
                          p.mode == group.front().mode &&
                          same_row_shape(p.rows, group.front().rows));
    if (fits && compatible) {
      rows += p.row_count;
      group.push_back(std::move(p));
    } else {
      rest.push_back(std::move(p));
    }
  }
  queue_ = std::move(rest);
  return group;
}

void MicroBatcher::run() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) {
      // Drain: anything not yet taken into a batch is shed, never served
      // — shutdown must not depend on the depth of the backlog.
      shed_queue_locked("draining: batcher stopped");
      return;
    }
    // Work exists. Hold the batch open until the deadline or until the
    // queue carries a full batch of rows, whichever comes first.
    const auto window =
        std::chrono::steady_clock::now() + cfg_.flush_deadline;
    while (!stop_ && queued_rows_locked() < cfg_.max_batch_rows) {
      if (cv_.wait_until(lk, window) == std::cv_status::timeout) break;
    }
    if (stop_) {
      shed_queue_locked("draining: batcher stopped");
      return;
    }
    expire_locked(std::chrono::steady_clock::now());
    std::vector<Pending> group = take_group_locked();
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("serve/queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    if (group.empty()) continue;  // everything expired
    lk.unlock();
    dispatch(std::move(group));
    lk.lock();
  }
}

void MicroBatcher::dispatch(std::vector<Pending> group) {
  auto ticket = std::make_shared<BatchTicket>();
  ticket->group = std::move(group);
  if (!executor_) {
    // Watchdog off: execute inline on the batcher thread — exactly the
    // pre-watchdog code path (and thread), so the identity tests cover
    // it unchanged.
    execute_ticket(ticket, factory_, slot_);
    return;
  }
  executor_->assign(ticket);
  std::unique_lock tlk(ticket->mu);
  if (ticket->cv.wait_for(tlk, cfg_.watchdog_timeout,
                          [&] { return ticket->done; })) {
    return;
  }
  // Watchdog trip: fail this batch's requests, then replace the wedged
  // executor and the pipeline it may have been mutating mid-forward.
  ticket->failed = true;
  const std::string msg =
      "watchdog: batch exceeded " +
      std::to_string(cfg_.watchdog_timeout.count()) + " ms";
  for (Pending& p : ticket->group) {
    p.promise.set_value({false, ResultStatus::Error, msg, {}});
  }
  if (obs::enabled()) {
    watchdog_trips_counter().add(1);
    batch_failures_counter().add(1);
    error_counter().add(ticket->group.size());
  }
  tlk.unlock();
  {
    std::lock_guard slk(slot_->mu);
    slot_->pipeline.reset();  // tainted: abandoned thread may still use it
    ++slot_->generation;      // and may never publish a late replacement
  }
  executor_->retire();
  executor_ = Executor::spawn(factory_, slot_, drain_);
}

std::shared_ptr<const magnet::MagNetPipeline> MicroBatcher::ensure_pipeline(
    const PipelineFactory& factory,
    const std::shared_ptr<PipelineSlot>& slot) {
  // Double duty: lazy first load AND reload after a failed load or a
  // watchdog trip. The factory is expected to route through the
  // self-healing ModelZoo, so a corrupt cached model quarantines and
  // rebuilds here instead of permanently wedging the daemon.
  std::shared_ptr<const magnet::MagNetPipeline> pipe;
  std::uint64_t gen = 0;
  {
    std::lock_guard lk(slot->mu);
    pipe = slot->pipeline;
    gen = slot->generation;
  }
  if (pipe) return pipe;
  if (fault::check("serve.model_load") != fault::Action::None) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw std::runtime_error("injected fault: serve.model_load");
  }
  try {
    pipe = factory();
  } catch (...) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw;
  }
  if (!pipe) {
    if (obs::enabled()) model_load_failures_counter().add(1);
    throw std::runtime_error("pipeline factory returned null");
  }
  std::lock_guard lk(slot->mu);
  if (slot->generation == gen && !slot->pipeline) slot->pipeline = pipe;
  return pipe;
}

void MicroBatcher::execute_ticket(
    const std::shared_ptr<BatchTicket>& ticket,
    const PipelineFactory& factory,
    const std::shared_ptr<PipelineSlot>& slot) {
  std::vector<Pending>& group = ticket->group;
  if (group.empty()) return;
  {
    // A watchdog may already have failed this ticket while the executor
    // was wedged upstream (e.g. a stalled model load that released late).
    std::lock_guard lk(ticket->mu);
    if (ticket->failed) {
      ticket->done = true;
      ticket->cv.notify_all();
      return;
    }
  }
  const auto extracted = std::chrono::steady_clock::now();
  std::size_t total_rows = 0;
  for (const Pending& p : group) total_rows += p.row_count;
  if (obs::enabled()) {
    batches_counter().add(1);
    batch_rows_counter().add(total_rows);
    static auto& wait_timer =
        obs::MetricsRegistry::global().timer("serve/queue_wait");
    for (const Pending& p : group) {
      wait_timer.record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(extracted -
                                                               p.enqueued)
              .count()));
    }
  }
  try {
    const auto pipe = ensure_pipeline(factory, slot);
    if (fault::check("serve.batch_forward") != fault::Action::None) {
      throw std::runtime_error("injected fault: serve.batch_forward");
    }
    // Coalesce into one dense NCHW batch (a lone request's tensor is
    // forwarded as-is — no copy on the serial path).
    Tensor input;
    if (group.size() == 1) {
      input = std::move(group.front().rows);
    } else {
      std::vector<std::size_t> dims = group.front().rows.shape().dims();
      dims[0] = total_rows;
      input = Tensor(Shape(dims));
      std::size_t off = 0;
      for (Pending& p : group) {
        input.set_rows(off, p.rows);
        off += p.row_count;
        p.rows = Tensor();  // free the staged copy early
      }
    }
    magnet::DefenseOutcome out;
    {
      obs::ScopedTimer t("serve/batch_forward");
      out = pipe->classify(input, group.front().scheme, group.front().mode);
    }
    std::lock_guard lk(ticket->mu);
    if (!ticket->failed) {
      if (group.size() == 1) {
        group.front().promise.set_value(
            {true, ResultStatus::Ok, {}, std::move(out)});
      } else {
        std::size_t off = 0;
        for (Pending& p : group) {
          p.promise.set_value({true, ResultStatus::Ok, {},
                               out.slice_rows(off, off + p.row_count)});
          off += p.row_count;
        }
      }
      if (obs::enabled()) ok_counter().add(group.size());
    }
    ticket->done = true;
    ticket->cv.notify_all();
  } catch (const std::exception& e) {
    // Degraded mode: this batch's requests get error responses; the
    // executing thread survives to serve the next batch. If the watchdog
    // got here first the promises are already resolved — drop silently.
    std::lock_guard lk(ticket->mu);
    if (!ticket->failed) {
      for (Pending& p : group) {
        p.promise.set_value({false, ResultStatus::Error, e.what(), {}});
      }
      if (obs::enabled()) {
        batch_failures_counter().add(1);
        error_counter().add(group.size());
      }
    }
    ticket->done = true;
    ticket->cv.notify_all();
  }
}

}  // namespace adv::serve
