#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace adv::serve {
namespace {

sockaddr_un make_addr(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  if (s.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + s);
  }
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

void count(const char* key) {
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter(key).add(1);
  }
}

Status to_status(ResultStatus s) {
  switch (s) {
    case ResultStatus::Ok: return Status::Ok;
    case ResultStatus::Error: return Status::Error;
    case ResultStatus::Overloaded: return Status::Overloaded;
    case ResultStatus::DeadlineExceeded: return Status::DeadlineExceeded;
  }
  return Status::Error;
}

}  // namespace

ServeDaemon::ServeDaemon(MicroBatcher::PipelineFactory factory,
                         ServeConfig cfg)
    : cfg_(std::move(cfg)), batcher_(std::move(factory), cfg_.batch) {
  if (cfg_.socket_path.empty()) {
    throw std::invalid_argument("ServeDaemon: empty socket path");
  }
}

ServeDaemon::~ServeDaemon() { stop(); }

void ServeDaemon::start() {
  if (listen_fd_ >= 0) return;
  const sockaddr_un addr = make_addr(cfg_.socket_path);
  std::filesystem::remove(cfg_.socket_path);  // stale socket from a crash
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    ::close(fd);
    throw std::runtime_error("bind " + cfg_.socket_path.string() + ": " +
                             std::strerror(e));
  }
  if (::listen(fd, cfg_.listen_backlog) < 0) {
    const int e = errno;
    ::close(fd);
    throw std::runtime_error(std::string("listen: ") + std::strerror(e));
  }
  listen_fd_ = fd;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeDaemon::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain BEFORE disconnecting clients: the batcher finishes its in-flight
  // batch and sheds the queue, resolving every blocked submit().get() —
  // handlers then still hold live fds, so clients actually RECEIVE their
  // Overloaded shed responses instead of a reset connection.
  batcher_.stop();
  {
    // Now kick handler threads out of blocking reads; their fds are
    // closed by the handlers themselves on exit.
    std::lock_guard lk(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  std::filesystem::remove(cfg_.socket_path);
}

void ServeDaemon::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop(), or fatal — either way, done
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    count("serve/connections");
    std::lock_guard lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void ServeDaemon::handle_connection(int fd) {
  std::vector<std::uint8_t> body;
  for (;;) {
    try {
      if (!read_frame(fd, kRequestMagic, cfg_.max_body_bytes, body)) {
        break;  // peer closed cleanly between requests
      }
    } catch (const ProtocolError& e) {
      // Unframeable stream: answer once (best effort) and hang up.
      count("serve/protocol_errors");
      try {
        write_frame(fd, kResponseMagic,
                    encode_error_response(MessageType::Classify, e.what()));
      } catch (...) {
      }
      break;
    } catch (...) {
      break;  // EOF mid-frame / transport error: client is gone
    }

    Request req;
    try {
      req = decode_request(body);
    } catch (const ProtocolError& e) {
      // The frame boundary was sound, only the contents were not —
      // reject this request and keep the connection.
      count("serve/frames_rejected");
      try {
        write_frame(fd, kResponseMagic,
                    encode_error_response(MessageType::Classify, e.what()));
        continue;
      } catch (...) {
        break;
      }
    }

    std::vector<std::uint8_t> resp;
    if (req.type == MessageType::Ping) {
      resp = encode_ok_response(MessageType::Ping, {});
    } else {
      const magnet::ExecMode mode =
          req.quantized ? magnet::ExecMode::Int8 : cfg_.default_mode;
      ServeResult r =
          batcher_
              .submit(std::move(req.batch), req.scheme, mode,
                      std::chrono::milliseconds(req.deadline_ms))
              .get();
      resp = r.ok ? encode_ok_response(MessageType::Classify, r.outcome)
                  : encode_status_response(MessageType::Classify,
                                           to_status(r.status), r.error);
    }
    try {
      write_frame(fd, kResponseMagic, resp);
    } catch (...) {
      break;  // client went away while we were classifying
    }
  }
  {
    // Deregister BEFORE closing so stop() never shutdown()s a recycled
    // fd number.
    std::lock_guard lk(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

}  // namespace adv::serve
