#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adv::serve {
namespace {

/// Append-only byte buffer; all writes are memcpys of host-endian values.
struct ByteWriter {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n) {
    const std::size_t off = buf.size();
    buf.resize(off + n);
    std::memcpy(buf.data() + off, p, n);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
};

/// Bounds-checked reader over a body span; any over-read is a
/// ProtocolError ("truncated body"), never UB.
struct ByteReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > data.size()) throw ProtocolError("truncated body");
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  float f32() { return get<float>(); }
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }
  void raw(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data.data() + pos, n);
    pos += n;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
  bool exhausted() const { return pos == data.size(); }
};

magnet::DefenseScheme scheme_from_u8(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(magnet::DefenseScheme::Full)) {
    throw ProtocolError("invalid defense scheme " + std::to_string(v));
  }
  return static_cast<magnet::DefenseScheme>(v);
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Error: return "error";
    case Status::Overloaded: return "overloaded";
    case Status::DeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

std::vector<std::uint8_t> encode_classify_request(
    magnet::DefenseScheme scheme, const Tensor& batch,
    std::uint32_t deadline_ms, bool quantized) {
  if (batch.rank() != 4) {
    throw ProtocolError("classify request batch must be rank-4 NCHW, got " +
                        batch.shape_string());
  }
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::Classify));
  w.u8(static_cast<std::uint8_t>(scheme) |
       (quantized ? kSchemeQuantBit : std::uint8_t{0}));
  w.u16(static_cast<std::uint16_t>(
      deadline_ms > 0xFFFFu ? 0xFFFFu : deadline_ms));
  for (std::size_t i = 0; i < 4; ++i) {
    w.u32(static_cast<std::uint32_t>(batch.dim(i)));
  }
  w.raw(batch.data(), batch.numel() * sizeof(float));
  return std::move(w.buf);
}

std::vector<std::uint8_t> encode_ping_request() {
  return {static_cast<std::uint8_t>(MessageType::Ping)};
}

Request decode_request(std::span<const std::uint8_t> body) {
  ByteReader r{body};
  Request req;
  const std::uint8_t type = r.u8();
  if (type == static_cast<std::uint8_t>(MessageType::Ping)) {
    req.type = MessageType::Ping;
    if (!r.exhausted()) throw ProtocolError("trailing bytes after ping");
    return req;
  }
  if (type != static_cast<std::uint8_t>(MessageType::Classify)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  req.type = MessageType::Classify;
  const std::uint8_t scheme_byte = r.u8();
  req.quantized = (scheme_byte & kSchemeQuantBit) != 0;
  req.scheme = scheme_from_u8(scheme_byte & ~kSchemeQuantBit);
  req.deadline_ms = r.u16();  // formerly reserved-zero: 0 = no deadline
  std::size_t dims[4];
  std::size_t numel = 1;
  for (std::size_t& d : dims) {
    d = r.u32();
    if (d == 0) throw ProtocolError("zero dimension in classify request");
    // kDefaultMaxBodyBytes caps the frame at 64 MiB, so honest payloads
    // are < 2^24 floats; this bound just keeps the product overflow-free.
    if (d > (1u << 24) || numel > (1ull << 32) / d) {
      throw ProtocolError("classify request dims overflow");
    }
    numel *= d;
  }
  if (dims[0] > kMaxRowsPerRequest) {
    throw ProtocolError("classify request rows " + std::to_string(dims[0]) +
                        " exceed limit " + std::to_string(kMaxRowsPerRequest));
  }
  if (body.size() - r.pos != numel * sizeof(float)) {
    throw ProtocolError("payload size disagrees with dims");
  }
  std::vector<float> data(numel);
  r.raw(data.data(), numel * sizeof(float));
  req.batch = Tensor::from_data(Shape({dims[0], dims[1], dims[2], dims[3]}),
                                std::move(data));
  return req;
}

std::vector<std::uint8_t> encode_ok_response(
    MessageType type, const magnet::DefenseOutcome& outcome) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Status::Ok));
  w.u8(static_cast<std::uint8_t>(type));
  if (type == MessageType::Ping) return std::move(w.buf);

  const std::size_t n = outcome.predicted.size();
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u8(outcome.rejected[i] ? 1 : 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    w.i32(outcome.predicted[i]);
  }
  w.u32(static_cast<std::uint32_t>(outcome.readings.size()));
  for (const auto& reading : outcome.readings) {
    w.str(reading.name);
    w.f32(reading.threshold);
    w.raw(reading.scores.data(), reading.scores.size() * sizeof(float));
  }
  return std::move(w.buf);
}

std::vector<std::uint8_t> encode_status_response(MessageType type,
                                                 Status status,
                                                 const std::string& message) {
  if (status == Status::Ok) {
    throw ProtocolError("encode_status_response: Ok needs an outcome");
  }
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(static_cast<std::uint8_t>(type));
  w.str(message);
  return std::move(w.buf);
}

std::vector<std::uint8_t> encode_error_response(MessageType type,
                                                const std::string& message) {
  return encode_status_response(type, Status::Error, message);
}

ClassifyResponse decode_response(std::span<const std::uint8_t> body) {
  ByteReader r{body};
  ClassifyResponse resp;
  const std::uint8_t status = r.u8();
  const std::uint8_t type = r.u8();
  if (type != static_cast<std::uint8_t>(MessageType::Classify) &&
      type != static_cast<std::uint8_t>(MessageType::Ping)) {
    throw ProtocolError("unknown response type " + std::to_string(type));
  }
  resp.type = static_cast<MessageType>(type);
  if (status == static_cast<std::uint8_t>(Status::Error) ||
      status == static_cast<std::uint8_t>(Status::Overloaded) ||
      status == static_cast<std::uint8_t>(Status::DeadlineExceeded)) {
    resp.ok = false;
    resp.status = static_cast<Status>(status);
    resp.error = r.str();
    return resp;
  }
  if (status != static_cast<std::uint8_t>(Status::Ok)) {
    throw ProtocolError("unknown response status " + std::to_string(status));
  }
  resp.ok = true;
  resp.status = Status::Ok;
  if (resp.type == MessageType::Ping) return resp;

  const std::uint32_t n = r.u32();
  resp.outcome.rejected.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) resp.outcome.rejected[i] = r.u8() != 0;
  resp.outcome.predicted.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) resp.outcome.predicted[i] = r.i32();
  const std::uint32_t dets = r.u32();
  resp.outcome.readings.resize(dets);
  for (std::uint32_t d = 0; d < dets; ++d) {
    auto& reading = resp.outcome.readings[d];
    reading.name = r.str();
    reading.threshold = r.f32();
    reading.scores.resize(n);
    r.raw(reading.scores.data(), n * sizeof(float));
  }
  if (!r.exhausted()) throw ProtocolError("trailing bytes after response");
  return resp;
}

namespace {

void read_exact(int fd, void* out, std::size_t len, bool& any_read) {
  auto* p = static_cast<std::uint8_t*>(out);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::recv(fd, p + got, len - got, 0);
    if (r == 0) {
      if (!any_read) {
        throw RemoteClosedError("peer closed");  // caught by read_frame
      }
      throw RemoteClosedError("EOF mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("recv timed out");  // SO_RCVTIMEO expired
      }
      if (errno == ECONNRESET) throw RemoteClosedError("recv: reset");
      throw IoError(std::string("recv: ") + std::strerror(errno));
    }
    any_read = true;
    got += static_cast<std::size_t>(r);
  }
}

}  // namespace

bool read_frame(int fd, std::uint32_t expected_magic,
                std::size_t max_body_bytes, std::vector<std::uint8_t>& body) {
  std::uint32_t header[3];  // magic, version, body_len
  bool any_read = false;
  try {
    read_exact(fd, header, sizeof(header), any_read);
  } catch (const RemoteClosedError&) {
    // Only a CLOSE before any bytes is a clean end-of-stream; a timeout
    // (TimeoutError is-a IoError too) must surface as itself.
    if (!any_read) return false;  // clean EOF at a frame boundary
    throw;
  }
  if (header[0] != expected_magic) {
    throw ProtocolError("bad frame magic");
  }
  if (header[1] != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(header[1]));
  }
  const std::size_t body_len = header[2];
  if (body_len > max_body_bytes) {
    throw ProtocolError("frame body " + std::to_string(body_len) +
                        " bytes exceeds limit " +
                        std::to_string(max_body_bytes));
  }
  body.resize(body_len);
  if (body_len > 0) read_exact(fd, body.data(), body_len, any_read);
  return true;
}

void write_frame(int fd, std::uint32_t magic,
                 std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> frame(sizeof(std::uint32_t) * 3 + body.size());
  const std::uint32_t header[3] = {
      magic, kProtocolVersion, static_cast<std::uint32_t>(body.size())};
  std::memcpy(frame.data(), header, sizeof(header));
  std::memcpy(frame.data() + sizeof(header), body.data(), body.size());
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("send timed out");  // SO_SNDTIMEO expired
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        throw RemoteClosedError(std::string("send: ") + std::strerror(errno));
      }
      throw IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace adv::serve
