// ServeDaemon — long-lived defended-inference server over a unix stream
// socket.
//
// One accept thread hands each connection to its own handler thread;
// handlers parse length-prefixed request frames (serve/protocol.hpp) and
// block on the shared MicroBatcher, which coalesces everything in flight
// into dense forward batches. Concurrency therefore lives entirely in the
// connection layer — model execution stays single-threaded inside the
// batcher, which is what makes the shared pipeline and its Workspace
// arena safe.
//
// Failure containment at the connection layer (the batcher has its own,
// see batcher.hpp):
//   * header-level garbage (bad magic/version, oversize length prefix)
//     gets a best-effort error frame and the connection is dropped —
//     framing cannot be resynchronized;
//   * a well-framed but undecodable body gets an error response and the
//     connection continues;
//   * a client that disconnects mid-frame or mid-response just loses its
//     connection thread; nothing reaches (or wedges) the batcher.
//
// Overload path (DESIGN.md §15): a request's deadline_ms rides the wire
// into MicroBatcher::submit; shed / deadline-expired / degraded results
// come back as distinct protocol statuses (Overloaded / DeadlineExceeded
// / Error). stop() drains in a fixed order — stop accepting, drain the
// batcher (finish in-flight, shed the queue) while handler fds are STILL
// open so clients receive their shed responses, then disconnect handlers
// and unlink the socket.
//
// Counters (adv::obs): serve/connections, serve/protocol_errors,
// serve/frames_rejected.
#pragma once

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/protocol.hpp"

namespace adv::serve {

struct ServeConfig {
  /// Unix socket path. Unlinked (if stale) on start and on stop.
  std::filesystem::path socket_path;
  BatchConfig batch;
  std::size_t max_body_bytes = kDefaultMaxBodyBytes;
  int listen_backlog = 64;
  /// Execution mode for classify requests that do NOT set the wire's
  /// kSchemeQuantBit (serve_daemon --quant flips this to Int8). Requests
  /// that DO set the bit always run int8, regardless of this default.
  magnet::ExecMode default_mode = magnet::ExecMode::Float;
};

class ServeDaemon {
 public:
  /// The factory is invoked lazily by the batcher (first request), not at
  /// construction — a daemon binds its socket fast and degrades to error
  /// responses while models load or fail to.
  ServeDaemon(MicroBatcher::PipelineFactory factory, ServeConfig cfg);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds + listens + starts accepting. Throws std::runtime_error if the
  /// socket cannot be bound.
  void start();

  /// Stops accepting, shuts down open connections, drains the batcher.
  /// Idempotent; the destructor calls it.
  void stop();

  const std::filesystem::path& socket_path() const {
    return cfg_.socket_path;
  }
  MicroBatcher& batcher() { return batcher_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  ServeConfig cfg_;
  MicroBatcher batcher_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  // live fds, for shutdown() on stop
};

}  // namespace adv::serve
