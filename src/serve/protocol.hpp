// adv::serve wire protocol — length-prefixed frames over a stream socket.
//
// Every message is one frame:
//
//   [u32 magic][u32 version][u32 body_len][body_len bytes]
//
// Requests carry magic "ADVS", responses "ADVR"; version is 1. The body
// starts with a u8 message type. All integers and floats are host-endian
// (the daemon serves same-host clients over a unix socket; a cross-host
// deployment would pin endianness at the object-store seam instead).
//
// Classify request body:
//   u8 type=Classify, u8 scheme, u16 deadline_ms (0 = no deadline),
//   u32 dims[4] (NCHW), f32 payload[n*c*h*w]
// (deadline_ms occupies what used to be a reserved-zero u16, so pre-
// deadline encoders produce "no deadline" requests — wire-compatible.)
// Ping request body:
//   u8 type=Ping
// Response body:
//   u8 status (Ok/Error/Overloaded/DeadlineExceeded), u8 type (echo of
//   the request type), then
//   non-Ok: u32 msg_len, msg bytes
//   Ok+Classify: u32 n, u8 rejected[n], i32 predicted[n], u32 det_count,
//                per detector: u32 name_len, name, f32 threshold,
//                f32 scores[n]
//   Ok+Ping: nothing further
//
// Overload statuses are part of the wire contract (DESIGN.md §15):
//   Overloaded       — the daemon refused to queue the request (admission
//                      control) or is draining; nothing was computed and
//                      a retry later is safe and useful.
//   DeadlineExceeded — the request was admitted but its deadline_ms
//                      budget ran out before a forward pass was spent on
//                      it; retrying is pointless unless the caller has a
//                      fresh budget.
// Both are distinct from Error, which means the daemon TRIED (degraded
// mode: model-load or forward failure) — errors are not classified as
// transient and are never retried by the client's retry policy.
//
// Robustness contract (exercised by tests/serve_test.cpp):
//   * bad magic / unsupported version / body_len > max_body_bytes throw
//     ProtocolError from read_frame BEFORE any body byte is read — the
//     connection handler answers with a best-effort error frame and drops
//     the connection (framing cannot be resynchronized);
//   * a syntactically valid frame whose body fails decode_request (bad
//     type, bad scheme, dims/payload mismatch, zero or oversize batch)
//     throws ProtocolError from the decoder — the handler sends an error
//     response and KEEPS the connection (framing is intact);
//   * EOF mid-frame (client died) surfaces as IoError and the connection
//     is dropped without touching the batcher.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "magnet/pipeline.hpp"
#include "tensor/tensor.hpp"

namespace adv::serve {

inline constexpr std::uint32_t kRequestMagic = 0x41445653u;   // "ADVS"
inline constexpr std::uint32_t kResponseMagic = 0x41445652u;  // "ADVR"
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard ceiling on one frame's body. A length prefix above this is
/// rejected before any allocation or read — an adversarial 4 GiB prefix
/// cannot make the daemon allocate.
inline constexpr std::size_t kDefaultMaxBodyBytes = 64ull << 20;

/// Rows per classify request (a request IS allowed to exceed the
/// batcher's max_batch_rows — it then runs as its own oversized batch).
inline constexpr std::size_t kMaxRowsPerRequest = 4096;

enum class MessageType : std::uint8_t { Classify = 1, Ping = 2 };

/// High bit of the classify scheme byte: execute the request on the int8
/// pipeline (magnet::ExecMode::Int8). The low 7 bits stay the
/// DefenseScheme, so pre-quantization encoders (which only ever wrote
/// 0..3) decode as float execution — wire-compatible by construction.
inline constexpr std::uint8_t kSchemeQuantBit = 0x80;
enum class Status : std::uint8_t {
  Ok = 0,
  Error = 1,             // degraded mode: the daemon tried and failed
  Overloaded = 2,        // shed by admission control / drain; retryable
  DeadlineExceeded = 3,  // expired in queue; no forward pass was spent
};

const char* to_string(Status s);

/// Malformed frame or body. Header-level instances kill the connection;
/// body-level instances produce an error response.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transport failure (EOF mid-frame, write to a dead peer). The typed
/// subclasses below let the client's retry policy distinguish transient
/// transport failures from everything else; code that doesn't care can
/// keep catching IoError.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A socket read/write/connect ran past its configured timeout
/// (SO_RCVTIMEO / SO_SNDTIMEO / ClientConfig::connect_timeout).
class TimeoutError : public IoError {
 public:
  using IoError::IoError;
};

/// connect() was refused (daemon not listening / socket file missing).
/// Always raised before any bytes were sent, so retrying is safe even
/// for non-idempotent requests.
class ConnectError : public IoError {
 public:
  using IoError::IoError;
};

/// The peer closed the connection (EOF mid-frame or between frames where
/// a response was still owed, ECONNRESET, EPIPE).
class RemoteClosedError : public IoError {
 public:
  using IoError::IoError;
};

struct Request {
  MessageType type = MessageType::Ping;
  magnet::DefenseScheme scheme = magnet::DefenseScheme::Full;
  /// True when the classify scheme byte carried kSchemeQuantBit: the
  /// client asked for int8 execution.
  bool quantized = false;
  std::uint16_t deadline_ms = 0;  // 0 = no deadline
  Tensor batch;                   // Classify only
};

struct ClassifyResponse {
  bool ok = false;
  Status status = Status::Error;
  MessageType type = MessageType::Classify;
  std::string error;               // when !ok
  magnet::DefenseOutcome outcome;  // when ok && type == Classify
};

// --- body encode/decode (pure functions over byte vectors; the framing
// --- below is the only part that touches a file descriptor) -------------

/// deadline_ms is clamped to the u16 wire field; 0 means no deadline.
/// `quantized` sets kSchemeQuantBit on the scheme byte (int8 execution).
std::vector<std::uint8_t> encode_classify_request(
    magnet::DefenseScheme scheme, const Tensor& batch,
    std::uint32_t deadline_ms = 0, bool quantized = false);
std::vector<std::uint8_t> encode_ping_request();
Request decode_request(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_ok_response(
    MessageType type, const magnet::DefenseOutcome& outcome);
/// Any non-Ok status (Error / Overloaded / DeadlineExceeded) + message.
std::vector<std::uint8_t> encode_status_response(MessageType type,
                                                 Status status,
                                                 const std::string& message);
/// Shorthand for encode_status_response(type, Status::Error, message).
std::vector<std::uint8_t> encode_error_response(MessageType type,
                                                const std::string& message);
ClassifyResponse decode_response(std::span<const std::uint8_t> body);

// --- framing over a socket fd -------------------------------------------

/// Reads one frame. Returns false on clean EOF at a frame boundary (peer
/// closed between requests). Throws ProtocolError on bad magic/version or
/// an oversize length prefix, IoError on EOF/error mid-frame.
bool read_frame(int fd, std::uint32_t expected_magic,
                std::size_t max_body_bytes, std::vector<std::uint8_t>& body);

/// Writes one frame (header + body). Throws IoError if the peer is gone.
/// Uses MSG_NOSIGNAL so a dead client yields EPIPE, not SIGPIPE.
void write_frame(int fd, std::uint32_t magic,
                 std::span<const std::uint8_t> body);

}  // namespace adv::serve
