#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "nn/activations.hpp"
#include "nn/pool.hpp"
#include "nn/structural.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/serialize.hpp"
#include "tensor/thread_pool.hpp"

namespace adv::quant {
namespace {

constexpr float kQmax = 127.0f;
// Activation zero-point: symmetric int8 values shifted into the uint8
// domain the u8 x s8 dot-product hardware expects. Undone at dequant via
// the packed weights' column sums.
constexpr std::int32_t kActOffset = 128;

obs::Counter& quant_rows_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("quant/rows");
  return c;
}

float safe_scale(float max_abs) {
  return max_abs > 0.0f ? max_abs / kQmax : 1.0f;
}

std::int8_t quantize_one(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
}

/// Per-tensor max-abs of a float buffer.
float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (const float v : t.values()) m = std::max(m, std::fabs(v));
  return m;
}

void check_inference_mode(nn::Mode mode, const char* layer) {
  if (mode == nn::Mode::Train) {
    throw std::runtime_error(std::string(layer) +
                             ": quantized layers are inference-only");
  }
}

[[noreturn]] void throw_no_backward(const char* layer) {
  throw std::runtime_error(std::string(layer) +
                           ": quantized layers have no backward pass");
}

Tensor meta_tensor(std::initializer_list<float> vals) {
  Tensor t({vals.size()});
  std::size_t i = 0;
  for (const float v : vals) t[i++] = v;
  return t;
}

const Tensor& take(const std::vector<Tensor>& in, std::size_t& cursor,
                   const char* what) {
  if (cursor >= in.size()) {
    throw std::runtime_error(std::string("load_quantized: missing ") + what);
  }
  return in[cursor++];
}

void expect_shape(const Tensor& t, const Shape& shape, const char* what) {
  if (!(t.shape() == shape)) {
    throw std::runtime_error(std::string("load_quantized: ") + what +
                             " shape mismatch: got " + t.shape_string() +
                             ", want " + shape.to_string());
  }
}

std::vector<std::int8_t> floats_to_s8(const Tensor& t, const char* what) {
  std::vector<std::int8_t> out(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const float v = t[i];
    if (v < -127.0f || v > 127.0f || v != std::nearbyintf(v)) {
      throw std::runtime_error(std::string("load_quantized: ") + what +
                               " holds a non-int8 value");
    }
    out[i] = static_cast<std::int8_t>(v);
  }
  return out;
}

Tensor s8_to_floats(const std::vector<std::int8_t>& v, Shape shape) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < v.size(); ++i) {
    t[i] = static_cast<float>(v[i]);
  }
  return t;
}

Tensor vec_to_tensor(const std::vector<float>& v) {
  Tensor t({v.size()});
  std::memcpy(t.data(), v.data(), v.size() * sizeof(float));
  return t;
}

std::vector<float> tensor_to_vec(const Tensor& t) {
  return {t.values().begin(), t.values().end()};
}

/// Gathers one (channel, ky) source row of a quantized image into the
/// strided k-byte segments of its im2row block: dst0[ox * ckk + t] =
/// src[ox * stride - pad + t], out-of-range taps at pad_byte. KT > 0 is a
/// compile-time kernel width (the inner copy fully unrolls — k is 3..5
/// here, so the runtime-k loop's bounds checks would dominate); KT == 0
/// falls back to runtime k. The ox range is split into edge spans (clamped
/// per tap) and the interior (straight unrolled copies, no bounds checks).
template <std::size_t KT>
void gather_taps(const std::uint8_t* src, std::size_t k, std::size_t w,
                 std::size_t ow, std::size_t stride, std::size_t pad,
                 std::size_t ckk, std::uint8_t* dst0, std::uint8_t pad_byte) {
  const std::size_t kk = KT ? KT : k;
  const auto edge = [&](std::size_t ox) {
    std::uint8_t* dst = dst0 + ox * ckk;
    const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * stride) -
                               static_cast<std::ptrdiff_t>(pad);
    for (std::size_t t = 0; t < kk; ++t) {
      const std::ptrdiff_t ix = ix0 + static_cast<std::ptrdiff_t>(t);
      dst[t] = (ix >= 0 && ix < static_cast<std::ptrdiff_t>(w))
                   ? src[ix]
                   : pad_byte;
    }
  };
  // Interior iff ox*stride - pad >= 0 and ox*stride - pad + k <= w.
  std::size_t begin = pad == 0 ? 0 : (pad + stride - 1) / stride;
  std::size_t end = w + pad >= kk ? (w + pad - kk) / stride + 1 : 0;
  begin = std::min(begin, ow);
  end = std::min(std::max(end, begin), ow);
  for (std::size_t ox = 0; ox < begin; ++ox) edge(ox);
  const std::uint8_t* s = src + begin * stride - pad;
  std::uint8_t* d = dst0 + begin * ckk;
  for (std::size_t ox = begin; ox < end; ++ox, s += stride, d += ckk) {
    for (std::size_t t = 0; t < kk; ++t) d[t] = s[t];
  }
  for (std::size_t ox = end; ox < ow; ++ox) edge(ox);
}

}  // namespace

// --- QuantLinear ---------------------------------------------------------

QuantLinear::QuantLinear(const nn::Linear& src, float act_scale)
    : in_(src.in_features()),
      out_(src.out_features()),
      act_scale_(act_scale) {
  const Tensor& w = src.weight();  // [in, out]
  weight_q_.resize(in_ * out_);
  w_scales_.resize(out_);
  for (std::size_t j = 0; j < out_; ++j) {
    float m = 0.0f;
    for (std::size_t i = 0; i < in_; ++i) {
      m = std::max(m, std::fabs(w.at(i, j)));
    }
    w_scales_[j] = safe_scale(m);
    const float inv = 1.0f / w_scales_[j];
    for (std::size_t i = 0; i < in_; ++i) {
      weight_q_[i * out_ + j] = quantize_one(w.at(i, j), inv);
    }
  }
  bias_ = tensor_to_vec(src.bias());
  pack();
}

void QuantLinear::pack() {
  packed_.resize(packed_b_int8_size(in_, out_));
  pack_b_s8(weight_q_.data(), in_, out_, packed_.data());
  colsum_.resize(out_);
  colsum_s8(weight_q_.data(), in_, out_, colsum_.data());
}

Tensor QuantLinear::forward(const Tensor& input, nn::Mode mode) {
  check_inference_mode(mode, "QuantLinear");
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("QuantLinear: expected [N, " +
                                std::to_string(in_) + "], got " +
                                input.shape_string());
  }
  obs::ScopedTimer t("quant/linear/forward");
  const std::size_t n = input.dim(0);
  if (obs::enabled()) quant_rows_counter().add(n);
  a_q_.resize(n * in_);
  quantize_u8(input.data(), n * in_, 1.0f / act_scale_, a_q_.data());
  acc_.resize(n * out_);
  GemmOpts opts;
  opts.pool = pool_;
  gemm_u8s8_packed(a_q_.data(), packed_.data(), acc_.data(), n, in_, out_,
                   opts);
  Tensor out = make_buffer({n, out_});
  dequant_rows(acc_.data(), colsum_.data(), w_scales_.data(), bias_.data(),
               act_scale_, n, out_, out.data());
  return out;
}

Tensor QuantLinear::backward(const Tensor&) { throw_no_backward("QuantLinear"); }

void QuantLinear::export_tensors(std::vector<Tensor>& out) const {
  out.push_back(meta_tensor({static_cast<float>(in_),
                             static_cast<float>(out_), act_scale_}));
  out.push_back(s8_to_floats(weight_q_, Shape({in_, out_})));
  out.push_back(vec_to_tensor(w_scales_));
  out.push_back(vec_to_tensor(bias_));
}

void QuantLinear::import_tensors(const std::vector<Tensor>& in,
                                 std::size_t& cursor) {
  const Tensor& meta = take(in, cursor, "QuantLinear meta");
  expect_shape(meta, Shape({3}), "QuantLinear meta");
  if (meta[0] != static_cast<float>(in_) ||
      meta[1] != static_cast<float>(out_)) {
    throw std::runtime_error("load_quantized: QuantLinear feature mismatch");
  }
  const Tensor& wq = take(in, cursor, "QuantLinear weights");
  expect_shape(wq, Shape({in_, out_}), "QuantLinear weights");
  const Tensor& ws = take(in, cursor, "QuantLinear scales");
  expect_shape(ws, Shape({out_}), "QuantLinear scales");
  const Tensor& b = take(in, cursor, "QuantLinear bias");
  expect_shape(b, Shape({out_}), "QuantLinear bias");
  act_scale_ = meta[2];
  weight_q_ = floats_to_s8(wq, "QuantLinear weights");
  w_scales_ = tensor_to_vec(ws);
  bias_ = tensor_to_vec(b);
  pack();
}

// --- QuantConv2d ---------------------------------------------------------

QuantConv2d::QuantConv2d(const nn::Conv2d& src, float act_scale)
    : cfg_(src.config()), act_scale_(act_scale) {
  ckk_ = cfg_.in_channels * cfg_.kernel * cfg_.kernel;
  const Tensor& w = src.weight();  // [out_c, ckk]
  const std::size_t oc = cfg_.out_channels;
  weight_q_.resize(ckk_ * oc);
  w_scales_.resize(oc);
  for (std::size_t j = 0; j < oc; ++j) {
    float m = 0.0f;
    for (std::size_t p = 0; p < ckk_; ++p) {
      m = std::max(m, std::fabs(w.at(j, p)));
    }
    w_scales_[j] = safe_scale(m);
    const float inv = 1.0f / w_scales_[j];
    // Stored transposed: [ckk, out_c], the GEMM's B operand.
    for (std::size_t p = 0; p < ckk_; ++p) {
      weight_q_[p * oc + j] = quantize_one(w.at(j, p), inv);
    }
  }
  bias_ = tensor_to_vec(src.bias());
  pack();
}

void QuantConv2d::pack() {
  const std::size_t oc = cfg_.out_channels;
  packed_.resize(packed_b_int8_size(ckk_, oc));
  pack_b_s8(weight_q_.data(), ckk_, oc, packed_.data());
  colsum_.resize(oc);
  colsum_s8(weight_q_.data(), ckk_, oc, colsum_.data());
}

std::size_t QuantConv2d::output_dim(std::size_t in_dim) const {
  const std::size_t padded = in_dim + 2 * cfg_.padding;
  if (padded < cfg_.kernel) {
    throw std::invalid_argument("QuantConv2d: kernel exceeds padded input");
  }
  return (padded - cfg_.kernel) / cfg_.stride + 1;
}

Tensor QuantConv2d::forward(const Tensor& input, nn::Mode mode) {
  check_inference_mode(mode, "QuantConv2d");
  if (input.rank() != 4 || input.dim(1) != cfg_.in_channels) {
    throw std::invalid_argument("QuantConv2d: expected [N, " +
                                std::to_string(cfg_.in_channels) +
                                ", H, W], got " + input.shape_string());
  }
  obs::ScopedTimer t("quant/conv/forward");
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = output_dim(h), ow = output_dim(w);
  const std::size_t out_hw = oh * ow;
  const std::size_t oc = cfg_.out_channels;
  const std::size_t k = cfg_.kernel;
  if (obs::enabled()) quant_rows_counter().add(n);

  // Quantize the whole batch ONCE into a uint8 image (each pixel is read
  // k^2 times by im2row — requantizing per tap was the dominant cost of
  // early builds), then gather patch rows with byte memcpys: per (oy, c,
  // ky) the kx taps of consecutive ox are overlapping spans of one source
  // row. Padding bytes sit at the activation zero-point (128 == s8 zero,
  // so they vanish in the colsum correction). Samples are independent —
  // parallel and exact.
  constexpr std::uint8_t kPadByte = static_cast<std::uint8_t>(kActOffset);
  const std::size_t chw = cfg_.in_channels * h * w;
  img_q_.resize(n * chw);
  quantize_u8(input.data(), n * chw, 1.0f / act_scale_, img_q_.data());
  a_q_.resize(n * out_hw * ckk_);
  ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
  const auto im2row_rows = [&](auto kt, std::size_t s0, std::size_t s1) {
    constexpr std::size_t KT = decltype(kt)::value;
    for (std::size_t s = s0; s < s1; ++s) {
      const std::uint8_t* img = img_q_.data() + s * chw;
      std::uint8_t* rows = a_q_.data() + s * out_hw * ckk_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        std::uint8_t* rrow = rows + oy * ow * ckk_;
        for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
          const std::uint8_t* plane = img + c * h * w;
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * cfg_.stride + ky) -
                static_cast<std::ptrdiff_t>(cfg_.padding);
            std::uint8_t* dst0 = rrow + (c * k + ky) * k;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              for (std::size_t ox = 0; ox < ow; ++ox) {
                std::uint8_t* dst = dst0 + ox * ckk_;
                for (std::size_t t = 0; t < k; ++t) dst[t] = kPadByte;
              }
              continue;
            }
            gather_taps<KT>(plane + iy * w, k, w, ow, cfg_.stride,
                            cfg_.padding, ckk_, dst0, kPadByte);
          }
        }
      }
    }
  };
  const auto im2row_sample = [&](std::size_t s0, std::size_t s1) {
    // Dispatch the kernel width to a compile-time constant so the per-tap
    // copy unrolls (3 and 5 cover every model in the zoo).
    switch (k) {
      case 3:
        im2row_rows(std::integral_constant<std::size_t, 3>{}, s0, s1);
        break;
      case 5:
        im2row_rows(std::integral_constant<std::size_t, 5>{}, s0, s1);
        break;
      default:
        im2row_rows(std::integral_constant<std::size_t, 0>{}, s0, s1);
        break;
    }
  };

  // im2row -> GEMM -> dequant runs per SAMPLE, not per batch-wide phase:
  // each sample's patch rows and int32 accumulators are read back while
  // still cache-hot instead of round-tripping multi-MB intermediates
  // through DRAM between phases (batch 64 of the MNIST classifier's first
  // conv makes acc_ alone 3.2 MB). Parallelism moves to whole samples —
  // same exact int32 results, fewer barriers, better locality.
  acc_.resize(n * out_hw * oc);
  Tensor out = make_buffer({n, oc, oh, ow});
  const bool outer_parallel = pool.thread_count() > 1 && n > 1;
  const auto run_samples = [&](std::size_t s0, std::size_t s1) {
    GemmOpts opts;
    opts.pool = pool_;
    opts.parallel = !outer_parallel;  // no nested pool handoff
    for (std::size_t s = s0; s < s1; ++s) {
      {
        obs::ScopedTimer t_rows("quant/conv/im2row");
        im2row_sample(s, s + 1);
      }
      gemm_u8s8_packed(a_q_.data() + s * out_hw * ckk_, packed_.data(),
                       acc_.data() + s * out_hw * oc, out_hw, ckk_, oc, opts);
      {
        obs::ScopedTimer t_deq("quant/conv/dequant");
        dequant_rows_transposed(acc_.data() + s * out_hw * oc, colsum_.data(),
                                w_scales_.data(), bias_.data(), act_scale_,
                                out_hw, oc, out.data() + s * oc * out_hw);
      }
    }
  };
  if (outer_parallel) {
    pool.parallel_for(0, n, run_samples);
  } else {
    run_samples(0, n);
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor&) { throw_no_backward("QuantConv2d"); }

void QuantConv2d::export_tensors(std::vector<Tensor>& out) const {
  out.push_back(meta_tensor({static_cast<float>(cfg_.in_channels),
                             static_cast<float>(cfg_.out_channels),
                             static_cast<float>(cfg_.kernel),
                             static_cast<float>(cfg_.stride),
                             static_cast<float>(cfg_.padding), act_scale_}));
  out.push_back(s8_to_floats(weight_q_, Shape({ckk_, cfg_.out_channels})));
  out.push_back(vec_to_tensor(w_scales_));
  out.push_back(vec_to_tensor(bias_));
}

void QuantConv2d::import_tensors(const std::vector<Tensor>& in,
                                 std::size_t& cursor) {
  const Tensor& meta = take(in, cursor, "QuantConv2d meta");
  expect_shape(meta, Shape({6}), "QuantConv2d meta");
  if (meta[0] != static_cast<float>(cfg_.in_channels) ||
      meta[1] != static_cast<float>(cfg_.out_channels) ||
      meta[2] != static_cast<float>(cfg_.kernel) ||
      meta[3] != static_cast<float>(cfg_.stride) ||
      meta[4] != static_cast<float>(cfg_.padding)) {
    throw std::runtime_error("load_quantized: QuantConv2d config mismatch");
  }
  const Tensor& wq = take(in, cursor, "QuantConv2d weights");
  expect_shape(wq, Shape({ckk_, cfg_.out_channels}), "QuantConv2d weights");
  const Tensor& ws = take(in, cursor, "QuantConv2d scales");
  expect_shape(ws, Shape({cfg_.out_channels}), "QuantConv2d scales");
  const Tensor& b = take(in, cursor, "QuantConv2d bias");
  expect_shape(b, Shape({cfg_.out_channels}), "QuantConv2d bias");
  act_scale_ = meta[5];
  weight_q_ = floats_to_s8(wq, "QuantConv2d weights");
  w_scales_ = tensor_to_vec(ws);
  bias_ = tensor_to_vec(b);
  pack();
}

// --- model pass ----------------------------------------------------------

nn::Sequential quantize(const nn::Sequential& model, const Tensor& calib) {
  if (calib.empty() || calib.dim(0) == 0) {
    throw std::invalid_argument("quantize: empty calibration batch");
  }
  // Max-abs sweep: forward the calibration batch layer by layer through
  // the float model, recording each quantizable layer's input range.
  // Mode::Infer forwards touch only transient caches, so the model is
  // logically const.
  auto& mutable_model = const_cast<nn::Sequential&>(model);
  std::vector<float> act_scales;
  Tensor x = calib;
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Layer& layer = mutable_model.layer(i);
    if (dynamic_cast<const nn::Linear*>(&layer) ||
        dynamic_cast<const nn::Conv2d*>(&layer)) {
      act_scales.push_back(safe_scale(max_abs(x)));
    }
    x = layer.forward(x, nn::Mode::Infer);
  }

  nn::Sequential out;
  std::size_t scale_idx = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    const nn::Layer& layer = model.layer(i);
    if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer)) {
      out.add(std::make_unique<QuantLinear>(*lin, act_scales[scale_idx++]));
    } else if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
      out.add(std::make_unique<QuantConv2d>(*conv, act_scales[scale_idx++]));
    } else if (dynamic_cast<const nn::ReLU*>(&layer)) {
      out.emplace<nn::ReLU>();
    } else if (dynamic_cast<const nn::Sigmoid*>(&layer)) {
      out.emplace<nn::Sigmoid>();
    } else if (dynamic_cast<const nn::Tanh*>(&layer)) {
      out.emplace<nn::Tanh>();
    } else if (const auto* lrelu = dynamic_cast<const nn::LeakyReLU*>(&layer)) {
      out.emplace<nn::LeakyReLU>(lrelu->negative_slope());
    } else if (const auto* mp = dynamic_cast<const nn::MaxPool2d*>(&layer)) {
      out.emplace<nn::MaxPool2d>(mp->window());
    } else if (const auto* ap = dynamic_cast<const nn::AvgPool2d*>(&layer)) {
      out.emplace<nn::AvgPool2d>(ap->window());
    } else if (const auto* up = dynamic_cast<const nn::Upsample2d*>(&layer)) {
      out.emplace<nn::Upsample2d>(up->factor());
    } else if (dynamic_cast<const nn::Flatten*>(&layer)) {
      out.emplace<nn::Flatten>();
    } else if (dynamic_cast<const nn::Dropout*>(&layer)) {
      continue;  // eval-time identity; the quantized clone is inference-only
    } else {
      throw std::invalid_argument("quantize: unsupported layer " +
                                  layer.name());
    }
  }
  return out;
}

bool is_quantized(const nn::Sequential& model) {
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (dynamic_cast<const QuantLayer*>(&model.layer(i))) return true;
  }
  return false;
}

void set_pool(nn::Sequential& model, ThreadPool* pool) {
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (auto* q = dynamic_cast<QuantLayer*>(&model.layer(i))) {
      q->set_pool(pool);
    }
  }
}

void save_quantized(const std::filesystem::path& path,
                    const nn::Sequential& model) {
  std::vector<Tensor> tensors;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (const auto* q = dynamic_cast<const QuantLayer*>(&model.layer(i))) {
      q->export_tensors(tensors);
    }
  }
  save_tensors(path, tensors);
}

void load_quantized(const std::filesystem::path& path,
                    nn::Sequential& model) {
  const std::vector<Tensor> tensors = load_tensors(path);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (auto* q = dynamic_cast<QuantLayer*>(&model.layer(i))) {
      q->import_tensors(tensors, cursor);
    }
  }
  if (cursor != tensors.size()) {
    throw std::runtime_error(
        "load_quantized: file holds more tensors than the model consumes");
  }
}

}  // namespace adv::quant
