// adv::quant — per-channel int8 inference for trained models.
//
// quantize() clones a trained float Sequential into an int8-executable
// model: Linear/Conv2d become QuantLinear/QuantConv2d running the packed
// u8 x s8 GEMM (tensor/gemm_int8.hpp); activations, pools, Flatten stay
// float and run unchanged between dequant/requant boundaries (Dropout is
// dropped — it is an eval-time identity).
//
// Quantization scheme (DESIGN.md §17):
//   * Weights: per-output-channel symmetric int8. For channel j,
//     s_w[j] = max|W[:, j]| / 127 and Wq = round(W / s_w) in [-127, 127].
//   * Activations: per-tensor symmetric int8, calibrated by a max-abs
//     sweep of the calibration batch through the float model:
//     s_a = max|x| / 127 observed at each quantized layer's input. The
//     quantized value is offset by +128 into uint8 (the u8 x s8 hardware
//     domain); the offset is undone exactly at dequant via the per-column
//     weight sums (y = (acc - 128 * colsum) * s_a * s_w[j] + bias[j]).
//   * Rounding: lrintf (round-to-nearest-even), clamped to [-127, 127].
//   * Accumulation: exact int32 — bit-identical across thread counts and
//     blockings by associativity of integer addition.
//
// Quantized layers are inference-only: backward() throws, Mode::Train is
// rejected. Serialization round-trips through the CRC'd tensor file
// format (save_quantized/load_quantized) with int8 payloads stored as
// exact small integers in float tensors.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace adv {
class ThreadPool;
}  // namespace adv

namespace adv::quant {

/// Mixin interface shared by the quantized layers: int8-state
/// serialization through the float tensor format and the pool test seam
/// (ADV_THREADS pins only the global pool, so thread-count determinism
/// tests pass dedicated pools instead).
class QuantLayer {
 public:
  virtual ~QuantLayer() = default;

  /// Appends this layer's state (meta, quantized weights, scales, bias)
  /// as float tensors. Quantized values are integers in [-127, 127],
  /// exactly representable in float32.
  virtual void export_tensors(std::vector<Tensor>& out) const = 0;

  /// Consumes the tensors export_tensors appended, starting at `cursor`
  /// (advanced past them). Validates shapes against this layer's config
  /// and rebuilds the packed panels. Throws std::runtime_error on
  /// mismatch.
  virtual void import_tensors(const std::vector<Tensor>& in,
                              std::size_t& cursor) = 0;

  /// Pool used by this layer's int8 GEMM; nullptr restores the global
  /// pool. Results are identical for any pool (exact int32 accumulation).
  virtual void set_pool(ThreadPool* pool) = 0;

  /// Calibrated per-tensor input scale (s_a).
  virtual float act_scale() const = 0;
};

/// Int8 fully connected layer: y = dequant(quant_u8(x) x Wq) + b.
class QuantLinear final : public nn::Layer, public QuantLayer {
 public:
  /// Quantizes `src`'s weights per output column; `act_scale` is the
  /// calibrated per-tensor input scale.
  QuantLinear(const nn::Linear& src, float act_scale);

  Tensor forward(const Tensor& input, nn::Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  std::string name() const override { return "QuantLinear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const std::vector<float>& weight_scales() const { return w_scales_; }

  void export_tensors(std::vector<Tensor>& out) const override;
  void import_tensors(const std::vector<Tensor>& in,
                      std::size_t& cursor) override;
  void set_pool(ThreadPool* pool) override { pool_ = pool; }
  float act_scale() const override { return act_scale_; }

 private:
  void pack();  // rebuilds packed_ and colsum_ from weight_q_

  std::size_t in_ = 0;
  std::size_t out_ = 0;
  std::vector<std::int8_t> weight_q_;  // [in, out] row-major (GEMM B)
  std::vector<std::int8_t> packed_;    // pack_b_s8 panels of weight_q_
  std::vector<std::int32_t> colsum_;   // [out] column sums of weight_q_
  std::vector<float> w_scales_;        // [out]
  std::vector<float> bias_;            // [out]
  float act_scale_ = 1.0f;
  ThreadPool* pool_ = nullptr;
  // Per-forward staging, kept across calls (layers are single-batch
  // stateful objects already — see Layer's caching contract).
  std::vector<std::uint8_t> a_q_;
  std::vector<std::int32_t> acc_;
};

/// Int8 convolution: quantized im2row (uint8, zero-point 128 padding)
/// through the packed GEMM against the transposed per-channel weights.
class QuantConv2d final : public nn::Layer, public QuantLayer {
 public:
  QuantConv2d(const nn::Conv2d& src, float act_scale);

  Tensor forward(const Tensor& input, nn::Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  std::string name() const override { return "QuantConv2d"; }

  const nn::Conv2dConfig& config() const { return cfg_; }
  const std::vector<float>& weight_scales() const { return w_scales_; }

  void export_tensors(std::vector<Tensor>& out) const override;
  void import_tensors(const std::vector<Tensor>& in,
                      std::size_t& cursor) override;
  void set_pool(ThreadPool* pool) override { pool_ = pool; }
  float act_scale() const override { return act_scale_; }

 private:
  void pack();
  std::size_t output_dim(std::size_t in_dim) const;

  nn::Conv2dConfig cfg_;
  std::size_t ckk_ = 0;                // in_channels * kernel^2 (GEMM K)
  std::vector<std::int8_t> weight_q_;  // [ckk, out_c] (transposed, GEMM B)
  std::vector<std::int8_t> packed_;
  std::vector<std::int32_t> colsum_;   // [out_c]
  std::vector<float> w_scales_;        // [out_c]
  std::vector<float> bias_;            // [out_c]
  float act_scale_ = 1.0f;
  ThreadPool* pool_ = nullptr;
  std::vector<std::uint8_t> img_q_;    // [N, C, H, W] quantized input
  std::vector<std::uint8_t> a_q_;      // [N * out_hw, ckk] quantized im2row
  std::vector<std::int32_t> acc_;      // [N * out_hw, out_c]
};

/// Clones `model` into an int8-executable Sequential. Runs the
/// calibration batch through the float model layer by layer, recording
/// each Linear/Conv2d input's max-abs for its activation scale, then
/// rebuilds the stack with quantized compute layers. Stateless layers are
/// recreated; Dropout is skipped (eval identity); any other layer type
/// throws std::invalid_argument. `model` is const logically — the sweep
/// uses Mode::Infer forwards, which mutate only transient caches.
nn::Sequential quantize(const nn::Sequential& model, const Tensor& calib);

/// True when `model` contains at least one quantized layer.
bool is_quantized(const nn::Sequential& model);

/// Applies `pool` to every quantized layer (see QuantLayer::set_pool).
void set_pool(nn::Sequential& model, ThreadPool* pool);

/// Saves every quantized layer's state through the CRC'd tensor file
/// format (tensor/serialize.hpp — atomic publish, integrity-checked).
void save_quantized(const std::filesystem::path& path,
                    const nn::Sequential& model);

/// Loads a save_quantized file into a model of the same architecture
/// (e.g. freshly produced by quantize()). Throws std::runtime_error on
/// layer-count or shape mismatch.
void load_quantized(const std::filesystem::path& path,
                    nn::Sequential& model);

}  // namespace adv::quant
