#include "core/evaluation.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace adv::core {

DefenseEval evaluate_defense(magnet::MagNetPipeline& pipeline,
                             const Tensor& crafted,
                             const std::vector<int>& labels,
                             magnet::DefenseScheme scheme) {
  if (crafted.dim(0) != labels.size()) {
    throw std::invalid_argument("evaluate_defense: batch/label mismatch");
  }
  obs::ScopedTimer obs_timer("eval/defense");
  const magnet::DefenseOutcome o = pipeline.classify(crafted, scheme);
  const std::size_t n = labels.size();
  std::size_t defended = 0, rejected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (o.rejected[i]) {
      ++rejected;
      ++defended;
    } else if (o.predicted[i] == labels[i]) {
      ++defended;
    }
  }
  DefenseEval e;
  e.accuracy = static_cast<float>(defended) / static_cast<float>(n);
  e.detection_rate = static_cast<float>(rejected) / static_cast<float>(n);
  e.asr = 1.0f - e.accuracy;
  return e;
}

void print_curves(const std::string& title,
                  const std::vector<SweepCurve>& curves) {
  if (curves.empty()) return;
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s", "kappa");
  for (const auto& c : curves) std::printf("  %-22s", c.name.c_str());
  std::printf("\n");
  const std::size_t rows = curves.front().kappas.size();
  for (const auto& c : curves) {
    if (c.kappas.size() != rows || c.accuracy_pct.size() != rows) {
      throw std::invalid_argument("print_curves: ragged curves");
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("%-12g", static_cast<double>(curves.front().kappas[r]));
    for (const auto& c : curves) {
      std::printf("  %-22.1f", static_cast<double>(c.accuracy_pct[r]));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void write_curves_csv(const std::filesystem::path& path,
                      const std::vector<SweepCurve>& curves) {
  if (curves.empty()) return;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_curves_csv: cannot open " + path.string());
  os << "kappa";
  for (const auto& c : curves) os << "," << c.name;
  os << "\n";
  for (std::size_t r = 0; r < curves.front().kappas.size(); ++r) {
    os << curves.front().kappas[r];
    for (const auto& c : curves) os << "," << c.accuracy_pct[r];
    os << "\n";
  }
}

}  // namespace adv::core
