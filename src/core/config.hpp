// Experiment scale configuration.
//
// The paper ran 1000 attack iterations x 9 binary-search steps on 1000
// test images per sweep point, on a TITAN Xp. The fast profile (default)
// shrinks those counts so every bench finishes on a laptop CPU while
// preserving curve shapes; REPRO_SCALE=full restores paper-scale counts
// (see DESIGN.md §4). REPRO_CACHE_DIR overrides where trained models and
// crafted adversarial examples are cached.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace adv::core {

enum class DatasetId { Mnist, Cifar };

const char* to_string(DatasetId id);

struct ScaleConfig {
  bool full = false;
  /// REPRO_SCALE=smoke: counts shrunk far below the fast profile so a
  /// whole table run finishes in seconds. Used by CI's sharded-vs-
  /// unsharded identity gate and the shard tests — curve shapes are NOT
  /// preserved at this scale, only determinism.
  bool smoke = false;

  // Synthetic dataset sizes.
  std::size_t train_count = 2500;
  std::size_t val_count = 500;    // detector calibration set
  std::size_t test_count = 1000;

  // Training.
  std::size_t classifier_epochs = 6;
  std::size_t ae_epochs = 30;
  std::size_t batch_size = 64;

  // Attacks. The paper starts the c binary search at 1e-3 with 9 steps;
  // with the fast profile's 4 steps that never reaches the c needed at
  // high confidence, so the fast profile starts at 1.0 instead (the
  // search shrinks c for easy images just the same).
  std::size_t attack_count = 60;         // images attacked per sweep point
  std::size_t attack_iterations = 64;
  std::size_t binary_search_steps = 4;
  float attack_lr = 1e-2f;
  float initial_c = 1.0f;
  // CIFAR logit gradients spread over 3072 pixels, so the hinge term
  // needs a larger c to beat the L1 shrinkage within the fast profile's
  // few binary-search steps.
  float initial_c_cifar = 10.0f;

  float initial_c_for(DatasetId id) const {
    return id == DatasetId::Cifar ? initial_c_cifar : initial_c;
  }

  // MagNet.
  // MagNet default AE widths. The paper uses 3 filters on both datasets;
  // on SynObjects a 3-filter AE leaves the whole pipeline inert (near-
  // identity reconstructions), so the CIFAR default is 4 — the smallest
  // width at which the defense reaches the paper's operating point.
  std::size_t default_filters_mnist = 3;
  std::size_t default_filters_cifar = 4;
  std::size_t wide_filters = 12;  // the paper's "256-filter" robust knob

  std::size_t default_filters(DatasetId id) const {
    return id == DatasetId::Mnist ? default_filters_mnist
                                  : default_filters_cifar;
  }
  float detector_fpr = 0.01f;  // paper/MagNet use 0.001 with larger val sets

  // Confidence sweeps (paper: MNIST 0..40 step 5; CIFAR 0..100 step 5).
  std::vector<float> mnist_kappas;
  std::vector<float> cifar_kappas;

  std::uint64_t seed = 2018;  // venue year; root of all randomness

  std::filesystem::path cache_dir = "build/model_cache";

  const std::vector<float>& kappas(DatasetId id) const {
    return id == DatasetId::Mnist ? mnist_kappas : cifar_kappas;
  }

  /// Human-readable profile tag ("smoke" / "fast" / "full").
  std::string tag() const {
    return full ? "full" : (smoke ? "smoke" : "fast");
  }

  /// FNV-1a hash over every field that changes a cached artifact
  /// (dataset sizes, training budgets, attack budgets, AE widths, seed).
  /// The kappa sweep lists and cache_dir are excluded: per-attack kappas
  /// already appear in the attack tags, and cache_dir is the cache's own
  /// location.
  std::uint64_t config_hash() const;

  /// Tag embedded in cache filenames: the profile plus config_hash(), so
  /// two zoos with different scale fields can safely share one cache_dir
  /// without silently exchanging stale artifacts. E.g. "fast-9f82a1c03d44e5b7".
  std::string cache_tag() const;
};

/// Reads REPRO_SCALE (smoke|fast|full) and REPRO_CACHE_DIR from the
/// environment.
ScaleConfig scale_from_env();

}  // namespace adv::core
