#include "core/magnet_factory.hpp"

#include <stdexcept>

namespace adv::core {

const char* to_string(MagnetVariant v) {
  switch (v) {
    case MagnetVariant::Default: return "D";
    case MagnetVariant::Jsd: return "D+JSD";
    case MagnetVariant::Wide: return "D+256";
    case MagnetVariant::WideJsd: return "D+256+JSD";
  }
  return "?";
}

std::shared_ptr<magnet::MagNetPipeline> build_magnet(
    ModelZoo& zoo, DatasetId id, MagnetVariant variant,
    magnet::ReconLoss ae_loss) {
  using magnet::AeArch;
  const ScaleConfig& cfg = zoo.scale();
  const bool wide =
      variant == MagnetVariant::Wide || variant == MagnetVariant::WideJsd;
  const bool jsd =
      variant == MagnetVariant::Jsd || variant == MagnetVariant::WideJsd;
  const std::size_t filters =
      wide ? cfg.wide_filters : cfg.default_filters(id);

  auto classifier = zoo.classifier(id);
  auto pipeline = std::make_shared<magnet::MagNetPipeline>(classifier);

  if (id == DatasetId::Mnist) {
    auto deep = zoo.autoencoder(id, AeArch::MnistDeep, filters, ae_loss);
    auto shallow = zoo.autoencoder(id, AeArch::MnistShallow, filters, ae_loss);
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(deep, 2));
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(shallow, 1));
    if (jsd) {
      pipeline->add_detector(
          std::make_shared<magnet::JsdDetector>(deep, classifier, 10.0f));
      pipeline->add_detector(
          std::make_shared<magnet::JsdDetector>(deep, classifier, 40.0f));
    }
    pipeline->set_reformer(std::make_shared<magnet::Reformer>(deep));
  } else {
    if (variant == MagnetVariant::Jsd || variant == MagnetVariant::WideJsd) {
      // The paper's CIFAR variants are D and D+256 only; the default CIFAR
      // MagNet already includes the JSD detectors.
      throw std::invalid_argument(
          "build_magnet: CIFAR variants are Default and Wide");
    }
    auto ae = zoo.autoencoder(id, AeArch::Cifar, filters, ae_loss);
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(ae, 1));
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(ae, 2));
    pipeline->add_detector(
        std::make_shared<magnet::JsdDetector>(ae, classifier, 10.0f));
    pipeline->add_detector(
        std::make_shared<magnet::JsdDetector>(ae, classifier, 40.0f));
    pipeline->set_reformer(std::make_shared<magnet::Reformer>(ae));
  }

  pipeline->calibrate(zoo.dataset(id).val.images, cfg.detector_fpr);
  return pipeline;
}

}  // namespace adv::core
