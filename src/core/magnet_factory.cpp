#include "core/magnet_factory.hpp"

#include <stdexcept>

#include "magnet/detector_grad.hpp"

namespace adv::core {
namespace {

// The reformer auto-encoder a variant serves with — must match
// build_magnet's selection exactly so gray-box attackers craft through
// the same (memoized) zoo instance the defense uses.
std::shared_ptr<nn::Sequential> reformer_ae_for(ModelZoo& zoo, DatasetId id,
                                                MagnetVariant variant,
                                                magnet::ReconLoss ae_loss) {
  const ScaleConfig& cfg = zoo.scale();
  const bool wide =
      variant == MagnetVariant::Wide || variant == MagnetVariant::WideJsd;
  const std::size_t filters =
      wide ? cfg.wide_filters : cfg.default_filters(id);
  const magnet::AeArch arch = id == DatasetId::Mnist
                                  ? magnet::AeArch::MnistDeep
                                  : magnet::AeArch::Cifar;
  return zoo.autoencoder(id, arch, filters, ae_loss);
}

}  // namespace

const char* to_string(MagnetVariant v) {
  switch (v) {
    case MagnetVariant::Default: return "D";
    case MagnetVariant::Jsd: return "D+JSD";
    case MagnetVariant::Wide: return "D+256";
    case MagnetVariant::WideJsd: return "D+256+JSD";
  }
  return "?";
}

std::shared_ptr<magnet::MagNetPipeline> build_magnet(
    ModelZoo& zoo, DatasetId id, MagnetVariant variant,
    magnet::ReconLoss ae_loss) {
  using magnet::AeArch;
  const ScaleConfig& cfg = zoo.scale();
  const bool wide =
      variant == MagnetVariant::Wide || variant == MagnetVariant::WideJsd;
  const bool jsd =
      variant == MagnetVariant::Jsd || variant == MagnetVariant::WideJsd;
  const std::size_t filters =
      wide ? cfg.wide_filters : cfg.default_filters(id);

  auto classifier = zoo.classifier(id);
  auto pipeline = std::make_shared<magnet::MagNetPipeline>(classifier);

  if (id == DatasetId::Mnist) {
    auto deep = zoo.autoencoder(id, AeArch::MnistDeep, filters, ae_loss);
    auto shallow = zoo.autoencoder(id, AeArch::MnistShallow, filters, ae_loss);
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(deep, 2));
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(shallow, 1));
    if (jsd) {
      pipeline->add_detector(
          std::make_shared<magnet::JsdDetector>(deep, classifier, 10.0f));
      pipeline->add_detector(
          std::make_shared<magnet::JsdDetector>(deep, classifier, 40.0f));
    }
    pipeline->set_reformer(std::make_shared<magnet::Reformer>(deep));
  } else {
    if (variant == MagnetVariant::Jsd || variant == MagnetVariant::WideJsd) {
      // The paper's CIFAR variants are D and D+256 only; the default CIFAR
      // MagNet already includes the JSD detectors.
      throw std::invalid_argument(
          "build_magnet: CIFAR variants are Default and Wide");
    }
    auto ae = zoo.autoencoder(id, AeArch::Cifar, filters, ae_loss);
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(ae, 1));
    pipeline->add_detector(
        std::make_shared<magnet::ReconstructionDetector>(ae, 2));
    pipeline->add_detector(
        std::make_shared<magnet::JsdDetector>(ae, classifier, 10.0f));
    pipeline->add_detector(
        std::make_shared<magnet::JsdDetector>(ae, classifier, 40.0f));
    pipeline->set_reformer(std::make_shared<magnet::Reformer>(ae));
  }

  pipeline->calibrate(zoo.dataset(id).val.images, cfg.detector_fpr);
  // Build the int8 execution bank alongside the calibrated float defense
  // so ExecMode::Int8 is always servable. Activation scales calibrate on
  // a bounded slice of the validation set — max-abs saturates quickly and
  // the sweep is a handful of forward passes, not a training run.
  const Tensor& val = zoo.dataset(id).val.images;
  const std::size_t calib_rows = std::min<std::size_t>(val.dim(0), 256);
  pipeline->prepare_quantized(val.slice_rows(0, calib_rows));
  return pipeline;
}

AttackTargetBundle build_attack_target(ModelZoo& zoo, DatasetId id,
                                       attacks::ThreatModel tm,
                                       MagnetVariant variant,
                                       magnet::ReconLoss ae_loss) {
  AttackTargetBundle b;
  b.classifier = zoo.classifier(id);
  switch (tm) {
    case attacks::ThreatModel::Oblivious:
      b.target = std::make_unique<attacks::ObliviousTarget>(*b.classifier);
      break;
    case attacks::ThreatModel::GrayBox:
      b.reformer_ae = reformer_ae_for(zoo, id, variant, ae_loss);
      b.target = std::make_unique<attacks::GrayBoxTarget>(*b.reformer_ae,
                                                          *b.classifier);
      break;
    case attacks::ThreatModel::DetectorAware:
      // The attacker models the calibrated defense itself: the pipeline's
      // own detector bank feeds the evasion terms, and the zoo's
      // memoization guarantees reformer_ae is the very instance the
      // pipeline's reformer wraps.
      b.pipeline = build_magnet(zoo, id, variant, ae_loss);
      b.reformer_ae = reformer_ae_for(zoo, id, variant, ae_loss);
      b.aux = magnet::detector_aux_terms(*b.pipeline);
      b.target = std::make_unique<attacks::DetectorAwareTarget>(
          b.reformer_ae.get(), *b.classifier, b.aux);
      break;
  }
  return b;
}

}  // namespace adv::core
