// ModelZoo: builds, trains and caches every artifact the experiments
// share — datasets, classifiers, MagNet auto-encoders, and crafted
// adversarial examples.
//
// Training a classifier or running a 1000-iteration attack sweep is
// expensive; fifteen bench binaries reproduce overlapping figures, so all
// artifacts are cached on disk under ScaleConfig::cache_dir keyed by
// ScaleConfig::cache_tag() — the fast/full profile plus a hash of every
// artifact-affecting scale field, so zoos with different counts can share
// one cache_dir safely. Deleting the cache directory forces recomputation.
//
// The cache self-heals: a load that fails for any reason (bad magic or
// version, CRC mismatch, truncation, shape mismatch) quarantines the file
// to `<name>.corrupt`, bumps the `fault/cache_quarantined` counter, and
// transparently recomputes the artifact (`fault/cache_rebuilt`) instead
// of throwing, so a single bit-flipped file cannot kill a long run.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "attacks/attack.hpp"
#include "attacks/ead.hpp"
#include "core/config.hpp"
#include "data/dataset.hpp"
#include "magnet/autoencoder.hpp"
#include "nn/sequential.hpp"

namespace adv::core {

/// Builds the (untrained) CNN classifier for a dataset.
nn::Sequential build_classifier(DatasetId id, std::size_t image_hw,
                                Rng& rng);

/// Persists an AttackResult (adversarial tensor + per-image
/// success/l1/l2/linf metadata) in the repo's CRC'd tensor format via
/// tmp+rename, and reads it back. Exposed so the shard driver can merge
/// per-shard attack artifacts into canonical cache entries without a zoo.
void save_attack_result(const std::filesystem::path& path,
                        const attacks::AttackResult& r);
attacks::AttackResult load_attack_result(const std::filesystem::path& path);

class ModelZoo {
 public:
  explicit ModelZoo(ScaleConfig cfg);

  const ScaleConfig& scale() const { return cfg_; }

  /// Restricts this zoo to shard `index` of `count`: attack_set() returns
  /// only that contiguous slice of the (full-set-selected) attack images,
  /// and attack artifacts are cached under shard-suffixed filenames
  /// (`<key>.shard<k>of<K>.bin`) so concurrent workers sharing one
  /// cache_dir never collide on partial results. Models and datasets are
  /// unaffected — every shard trains/loads the same ones. Must be called
  /// before the first attack_set()/attack use.
  void set_shard(std::size_t index, std::size_t count);
  std::size_t shard_index() const { return shard_index_; }
  std::size_t shard_count() const { return shard_count_; }

  struct Splits {
    data::Dataset train, val, test;
  };

  /// Deterministic synthetic train/val/test splits for `id`.
  const Splits& dataset(DatasetId id);

  /// Trained classifier (cached). Prints a one-line training note on a
  /// cache miss.
  std::shared_ptr<nn::Sequential> classifier(DatasetId id);

  /// Clean test accuracy of the undefended classifier.
  float clean_test_accuracy(DatasetId id);

  /// Trained MagNet auto-encoder (cached) for the given architecture,
  /// width and reconstruction loss.
  std::shared_ptr<nn::Sequential> autoencoder(DatasetId id,
                                              magnet::AeArch arch,
                                              std::size_t filters,
                                              magnet::ReconLoss loss);

  struct AttackSet {
    Tensor images;            // first N correctly classified test images
    std::vector<int> labels;  // their true labels
  };

  /// The fixed set of attacked images (paper: 1000 correctly classified
  /// test images).
  const AttackSet& attack_set(DatasetId id);

  // --- cached attacks (crafted on the UNDEFENDED classifier) -----------

  /// Runs any attacks::Attack (typically built by name through the
  /// AttackRegistry) against the fixed attack set, caching the result on
  /// disk keyed by the attack's tag().
  attacks::AttackResult run_attack(DatasetId id,
                                   const attacks::Attack& attack);

  /// Threat-model-aware variant: crafts through `target` instead of the
  /// bare classifier. The cache key gains target.tag_suffix(), so
  /// gray-box/detector-aware artifacts never collide with oblivious ones
  /// (whose empty suffix preserves every pre-existing cache key).
  attacks::AttackResult run_attack(DatasetId id,
                                   const attacks::Attack& attack,
                                   attacks::AttackTarget& target);

  /// Scale-derived override defaults (iterations, binary-search steps,
  /// initial c, learning rate) for building registry attacks that match
  /// this zoo's experiment budget.
  attacks::AttackOverrides attack_defaults(DatasetId id) const;

  // Named convenience wrappers over run_attack, kept for the bench
  // binaries. ead() additionally shares one optimization run across the
  // EN and L1 decision rules (ead_attack_multi), which run_attack cannot.
  attacks::AttackResult cw(DatasetId id, float kappa);
  attacks::AttackResult ead(DatasetId id, float beta, float kappa,
                            attacks::DecisionRule rule);
  attacks::AttackResult fgsm(DatasetId id, float epsilon,
                             std::size_t iterations);
  attacks::AttackResult deepfool(DatasetId id);

 private:
  enum class CacheLoad { Hit, Miss, Corrupt };

  std::filesystem::path path_for(const std::string& key) const;
  /// Cache path for attack artifacts: path_for(key) when unsharded, else
  /// the shard-suffixed variant (see set_shard).
  std::filesystem::path attack_path_for(const std::string& key) const;
  /// Runs `do_load` if `path` exists. Any load exception quarantines the
  /// file to `<path>.corrupt` (counter: fault/cache_quarantined) and
  /// returns Corrupt so the caller recomputes; callers bump
  /// fault/cache_rebuilt after rebuilding a Corrupt entry.
  static CacheLoad try_load_cached(const std::filesystem::path& path,
                                   const std::function<void()>& do_load);
  static void note_rebuilt(CacheLoad reason);
  attacks::AttackResult cached_attack(
      const std::string& key,
      const std::function<attacks::AttackResult()>& compute);

  ScaleConfig cfg_;
  std::size_t shard_index_ = 0;
  std::size_t shard_count_ = 1;
  std::map<DatasetId, Splits> datasets_;
  std::map<DatasetId, std::shared_ptr<nn::Sequential>> classifiers_;
  std::map<std::string, std::shared_ptr<nn::Sequential>> autoencoders_;
  std::map<DatasetId, AttackSet> attack_sets_;
  std::map<std::string, attacks::AttackResult> attack_memo_;
};

}  // namespace adv::core
