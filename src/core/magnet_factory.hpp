// Builds the paper's MagNet variants on top of ModelZoo artifacts.
//
//   MNIST  Default (D):   detectors = {recon-L2 on deep AE, recon-L1 on
//                          shallow AE}; reformer = deep AE
//          D+JSD:          + JSD detectors (T = 10, 40)
//          D+256:          same detectors, AE width raised (paper: 256)
//          D+256+JSD:      both changes
//   CIFAR  Default (D):    detectors = {recon-L1, recon-L2, JSD T=10,
//                          JSD T=40} on the CIFAR AE; reformer = same AE
//          D+256:          AE width raised
// All detectors are calibrated on the clean validation split at the
// configured false-positive rate.
#pragma once

#include <memory>

#include "core/model_zoo.hpp"
#include "magnet/pipeline.hpp"

namespace adv::core {

enum class MagnetVariant { Default, Jsd, Wide, WideJsd };

const char* to_string(MagnetVariant v);

/// Builds and calibrates the requested MagNet pipeline. `ae_loss` selects
/// the auto-encoder reconstruction training loss (paper Figs. 12/13).
std::shared_ptr<magnet::MagNetPipeline> build_magnet(
    ModelZoo& zoo, DatasetId id, MagnetVariant variant,
    magnet::ReconLoss ae_loss = magnet::ReconLoss::Mse);

}  // namespace adv::core
