// Builds the paper's MagNet variants on top of ModelZoo artifacts.
//
//   MNIST  Default (D):   detectors = {recon-L2 on deep AE, recon-L1 on
//                          shallow AE}; reformer = deep AE
//          D+JSD:          + JSD detectors (T = 10, 40)
//          D+256:          same detectors, AE width raised (paper: 256)
//          D+256+JSD:      both changes
//   CIFAR  Default (D):    detectors = {recon-L1, recon-L2, JSD T=10,
//                          JSD T=40} on the CIFAR AE; reformer = same AE
//          D+256:          AE width raised
// All detectors are calibrated on the clean validation split at the
// configured false-positive rate.
#pragma once

#include <memory>
#include <vector>

#include "attacks/target.hpp"
#include "core/model_zoo.hpp"
#include "magnet/pipeline.hpp"

namespace adv::core {

enum class MagnetVariant { Default, Jsd, Wide, WideJsd };

const char* to_string(MagnetVariant v);

/// Builds and calibrates the requested MagNet pipeline. `ae_loss` selects
/// the auto-encoder reconstruction training loss (paper Figs. 12/13).
std::shared_ptr<magnet::MagNetPipeline> build_magnet(
    ModelZoo& zoo, DatasetId id, MagnetVariant variant,
    magnet::ReconLoss ae_loss = magnet::ReconLoss::Mse);

/// An AttackTarget plus everything that must outlive it. The target holds
/// plain references into the owned models (the attack layer is ownership
/// agnostic), so keep the bundle alive for as long as the target is used.
struct AttackTargetBundle {
  std::unique_ptr<attacks::AttackTarget> target;

  // Keep-alives backing the target's references.
  std::shared_ptr<nn::Sequential> classifier;
  std::shared_ptr<nn::Sequential> reformer_ae;  // null for oblivious
  std::vector<std::shared_ptr<attacks::AuxObjective>> aux;  // detector-aware
  /// The calibrated pipeline the detector-aware terms were derived from
  /// (null otherwise). Exposed so callers can evaluate the very defense
  /// instance the attacker modeled.
  std::shared_ptr<magnet::MagNetPipeline> pipeline;
};

/// Builds the attacker's view of dataset `id` under threat model `tm`
/// against the given MagNet variant:
///   Oblivious     — bare classifier (variant unused beyond defaults);
///   GrayBox       — crafts through the variant's reformer auto-encoder
///                   (the same zoo instance the defense serves with);
///   DetectorAware — gray-box composition plus one hinged evasion term
///                   per calibrated detector of the variant's pipeline.
AttackTargetBundle build_attack_target(
    ModelZoo& zoo, DatasetId id, attacks::ThreatModel tm,
    MagnetVariant variant = MagnetVariant::Default,
    magnet::ReconLoss ae_loss = magnet::ReconLoss::Mse);

}  // namespace adv::core
