// ROC analysis for MagNet detectors.
//
// MagNet picks a single threshold per detector (at a fixed clean
// false-positive rate); the ROC curve over clean-vs-adversarial scores
// shows whether ANY threshold would work — the paper's finding is that
// for EAD's L1 examples no threshold separates well (low AUC), while for
// C&W's L2 examples one does.
#pragma once

#include <cstddef>
#include <vector>

namespace adv::core {

struct RocPoint {
  float fpr = 0.0f;  // fraction of clean (negative) scores above threshold
  float tpr = 0.0f;  // fraction of adversarial (positive) scores above it
};

/// ROC curve for "score > threshold means adversarial", swept over every
/// distinct score. Points are ordered by increasing fpr, starting at
/// (0,0) and ending at (1,1). Throws std::invalid_argument if either
/// class is empty.
std::vector<RocPoint> roc_curve(const std::vector<float>& clean_scores,
                                const std::vector<float>& adv_scores);

/// Area under the ROC curve by trapezoidal integration; 0.5 = chance,
/// 1.0 = perfectly separable.
float roc_auc(const std::vector<float>& clean_scores,
              const std::vector<float>& adv_scores);

/// True-positive rate at the threshold achieving false-positive rate
/// <= fpr (MagNet's operating point).
float tpr_at_fpr(const std::vector<float>& clean_scores,
                 const std::vector<float>& adv_scores, float fpr);

}  // namespace adv::core
