// Oblivious-threat-model evaluation (paper §III-A).
//
// Adversarial examples are crafted against the UNDEFENDED classifier (the
// attack functions in ModelZoo enforce that) and evaluated against the
// MagNet pipeline. MagNet's "classification accuracy" on a batch of
// crafted examples is the fraction that are either rejected by a detector
// or correctly classified after (optional) reforming; the attack success
// rate is its complement.
#pragma once

#include <string>
#include <vector>

#include "attacks/common.hpp"
#include "core/magnet_factory.hpp"
#include "magnet/pipeline.hpp"

namespace adv::core {

struct DefenseEval {
  float accuracy = 0.0f;        // detected or correctly classified
  float detection_rate = 0.0f;  // fraction rejected by some detector
  float asr = 0.0f;             // 1 - accuracy
};

/// Evaluates crafted examples against the pipeline under `scheme`.
/// `labels` are the true labels of the attacked images.
DefenseEval evaluate_defense(magnet::MagNetPipeline& pipeline,
                             const Tensor& crafted,
                             const std::vector<int>& labels,
                             magnet::DefenseScheme scheme);

/// One curve of a defense-performance figure: accuracy (in %) per kappa.
struct SweepCurve {
  std::string name;
  std::vector<float> kappas;
  std::vector<float> accuracy_pct;
};

/// Pretty-prints curves as an aligned kappa-by-curve table.
void print_curves(const std::string& title,
                  const std::vector<SweepCurve>& curves);

/// Writes curves as CSV (kappa, <curve names...>) for external plotting.
void write_curves_csv(const std::filesystem::path& path,
                      const std::vector<SweepCurve>& curves);

}  // namespace adv::core
