#include "core/roc.hpp"

#include <algorithm>
#include <stdexcept>

namespace adv::core {

std::vector<RocPoint> roc_curve(const std::vector<float>& clean_scores,
                                const std::vector<float>& adv_scores) {
  if (clean_scores.empty() || adv_scores.empty()) {
    throw std::invalid_argument("roc_curve: both score sets must be non-empty");
  }
  // Sweep thresholds from +inf downward; at each distinct score value the
  // (fpr, tpr) point moves right/up.
  struct Tagged {
    float score;
    bool adversarial;
  };
  std::vector<Tagged> all;
  all.reserve(clean_scores.size() + adv_scores.size());
  for (const float s : clean_scores) all.push_back({s, false});
  for (const float s : adv_scores) all.push_back({s, true});
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.score > b.score; });

  const float inv_neg = 1.0f / static_cast<float>(clean_scores.size());
  const float inv_pos = 1.0f / static_cast<float>(adv_scores.size());
  std::vector<RocPoint> curve;
  curve.push_back({0.0f, 0.0f});
  std::size_t fp = 0, tp = 0;
  for (std::size_t i = 0; i < all.size();) {
    // Consume ties together so the curve is threshold-consistent.
    const float s = all[i].score;
    while (i < all.size() && all[i].score == s) {
      if (all[i].adversarial) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.push_back({static_cast<float>(fp) * inv_neg,
                     static_cast<float>(tp) * inv_pos});
  }
  return curve;
}

float roc_auc(const std::vector<float>& clean_scores,
              const std::vector<float>& adv_scores) {
  const auto curve = roc_curve(clean_scores, adv_scores);
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = static_cast<double>(curve[i].fpr) - curve[i - 1].fpr;
    auc += dx * 0.5 * (static_cast<double>(curve[i].tpr) + curve[i - 1].tpr);
  }
  return static_cast<float>(auc);
}

float tpr_at_fpr(const std::vector<float>& clean_scores,
                 const std::vector<float>& adv_scores, float fpr) {
  const auto curve = roc_curve(clean_scores, adv_scores);
  float best = 0.0f;
  for (const RocPoint& p : curve) {
    if (p.fpr <= fpr) best = std::max(best, p.tpr);
  }
  return best;
}

}  // namespace adv::core
