// adv::shard — process-level fan-out for the attack benches.
//
// A bench binary wired through shard_main() can split its attack-image
// set into K contiguous shards and run them in K worker processes (the
// binary re-invokes itself with `--shard k/K`). Each worker runs the
// existing single-process attack path end to end against its slice,
// writing every output (BENCH_*.json metric dumps, adversarial-example
// artifacts) into a private staging directory; the driver then merges
// the pieces deterministically:
//
//   * attack artifacts (`<key>.shard<k>of<K>.bin` in the shared cache)
//     are concatenated in shard order into the canonical `<key>.bin`,
//     bitwise identical to an unsharded run — attacks here have no RNG
//     and process images independently (per-row GEMM/conv/softmax, a
//     per-image binary search), so slicing the image set preserves each
//     per-image trajectory exactly;
//   * metric dumps merge by key: counters sum, gauges keep the max,
//     timers sum count/total and combine min/max;
//   * derived outputs (printed tables, bench_results CSVs) cannot be
//     merged from partial aggregates, so the driver *replays* the bench
//     body in-process after the artifact merge — every attack is a cache
//     hit, so the replay costs seconds, not the sweep.
//
// Workers warm-start from the shared ModelZoo cache: the driver trains
// and publishes models once (through the existing CRC'd v2 cache format,
// keyed by ScaleConfig::cache_tag()) before fanning out, so workers only
// craft attacks. A worker that exits nonzero or dies on a signal is
// retried once with fresh staging; a second failure is reported per
// shard (counters shard/launched, shard/retried, shard/failed) and the
// merge proceeds with the surviving shards. See DESIGN.md §12.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "attacks/common.hpp"
#include "core/config.hpp"
#include "obs/metrics.hpp"

namespace adv::core {

class ModelZoo;

/// Half-open slice [begin, end) of a leading dimension.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Contiguous shard `index` of `count` over `total` items:
/// [total*k/K, total*(k+1)/K). The ranges tile [0, total) exactly and
/// differ in size by at most one. Throws std::invalid_argument unless
/// index < count.
IndexRange shard_range(std::size_t total, std::size_t index,
                       std::size_t count);

/// ".shard<k>of<K>" when count > 1, "" otherwise — the filename infix
/// that keeps per-shard attack artifacts from colliding in a shared
/// cache directory.
std::string shard_suffix(std::size_t index, std::size_t count);

// --- command-line protocol --------------------------------------------

/// Sharding arguments recognized by every shard-aware binary:
///   --shards N            driver mode: fan out into N workers (1 = run
///                         the body in-process, today's path)
///   --shard k/K           worker mode (driver-internal): run slice k
///   --shard-staging DIR   worker: private output dir (driver: staging
///                         root for all workers)
///   --warm-only           train/publish shared models, then exit
/// Anything unrecognized lands in `passthrough` (in order) and is
/// forwarded verbatim to workers.
struct ShardArgs {
  std::size_t shards = 1;
  bool is_worker = false;
  std::size_t worker_index = 0;
  std::size_t worker_count = 1;
  bool warm_only = false;
  std::filesystem::path staging;
  std::vector<std::string> passthrough;
};

/// Parses argv (both `--flag value` and `--flag=value` forms). Throws
/// std::runtime_error on a malformed value.
ShardArgs parse_shard_args(int argc, char* const* argv);

// --- merge primitives (pure; unit-tested in shard_test) ---------------

/// Parses a metric dump written by obs::to_json / obs::samples_to_json
/// back into samples, undoing JSON key escaping. Throws
/// std::runtime_error on malformed input.
std::vector<obs::MetricsRegistry::Sample> parse_metrics_json(
    const std::string& text);

/// Merges per-shard snapshots by key: counters sum; gauges keep the
/// maximum; timers sum count and total_ns, take the min over parts that
/// recorded anything and the max overall. Output is in the registry's
/// stable order (counters, gauges, timers; each sorted by key), so
/// re-emitting through obs::samples_to_json yields a dump
/// byte-compatible with a worker-written one.
std::vector<obs::MetricsRegistry::Sample> merge_metric_samples(
    const std::vector<std::vector<obs::MetricsRegistry::Sample>>& parts);

/// Rows [range.begin, range.end) of an attack result.
attacks::AttackResult slice_attack_result(const attacks::AttackResult& r,
                                          IndexRange range);

/// Concatenates per-shard results in the given order. Inverse of
/// slicing: merging the shard_range slices of a result reproduces it
/// bitwise.
attacks::AttackResult merge_attack_results(
    const std::vector<attacks::AttackResult>& parts);

/// Scans `cache_dir` for complete groups of `<key>.shard<k>of<K>.bin`
/// attack artifacts (K == shard_count), merges each into the canonical
/// `<key>.bin` and removes the pieces. Incomplete groups (a shard died)
/// are left in place and skipped — the replay recomputes those tags at
/// full size instead. Returns the number of groups merged.
std::size_t merge_shard_artifacts(const std::filesystem::path& cache_dir,
                                  std::size_t shard_count);

// --- worker lifecycle -------------------------------------------------

/// Worker-side setup: absolutizes cfg.cache_dir (workers share the
/// driver's cache), creates args.staging and chdirs into it, so every
/// relative output the bench body writes lands in the staging dir.
void enter_worker(const ShardArgs& args, ScaleConfig& cfg);

/// Worker-side teardown: dumps the full metrics registry to
/// OBS_metrics.json, then renames every BENCH_*.json / OBS_*.json in the
/// staging dir to `<stem>.shard<k>.json` so the driver can group dumps
/// by canonical name.
void finalize_worker(const ShardArgs& args);

// --- driver -----------------------------------------------------------

struct ShardOutcome {
  std::size_t index = 0;
  /// 0 on success; the worker's exit code, or 128+signo if it died on a
  /// signal, or 127 if it could not be spawned.
  int exit_status = 0;
  std::size_t attempts = 0;
  std::uint64_t wall_ns = 0;  // last attempt, spawn -> reap
  std::uint64_t cpu_ns = 0;   // user+system over all attempts
  std::filesystem::path staging;
  std::filesystem::path log;
  bool ok() const { return exit_status == 0; }
};

struct ShardReport {
  std::vector<ShardOutcome> shards;
  std::uint64_t phase_wall_ns = 0;  // first spawn -> last reap (w/ retries)
  std::uint64_t total_cpu_ns = 0;   // all workers, all attempts
  std::size_t launched = 0;
  std::size_t retried = 0;
  std::size_t failed = 0;
  /// Aggregate worker CPU time over driver wall time for the worker
  /// phase — an honest parallel-efficiency measure even on few-core
  /// hosts (a wall-time-sum ratio would flatter oversubscribed runs).
  double speedup() const;
  bool all_ok() const { return failed == 0; }
};

struct DriverOptions {
  std::string bench_name;  // used in BENCH_shard.json and log lines
  std::size_t shards = 2;
  /// Worker command line: resolved executable path + passthrough args.
  /// The driver appends `--shard k/K --shard-staging <dir>` per worker.
  std::vector<std::string> command;
  /// Root for per-worker staging dirs (<root>/shard<k>); defaults to
  /// "shard_staging/<bench_name>" under the cwd.
  std::filesystem::path staging_root;
  /// Shared artifact cache to merge `.shard<k>of<K>.bin` pieces in;
  /// empty skips the artifact merge.
  std::filesystem::path cache_dir;
  /// Regenerates canonical derived outputs (printed tables, CSVs) after
  /// the artifact merge — run with all attacks cache-hot. May be empty.
  std::function<void()> replay;
  /// Relaunch budget per crashed worker (total attempts = 1 +
  /// max_retries). Before each relaunch the driver sleeps
  /// retry_backoff_ms(index, attempt, retry_base_ms, retry_cap_ms) — a
  /// transient cause (OOM spike, cache contention from a sibling's
  /// rebuild) gets breathing room instead of an instant identical crash.
  std::size_t max_retries = 1;
  std::uint64_t retry_base_ms = 25;
  std::uint64_t retry_cap_ms = 2000;
};

/// Pure backoff schedule for worker relaunches: doubles from base_ms per
/// attempt (0-based), capped at cap_ms, plus a deterministic jitter
/// derived from (shard_index, attempt) so simultaneously-crashed shards
/// don't relaunch in lockstep. Same inputs -> same output, always
/// (shard_test asserts the exact schedule).
std::uint64_t retry_backoff_ms(std::size_t shard_index, std::size_t attempt,
                               std::uint64_t base_ms, std::uint64_t cap_ms);

/// Runs the fan-out: spawn K workers, reap with per-child rusage, retry
/// failures on a capped backoff schedule, merge artifacts, replay, merge
/// metric dumps, and write BENCH_shard.json. Workers inherit the
/// environment with ADV_THREADS defaulted to max(1, cores/K) unless
/// already set (an explicit pin — e.g. CI's ADV_THREADS=1 — always wins).
ShardReport run_shard_driver(const DriverOptions& opts);

/// Runs `argv` as a child process sharing this process's stdio; returns
/// its exit status decoded as in ShardOutcome::exit_status.
int run_command(const std::vector<std::string>& argv);

// --- one-call bench wiring --------------------------------------------

/// A bench split into the phase every shard shares (training/publishing
/// models) and the full body (attacks + tables + BENCH dumps).
struct ShardedBench {
  std::string name;
  /// Trains/publishes every model the body needs, through the ModelZoo
  /// cache. Empty = warm by running the body.
  std::function<void(ModelZoo&)> warm;
  std::function<void(ModelZoo&)> body;
};

/// The shared main() of every shard-aware bench:
///   no shard flags / --shards 1   run body in-process (today's path)
///   --warm-only                   run warm (or body) and exit
///   --shard k/K                   worker: staged body over slice k
///   --shards N                    driver: warm, fan out N workers,
///                                 merge, replay
/// Returns the process exit code. Failpoint sites "shard.worker" and
/// "shard.worker.<k>" make a worker exit 42 before doing any work (the
/// crash-retry tests arm them via ADV_FAULT).
int shard_main(int argc, char* const* argv, const ShardedBench& bench);

}  // namespace adv::core
