#include "core/model_zoo.hpp"

#include <cstdio>
#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/shard.hpp"
#include "data/syn_digits.hpp"
#include "data/syn_objects.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/structural.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "tensor/serialize.hpp"

namespace adv::core {
namespace {

std::string format_float_key(float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(v));
  return buf;
}

}  // namespace

nn::Sequential build_classifier(DatasetId id, std::size_t image_hw,
                                Rng& rng) {
  using nn::Conv2d;
  nn::Sequential m;
  const std::size_t in_c = id == DatasetId::Mnist ? 1 : 3;
  m.emplace<Conv2d>(Conv2d::same(in_c, 16), rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::MaxPool2d>(2);
  m.emplace<Conv2d>(Conv2d::same(16, 32), rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::MaxPool2d>(2);
  m.emplace<nn::Flatten>();
  const std::size_t spatial = image_hw / 4;
  const std::size_t hidden = id == DatasetId::Mnist ? 100 : 128;
  m.emplace<nn::Linear>(32 * spatial * spatial, hidden, rng);
  m.emplace<nn::ReLU>();
  m.emplace<nn::Linear>(hidden, 10, rng);
  return m;
}

ModelZoo::ModelZoo(ScaleConfig cfg) : cfg_(std::move(cfg)) {
  std::filesystem::create_directories(cfg_.cache_dir);
  // Register the self-healing counters eagerly so they appear (as 0) in
  // every emitted snapshot, clean runs included.
  obs::MetricsRegistry::global().counter("fault/cache_quarantined");
  obs::MetricsRegistry::global().counter("fault/cache_rebuilt");
}

std::filesystem::path ModelZoo::path_for(const std::string& key) const {
  return cfg_.cache_dir / (key + ".bin");
}

std::filesystem::path ModelZoo::attack_path_for(const std::string& key) const {
  return cfg_.cache_dir /
         (key + shard_suffix(shard_index_, shard_count_) + ".bin");
}

void ModelZoo::set_shard(std::size_t index, std::size_t count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("ModelZoo::set_shard: need index < count");
  }
  if (!attack_sets_.empty() || !attack_memo_.empty()) {
    throw std::logic_error(
        "ModelZoo::set_shard must be called before any attack runs");
  }
  shard_index_ = index;
  shard_count_ = count;
}

ModelZoo::CacheLoad ModelZoo::try_load_cached(
    const std::filesystem::path& path, const std::function<void()>& do_load) {
  if (!std::filesystem::exists(path)) return CacheLoad::Miss;
  try {
    do_load();
    return CacheLoad::Hit;
  } catch (const std::exception& e) {
    std::filesystem::path quarantined = path;
    quarantined += ".corrupt";
    std::error_code ec;
    std::filesystem::rename(path, quarantined, ec);
    if (ec) std::filesystem::remove(path, ec);  // never re-load a bad file
    // Quarantine events are rare and serious; count them unconditionally
    // (not gated on obs::enabled) so post-mortems always see them.
    obs::MetricsRegistry::global().counter("fault/cache_quarantined").add(1);
    std::fprintf(stderr,
                 "[zoo] warning: quarantined corrupt cache file %s -> %s "
                 "(%s); recomputing\n",
                 path.c_str(), quarantined.c_str(), e.what());
    return CacheLoad::Corrupt;
  }
}

void ModelZoo::note_rebuilt(CacheLoad reason) {
  if (reason == CacheLoad::Corrupt) {
    obs::MetricsRegistry::global().counter("fault/cache_rebuilt").add(1);
  }
}

const ModelZoo::Splits& ModelZoo::dataset(DatasetId id) {
  auto it = datasets_.find(id);
  if (it != datasets_.end()) return it->second;

  const std::size_t total = cfg_.train_count + cfg_.val_count + cfg_.test_count;
  data::Dataset all;
  if (id == DatasetId::Mnist) {
    data::SynDigitsConfig dc;
    dc.count = total;
    dc.seed = cfg_.seed;
    // Hardness calibration (see DESIGN.md §4): pixel noise sets the
    // detectors' clean reconstruction floor, stroke-intensity variation
    // and geometric jitter pull decision boundaries toward the data
    // manifold so small adversarial perturbations exist — the regime in
    // which the paper's L1-vs-L2 separation manifests.
    dc.pixel_noise_std = 0.08f;
    dc.jitter = 0.05f;
    dc.max_rotation_deg = 18.0f;
    dc.stroke_intensity_min = 0.9f;
    all = data::make_syn_digits(dc);
  } else {
    data::SynObjectsConfig oc;
    oc.count = total;
    oc.seed = cfg_.seed + 1;
    // Same hardness rationale as SynDigits: the added pixel noise gives
    // the auto-encoders a denoising target (otherwise the 3-channel CIFAR
    // AE collapses to the identity and MagNet's reformer does nothing).
    oc.pixel_noise_std = 0.06f;
    all = data::make_syn_objects(oc);
  }
  Rng rng(cfg_.seed + 17);
  all.shuffle(rng);
  Splits s;
  auto [train, rest] = data::split(all, cfg_.train_count);
  auto [val, test] = data::split(rest, cfg_.val_count);
  s.train = std::move(train);
  s.val = std::move(val);
  s.test = std::move(test);
  return datasets_.emplace(id, std::move(s)).first->second;
}

std::shared_ptr<nn::Sequential> ModelZoo::classifier(DatasetId id) {
  auto it = classifiers_.find(id);
  if (it != classifiers_.end()) return it->second;

  const Splits& ds = dataset(id);
  const std::size_t hw = ds.train.height();
  Rng rng(cfg_.seed + 101 + static_cast<std::uint64_t>(id));
  auto model = std::make_shared<nn::Sequential>(build_classifier(id, hw, rng));

  const std::string key =
      std::string("classifier_") + to_string(id) + "_" + cfg_.cache_tag();
  const auto path = path_for(key);
  const CacheLoad cl = try_load_cached(path, [&] { model->load(path); });
  if (cl != CacheLoad::Hit) {
    std::printf("[zoo] training %s classifier (%zu images, %zu epochs)...\n",
                to_string(id), ds.train.size(), cfg_.classifier_epochs);
    std::fflush(stdout);
    nn::Adam opt(model->parameters(), model->gradients(), 1e-3f);
    nn::TrainConfig tc;
    tc.epochs = cfg_.classifier_epochs;
    tc.batch_size = cfg_.batch_size;
    tc.shuffle_seed = cfg_.seed + 202;
    nn::fit_classifier(*model, ds.train.images, ds.train.labels, opt, tc);
    model->save(path);
    note_rebuilt(cl);
    std::printf("[zoo] %s classifier: train acc %.3f, test acc %.3f\n",
                to_string(id),
                nn::classification_accuracy(*model, ds.train.images,
                                            ds.train.labels),
                nn::classification_accuracy(*model, ds.test.images,
                                            ds.test.labels));
    std::fflush(stdout);
  }
  classifiers_[id] = model;
  return model;
}

float ModelZoo::clean_test_accuracy(DatasetId id) {
  const Splits& ds = dataset(id);
  return nn::classification_accuracy(*classifier(id), ds.test.images,
                                     ds.test.labels);
}

std::shared_ptr<nn::Sequential> ModelZoo::autoencoder(DatasetId id,
                                                      magnet::AeArch arch,
                                                      std::size_t filters,
                                                      magnet::ReconLoss loss) {
  const std::string key =
      std::string("ae_") + to_string(id) + "_a" +
      std::to_string(static_cast<int>(arch)) + "_f" +
      std::to_string(filters) + "_" +
      (loss == magnet::ReconLoss::Mse ? "mse" : "mae") + "_" +
      cfg_.cache_tag();
  auto it = autoencoders_.find(key);
  if (it != autoencoders_.end()) return it->second;

  const Splits& ds = dataset(id);
  magnet::AutoencoderConfig ac;
  ac.arch = arch;
  ac.image_channels = ds.train.channels();
  ac.filters = filters;
  ac.loss = loss;
  // Wide ("robust") AEs have far more capacity per epoch and dominate the
  // single-core training budget; half the epochs reaches the same
  // reconstruction quality band as the narrow default.
  ac.epochs = filters >= 2 * cfg_.default_filters(id)
                  ? std::max<std::size_t>(10, cfg_.ae_epochs / 2)
                  : cfg_.ae_epochs;
  ac.batch_size = cfg_.batch_size;
  ac.seed = cfg_.seed + 303 + filters + static_cast<std::uint64_t>(arch);

  Rng rng(ac.seed);
  auto model =
      std::make_shared<nn::Sequential>(magnet::build_autoencoder(ac, rng));
  const auto path = path_for(key);
  const CacheLoad cl = try_load_cached(path, [&] { model->load(path); });
  if (cl != CacheLoad::Hit) {
    std::printf("[zoo] training %s (filters=%zu, %s)...\n", key.c_str(),
                filters, loss == magnet::ReconLoss::Mse ? "mse" : "mae");
    std::fflush(stdout);
    model = magnet::train_autoencoder(ac, ds.train.images);
    model->save(path);
    note_rebuilt(cl);
  }
  autoencoders_[key] = model;
  return model;
}

const ModelZoo::AttackSet& ModelZoo::attack_set(DatasetId id) {
  auto it = attack_sets_.find(id);
  if (it != attack_sets_.end()) return it->second;

  const Splits& ds = dataset(id);
  const std::vector<int> pred =
      nn::predict_labels(*classifier(id), ds.test.images);
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < pred.size() && chosen.size() < cfg_.attack_count;
       ++i) {
    if (pred[i] == ds.test.labels[i]) chosen.push_back(i);
  }
  if (chosen.size() < cfg_.attack_count) {
    std::printf(
        "[zoo] warning: only %zu correctly classified test images for %s "
        "(wanted %zu)\n",
        chosen.size(), to_string(id), cfg_.attack_count);
  }
  // Shard slicing happens AFTER the full-set selection so every worker
  // sees the same candidate list; each then keeps its contiguous range.
  // Attacks process images independently, so the per-image results are
  // bitwise identical to the unsharded run's corresponding rows.
  if (shard_count_ > 1) {
    const IndexRange r = shard_range(chosen.size(), shard_index_,
                                     shard_count_);
    chosen = std::vector<std::size_t>(chosen.begin() + r.begin,
                                      chosen.begin() + r.end);
  }
  const data::Dataset subset = ds.test.filter(chosen);
  AttackSet s;
  s.images = subset.images;
  s.labels = subset.labels;
  return attack_sets_.emplace(id, std::move(s)).first->second;
}

void save_attack_result(const std::filesystem::path& path,
                        const attacks::AttackResult& r) {
  std::vector<Tensor> ts;
  ts.push_back(r.adversarial);
  const std::size_t n = r.success.size();
  Tensor meta({4, n});
  for (std::size_t i = 0; i < n; ++i) {
    meta[0 * n + i] = r.success[i] ? 1.0f : 0.0f;
    meta[1 * n + i] = r.l1[i];
    meta[2 * n + i] = r.l2[i];
    meta[3 * n + i] = r.linf[i];
  }
  ts.push_back(std::move(meta));
  save_tensors(path, ts);
}

attacks::AttackResult load_attack_result(const std::filesystem::path& path) {
  const std::vector<Tensor> ts = load_tensors(path);
  if (ts.size() != 2 || ts[1].rank() != 2 || ts[1].dim(0) != 4) {
    throw std::runtime_error("corrupt attack cache: " + path.string());
  }
  attacks::AttackResult r;
  r.adversarial = ts[0];
  const std::size_t n = ts[1].dim(1);
  r.success.resize(n);
  r.l1.resize(n);
  r.l2.resize(n);
  r.linf.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.success[i] = ts[1][0 * n + i] != 0.0f;
    r.l1[i] = ts[1][1 * n + i];
    r.l2[i] = ts[1][2 * n + i];
    r.linf[i] = ts[1][3 * n + i];
  }
  return r;
}

attacks::AttackResult ModelZoo::cached_attack(
    const std::string& key,
    const std::function<attacks::AttackResult()>& compute) {
  auto it = attack_memo_.find(key);
  if (it != attack_memo_.end()) return it->second;
  const auto path = attack_path_for(key);
  // A sharded worker still warm-starts from the canonical (unsharded)
  // artifact when a prior full run produced one; slicing a full result is
  // cheaper than recrafting and bitwise-equal by the argument above.
  if (shard_count_ > 1 && !std::filesystem::exists(path) &&
      std::filesystem::exists(path_for(key))) {
    std::optional<attacks::AttackResult> full;
    if (try_load_cached(path_for(key),
                        [&] { full = load_attack_result(path_for(key)); }) ==
        CacheLoad::Hit) {
      const std::size_t total = full->success.size();
      const IndexRange range = shard_range(total, shard_index_, shard_count_);
      attacks::AttackResult sliced = slice_attack_result(*full, range);
      save_attack_result(path, sliced);
      return attack_memo_.emplace(key, std::move(sliced)).first->second;
    }
  }
  std::optional<attacks::AttackResult> loaded;
  const CacheLoad cl =
      try_load_cached(path, [&] { loaded = load_attack_result(path); });
  if (cl == CacheLoad::Hit) {
    return attack_memo_.emplace(key, std::move(*loaded)).first->second;
  }
  std::printf("[zoo] crafting %s ...\n", key.c_str());
  std::fflush(stdout);
  attacks::AttackResult r = compute();
  save_attack_result(path, r);
  note_rebuilt(cl);
  return attack_memo_.emplace(key, std::move(r)).first->second;
}

attacks::AttackResult ModelZoo::run_attack(DatasetId id,
                                           const attacks::Attack& attack) {
  // The classifier is only needed on a cache miss, so the oblivious
  // target is built inside the compute lambda — a warm cache never
  // triggers classifier training.
  const std::string key = std::string("atk_") + to_string(id) + "_" +
                          cfg_.cache_tag() + "_" + attack.tag();
  bool computed = false;
  const attacks::AttackResult& r = cached_attack(key, [&] {
    computed = true;
    const AttackSet& s = attack_set(id);
    attacks::ObliviousTarget target(*classifier(id));
    return attack.run(target, s.images, s.labels);
  });
  if (!computed && obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("attack/" + attack.name() + "/cache_hits")
        .add(1);
  }
  return r;
}

attacks::AttackResult ModelZoo::run_attack(DatasetId id,
                                           const attacks::Attack& attack,
                                           attacks::AttackTarget& target) {
  const std::string key = std::string("atk_") + to_string(id) + "_" +
                          cfg_.cache_tag() + "_" + attack.tag() +
                          target.tag_suffix();
  bool computed = false;
  const attacks::AttackResult& r = cached_attack(key, [&] {
    computed = true;
    const AttackSet& s = attack_set(id);
    return attack.run(target, s.images, s.labels);
  });
  if (!computed && obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("attack/" + attack.name() + "/cache_hits")
        .add(1);
  }
  return r;
}

attacks::AttackOverrides ModelZoo::attack_defaults(DatasetId id) const {
  attacks::AttackOverrides o;
  o.iterations = cfg_.attack_iterations;
  o.binary_search_steps = cfg_.binary_search_steps;
  o.initial_c = cfg_.initial_c_for(id);
  o.learning_rate = cfg_.attack_lr;
  return o;
}

attacks::AttackResult ModelZoo::cw(DatasetId id, float kappa) {
  attacks::AttackOverrides o = attack_defaults(id);
  o.kappa = kappa;
  return run_attack(id, *attacks::make_attack("cw-l2", o));
}

attacks::AttackResult ModelZoo::ead(DatasetId id, float beta, float kappa,
                                    attacks::DecisionRule rule) {
  auto key = [&](attacks::DecisionRule r) {
    return std::string("atk_") + to_string(id) + "_" + cfg_.cache_tag() +
           "_ead_b" + format_float_key(beta) + "_k" + format_float_key(kappa) +
           "_" + attacks::to_string(r);
  };
  // One optimization run serves both decision rules; craft and store both
  // on a miss.
  const std::string want = key(rule);
  auto hit = [] {
    if (obs::enabled()) {
      obs::MetricsRegistry::global().counter("attack/ead/cache_hits").add(1);
    }
  };
  auto it = attack_memo_.find(want);
  if (it != attack_memo_.end()) {
    hit();
    return it->second;
  }
  std::optional<attacks::AttackResult> loaded;
  const CacheLoad cl = try_load_cached(attack_path_for(want), [&] {
    loaded = load_attack_result(attack_path_for(want));
  });
  if (cl == CacheLoad::Hit) {
    hit();
    return attack_memo_.emplace(want, std::move(*loaded)).first->second;
  }
  std::printf("[zoo] crafting %s (+ sibling rule) ...\n", want.c_str());
  std::fflush(stdout);
  const AttackSet& s = attack_set(id);
  attacks::EadConfig c;
  c.beta = beta;
  c.kappa = kappa;
  c.iterations = cfg_.attack_iterations;
  c.binary_search_steps = cfg_.binary_search_steps;
  c.initial_c = cfg_.initial_c_for(id);
  c.learning_rate = cfg_.attack_lr;
  const attacks::DecisionRule rules[2] = {attacks::DecisionRule::EN,
                                          attacks::DecisionRule::L1};
  // The shared EN/L1 run bypasses Attack::run, so instrument it directly;
  // both rules share one optimization, hence one scope and one outcome.
  attacks::AttackMetricsScope scope("ead", c.iterations,
                                    s.images.rank() ? s.images.dim(0) : 0);
  std::vector<attacks::AttackResult> rs =
      attacks::ead_attack_multi(*classifier(id), s.images, s.labels, c, rules);
  scope.record_outcome(rs[0]);
  for (std::size_t i = 0; i < 2; ++i) {
    save_attack_result(attack_path_for(key(rules[i])), rs[i]);
    attack_memo_[key(rules[i])] = rs[i];
  }
  note_rebuilt(cl);
  return attack_memo_.at(want);
}

attacks::AttackResult ModelZoo::fgsm(DatasetId id, float epsilon,
                                     std::size_t iterations) {
  attacks::AttackOverrides o;
  o.epsilon = epsilon;
  o.iterations = iterations;
  return run_attack(id, *attacks::make_attack("fgsm", o));
}

attacks::AttackResult ModelZoo::deepfool(DatasetId id) {
  return run_attack(id, *attacks::make_attack("deepfool"));
}

}  // namespace adv::core
