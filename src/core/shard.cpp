#include "core/shard.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/model_zoo.hpp"
#include "fault/failpoint.hpp"
#include "obs/emit.hpp"

extern char** environ;

namespace adv::core {

namespace fs = std::filesystem;
using Sample = obs::MetricsRegistry::Sample;

IndexRange shard_range(std::size_t total, std::size_t index,
                       std::size_t count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("shard_range: need index < count");
  }
  return {total * index / count, total * (index + 1) / count};
}

std::string shard_suffix(std::size_t index, std::size_t count) {
  if (count <= 1) return "";
  return ".shard" + std::to_string(index) + "of" + std::to_string(count);
}

// --- command-line protocol --------------------------------------------

namespace {

std::size_t parse_size(const std::string& s, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error(std::string(what) + ": bad number '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Matches `--flag value` (advancing i) or `--flag=value` at argv[i].
std::optional<std::string> flag_value(int argc, char* const* argv, int& i,
                                      std::string_view flag) {
  const std::string_view arg = argv[i];
  if (arg == flag) {
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string(flag) + " needs a value");
    }
    return std::string(argv[++i]);
  }
  if (arg.size() > flag.size() + 1 && arg.starts_with(flag) &&
      arg[flag.size()] == '=') {
    return std::string(arg.substr(flag.size() + 1));
  }
  return std::nullopt;
}

}  // namespace

ShardArgs parse_shard_args(int argc, char* const* argv) {
  ShardArgs out;
  for (int i = 1; i < argc; ++i) {
    if (const auto v = flag_value(argc, argv, i, "--shards")) {
      out.shards = parse_size(*v, "--shards");
      if (out.shards == 0) throw std::runtime_error("--shards must be >= 1");
    } else if (const auto v = flag_value(argc, argv, i, "--shard")) {
      const std::size_t slash = v->find('/');
      if (slash == std::string::npos) {
        throw std::runtime_error("--shard wants k/K, got '" + *v + "'");
      }
      out.worker_index = parse_size(v->substr(0, slash), "--shard");
      out.worker_count = parse_size(v->substr(slash + 1), "--shard");
      if (out.worker_count == 0 || out.worker_index >= out.worker_count) {
        throw std::runtime_error("--shard k/K needs k < K");
      }
      out.is_worker = true;
    } else if (const auto v = flag_value(argc, argv, i, "--shard-staging")) {
      out.staging = *v;
    } else if (std::string_view(argv[i]) == "--warm-only") {
      out.warm_only = true;
    } else {
      out.passthrough.emplace_back(argv[i]);
    }
  }
  if (out.is_worker && out.staging.empty()) {
    throw std::runtime_error("--shard requires --shard-staging");
  }
  return out;
}

// --- metric-dump parsing and merging ----------------------------------

namespace {

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char c = s[++i];
    switch (c) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) {
          throw std::runtime_error("truncated \\u escape in metric dump");
        }
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = s[++i];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else throw std::runtime_error("bad \\u escape in metric dump");
        }
        if (v < 0x80) {
          out += static_cast<char>(v);
        } else if (v < 0x800) {
          out += static_cast<char>(0xC0 | (v >> 6));
          out += static_cast<char>(0x80 | (v & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (v >> 12));
          out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (v & 0x3F));
        }
        break;
      }
      default: out += c;  // \" \\ \/ and anything else: keep the char
    }
  }
  return out;
}

/// Reads the JSON string whose opening quote precedes `pos`; leaves pos
/// just past the closing quote.
std::string read_json_string(const std::string& text, std::size_t& pos) {
  std::size_t i = pos;
  bool escaped = false;
  for (; i < text.size(); ++i) {
    if (escaped) {
      escaped = false;
    } else if (text[i] == '\\') {
      escaped = true;
    } else if (text[i] == '"') {
      break;
    }
  }
  if (i >= text.size()) {
    throw std::runtime_error("unterminated string in metric dump");
  }
  std::string out =
      json_unescape(std::string_view(text).substr(pos, i - pos));
  pos = i + 1;
  return out;
}

const char* find_field(const std::string& text, std::size_t from,
                       std::size_t limit, const char* name) {
  const std::string pat = std::string("\"") + name + "\": ";
  const std::size_t p = text.find(pat, from);
  if (p == std::string::npos || p >= limit) {
    throw std::runtime_error(std::string("metric dump missing field '") +
                             name + "'");
  }
  return text.c_str() + p + pat.size();
}

std::uint64_t field_u64(const std::string& text, std::size_t from,
                        std::size_t limit, const char* name) {
  return std::strtoull(find_field(text, from, limit, name), nullptr, 10);
}

double field_double(const std::string& text, std::size_t from,
                    std::size_t limit, const char* name) {
  return std::strtod(find_field(text, from, limit, name), nullptr);
}

}  // namespace

std::vector<Sample> parse_metrics_json(const std::string& text) {
  if (text.find("\"metrics\"") == std::string::npos) {
    throw std::runtime_error("not a metric dump (no \"metrics\" array)");
  }
  // Each metric is one flat object; the literal `{"key": "` can only
  // open one (inside key strings the quotes would be escaped), and after
  // the key string only fixed field names and numbers follow, so the
  // next '}' closes the object.
  static constexpr std::string_view kOpen = "{\"key\": \"";
  std::vector<Sample> out;
  std::size_t pos = 0;
  while ((pos = text.find(kOpen, pos)) != std::string::npos) {
    std::size_t p = pos + kOpen.size();
    Sample s;
    s.key = read_json_string(text, p);
    const std::size_t end = text.find('}', p);
    if (end == std::string::npos) {
      throw std::runtime_error("unterminated metric object");
    }
    std::size_t kp = text.find("\"kind\": \"", p);
    if (kp == std::string::npos || kp >= end) {
      throw std::runtime_error("metric object missing 'kind'");
    }
    kp += std::string_view("\"kind\": \"").size();
    const std::string kind = read_json_string(text, kp);
    if (kind == "counter") {
      s.kind = Sample::Kind::Counter;
      s.value = field_u64(text, kp, end, "value");
    } else if (kind == "gauge") {
      s.kind = Sample::Kind::Gauge;
      s.gauge_value = field_double(text, kp, end, "value");
    } else if (kind == "timer") {
      s.kind = Sample::Kind::Timer;
      s.count = field_u64(text, kp, end, "count");
      s.total_ns = field_u64(text, kp, end, "total_ns");
      s.min_ns = field_u64(text, kp, end, "min_ns");
      s.max_ns = field_u64(text, kp, end, "max_ns");
    } else {
      throw std::runtime_error("unknown metric kind '" + kind + "'");
    }
    out.push_back(std::move(s));
    pos = end;
  }
  return out;
}

std::vector<Sample> merge_metric_samples(
    const std::vector<std::vector<Sample>>& parts) {
  std::map<std::string, Sample> counters, gauges, timers;
  for (const auto& part : parts) {
    for (const Sample& s : part) {
      switch (s.kind) {
        case Sample::Kind::Counter: {
          auto [it, fresh] = counters.try_emplace(s.key, s);
          if (!fresh) it->second.value += s.value;
          break;
        }
        case Sample::Kind::Gauge: {
          auto [it, fresh] = gauges.try_emplace(s.key, s);
          if (!fresh) {
            it->second.gauge_value =
                std::max(it->second.gauge_value, s.gauge_value);
          }
          break;
        }
        case Sample::Kind::Timer: {
          auto [it, fresh] = timers.try_emplace(s.key, s);
          if (!fresh) {
            Sample& t = it->second;
            if (s.count > 0) {  // an idle part's min/max (0) carry no info
              t.min_ns = t.count > 0 ? std::min(t.min_ns, s.min_ns) : s.min_ns;
              t.max_ns = std::max(t.max_ns, s.max_ns);
            }
            t.count += s.count;
            t.total_ns += s.total_ns;
          }
          break;
        }
      }
    }
  }
  std::vector<Sample> out;
  out.reserve(counters.size() + gauges.size() + timers.size());
  for (auto& [key, s] : counters) out.push_back(std::move(s));
  for (auto& [key, s] : gauges) out.push_back(std::move(s));
  for (auto& [key, s] : timers) out.push_back(std::move(s));
  return out;
}

// --- attack-result slicing and merging --------------------------------

attacks::AttackResult slice_attack_result(const attacks::AttackResult& r,
                                          IndexRange range) {
  if (range.begin > range.end || range.end > r.success.size()) {
    throw std::invalid_argument("slice_attack_result: range out of bounds");
  }
  attacks::AttackResult out;
  if (range.size() == 0) return out;
  out.adversarial = r.adversarial.slice_rows(range.begin, range.end);
  out.success.assign(r.success.begin() + static_cast<std::ptrdiff_t>(range.begin),
                     r.success.begin() + static_cast<std::ptrdiff_t>(range.end));
  const auto sub = [&](const std::vector<float>& v) {
    return std::vector<float>(v.begin() + static_cast<std::ptrdiff_t>(range.begin),
                              v.begin() + static_cast<std::ptrdiff_t>(range.end));
  };
  out.l1 = sub(r.l1);
  out.l2 = sub(r.l2);
  out.linf = sub(r.linf);
  return out;
}

attacks::AttackResult merge_attack_results(
    const std::vector<attacks::AttackResult>& parts) {
  std::size_t total = 0;
  const attacks::AttackResult* first = nullptr;
  for (const auto& p : parts) {
    total += p.success.size();
    if (!first && !p.success.empty()) first = &p;
  }
  attacks::AttackResult out;
  if (!first) return out;
  std::vector<std::size_t> dims = first->adversarial.shape().dims();
  dims[0] = total;
  out.adversarial = Tensor(Shape(std::move(dims)));
  out.success.reserve(total);
  out.l1.reserve(total);
  out.l2.reserve(total);
  out.linf.reserve(total);
  std::size_t at = 0;
  for (const auto& p : parts) {
    if (p.success.empty()) continue;
    out.adversarial.set_rows(at, p.adversarial);
    out.success.insert(out.success.end(), p.success.begin(), p.success.end());
    out.l1.insert(out.l1.end(), p.l1.begin(), p.l1.end());
    out.l2.insert(out.l2.end(), p.l2.begin(), p.l2.end());
    out.linf.insert(out.linf.end(), p.linf.begin(), p.linf.end());
    at += p.success.size();
  }
  return out;
}

std::size_t merge_shard_artifacts(const fs::path& cache_dir,
                                  std::size_t shard_count) {
  if (shard_count <= 1 || !fs::exists(cache_dir)) return 0;
  const std::string of_tag = "of" + std::to_string(shard_count) + ".bin";
  // key -> (shard index -> piece path)
  std::map<std::string, std::map<std::size_t, fs::path>> groups;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(of_tag)) continue;
    const std::size_t mark = name.rfind(".shard");
    if (mark == std::string::npos) continue;
    const std::size_t idx_at = mark + std::string_view(".shard").size();
    const std::string idx_str =
        name.substr(idx_at, name.size() - of_tag.size() - idx_at);
    char* end = nullptr;
    const unsigned long long k = std::strtoull(idx_str.c_str(), &end, 10);
    if (end == idx_str.c_str() || *end != '\0' || k >= shard_count) continue;
    groups[name.substr(0, mark)][static_cast<std::size_t>(k)] = entry.path();
  }
  std::size_t merged = 0;
  for (const auto& [key, pieces] : groups) {
    if (pieces.size() != shard_count) {
      std::fprintf(stderr,
                   "[shard] %s: %zu/%zu pieces present; leaving them for a "
                   "full-size recompute\n",
                   key.c_str(), pieces.size(), shard_count);
      continue;
    }
    std::vector<attacks::AttackResult> parts;
    parts.reserve(shard_count);
    bool ok = true;
    for (std::size_t k = 0; k < shard_count && ok; ++k) {
      try {
        parts.push_back(load_attack_result(pieces.at(k)));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[shard] %s piece %zu unreadable (%s); skipping\n",
                     key.c_str(), k, e.what());
        ok = false;
      }
    }
    if (!ok) continue;
    save_attack_result(cache_dir / (key + ".bin"),
                       merge_attack_results(parts));
    for (const auto& [k, piece] : pieces) {
      std::error_code ec;
      fs::remove(piece, ec);
    }
    ++merged;
  }
  return merged;
}

// --- worker lifecycle -------------------------------------------------

void enter_worker(const ShardArgs& args, ScaleConfig& cfg) {
  // Absolutize against the driver's cwd BEFORE chdir'ing into staging —
  // the cache is shared, the staging dir is private.
  cfg.cache_dir = fs::absolute(cfg.cache_dir);
  fs::create_directories(args.staging);
  fs::current_path(args.staging);
}

void finalize_worker(const ShardArgs& args) {
  obs::write_json("OBS_metrics.json", obs::MetricsRegistry::global(), {});
  const std::string tag = ".shard" + std::to_string(args.worker_index);
  std::vector<fs::path> dumps;
  for (const auto& entry : fs::directory_iterator(fs::current_path())) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".json")) continue;
    if (!name.starts_with("BENCH_") && !name.starts_with("OBS_")) continue;
    if (name.find(".shard") != std::string::npos) continue;
    dumps.push_back(entry.path());
  }
  for (const fs::path& p : dumps) {
    fs::path renamed = p;
    renamed.replace_extension();  // strip .json
    renamed += tag + ".json";
    std::error_code ec;
    fs::rename(p, renamed, ec);
  }
}

// --- driver -----------------------------------------------------------

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t timeval_ns(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(tv.tv_usec) * 1'000ull;
}

int decode_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 126;
}

/// Environment block for workers, built before any fork (building it
/// after fork would not be async-signal-safe): a copy of environ, with
/// ADV_THREADS defaulted to max(1, cores/shards) when absent so K
/// workers share the machine instead of oversubscribing it K-fold. An
/// explicit ADV_THREADS (e.g. CI's =1) always wins.
struct WorkerEnv {
  std::vector<std::string> store;
  std::vector<char*> ptrs;

  explicit WorkerEnv(std::size_t shards) {
    bool pinned = false;
    for (char** e = environ; e && *e; ++e) {
      store.emplace_back(*e);
      if (store.back().starts_with("ADV_THREADS=")) pinned = true;
    }
    if (!pinned) {
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      const unsigned per = std::max<unsigned>(
          1, hw / static_cast<unsigned>(std::max<std::size_t>(1, shards)));
      store.push_back("ADV_THREADS=" + std::to_string(per));
    }
    ptrs.reserve(store.size() + 1);
    for (auto& s : store) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
  }
};

/// fork+execve with stdout/stderr optionally redirected to `log_path`.
/// Only async-signal-safe calls happen between fork and execve — the
/// parent is multi-threaded (ThreadPool) by the time the driver runs.
pid_t spawn(const std::vector<std::string>& argv_strs, char* const* envp,
            const fs::path& log_path) {
  std::vector<char*> argv;
  argv.reserve(argv_strs.size() + 1);
  for (const auto& s : argv_strs) argv.push_back(const_cast<char*>(s.c_str()));
  argv.push_back(nullptr);
  const int log_fd =
      log_path.empty()
          ? -1
          : ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
    }
    ::execve(argv[0], argv.data(), const_cast<char* const*>(envp));
    ::_exit(127);
  }
  if (log_fd >= 0) ::close(log_fd);
  return pid;
}

bool read_file(const fs::path& path, std::string& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (!f) return false;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
  const std::size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return true;
}

/// tmp+rename publish, so a reader never sees a half-written dump.
bool publish_file(const fs::path& path, const std::string& text) {
  fs::path tmp = path;
  tmp += ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "[shard] cannot write %s\n", tmp.string().c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::fprintf(stderr, "[shard] cannot publish %s: %s\n",
                 path.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

/// Groups staged `<name>.shard<k>.json` dumps by canonical name, merges
/// each group and publishes the result at the driver's cwd (overwriting
/// whatever the replay wrote under the same name — the replay's numbers
/// describe cache-hit re-reads, the workers' describe the real crafting).
void merge_staged_dumps(const ShardReport& rep) {
  std::map<std::string, std::vector<std::string>> groups;
  for (const ShardOutcome& o : rep.shards) {
    const std::string tag = ".shard" + std::to_string(o.index) + ".json";
    if (!fs::exists(o.staging)) continue;
    for (const auto& entry : fs::directory_iterator(o.staging)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (!name.ends_with(tag)) continue;
      std::string text;
      if (!read_file(entry.path(), text)) continue;
      const std::string canonical =
          name.substr(0, name.size() - tag.size()) + ".json";
      groups[canonical].push_back(std::move(text));
    }
  }
  for (const auto& [name, texts] : groups) {
    std::vector<std::vector<Sample>> parts;
    parts.reserve(texts.size());
    try {
      for (const std::string& t : texts) parts.push_back(parse_metrics_json(t));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[shard] cannot merge %s: %s\n", name.c_str(),
                   e.what());
      continue;
    }
    if (publish_file(name, obs::samples_to_json(merge_metric_samples(parts)))) {
      std::printf("[shard] merged %zu shard dump(s) -> %s\n", texts.size(),
                  name.c_str());
    }
  }
}

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void write_shard_bench(const DriverOptions& opts, const ShardReport& rep) {
  char buf[64];
  std::string j = "{\n";
  j += "  \"bench\": \"" + opts.bench_name + "\",\n";
  j += "  \"shards\": " + std::to_string(rep.shards.size()) + ",\n";
  j += "  \"launched\": " + std::to_string(rep.launched) + ",\n";
  j += "  \"retried\": " + std::to_string(rep.retried) + ",\n";
  j += "  \"failed\": " + std::to_string(rep.failed) + ",\n";
  j += "  \"phase_wall_ms\": " + fmt_ms(rep.phase_wall_ns) + ",\n";
  j += "  \"total_cpu_ms\": " + fmt_ms(rep.total_cpu_ns) + ",\n";
  std::snprintf(buf, sizeof(buf), "%.3f", rep.speedup());
  j += std::string("  \"speedup\": ") + buf + ",\n";
  j += "  \"per_shard\": [\n";
  for (std::size_t k = 0; k < rep.shards.size(); ++k) {
    const ShardOutcome& o = rep.shards[k];
    j += "    {\"index\": " + std::to_string(o.index) +
         ", \"exit_status\": " + std::to_string(o.exit_status) +
         ", \"attempts\": " + std::to_string(o.attempts) +
         ", \"wall_ms\": " + fmt_ms(o.wall_ns) +
         ", \"cpu_ms\": " + fmt_ms(o.cpu_ns) + ", \"log\": \"" +
         o.log.string() + "\"}";
    j += (k + 1 < rep.shards.size()) ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  if (publish_file("BENCH_shard.json", j)) {
    std::printf("wrote BENCH_shard.json\n");
  }
}

}  // namespace

std::uint64_t retry_backoff_ms(std::size_t shard_index, std::size_t attempt,
                               std::uint64_t base_ms, std::uint64_t cap_ms) {
  if (base_ms == 0 || cap_ms == 0) return 0;
  const std::size_t exp = std::min<std::size_t>(attempt, 40);
  std::uint64_t cap = base_ms << exp;
  if (cap > cap_ms || (cap >> exp) != base_ms) cap = cap_ms;
  // splitmix64 over (index, attempt): deterministic, but crashed
  // siblings get distinct pauses instead of relaunching in lockstep.
  std::uint64_t x = (static_cast<std::uint64_t>(shard_index) << 32) ^
                    static_cast<std::uint64_t>(attempt);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  const std::uint64_t half = cap / 2;
  return half + x % (cap - half + 1);
}

double ShardReport::speedup() const {
  if (phase_wall_ns == 0) return 0.0;
  return static_cast<double>(total_cpu_ns) /
         static_cast<double>(phase_wall_ns);
}

int run_command(const std::vector<std::string>& argv) {
  if (argv.empty()) return 127;
  const pid_t pid = spawn(argv, environ, {});
  if (pid < 0) return 127;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return 127;
  }
  return decode_status(status);
}

ShardReport run_shard_driver(const DriverOptions& opts) {
  if (opts.command.empty()) {
    throw std::invalid_argument("run_shard_driver: empty worker command");
  }
  const std::size_t count = std::max<std::size_t>(1, opts.shards);
  const fs::path root = opts.staging_root.empty()
                            ? fs::path("shard_staging") / opts.bench_name
                            : opts.staging_root;

  ShardReport rep;
  rep.shards.resize(count);

  const WorkerEnv env(count);
  std::map<pid_t, std::size_t> live;  // pid -> shard index
  std::vector<std::uint64_t> spawned_at(count, 0);

  const auto launch = [&](std::size_t k) {
    ShardOutcome& o = rep.shards[k];
    o.index = k;
    o.staging = root / ("shard" + std::to_string(k));
    o.log = o.staging / "log.txt";
    std::error_code ec;
    fs::remove_all(o.staging, ec);  // fresh staging per attempt
    fs::create_directories(o.staging);
    std::vector<std::string> argv = opts.command;
    argv.push_back("--shard");
    argv.push_back(std::to_string(k) + "/" + std::to_string(count));
    argv.push_back("--shard-staging");
    argv.push_back(fs::absolute(o.staging).string());
    ++o.attempts;
    ++rep.launched;
    const pid_t pid = spawn(argv, env.ptrs.data(), o.log);
    if (pid < 0) {
      o.exit_status = 127;
      return;
    }
    spawned_at[k] = now_ns();
    live[pid] = k;
  };

  const auto reap_all = [&] {
    while (!live.empty()) {
      struct rusage ru {};
      int status = 0;
      const pid_t pid = ::wait4(-1, &status, 0, &ru);
      if (pid < 0) {
        if (errno == EINTR) continue;
        break;  // ECHILD: nothing of ours left
      }
      const auto it = live.find(pid);
      if (it == live.end()) continue;  // some other child of this process
      ShardOutcome& o = rep.shards[it->second];
      o.exit_status = decode_status(status);
      o.wall_ns = now_ns() - spawned_at[it->second];
      o.cpu_ns += timeval_ns(ru.ru_utime) + timeval_ns(ru.ru_stime);
      live.erase(it);
    }
  };

  const std::uint64_t phase_start = now_ns();
  for (std::size_t k = 0; k < count; ++k) launch(k);
  reap_all();
  // Capped-backoff relaunch rounds: an immediate identical relaunch just
  // reproduces a transient cause (OOM spike, a sibling rebuilding the
  // shared cache); the deterministic schedule gives it room to clear.
  std::uint64_t backoff_total_ms = 0;
  for (std::size_t round = 0; round < opts.max_retries; ++round) {
    bool relaunched = false;
    for (std::size_t k = 0; k < count; ++k) {
      if (rep.shards[k].ok()) continue;
      const std::uint64_t pause = retry_backoff_ms(
          k, round, opts.retry_base_ms, opts.retry_cap_ms);
      std::fprintf(stderr,
                   "[shard] %s worker %zu failed (status %d); retry %zu/%zu "
                   "after %llu ms (log: %s)\n",
                   opts.bench_name.c_str(), k, rep.shards[k].exit_status,
                   round + 1, opts.max_retries,
                   static_cast<unsigned long long>(pause),
                   rep.shards[k].log.string().c_str());
      ++rep.retried;
      backoff_total_ms += pause;
      std::this_thread::sleep_for(std::chrono::milliseconds(pause));
      launch(k);
      relaunched = true;
    }
    if (!relaunched) break;
    reap_all();
  }
  rep.phase_wall_ns = now_ns() - phase_start;
  for (const ShardOutcome& o : rep.shards) {
    rep.total_cpu_ns += o.cpu_ns;
    if (!o.ok()) {
      ++rep.failed;
      std::fprintf(stderr,
                   "[shard] %s worker %zu failed after %zu attempt(s) "
                   "(status %d); merging the surviving shards (log: %s)\n",
                   opts.bench_name.c_str(), o.index, o.attempts,
                   o.exit_status, o.log.string().c_str());
    }
  }

  // Crash accounting is rare and serious — record it unconditionally,
  // like the cache self-healing counters (add(0) just registers the key).
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("shard/launched").add(rep.launched);
  reg.counter("shard/retried").add(rep.retried);
  reg.counter("shard/failed").add(rep.failed);
  reg.counter("shard/retry_backoff_ms").add(backoff_total_ms);

  // Handoff order matters: publish merged artifacts into the canonical
  // cache keys FIRST so the replay below is a pure cache-hit pass, then
  // let the merged worker dumps overwrite the replay's metric files.
  if (!opts.cache_dir.empty()) {
    const std::size_t merged = merge_shard_artifacts(opts.cache_dir, count);
    if (merged) {
      std::printf("[shard] merged %zu attack artifact group(s) into the "
                  "canonical cache\n",
                  merged);
    }
  }
  if (opts.replay) opts.replay();
  merge_staged_dumps(rep);
  write_shard_bench(opts, rep);
  std::printf(
      "[shard] %s: %zu shard(s), %zu retried, %zu failed; worker cpu %.1fs "
      "over %.1fs wall -> speedup %.2fx\n",
      opts.bench_name.c_str(), count, rep.retried, rep.failed,
      static_cast<double>(rep.total_cpu_ns) / 1e9,
      static_cast<double>(rep.phase_wall_ns) / 1e9, rep.speedup());
  return rep;
}

// --- one-call bench wiring --------------------------------------------

namespace {

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0 ? argv0 : "";
}

}  // namespace

int shard_main(int argc, char* const* argv, const ShardedBench& bench) {
  ShardArgs args;
  try {
    args = parse_shard_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", bench.name.c_str(), e.what());
    return 2;
  }
  ScaleConfig cfg = scale_from_env();

  if (args.is_worker) {
    // Deterministic crash injection for the retry/report tests.
    if (fault::check("shard.worker") != fault::Action::None ||
        fault::check("shard.worker." + std::to_string(args.worker_index)) !=
            fault::Action::None) {
      std::fprintf(stderr, "[shard] worker %zu/%zu: injected failpoint crash\n",
                   args.worker_index, args.worker_count);
      return 42;
    }
    enter_worker(args, cfg);
    ModelZoo zoo(cfg);
    zoo.set_shard(args.worker_index, args.worker_count);
    bench.body(zoo);
    finalize_worker(args);
    return 0;
  }

  if (args.warm_only) {
    ModelZoo zoo(cfg);
    if (bench.warm) bench.warm(zoo);
    else bench.body(zoo);
    return 0;
  }

  if (args.shards <= 1) {
    ModelZoo zoo(cfg);
    bench.body(zoo);
    return 0;
  }

  // Driver. Train/publish shared models through the cache exactly once
  // (workers would otherwise race to train the same classifier K times),
  // then fan out, merge, and replay.
  std::printf("[shard] %s: warming the shared model cache before a %zu-way "
              "fan-out\n",
              bench.name.c_str(), args.shards);
  std::fflush(stdout);
  {
    ModelZoo zoo(cfg);
    if (bench.warm) bench.warm(zoo);
    else bench.body(zoo);
  }

  DriverOptions o;
  o.bench_name = bench.name;
  o.shards = args.shards;
  o.command.push_back(self_exe(argc > 0 ? argv[0] : nullptr));
  o.command.insert(o.command.end(), args.passthrough.begin(),
                   args.passthrough.end());
  if (!args.staging.empty()) o.staging_root = args.staging;
  o.cache_dir = cfg.cache_dir;
  o.replay = [&bench, &cfg] {
    ModelZoo zoo(cfg);
    bench.body(zoo);
  };
  const ShardReport rep = run_shard_driver(o);
  return rep.all_ok() ? 0 : 1;
}

}  // namespace adv::core
