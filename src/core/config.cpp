#include "core/config.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace adv::core {

const char* to_string(DatasetId id) {
  return id == DatasetId::Mnist ? "mnist" : "cifar";
}

namespace {

std::vector<float> arange(float lo, float hi, float step) {
  std::vector<float> out;
  for (float v = lo; v <= hi + 1e-6f; v += step) out.push_back(v);
  return out;
}

}  // namespace

std::uint64_t ScaleConfig::config_hash() const {
  std::uint64_t h = 0xCBF2'9CE4'8422'2325ull;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 0x0000'0100'0000'01B3ull;  // FNV prime
    }
  };
  const auto fold_f = [&fold](float v) { fold(std::bit_cast<std::uint32_t>(v)); };
  fold(train_count);
  fold(val_count);
  fold(test_count);
  fold(classifier_epochs);
  fold(ae_epochs);
  fold(batch_size);
  fold(attack_count);
  fold(attack_iterations);
  fold(binary_search_steps);
  fold_f(attack_lr);
  fold_f(initial_c);
  fold_f(initial_c_cifar);
  fold(default_filters_mnist);
  fold(default_filters_cifar);
  fold(wide_filters);
  fold_f(detector_fpr);
  fold(seed);
  return h;
}

std::string ScaleConfig::cache_tag() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(config_hash()));
  return tag() + "-" + buf;
}

ScaleConfig scale_from_env() {
  ScaleConfig cfg;
  const char* scale = std::getenv("REPRO_SCALE");
  cfg.full = scale && std::string(scale) == "full";
  cfg.smoke = scale && std::string(scale) == "smoke";
  if (scale && std::string(scale) != "full" && std::string(scale) != "fast" &&
      std::string(scale) != "smoke") {
    throw std::runtime_error("REPRO_SCALE must be 'smoke', 'fast' or 'full'");
  }
  cfg.mnist_kappas = {0.0f, 5.0f, 10.0f, 20.0f, 40.0f};
  cfg.cifar_kappas = {0.0f, 10.0f, 20.0f, 30.0f, 50.0f};
  if (cfg.smoke) {
    cfg.train_count = 400;
    cfg.val_count = 120;
    cfg.test_count = 240;
    cfg.classifier_epochs = 2;
    cfg.ae_epochs = 4;
    cfg.batch_size = 32;
    cfg.attack_count = 16;
    cfg.attack_iterations = 24;
    cfg.binary_search_steps = 2;
    cfg.wide_filters = 6;
    cfg.mnist_kappas = {0.0f, 10.0f, 40.0f};
    cfg.cifar_kappas = {0.0f, 20.0f, 50.0f};
  }
  if (cfg.full) {
    cfg.train_count = 8000;
    cfg.val_count = 1000;
    cfg.test_count = 2000;
    cfg.classifier_epochs = 12;
    cfg.ae_epochs = 60;
    cfg.attack_count = 1000;
    cfg.attack_iterations = 1000;
    cfg.binary_search_steps = 9;
    cfg.initial_c = 1e-3f;  // paper setting; 9 steps reach large c anyway
    cfg.wide_filters = 256;
    cfg.detector_fpr = 0.005f;
    cfg.mnist_kappas = arange(0.0f, 40.0f, 5.0f);
    cfg.cifar_kappas = arange(0.0f, 100.0f, 5.0f);
  }
  if (const char* dir = std::getenv("REPRO_CACHE_DIR")) {
    cfg.cache_dir = dir;
  }
  return cfg;
}

}  // namespace adv::core
