#include "nn/structural.hpp"

#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace adv::nn {

Tensor Flatten::forward(const Tensor& input, Mode /*mode*/) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2, got " +
                                input.shape_string());
  }
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (grad_output.numel() != input_shape_.numel()) {
    throw std::invalid_argument("Flatten::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  return grad_output.reshaped(input_shape_);
}

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, Mode mode) {
  last_training_ = is_training(mode);
  if (!last_training_ || rate_ == 0.0f) return input;
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  mask_ = Tensor(input.shape());
  Tensor out = input;
  float* m = mask_.data();
  float* o = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    const bool keep_unit = rng_.bernoulli(keep);
    m[i] = keep_unit ? scale : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || rate_ == 0.0f) return grad_output;
  Tensor grad = grad_output;
  mul_inplace(grad, mask_);
  return grad;
}

}  // namespace adv::nn
