// Forward-pass mode shared by every layer and model.
#pragma once

namespace adv::nn {

/// Train enables train-only behaviour (dropout masks); Eval is the
/// deterministic inference path. Attacks differentiate in Eval — backward
/// caches are populated in Train and Eval, so those forward passes remain
/// differentiable. Infer is Eval minus the backward caches: numerically
/// identical outputs, but layers skip the input/output caching copies, so
/// calling backward() after an Infer forward is undefined. Use it for
/// forward-only passes (candidate scoring inside attacks, prediction,
/// detector scoring).
enum class Mode { Train, Eval, Infer };

inline constexpr bool is_training(Mode mode) { return mode == Mode::Train; }

/// True when a backward() may follow this forward — layers must cache.
inline constexpr bool caches_for_backward(Mode mode) {
  return mode != Mode::Infer;
}

}  // namespace adv::nn
