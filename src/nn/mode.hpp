// Forward-pass mode shared by every layer and model.
#pragma once

namespace adv::nn {

/// Train enables train-only behaviour (dropout masks); Eval is the
/// deterministic inference path. Attacks always run Eval — backward
/// caches are populated in both modes, so eval-mode forward passes remain
/// differentiable.
enum class Mode { Train, Eval };

inline constexpr bool is_training(Mode mode) { return mode == Mode::Train; }

}  // namespace adv::nn
