// 2-D convolution (NCHW) implemented as im2col + GEMM.
//
// Forward / backward parallelize over batch samples (each sample is
// independent); parameter gradients are accumulated into per-chunk scratch
// buffers and reduced in chunk order, keeping results deterministic under
// any thread count.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace adv::nn {

struct Conv2dConfig {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;  // symmetric zero padding; kernel/2 gives "same"
};

class Conv2d final : public Layer {
 public:
  Conv2d(const Conv2dConfig& cfg, Rng& rng);

  /// Convenience for the common 3x3 "same" convolution used by MagNet.
  static Conv2dConfig same(std::size_t in_c, std::size_t out_c,
                           std::size_t kernel = 3) {
    return Conv2dConfig{in_c, out_c, kernel, 1, kernel / 2};
  }

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<const Tensor*> parameters() const override {
    return {&weight_, &bias_};
  }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string name() const override { return "Conv2d"; }

  const Conv2dConfig& config() const { return cfg_; }
  std::size_t output_dim(std::size_t in_dim) const {
    return (in_dim + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
  }

 private:
  Conv2dConfig cfg_;
  Tensor weight_;       // [out_c, in_c * k * k]
  Tensor bias_;         // [out_c]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor input_;        // cached batch for backward (skipped in Mode::Infer)
  // Per-chunk parameter-gradient scratch, kept across backward calls so the
  // hot attack loop does not reallocate it; zeroed at the top of each call.
  std::vector<Tensor> dw_parts_;
  std::vector<Tensor> db_parts_;
};

/// Unpacks one sample [C, H, W] (within a batch tensor) into a column
/// buffer col[C*k*k, out_h*out_w]. Exposed for tests.
void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* col);

/// Adjoint of im2col: accumulates col back into img (+=).
void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* img);

}  // namespace adv::nn
