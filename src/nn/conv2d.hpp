// 2-D convolution (NCHW) with two interchangeable kernels:
//
//   * a direct-convolution path for the small stride-1 shapes that
//     dominate the MagNet models (3x3 "same" convs), streaming taps out
//     of a zero-padded sample copy through the register-tiled microkernel
//     in tensor/conv_micro.hpp — no im2col matrix is materialized, and a
//     following ReLU/Sigmoid can be fused into the store epilogue
//     (forward_fused, driven by the Sequential peephole);
//   * the original im2col + GEMM path for everything else (strided,
//     oversized shapes), and as the forced A/B baseline.
//
// The path is chosen per shape at construction (uses_direct()) and both
// produce bitwise-identical outputs and gradients — the direct kernels
// replicate the GEMM's per-element accumulation order (see conv_micro.hpp
// and DESIGN.md section 16). The split is observable via adv::obs:
// per-shape "conv/<shape>/{direct,im2col}[_bwd]" timers and global
// "conv/direct_hits" / "conv/im2col_fallback" counters.
//
// Forward / backward parallelize over batch samples (each sample is
// independent); parameter gradients are accumulated into per-chunk scratch
// buffers and reduced in chunk order, keeping results deterministic under
// any thread count.
#pragma once

#include <string>

#include "nn/layer.hpp"
#include "obs/metrics.hpp"
#include "tensor/conv_micro.hpp"
#include "tensor/rng.hpp"

namespace adv {
class ThreadPool;
}  // namespace adv

namespace adv::nn {

struct Conv2dConfig {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;  // symmetric zero padding; kernel/2 gives "same"
};

class Conv2d final : public Layer {
 public:
  /// Throws std::invalid_argument for degenerate configs (zero channels,
  /// kernel or stride) instead of wrapping size_t arithmetic later.
  Conv2d(const Conv2dConfig& cfg, Rng& rng);

  /// Convenience for the common 3x3 "same" convolution used by MagNet.
  static Conv2dConfig same(std::size_t in_c, std::size_t out_c,
                           std::size_t kernel = 3) {
    return Conv2dConfig{in_c, out_c, kernel, 1, kernel / 2};
  }

  Tensor forward(const Tensor& input, Mode mode) override;

  /// forward() with an activation fused into the conv epilogue, bitwise
  /// equal to running that activation layer on forward()'s output. The
  /// Sequential peephole calls this for Conv->ReLU/Sigmoid pairs; the
  /// activation layer then adopts the fused output as its backward cache.
  /// Works on both paths (the im2col fallback applies the epilogue as a
  /// post-pass), so fusion never depends on path selection.
  Tensor forward_fused(const Tensor& input, Mode mode, conv::Epilogue epi);

  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<const Tensor*> parameters() const override {
    return {&weight_, &bias_};
  }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string name() const override { return "Conv2d"; }

  const Conv2dConfig& config() const { return cfg_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

  /// Output size along one spatial dim. Throws std::invalid_argument when
  /// the kernel exceeds the padded input (the subtraction would wrap).
  std::size_t output_dim(std::size_t in_dim) const;

  /// True when forward/backward run the direct kernels for this shape.
  bool uses_direct() const { return direct_ok_ && !force_im2col_; }

  /// Forces the im2col+GEMM path regardless of shape — the A/B baseline
  /// for identity tests and benchmarks.
  void set_force_im2col(bool force) { force_im2col_ = force; }

  /// Overrides the pool used by forward/backward (nullptr restores the
  /// global pool). Test seam: ADV_THREADS pins only the global pool, so
  /// thread-count identity tests pass dedicated pools instead.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  Tensor forward_impl(const Tensor& input, Mode mode, conv::Epilogue epi);
  void forward_direct(const Tensor& input, Tensor& out, std::size_t h,
                      std::size_t w, conv::Epilogue epi, ThreadPool& pool);
  void forward_im2col(const Tensor& input, Tensor& out, std::size_t h,
                      std::size_t w, conv::Epilogue epi, ThreadPool& pool);
  // Resolves the per-shape path timer (nullptr when obs is off) and, on
  // forward, bumps the global path-split counters.
  obs::Timer* observe_path(bool direct, bool forward);

  Conv2dConfig cfg_;
  Tensor weight_;       // [out_c, in_c * k * k]
  Tensor bias_;         // [out_c]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor input_;        // cached batch for backward (skipped in Mode::Infer)
  // Per-chunk parameter-gradient scratch, kept across backward calls so the
  // hot attack loop does not reallocate it; zeroed at the top of each call.
  std::vector<Tensor> dw_parts_;
  std::vector<Tensor> db_parts_;
  bool direct_ok_ = false;       // shape covered by the direct kernels
  bool force_im2col_ = false;    // A/B override
  ThreadPool* pool_ = nullptr;   // test seam; nullptr = global pool
  std::string obs_key_;          // "conv/c<in>o<out>k<k>s<s>p<p>"
  // Lazily resolved per-shape timers: [0] = direct, [1] = im2col.
  obs::Timer* fwd_timers_[2] = {nullptr, nullptr};
  obs::Timer* bwd_timers_[2] = {nullptr, nullptr};
};

/// Unpacks one sample [C, H, W] (within a batch tensor) into a column
/// buffer col[C*k*k, out_h*out_w]. Exposed for tests.
void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* col);

/// Adjoint of im2col: accumulates col back into img (+=).
void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* img);

}  // namespace adv::nn
