// Sequential: an ordered stack of layers with whole-model forward,
// backward (including gradient w.r.t. the input) and weight serialization.
#pragma once

#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "obs/metrics.hpp"

namespace adv::nn {

class Sequential {
 public:
  Sequential() = default;

  // Move-only: layers hold caches and parameter storage.
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Constructs a layer in place and returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Moves every layer of `tail` (with its parameters and state) onto the
  /// end of this model, leaving `tail` empty. Used to compose models,
  /// e.g. a gray-box attack target classifier(reformer(x)).
  void append(Sequential&& tail) {
    for (auto& layer : tail.layers_) layers_.push_back(std::move(layer));
    tail.layers_.clear();
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Forward pass over all layers. Caches are populated, so backward() may
  /// follow regardless of `mode` (attacks differentiate in eval mode).
  Tensor forward(const Tensor& input, Mode mode = Mode::Eval);

  /// Transitional overload for out-of-tree callers still passing the old
  /// boolean `training` flag; will be removed one release after the
  /// nn::Mode introduction.
  [[deprecated("pass nn::Mode::Train / nn::Mode::Eval instead of a bool")]]
  Tensor forward(const Tensor& input, bool training) {
    return forward(input, training ? Mode::Train : Mode::Eval);
  }

  /// Backpropagates d(loss)/d(output) through every layer, accumulating
  /// parameter gradients, and returns d(loss)/d(input).
  Tensor backward(const Tensor& grad_output);

  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_grad();
  std::size_t parameter_count() const;

  /// Saves all parameter tensors in layer order.
  void save(const std::filesystem::path& path) const;

  /// Loads parameters saved by save(). Throws std::runtime_error if the
  /// file's tensor count or any shape disagrees with this architecture.
  void load(const std::filesystem::path& path);

 private:
  // Global-registry timer handles for "layer/<i>:<name>/forward|backward",
  // resolved lazily on the first instrumented pass and rebuilt when the
  // layer count changes (emplace/add/append). Identical architectures
  // share keys, so per-layer metrics aggregate across model instances.
  struct LayerTimers {
    obs::Timer* forward;
    obs::Timer* backward;
  };
  void sync_obs_timers();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<LayerTimers> obs_timers_;
};

}  // namespace adv::nn
