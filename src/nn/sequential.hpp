// Sequential: an ordered stack of layers with whole-model forward,
// backward (including gradient w.r.t. the input) and weight serialization.
//
// Each model owns a Workspace (an arena of reusable buffers, see
// tensor/workspace.hpp) that is shared with its layers: intermediate
// activations/gradients are released back to the arena as soon as the
// next layer has consumed them, so steady-state passes over a fixed batch
// shape allocate nothing. set_workspace_enabled(false) restores the
// allocate-per-pass profile (the benchmark baseline); outputs are bitwise
// identical either way.
#pragma once

#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "obs/metrics.hpp"
#include "tensor/conv_micro.hpp"

namespace adv::nn {

class Conv2d;
class ReLU;
class Sigmoid;

class Sequential {
 public:
  Sequential() : ws_(std::make_unique<Workspace>()) {}

  // Move-only: layers hold caches and parameter storage.
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Constructs a layer in place and returns a reference to it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Moves every layer of `tail` (with its parameters and state) onto the
  /// end of this model, leaving `tail` empty. Used to compose models,
  /// e.g. a gray-box attack target classifier(reformer(x)). Moved layers
  /// are re-pointed at this model's workspace on the next pass.
  void append(Sequential&& tail) {
    for (auto& layer : tail.layers_) layers_.push_back(std::move(layer));
    tail.layers_.clear();
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Forward pass over all layers. Train/Eval populate backward caches
  /// (attacks differentiate in eval mode); Infer skips them — see the
  /// caching contract in layer.hpp.
  Tensor forward(const Tensor& input, Mode mode = Mode::Eval);

  /// Transitional overload for out-of-tree callers still passing the old
  /// boolean `training` flag; will be removed one release after the
  /// nn::Mode introduction.
  [[deprecated("pass nn::Mode::Train / nn::Mode::Eval instead of a bool")]]
  Tensor forward(const Tensor& input, bool training) {
    return forward(input, training ? Mode::Train : Mode::Eval);
  }

  /// Backpropagates d(loss)/d(output) through every layer, accumulating
  /// parameter gradients, and returns d(loss)/d(input). May be called
  /// repeatedly after one caching forward (layer caches are read-only
  /// during backward).
  Tensor backward(const Tensor& grad_output);

  std::vector<Tensor*> parameters();
  std::vector<const Tensor*> parameters() const;
  std::vector<Tensor*> gradients();
  void zero_grad();
  std::size_t parameter_count() const;

  /// This model's buffer arena (always present; shared with the layers).
  Workspace& workspace() { return *ws_; }
  const Workspace& workspace() const { return *ws_; }

  /// Toggles buffer recycling for this model (on by default). Off, every
  /// pass allocates fresh tensors — the A/B baseline for benchmarks.
  void set_workspace_enabled(bool on) { ws_->set_enabled(on); }

  /// Toggles the Conv->ReLU/Sigmoid peephole (on by default): detected
  /// pairs run as one Conv2d::forward_fused call with the activation
  /// applied in the conv store epilogue, and the activation layer adopts
  /// the fused output as its backward cache. Off restores one forward
  /// call per layer — the A/B baseline; outputs and gradients are
  /// bitwise identical either way.
  void set_fusion_enabled(bool on) { fusion_enabled_ = on; }

  /// Saves all parameter tensors in layer order.
  void save(const std::filesystem::path& path) const;

  /// Loads parameters saved by save(). Throws std::runtime_error if the
  /// file's tensor count or any shape disagrees with this architecture.
  void load(const std::filesystem::path& path);

 private:
  // Global-registry timer handles for "layer/<i>:<name>/forward|backward",
  // resolved lazily on the first instrumented pass and rebuilt when the
  // layer count changes (emplace/add/append). Identical architectures
  // share keys, so per-layer metrics aggregate across model instances.
  struct LayerTimers {
    obs::Timer* forward;
    obs::Timer* backward;
  };
  void sync_obs_timers();
  // Re-points every layer at ws_ when the layer list changed since the
  // last pass (same size-based trigger as the timers).
  void sync_workspace();
  // Fusion plan entry for layer i: when epi != None, layer i is a Conv2d
  // whose successor is the recorded ReLU/Sigmoid and the forward loop
  // executes both as one fused step (skipping the activation layer).
  struct FuseStep {
    conv::Epilogue epi = conv::Epilogue::None;
    Conv2d* conv = nullptr;
    ReLU* relu = nullptr;
    Sigmoid* sigmoid = nullptr;
  };
  // Rebuilds the fusion plan when the layer list changed since the last
  // pass (same size-based trigger as the timers/workspace syncs).
  void sync_fusion();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<LayerTimers> obs_timers_;
  std::vector<FuseStep> fuse_;
  // unique_ptr keeps the arena's address stable across Sequential moves
  // (layers hold a raw pointer to it).
  std::unique_ptr<Workspace> ws_;
  std::size_t ws_synced_layers_ = 0;
  std::size_t fuse_synced_layers_ = 0;
  bool fusion_enabled_ = true;
};

}  // namespace adv::nn
