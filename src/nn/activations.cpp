#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace adv::nn {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* who) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(who) +
                                "::backward: grad shape " + b.shape_string() +
                                " does not match forward input " +
                                a.shape_string());
  }
}

}  // namespace

Tensor ReLU::forward(const Tensor& input, Mode /*mode*/) {
  input_ = input;
  Tensor out = input;
  for (float& v : out.values()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require_same_shape(input_, grad_output, "ReLU");
  Tensor grad = grad_output;
  const float* x = input_.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input, Mode /*mode*/) {
  input_ = input;
  Tensor out = input;
  for (float& v : out.values()) {
    if (v < 0.0f) v *= negative_slope_;
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  require_same_shape(input_, grad_output, "LeakyReLU");
  Tensor grad = grad_output;
  const float* x = input_.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    if (x[i] < 0.0f) g[i] *= negative_slope_;
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, Mode /*mode*/) {
  Tensor out = input;
  for (float& v : out.values()) v = 1.0f / (1.0f + std::exp(-v));
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  require_same_shape(output_, grad_output, "Sigmoid");
  Tensor grad = grad_output;
  const float* y = output_.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] *= y[i] * (1.0f - y[i]);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, Mode /*mode*/) {
  Tensor out = input;
  for (float& v : out.values()) v = std::tanh(v);
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  require_same_shape(output_, grad_output, "Tanh");
  Tensor grad = grad_output;
  const float* y = output_.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] *= 1.0f - y[i] * y[i];
  }
  return grad;
}

}  // namespace adv::nn
