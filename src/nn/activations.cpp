#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace adv::nn {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* who) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(who) +
                                "::backward: grad shape " + b.shape_string() +
                                " does not match forward input " +
                                a.shape_string());
  }
}

}  // namespace

Tensor ReLU::forward(const Tensor& input, Mode mode) {
  if (caches_for_backward(mode)) input_ = input;
  Tensor out = make_buffer(input.shape());
  const float* x = input.data();
  float* o = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    o[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return out;
}

void ReLU::adopt_fused(const Tensor& fused_out, Mode mode) {
  // The cache must be a copy: the fused output buffer travels on through
  // the model and may be recycled by the workspace.
  if (caches_for_backward(mode)) input_ = fused_out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require_same_shape(input_, grad_output, "ReLU");
  Tensor grad = make_buffer(grad_output.shape());
  const float* x = input_.data();
  const float* gin = grad_output.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] = x[i] <= 0.0f ? 0.0f : gin[i];
  }
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input, Mode mode) {
  if (caches_for_backward(mode)) input_ = input;
  Tensor out = make_buffer(input.shape());
  const float* x = input.data();
  float* o = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    o[i] = x[i] < 0.0f ? x[i] * negative_slope_ : x[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  require_same_shape(input_, grad_output, "LeakyReLU");
  Tensor grad = make_buffer(grad_output.shape());
  const float* x = input_.data();
  const float* gin = grad_output.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] = x[i] < 0.0f ? gin[i] * negative_slope_ : gin[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, Mode mode) {
  Tensor out = make_buffer(input.shape());
  const float* x = input.data();
  float* o = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    o[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
  // The cache is the *output* (sigmoid' = y(1-y)), so the copy cannot be
  // skipped by handing out the buffer itself — recycling may overwrite it.
  if (caches_for_backward(mode)) output_ = out;
  return out;
}

void Sigmoid::adopt_fused(const Tensor& fused_out, Mode mode) {
  if (caches_for_backward(mode)) output_ = fused_out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  require_same_shape(output_, grad_output, "Sigmoid");
  Tensor grad = make_buffer(grad_output.shape());
  const float* y = output_.data();
  const float* gin = grad_output.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] = gin[i] * y[i] * (1.0f - y[i]);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, Mode mode) {
  Tensor out = make_buffer(input.shape());
  const float* x = input.data();
  float* o = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    o[i] = std::tanh(x[i]);
  }
  if (caches_for_backward(mode)) output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  require_same_shape(output_, grad_output, "Tanh");
  Tensor grad = make_buffer(grad_output.shape());
  const float* y = output_.data();
  const float* gin = grad_output.data();
  float* g = grad.data();
  for (std::size_t i = 0, n = grad.numel(); i < n; ++i) {
    g[i] = gin[i] * (1.0f - y[i] * y[i]);
  }
  return grad;
}

}  // namespace adv::nn
