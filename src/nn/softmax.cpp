#include "nn/softmax.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adv::nn {

Tensor softmax_rows(const Tensor& logits, float temperature) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: expected [N, K], got " +
                                logits.shape_string());
  }
  if (temperature <= 0.0f) {
    throw std::invalid_argument("softmax_rows: temperature must be > 0");
  }
  const std::size_t n = logits.dim(0), k = logits.dim(1);
  Tensor out({n, k});
  for (std::size_t r = 0; r < n; ++r) {
    const float* src = logits.data() + r * k;
    float* dst = out.data() + r * k;
    float mx = src[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, src[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      dst[j] = std::exp((src[j] - mx) / temperature);
      denom += dst[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < k; ++j) dst[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("log_softmax_rows: expected [N, K], got " +
                                logits.shape_string());
  }
  const std::size_t n = logits.dim(0), k = logits.dim(1);
  Tensor out({n, k});
  for (std::size_t r = 0; r < n; ++r) {
    const float* src = logits.data() + r * k;
    float* dst = out.data() + r * k;
    float mx = src[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, src[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) denom += std::exp(src[j] - mx);
    const float log_denom = static_cast<float>(std::log(denom));
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j] - mx - log_denom;
  }
  return out;
}

}  // namespace adv::nn
