// Structural layers: Flatten (NCHW -> [N, C*H*W]) and Dropout.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace adv::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Inverted dropout: activations are scaled by 1/(1-rate) at train time so
/// eval needs no rescaling. Identity (and differentiable) in eval mode, so
/// attacks see the deterministic network.
class Dropout final : public Layer {
 public:
  Dropout(float rate, std::uint64_t seed);
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  float rate_;
  Rng rng_;
  Tensor mask_;       // empty when the last forward was eval-mode
  bool last_training_ = false;
};

}  // namespace adv::nn
