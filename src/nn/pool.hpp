// Spatial pooling layers (NCHW). Window == stride (non-overlapping), which
// is all the paper's architectures use (2x2 pools).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace adv::nn {

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t window = 2) : window_(window) {}
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }
  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  Shape input_shape_;
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2) : window_(window) {}
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }
  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

/// Nearest-neighbour upsampling by an integer factor (MagNet decoders).
class Upsample2d final : public Layer {
 public:
  explicit Upsample2d(std::size_t factor = 2) : factor_(factor) {}
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Upsample2d"; }
  std::size_t factor() const { return factor_; }

 private:
  std::size_t factor_;
  Shape input_shape_;
};

}  // namespace adv::nn
