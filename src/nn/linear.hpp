// Fully connected layer: y = x W + b, with x [N, in], W [in, out], b [out].
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace adv::nn {

class Linear final : public Layer {
 public:
  /// Initializes W with Glorot-uniform and b with zeros (Keras defaults,
  /// matching the training stack the paper used).
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<const Tensor*> parameters() const override {
    return {&weight_, &bias_};
  }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [in, out]
  Tensor bias_;         // [out]
  Tensor grad_weight_;  // [in, out]
  Tensor grad_bias_;    // [out]
  Tensor input_;        // cached [N, in]
};

}  // namespace adv::nn
