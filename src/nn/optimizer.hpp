// First-order optimizers: SGD with momentum and Adam (the paper's training
// stack used Keras' Adam defaults).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace adv::nn {

class Optimizer {
 public:
  /// `params` and `grads` must be aligned index-by-index and outlive the
  /// optimizer (they point into a Sequential's layers).
  Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void step() = 0;

  void zero_grad();

  /// Learning rate, shared across optimizers so generic code (the
  /// Trainer's divergence backoff halves it) can adjust any of them.
  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 protected:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  float lr_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
      float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
       float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;

 private:
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

}  // namespace adv::nn
