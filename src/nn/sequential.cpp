#include "nn/sequential.hpp"

#include <stdexcept>

#include "tensor/serialize.hpp"

namespace adv::nn {

void Sequential::sync_obs_timers() {
  if (obs_timers_.size() == layers_.size()) return;
  auto& reg = obs::MetricsRegistry::global();
  obs_timers_.clear();
  obs_timers_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::string stem =
        "layer/" + std::to_string(i) + ":" + layers_[i]->name();
    obs_timers_.push_back(
        {&reg.timer(stem + "/forward"), &reg.timer(stem + "/backward")});
  }
}

Tensor Sequential::forward(const Tensor& input, Mode mode) {
  Tensor x = input;
  if (obs::enabled()) {
    sync_obs_timers();
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("model/forward_calls");
    calls.add(1);
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      obs::ScopedTimer t(obs_timers_[i].forward);
      x = layers_[i]->forward(x, mode);
    }
  } else {
    for (auto& layer : layers_) x = layer->forward(x, mode);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  if (obs::enabled()) {
    sync_obs_timers();
    // One backward call == one gradient query: the attack metrics derive
    // their gradient-query counts from this counter's deltas.
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("model/backward_calls");
    calls.add(1);
    for (std::size_t i = layers_.size(); i-- > 0;) {
      obs::ScopedTimer t(obs_timers_[i].backward);
      g = layers_[i]->backward(g);
    }
  } else {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
  }
  return g;
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      n += p->numel();
    }
  }
  return n;
}

void Sequential::save(const std::filesystem::path& path) const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).parameters()) {
      params.push_back(*p);
    }
  }
  save_tensors(path, params);
}

void Sequential::load(const std::filesystem::path& path) {
  const std::vector<Tensor> stored = load_tensors(path);
  std::vector<Tensor*> params = parameters();
  if (stored.size() != params.size()) {
    throw std::runtime_error(
        "Sequential::load: " + path.string() + " holds " +
        std::to_string(stored.size()) + " tensors, architecture expects " +
        std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!stored[i].same_shape(*params[i])) {
      throw std::runtime_error("Sequential::load: tensor " +
                               std::to_string(i) + " shape " +
                               stored[i].shape_string() + " != expected " +
                               params[i]->shape_string());
    }
    *params[i] = stored[i];
  }
}

}  // namespace adv::nn
