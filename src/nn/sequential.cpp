#include "nn/sequential.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "tensor/serialize.hpp"

namespace adv::nn {

void Sequential::sync_obs_timers() {
  if (obs_timers_.size() == layers_.size()) return;
  auto& reg = obs::MetricsRegistry::global();
  obs_timers_.clear();
  obs_timers_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::string stem =
        "layer/" + std::to_string(i) + ":" + layers_[i]->name();
    obs_timers_.push_back(
        {&reg.timer(stem + "/forward"), &reg.timer(stem + "/backward")});
  }
}

void Sequential::sync_workspace() {
  if (!ws_) ws_ = std::make_unique<Workspace>();  // moved-from safety
  if (ws_synced_layers_ == layers_.size()) return;
  for (auto& layer : layers_) layer->set_workspace(ws_.get());
  ws_synced_layers_ = layers_.size();
}

void Sequential::sync_fusion() {
  if (fuse_synced_layers_ == layers_.size()) return;
  fuse_.assign(layers_.size(), FuseStep{});
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    auto* conv = dynamic_cast<Conv2d*>(layers_[i].get());
    if (!conv) continue;
    if (auto* relu = dynamic_cast<ReLU*>(layers_[i + 1].get())) {
      fuse_[i] = {conv::Epilogue::ReLU, conv, relu, nullptr};
    } else if (auto* sig = dynamic_cast<Sigmoid*>(layers_[i + 1].get())) {
      fuse_[i] = {conv::Epilogue::Sigmoid, conv, nullptr, sig};
    }
  }
  fuse_synced_layers_ = layers_.size();
}

Tensor Sequential::forward(const Tensor& input, Mode mode) {
  sync_workspace();
  sync_fusion();
  if (layers_.empty()) return input;
  const bool instr = obs::enabled();
  if (instr) {
    sync_obs_timers();
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("model/forward_calls");
    calls.add(1);
  }
  // Fused Conv->activation steps consume two layers per iteration: the
  // conv applies the activation in its store epilogue and the activation
  // layer adopts the result as its backward cache (its own forward never
  // runs, so its per-layer timer stays silent; the conv's timer covers
  // the fused op).
  Tensor x;
  bool have_x = false;
  for (std::size_t i = 0; i < layers_.size();) {
    const Tensor& in = have_x ? x : input;
    const FuseStep& f = fuse_[i];
    const bool fused = fusion_enabled_ && f.epi != conv::Epilogue::None;
    Tensor next;
    {
      obs::ScopedTimer t(instr ? obs_timers_[i].forward : nullptr);
      next = fused ? f.conv->forward_fused(in, mode, f.epi)
                   : layers_[i]->forward(in, mode);
    }
    if (fused) {
      if (f.relu) {
        f.relu->adopt_fused(next, mode);
      } else {
        f.sigmoid->adopt_fused(next, mode);
      }
    }
    if (have_x) ws_->release(std::move(x));  // consumed by this step
    x = std::move(next);
    have_x = true;
    i += fused ? 2 : 1;
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  sync_workspace();
  if (layers_.empty()) return grad_output;
  if (obs::enabled()) {
    sync_obs_timers();
    // One backward call == one gradient query: the attack metrics derive
    // their gradient-query counts from this counter's deltas.
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("model/backward_calls");
    calls.add(1);
    Tensor g;
    {
      obs::ScopedTimer t(obs_timers_.back().backward);
      g = layers_.back()->backward(grad_output);
    }
    for (std::size_t i = layers_.size() - 1; i-- > 0;) {
      obs::ScopedTimer t(obs_timers_[i].backward);
      Tensor next = layers_[i]->backward(g);
      ws_->release(std::move(g));
      g = std::move(next);
    }
    return g;
  }
  Tensor g = layers_.back()->backward(grad_output);
  for (std::size_t i = layers_.size() - 1; i-- > 0;) {
    Tensor next = layers_[i]->backward(g);
    ws_->release(std::move(g));
    g = std::move(next);
  }
  return g;
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<const Tensor*> Sequential::parameters() const {
  std::vector<const Tensor*> out;
  for (const auto& layer : layers_) {
    for (const Tensor* p : std::as_const(*layer).parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const Tensor* p : parameters()) n += p->numel();
  return n;
}

void Sequential::save(const std::filesystem::path& path) const {
  std::vector<Tensor> params;
  for (const Tensor* p : parameters()) params.push_back(*p);
  save_tensors(path, params);
}

void Sequential::load(const std::filesystem::path& path) {
  const std::vector<Tensor> stored = load_tensors(path);
  std::vector<Tensor*> params = parameters();
  if (stored.size() != params.size()) {
    throw std::runtime_error(
        "Sequential::load: " + path.string() + " holds " +
        std::to_string(stored.size()) + " tensors, architecture expects " +
        std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!stored[i].same_shape(*params[i])) {
      throw std::runtime_error("Sequential::load: tensor " +
                               std::to_string(i) + " shape " +
                               stored[i].shape_string() + " != expected " +
                               params[i]->shape_string());
    }
    *params[i] = stored[i];
  }
}

}  // namespace adv::nn
