// Softmax utilities on rank-2 logit tensors [N, K]. Softmax is applied by
// the loss during training and by the MagNet JSD detector at inference
// (with a temperature), so it is a free function rather than a layer.
#pragma once

#include "tensor/tensor.hpp"

namespace adv::nn {

/// Row-wise softmax(logits / temperature). Numerically stabilized by
/// max-subtraction. Throws on rank != 2 or temperature <= 0.
Tensor softmax_rows(const Tensor& logits, float temperature = 1.0f);

/// Row-wise log-softmax (temperature 1).
Tensor log_softmax_rows(const Tensor& logits);

}  // namespace adv::nn
