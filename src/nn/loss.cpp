#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument(
        "SoftmaxCrossEntropy: logits " + logits.shape_string() + " vs " +
        std::to_string(labels.size()) + " labels");
  }
  const std::size_t n = logits.dim(0), k = logits.dim(1);
  const Tensor logp = log_softmax_rows(logits);
  probs_ = logp;
  for (float& v : probs_.values()) v = std::exp(v);
  labels_ = labels;
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= k) {
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    }
    loss -= logp[r * k + static_cast<std::size_t>(y)];
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) {
    throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  }
  const std::size_t n = probs_.dim(0), k = probs_.dim(1);
  Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  float* g = grad.data();
  for (std::size_t r = 0; r < n; ++r) {
    g[r * k + static_cast<std::size_t>(labels_[r])] -= 1.0f;
  }
  for (std::size_t i = 0, m = grad.numel(); i < m; ++i) g[i] *= inv_n;
  return grad;
}

float MseLoss::forward(const Tensor& pred, const Tensor& target) {
  diff_ = sub(pred, target);
  double acc = 0.0;
  for (const float v : diff_.values()) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc / static_cast<double>(diff_.numel()));
}

Tensor MseLoss::backward() const {
  if (diff_.empty()) throw std::logic_error("MseLoss::backward before forward");
  Tensor grad = diff_;
  scale_inplace(grad, 2.0f / static_cast<float>(grad.numel()));
  return grad;
}

float MaeLoss::forward(const Tensor& pred, const Tensor& target) {
  diff_ = sub(pred, target);
  double acc = 0.0;
  for (const float v : diff_.values()) acc += std::fabs(v);
  return static_cast<float>(acc / static_cast<double>(diff_.numel()));
}

Tensor MaeLoss::backward() const {
  if (diff_.empty()) throw std::logic_error("MaeLoss::backward before forward");
  Tensor grad = diff_;
  const float inv = 1.0f / static_cast<float>(grad.numel());
  for (float& v : grad.values()) {
    v = (v > 0.0f ? inv : (v < 0.0f ? -inv : 0.0f));
  }
  return grad;
}

}  // namespace adv::nn
