#include "nn/linear.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace adv::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}),
      grad_weight_({in_features, out_features}),
      grad_bias_({out_features}) {
  glorot_uniform(weight_, in_features, out_features, rng);
}

Tensor Linear::forward(const Tensor& input, Mode mode) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [N, " +
                                std::to_string(in_) + "], got " +
                                input.shape_string());
  }
  if (caches_for_backward(mode)) input_ = input;
  // gemm's prepare_c keeps an already-correctly-shaped c, so the recycled
  // buffer is used in place and fully overwritten.
  Tensor out = make_buffer({input.dim(0), out_});
  gemm(input, weight_, out);
  const std::size_t n = out.dim(0);
  float* o = out.data();
  const float* b = bias_.data();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < out_; ++c) o[r * out_ + c] += b[c];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_ ||
      grad_output.dim(0) != input_.dim(0)) {
    throw std::invalid_argument("Linear::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  // dW += x^T * dy, accumulated straight into the gradient buffer.
  gemm_at_b(input_, grad_output, grad_weight_, {.accumulate = true});
  // db += column sums of dy
  const std::size_t n = grad_output.dim(0);
  const float* g = grad_output.data();
  float* db = grad_bias_.data();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < out_; ++c) db[c] += g[r * out_ + c];
  }
  // dx = dy * W^T
  Tensor dx = make_buffer(input_.shape());
  gemm_a_bt(grad_output, weight_, dx);
  return dx;
}

}  // namespace adv::nn
