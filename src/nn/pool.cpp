#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace adv::nn {
namespace {

void require_poolable(const Tensor& input, std::size_t window,
                      const char* who) {
  if (input.rank() != 4) {
    throw std::invalid_argument(std::string(who) + ": expected NCHW, got " +
                                input.shape_string());
  }
  if (window == 0 || input.dim(2) % window != 0 ||
      input.dim(3) % window != 0) {
    throw std::invalid_argument(std::string(who) + ": window " +
                                std::to_string(window) +
                                " must divide spatial dims of " +
                                input.shape_string());
  }
}

}  // namespace

Tensor AvgPool2d::forward(const Tensor& input, Mode /*mode*/) {
  require_poolable(input, window_, "AvgPool2d");
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = h / window_, ow = w / window_;
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  Tensor out = make_buffer({n, c, oh, ow});
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = input.data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float acc = 0.0f;
        for (std::size_t di = 0; di < window_; ++di) {
          const float* row = src + (i * window_ + di) * w + j * window_;
          for (std::size_t dj = 0; dj < window_; ++dj) acc += row[dj];
        }
        dst[i * ow + j] = acc * inv;
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  const std::size_t n = input_shape_[0], c = input_shape_[1];
  const std::size_t h = input_shape_[2], w = input_shape_[3];
  const std::size_t oh = h / window_, ow = w / window_;
  if (grad_output.shape() != Shape{n, c, oh, ow}) {
    throw std::invalid_argument("AvgPool2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  Tensor grad = make_buffer(input_shape_, /*zeroed=*/true);
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = grad_output.data() + nc * oh * ow;
    float* dst = grad.data() + nc * h * w;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const float g = src[i * ow + j] * inv;
        for (std::size_t di = 0; di < window_; ++di) {
          float* row = dst + (i * window_ + di) * w + j * window_;
          for (std::size_t dj = 0; dj < window_; ++dj) row[dj] += g;
        }
      }
    }
  }
  return grad;
}

Tensor MaxPool2d::forward(const Tensor& input, Mode mode) {
  require_poolable(input, window_, "MaxPool2d");
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = h / window_, ow = w / window_;
  Tensor out = make_buffer({n, c, oh, ow});
  const bool cache = caches_for_backward(mode);
  if (cache) argmax_.assign(out.numel(), 0);
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = input.data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    std::size_t* amax = cache ? argmax_.data() + nc * oh * ow : nullptr;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t di = 0; di < window_; ++di) {
          for (std::size_t dj = 0; dj < window_; ++dj) {
            const std::size_t idx =
                (i * window_ + di) * w + j * window_ + dj;
            if (src[idx] > best) {
              best = src[idx];
              best_idx = idx;
            }
          }
        }
        dst[i * ow + j] = best;
        if (cache) amax[i * ow + j] = nc * h * w + best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (grad_output.numel() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  Tensor grad = make_buffer(input_shape_, /*zeroed=*/true);
  const float* g = grad_output.data();
  float* dst = grad.data();
  for (std::size_t i = 0, m = argmax_.size(); i < m; ++i) {
    dst[argmax_[i]] += g[i];
  }
  return grad;
}

Tensor Upsample2d::forward(const Tensor& input, Mode /*mode*/) {
  if (input.rank() != 4) {
    throw std::invalid_argument("Upsample2d: expected NCHW, got " +
                                input.shape_string());
  }
  input_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = h * factor_, ow = w * factor_;
  Tensor out = make_buffer({n, c, oh, ow});
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = input.data() + nc * h * w;
    float* dst = out.data() + nc * oh * ow;
    for (std::size_t i = 0; i < oh; ++i) {
      const float* srow = src + (i / factor_) * w;
      float* drow = dst + i * ow;
      for (std::size_t j = 0; j < ow; ++j) drow[j] = srow[j / factor_];
    }
  }
  return out;
}

Tensor Upsample2d::backward(const Tensor& grad_output) {
  const std::size_t n = input_shape_[0], c = input_shape_[1];
  const std::size_t h = input_shape_[2], w = input_shape_[3];
  const std::size_t oh = h * factor_, ow = w * factor_;
  if (grad_output.shape() != Shape{n, c, oh, ow}) {
    throw std::invalid_argument("Upsample2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  Tensor grad = make_buffer(input_shape_, /*zeroed=*/true);
  for (std::size_t nc = 0; nc < n * c; ++nc) {
    const float* src = grad_output.data() + nc * oh * ow;
    float* dst = grad.data() + nc * h * w;
    for (std::size_t i = 0; i < oh; ++i) {
      const float* srow = src + i * ow;
      float* drow = dst + (i / factor_) * w;
      for (std::size_t j = 0; j < ow; ++j) drow[j / factor_] += srow[j];
    }
  }
  return grad;
}

}  // namespace adv::nn
