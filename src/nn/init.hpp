// Weight initialization. Glorot (Xavier) uniform matches the Keras
// defaults used by the original MagNet / EAD training stacks.
#pragma once

#include <cmath>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace adv::nn {

/// Fills `w` with U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
inline void glorot_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                           Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : w.values()) v = rng.uniform_f(-limit, limit);
}

}  // namespace adv::nn
