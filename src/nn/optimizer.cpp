#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace adv::nn {

Optimizer::Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads,
                     float lr)
    : params_(std::move(params)), grads_(std::move(grads)), lr_(lr) {
  if (params_.size() != grads_.size()) {
    throw std::invalid_argument("Optimizer: params/grads size mismatch");
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i]->same_shape(*grads_[i])) {
      throw std::invalid_argument("Optimizer: param/grad shape mismatch at " +
                                  std::to_string(i));
    }
  }
}

void Optimizer::zero_grad() {
  for (Tensor* g : grads_) g->fill(0.0f);
}

Sgd::Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
         float momentum)
    : Optimizer(std::move(params), std::move(grads), lr),
      momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Tensor* p : params_) velocity_.emplace_back(p->shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    float* v = velocity_[i].data();
    for (std::size_t j = 0, n = params_[i]->numel(); j < n; ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      p[j] += v[j];
    }
  }
}

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
           float beta1, float beta2, float eps)
    : Optimizer(std::move(params), std::move(grads), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor* p : params_) {
    m_.emplace_back(p->shape());
    v_.emplace_back(p->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float alpha = lr_ * std::sqrt(bc2) / bc1;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* p = params_[i]->data();
    const float* g = grads_[i]->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0, n = params_[i]->numel(); j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      p[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

}  // namespace adv::nn
