#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/thread_pool.hpp"

namespace adv::nn {

void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* col) {
  const std::size_t out_h = (height + 2 * padding - kernel) / stride + 1;
  const std::size_t out_w = (width + 2 * padding - kernel) / stride + 1;
  const std::size_t plane = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* src = img + c * height * width;
    for (std::size_t ki = 0; ki < kernel; ++ki) {
      for (std::size_t kj = 0; kj < kernel; ++kj, ++row) {
        float* dst = col + row * plane;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          // ih = oh*stride + ki - padding, as signed arithmetic.
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * stride) +
                                    static_cast<std::ptrdiff_t>(ki) -
                                    static_cast<std::ptrdiff_t>(padding);
          float* drow = dst + oh * out_w;
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(height)) {
            std::memset(drow, 0, out_w * sizeof(float));
            continue;
          }
          const float* srow = src + static_cast<std::size_t>(ih) * width;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride) +
                static_cast<std::ptrdiff_t>(kj) -
                static_cast<std::ptrdiff_t>(padding);
            drow[ow] = (iw < 0 || iw >= static_cast<std::ptrdiff_t>(width))
                           ? 0.0f
                           : srow[static_cast<std::size_t>(iw)];
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* img) {
  const std::size_t out_h = (height + 2 * padding - kernel) / stride + 1;
  const std::size_t out_w = (width + 2 * padding - kernel) / stride + 1;
  const std::size_t plane = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    float* dst = img + c * height * width;
    for (std::size_t ki = 0; ki < kernel; ++ki) {
      for (std::size_t kj = 0; kj < kernel; ++kj, ++row) {
        const float* src = col + row * plane;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * stride) +
                                    static_cast<std::ptrdiff_t>(ki) -
                                    static_cast<std::ptrdiff_t>(padding);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(height)) continue;
          const float* srow = src + oh * out_w;
          float* drow = dst + static_cast<std::size_t>(ih) * width;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride) +
                static_cast<std::ptrdiff_t>(kj) -
                static_cast<std::ptrdiff_t>(padding);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(width)) continue;
            drow[static_cast<std::size_t>(iw)] += srow[ow];
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(const Conv2dConfig& cfg, Rng& rng)
    : cfg_(cfg),
      weight_({cfg.out_channels, cfg.in_channels * cfg.kernel * cfg.kernel}),
      bias_({cfg.out_channels}),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()) {
  if (cfg.kernel == 0 || cfg.stride == 0) {
    throw std::invalid_argument("Conv2d: kernel and stride must be > 0");
  }
  if (cfg.in_channels == 0 || cfg.out_channels == 0) {
    throw std::invalid_argument("Conv2d: channel counts must be > 0");
  }
  direct_ok_ = conv::direct_supported(cfg.in_channels, cfg.out_channels,
                                      cfg.kernel, cfg.stride, cfg.padding);
  obs_key_ = "conv/c" + std::to_string(cfg.in_channels) + "o" +
             std::to_string(cfg.out_channels) + "k" +
             std::to_string(cfg.kernel) + "s" + std::to_string(cfg.stride) +
             "p" + std::to_string(cfg.padding);
  // Glorot with receptive-field fan counts (Keras convention).
  const std::size_t fan_in = cfg.in_channels * cfg.kernel * cfg.kernel;
  const std::size_t fan_out = cfg.out_channels * cfg.kernel * cfg.kernel;
  glorot_uniform(weight_, fan_in, fan_out, rng);
}

std::size_t Conv2d::output_dim(std::size_t in_dim) const {
  if (in_dim + 2 * cfg_.padding < cfg_.kernel) {
    throw std::invalid_argument(
        "Conv2d: kernel " + std::to_string(cfg_.kernel) +
        " exceeds padded input extent " +
        std::to_string(in_dim + 2 * cfg_.padding) + " (in_dim " +
        std::to_string(in_dim) + ", padding " +
        std::to_string(cfg_.padding) + ")");
  }
  return (in_dim + 2 * cfg_.padding - cfg_.kernel) / cfg_.stride + 1;
}

obs::Timer* Conv2d::observe_path(bool direct, bool forward) {
  if (!obs::enabled()) return nullptr;
  auto& reg = obs::MetricsRegistry::global();
  if (forward) {
    static obs::Counter& hits = reg.counter("conv/direct_hits");
    static obs::Counter& fallbacks = reg.counter("conv/im2col_fallback");
    (direct ? hits : fallbacks).add(1);
  }
  obs::Timer** slots = forward ? fwd_timers_ : bwd_timers_;
  obs::Timer*& slot = slots[direct ? 0 : 1];
  if (!slot) {
    const std::string suffix =
        std::string(direct ? "/direct" : "/im2col") + (forward ? "" : "_bwd");
    slot = &reg.timer(obs_key_ + suffix);
  }
  return slot;
}

Tensor Conv2d::forward(const Tensor& input, Mode mode) {
  return forward_impl(input, mode, conv::Epilogue::None);
}

Tensor Conv2d::forward_fused(const Tensor& input, Mode mode,
                             conv::Epilogue epi) {
  return forward_impl(input, mode, epi);
}

Tensor Conv2d::forward_impl(const Tensor& input, Mode mode,
                            conv::Epilogue epi) {
  if (input.rank() != 4 || input.dim(1) != cfg_.in_channels) {
    throw std::invalid_argument("Conv2d::forward: expected [N, " +
                                std::to_string(cfg_.in_channels) +
                                ", H, W], got " + input.shape_string());
  }
  if (caches_for_backward(mode)) input_ = input;
  const std::size_t h = input.dim(2), w = input.dim(3);
  if (h + 2 * cfg_.padding < cfg_.kernel || w + 2 * cfg_.padding < cfg_.kernel) {
    throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
  }
  const std::size_t n = input.dim(0);
  Tensor out = make_buffer({n, cfg_.out_channels, output_dim(h), output_dim(w)});
  const bool direct = uses_direct();
  obs::ScopedTimer timer(observe_path(direct, /*forward=*/true));
  ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
  if (direct) {
    forward_direct(input, out, h, w, epi, pool);
  } else {
    forward_im2col(input, out, h, w, epi, pool);
  }
  return out;
}

void Conv2d::forward_direct(const Tensor& input, Tensor& out, std::size_t h,
                            std::size_t w, conv::Epilogue epi,
                            ThreadPool& pool) {
  const std::size_t n = input.dim(0);
  const std::size_t k2 = cfg_.in_channels * cfg_.kernel * cfg_.kernel;
  const std::size_t plane = out.dim(2) * out.dim(3);
  // Weights are repacked per call (training mutates them; the pack is one
  // small copy). All chunks read the pack shared; the per-chunk padded
  // sample copy replaces the k^2-times-larger im2col matrix, which is why
  // the workspace high-water drops on this path. Scratch is acquired
  // before the parallel region — the workspace mutex is never touched
  // inside it — and both buffers are fully overwritten before use.
  Tensor wpack = make_buffer({conv::packed_fwd_size(cfg_.out_channels, k2)});
  conv::pack_weights_fwd(weight_.data(), cfg_.out_channels, k2, wpack.data());
  const std::size_t padsz =
      conv::padded_size(cfg_.in_channels, h, w, cfg_.padding);
  std::vector<Tensor> pads;
  pads.reserve(pool.max_chunks());
  for (std::size_t c = 0; c < pool.max_chunks(); ++c) {
    pads.push_back(make_buffer({padsz}));
  }
  pool.parallel_for_indexed(0, n, [&](std::size_t chunk, std::size_t b0,
                                      std::size_t b1) {
    float* xpad = pads[chunk].data();
    for (std::size_t s = b0; s < b1; ++s) {
      conv::pad_image(input.data() + s * cfg_.in_channels * h * w,
                      cfg_.in_channels, h, w, cfg_.padding, xpad);
      conv::direct_forward(xpad, wpack.data(), bias_.data(),
                           cfg_.in_channels, h, w, cfg_.kernel, cfg_.padding,
                           cfg_.out_channels, epi,
                           out.data() + s * cfg_.out_channels * plane);
    }
  });
  for (auto& t : pads) recycle(std::move(t));
  recycle(std::move(wpack));
}

void Conv2d::forward_im2col(const Tensor& input, Tensor& out, std::size_t h,
                            std::size_t w, conv::Epilogue epi,
                            ThreadPool& pool) {
  const std::size_t n = input.dim(0);
  const std::size_t k2 = cfg_.in_channels * cfg_.kernel * cfg_.kernel;
  const std::size_t plane = out.dim(2) * out.dim(3);
  // Column scratch is acquired per chunk up front: the workspace mutex is
  // never touched inside the parallel region. im2col fully overwrites the
  // buffer, so recycled contents are invisible.
  std::vector<Tensor> cols;
  cols.reserve(pool.max_chunks());
  for (std::size_t c = 0; c < pool.max_chunks(); ++c) {
    cols.push_back(make_buffer({k2, plane}));
  }
  pool.parallel_for_indexed(0, n, [&](std::size_t chunk, std::size_t b0,
                                      std::size_t b1) {
    float* col = cols[chunk].data();
    for (std::size_t s = b0; s < b1; ++s) {
      im2col(input.data() + s * cfg_.in_channels * h * w, cfg_.in_channels,
             h, w, cfg_.kernel, cfg_.stride, cfg_.padding, col);
      float* dst = out.data() + s * cfg_.out_channels * plane;
      gemm_raw(weight_.data(), col, dst, cfg_.out_channels, k2, plane,
               {.accumulate = false, .parallel = false});
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        const float b = bias_[oc];
        float* p = dst + oc * plane;
        for (std::size_t i = 0; i < plane; ++i) p[i] += b;
      }
      // Fused-activation post-pass: bitwise equal to the standalone
      // activation layer (same scalar expressions), so fusion does not
      // depend on which conv path a shape selected.
      if (epi == conv::Epilogue::ReLU) {
        for (std::size_t i = 0, m = cfg_.out_channels * plane; i < m; ++i) {
          dst[i] = dst[i] > 0.0f ? dst[i] : 0.0f;
        }
      } else if (epi == conv::Epilogue::Sigmoid) {
        for (std::size_t i = 0, m = cfg_.out_channels * plane; i < m; ++i) {
          dst[i] = 1.0f / (1.0f + std::exp(-dst[i]));
        }
      }
    }
  });
  for (auto& c : cols) recycle(std::move(c));
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t n = input_.dim(0);
  const std::size_t h = input_.dim(2), w = input_.dim(3);
  const std::size_t oh = output_dim(h), ow = output_dim(w);
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != cfg_.out_channels || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_output.shape_string());
  }
  const std::size_t k2 = cfg_.in_channels * cfg_.kernel * cfg_.kernel;
  const std::size_t plane = oh * ow;
  const bool direct = uses_direct();
  obs::ScopedTimer timer(observe_path(direct, /*forward=*/false));
  // col2im accumulates, so the input gradient must start zeroed on the
  // im2col path; the direct kernel fully overwrites it instead.
  Tensor grad_input = make_buffer(input_.shape(), /*zeroed=*/!direct);

  ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
  const std::size_t chunks = pool.max_chunks();
  // Per-chunk parameter-gradient scratch, reduced in chunk order below.
  // Kept as members (zeroed each call) so repeated backwards allocate
  // nothing.
  if (dw_parts_.size() != chunks) {
    dw_parts_.assign(chunks, Tensor(weight_.shape()));
    db_parts_.assign(chunks, Tensor(bias_.shape()));
  } else {
    for (auto& t : dw_parts_) t.fill(0.0f);
    for (auto& t : db_parts_) t.fill(0.0f);
  }
  // Scratch per chunk, acquired outside the parallel region (all buffers
  // are fully overwritten before use). Both paths keep one column buffer
  // for dW (weight gradients stay on im2col+GEMM, whose pixel-major strip
  // reduction the direct layout cannot reproduce cheaply); the direct
  // path replaces the second, dcol, with the much smaller padded
  // output-gradient copy.
  const std::size_t cols_per_chunk = direct ? 1 : 2;
  std::vector<Tensor> cols;
  cols.reserve(cols_per_chunk * chunks);
  for (std::size_t c = 0; c < cols_per_chunk * chunks; ++c) {
    cols.push_back(make_buffer({k2, plane}));
  }
  std::vector<Tensor> gpads;
  Tensor wpackb;
  const std::size_t bpad = cfg_.kernel - 1 - cfg_.padding;  // direct only
  if (direct) {
    wpackb = make_buffer({conv::packed_bwd_size(
        cfg_.in_channels, cfg_.out_channels, cfg_.kernel)});
    conv::pack_weights_bwd(weight_.data(), cfg_.in_channels,
                           cfg_.out_channels, cfg_.kernel, wpackb.data());
    const std::size_t gpsz =
        conv::padded_size(cfg_.out_channels, oh, ow, bpad);
    gpads.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      gpads.push_back(make_buffer({gpsz}));
    }
  }

  pool.parallel_for_indexed(0, n, [&](std::size_t chunk, std::size_t b0,
                                      std::size_t b1) {
    float* col = cols[cols_per_chunk * chunk].data();
    Tensor& dw = dw_parts_[chunk];
    Tensor& db = db_parts_[chunk];
    for (std::size_t s = b0; s < b1; ++s) {
      const float* gout = grad_output.data() + s * cfg_.out_channels * plane;
      // db
      for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
        const float* p = gout + oc * plane;
        double acc = 0.0;
        for (std::size_t i = 0; i < plane; ++i) acc += p[i];
        db[oc] += static_cast<float>(acc);
      }
      // Recompute the column buffer (cheaper than caching it for wide AEs).
      im2col(input_.data() + s * cfg_.in_channels * h * w, cfg_.in_channels,
             h, w, cfg_.kernel, cfg_.stride, cfg_.padding, col);
      // dW += gout [out_c, plane] * col^T [plane, k2] (B stored [k2, plane])
      gemm_a_bt_raw(gout, col, dw.data(), cfg_.out_channels, plane,
                    k2, {.accumulate = true, .parallel = false});
      float* gi = grad_input.data() + s * cfg_.in_channels * h * w;
      if (direct) {
        float* gpad = gpads[chunk].data();
        conv::pad_image(gout, cfg_.out_channels, oh, ow, bpad, gpad);
        conv::direct_input_grad(gpad, wpackb.data(), cfg_.in_channels, h, w,
                                cfg_.kernel, cfg_.padding,
                                cfg_.out_channels, gi);
      } else {
        float* dcol = cols[2 * chunk + 1].data();
        // dcol = W^T [k2, out_c] * gout [out_c, plane] (A stored [out_c, k2])
        gemm_at_b_raw(weight_.data(), gout, dcol, k2,
                      cfg_.out_channels, plane,
                      {.accumulate = false, .parallel = false});
        col2im(dcol, cfg_.in_channels, h, w, cfg_.kernel, cfg_.stride,
               cfg_.padding, gi);
      }
    }
  });
  for (auto& c : cols) recycle(std::move(c));
  for (auto& g : gpads) recycle(std::move(g));
  if (direct) recycle(std::move(wpackb));

  for (std::size_t c = 0; c < chunks; ++c) {
    float* gw = grad_weight_.data();
    float* gb = grad_bias_.data();
    const float* pw = dw_parts_[c].data();
    const float* pb = db_parts_[c].data();
    for (std::size_t i = 0, m = grad_weight_.numel(); i < m; ++i) gw[i] += pw[i];
    for (std::size_t i = 0, m = grad_bias_.numel(); i < m; ++i) gb[i] += pb[i];
  }
  return grad_input;
}

}  // namespace adv::nn
