// Layer: the building block of every model in this library.
//
// Models here are strictly sequential (as are all networks in the paper),
// so layers expose a plain forward/backward pair instead of a tape. A
// layer caches whatever it needs during forward; backward reads the cache
// and returns the gradient w.r.t. the layer INPUT while accumulating
// gradients w.r.t. its parameters. Propagating gradients all the way back
// to the input is what lets the attack implementations (C&W, EAD, FGSM,
// DeepFool) compute d(loss)/d(image).
//
// Caching contract:
//   * forward(x, Train|Eval) populates the backward cache; forward(x,
//     Infer) may skip it, so no backward() may follow an Infer pass.
//   * backward() treats the cache as READ-ONLY: it may be called any
//     number of times after one caching forward, each call propagating a
//     new output-gradient seed through the same cached activations
//     (DeepFool seeds one backward per class from a single forward).
//   * Output buffers handed out by forward/backward are fully overwritten
//     (or acquired zeroed) before being returned, so recycling them
//     through a Workspace is bitwise-invisible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/mode.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace adv::nn {

/// Arena of reusable buffers shared by a model and its layers; defined in
/// src/tensor (shape-keyed storage is a tensor-library concern).
using Workspace = ::adv::Workspace;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (leading dimension = batch).
  /// Mode::Train toggles train-only behaviour (dropout); Mode::Infer
  /// skips backward caching (see the caching contract above).
  virtual Tensor forward(const Tensor& input, Mode mode) = 0;

  /// Given d(loss)/d(output), accumulates parameter gradients and returns
  /// d(loss)/d(input). Must follow a caching forward on the same batch;
  /// may be called repeatedly (the cache is not consumed).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain
  /// valid for the life of the layer.
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Read-only view of the same parameters, aligned with the mutable
  /// overload. Lets const callers (parameter counting, serialization)
  /// avoid const_cast.
  virtual std::vector<const Tensor*> parameters() const { return {}; }

  /// Gradient buffers, aligned index-by-index with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  /// Attaches the owning model's buffer arena; nullptr detaches (layers
  /// then allocate fresh tensors — the standalone-layer and test path).
  void set_workspace(Workspace* ws) { ws_ = ws; }
  Workspace* workspace() const { return ws_; }

  virtual std::string name() const = 0;

 protected:
  /// Output/scratch buffer of `shape` from the attached workspace (fresh
  /// zero-filled tensor when detached). `zeroed` must be true whenever the
  /// caller accumulates into the buffer instead of overwriting it.
  Tensor make_buffer(const Shape& shape, bool zeroed = false) {
    return ws_ ? ws_->acquire(shape, zeroed) : Tensor(shape);
  }

  /// Returns a make_buffer() scratch tensor to the arena once it is no
  /// longer referenced (no-op when detached).
  void recycle(Tensor&& t) {
    if (ws_) ws_->release(std::move(t));
  }

 private:
  Workspace* ws_ = nullptr;
};

}  // namespace adv::nn
