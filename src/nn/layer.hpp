// Layer: the building block of every model in this library.
//
// Models here are strictly sequential (as are all networks in the paper),
// so layers expose a plain forward/backward pair instead of a tape. A
// layer caches whatever it needs during forward; backward consumes the
// cache and returns the gradient w.r.t. the layer INPUT while accumulating
// gradients w.r.t. its parameters. Propagating gradients all the way back
// to the input is what lets the attack implementations (C&W, EAD, FGSM,
// DeepFool) compute d(loss)/d(image).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/mode.hpp"
#include "tensor/tensor.hpp"

namespace adv::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (leading dimension = batch).
  /// Mode::Train toggles train-only behaviour (dropout); caching for
  /// backward happens regardless, so attacks can differentiate in eval
  /// mode.
  virtual Tensor forward(const Tensor& input, Mode mode) = 0;

  /// Given d(loss)/d(output), accumulates parameter gradients and returns
  /// d(loss)/d(input). Must be called after forward on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain
  /// valid for the life of the layer.
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Gradient buffers, aligned index-by-index with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  void zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  virtual std::string name() const = 0;
};

}  // namespace adv::nn
