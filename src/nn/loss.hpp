// Training losses.
//
// SoftmaxCrossEntropy trains classifiers (consumes raw logits);
// MseLoss / MaeLoss train the MagNet auto-encoders (the paper's Figure 12
// and 13 compare the two reconstruction losses). Each loss caches what it
// needs in forward() and emits d(loss)/d(prediction) from backward().
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace adv::nn {

/// Mean cross-entropy over the batch, computed from logits [N, K] and
/// integer labels. Gradient is (softmax - onehot) / N.
class SoftmaxCrossEntropy {
 public:
  float forward(const Tensor& logits, const std::vector<int>& labels);
  Tensor backward() const;

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// Element-wise regression loss interface for auto-encoder training.
class RegressionLoss {
 public:
  virtual ~RegressionLoss() = default;
  virtual float forward(const Tensor& pred, const Tensor& target) = 0;
  virtual Tensor backward() const = 0;
};

/// Mean squared error, mean over all elements (MagNet default).
class MseLoss final : public RegressionLoss {
 public:
  float forward(const Tensor& pred, const Tensor& target) override;
  Tensor backward() const override;

 private:
  Tensor diff_;  // pred - target
};

/// Mean absolute error (the paper's L1-reconstruction-loss ablation).
class MaeLoss final : public RegressionLoss {
 public:
  float forward(const Tensor& pred, const Tensor& target) override;
  Tensor backward() const override;

 private:
  Tensor diff_;
};

}  // namespace adv::nn
