// Element-wise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.
#pragma once

#include "nn/layer.hpp"

namespace adv::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;  // cached for the gradient mask
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f)
      : negative_slope_(negative_slope) {}
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float negative_slope_;
  Tensor input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;  // sigmoid' = y * (1 - y)
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;  // tanh' = 1 - y^2
};

}  // namespace adv::nn
