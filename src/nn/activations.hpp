// Element-wise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.
#pragma once

#include "nn/layer.hpp"

namespace adv::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Installs the backward cache from a conv-fused forward whose epilogue
  /// already applied this activation; `fused_out` is the POST-activation
  /// tensor. The gradient mask is unchanged: for y = (x > 0 ? x : 0),
  /// y <= 0 exactly when x <= 0 (y == x on the open positive side, else
  /// y == +0.0), so masking on y is bitwise the mask on x.
  void adopt_fused(const Tensor& fused_out, Mode mode);

  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;  // cached for the gradient mask
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f)
      : negative_slope_(negative_slope) {}
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }
  float negative_slope() const { return negative_slope_; }

 private:
  float negative_slope_;
  Tensor input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Installs the backward cache from a conv-fused forward: this layer
  /// caches its OUTPUT anyway (sigmoid' = y(1-y)), so the fused
  /// post-activation tensor is exactly the usual cache.
  void adopt_fused(const Tensor& fused_out, Mode mode);

  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;  // sigmoid' = y * (1 - y)
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;  // tanh' = 1 - y^2
};

}  // namespace adv::nn
