#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {
namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.uniform_index(i)]);
  }
  return idx;
}

Tensor gather_rows(const Tensor& images, const std::vector<std::size_t>& idx,
                   std::size_t begin, std::size_t end) {
  const std::size_t row = images.numel() / images.dim(0);
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = end - begin;
  Tensor out{Shape(dims)};
  for (std::size_t i = begin; i < end; ++i) {
    std::copy_n(images.data() + idx[i] * row, row,
                out.data() + (i - begin) * row);
  }
  return out;
}

}  // namespace

TrainStats fit_classifier(Sequential& model, const Tensor& images,
                          const std::vector<int>& labels, Optimizer& opt,
                          const TrainConfig& cfg) {
  if (images.rank() == 0 || images.dim(0) != labels.size()) {
    throw std::invalid_argument("fit_classifier: image/label count mismatch");
  }
  const std::size_t n = images.dim(0);
  Rng rng(cfg.shuffle_seed);
  SoftmaxCrossEntropy loss;
  TrainStats stats;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto idx = shuffled_indices(n, rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t b = 0; b < n; b += cfg.batch_size) {
      const std::size_t e = std::min(n, b + cfg.batch_size);
      Tensor x = gather_rows(images, idx, b, e);
      std::vector<int> y(e - b);
      for (std::size_t i = b; i < e; ++i) y[i - b] = labels[idx[i]];
      const Tensor logits = model.forward(x, Mode::Train);
      epoch_loss += loss.forward(logits, y);
      ++batches;
      model.zero_grad();
      model.backward(loss.backward());
      opt.step();
    }
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
    if (cfg.verbose) {
      std::printf("  epoch %zu/%zu  loss %.4f\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
    }
  }
  return stats;
}

TrainStats fit_autoencoder(Sequential& model, const Tensor& images,
                           RegressionLoss& loss, float noise_std,
                           Optimizer& opt, const TrainConfig& cfg) {
  if (images.rank() == 0) {
    throw std::invalid_argument("fit_autoencoder: empty dataset");
  }
  const std::size_t n = images.dim(0);
  Rng rng(cfg.shuffle_seed);
  Rng noise_rng = rng.fork();
  TrainStats stats;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto idx = shuffled_indices(n, rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t b = 0; b < n; b += cfg.batch_size) {
      const std::size_t e = std::min(n, b + cfg.batch_size);
      const Tensor target = gather_rows(images, idx, b, e);
      Tensor x = target;
      if (noise_std > 0.0f) {
        for (float& v : x.values()) {
          v = std::clamp(
              v + static_cast<float>(noise_rng.normal(0.0, noise_std)), 0.0f,
              1.0f);
        }
      }
      const Tensor recon = model.forward(x, Mode::Train);
      epoch_loss += loss.forward(recon, target);
      ++batches;
      model.zero_grad();
      model.backward(loss.backward());
      opt.step();
    }
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(batches)));
    if (cfg.verbose) {
      std::printf("  epoch %zu/%zu  recon loss %.5f\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
    }
  }
  return stats;
}

Tensor predict(Sequential& model, const Tensor& images,
               std::size_t batch_size) {
  if (images.rank() == 0) throw std::invalid_argument("predict: empty input");
  const std::size_t n = images.dim(0);
  Tensor out;
  for (std::size_t b = 0; b < n; b += batch_size) {
    const std::size_t e = std::min(n, b + batch_size);
    const Tensor y = model.forward(images.slice_rows(b, e), Mode::Eval);
    if (out.empty()) {
      std::vector<std::size_t> dims = y.shape().dims();
      dims[0] = n;
      out = Tensor{Shape(dims)};
    }
    out.set_rows(b, y);
  }
  return out;
}

std::vector<int> predict_labels(Sequential& model, const Tensor& images,
                                std::size_t batch_size) {
  const Tensor logits = predict(model, images, batch_size);
  std::vector<int> labels(logits.dim(0));
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    labels[r] = static_cast<int>(argmax_row(logits, r));
  }
  return labels;
}

float classification_accuracy(Sequential& model, const Tensor& images,
                              const std::vector<int>& labels,
                              std::size_t batch_size) {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument(
        "classification_accuracy: image/label count mismatch");
  }
  const std::vector<int> pred = predict_labels(model, images, batch_size);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(pred.size());
}

}  // namespace adv::nn
