#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "fault/failpoint.hpp"
#include "obs/metrics.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::nn {
namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.uniform_index(i)]);
  }
  return idx;
}

// Guards one fit loop against divergence. Keeps a rolling snapshot of the
// last-good weights; on a non-finite loss or gradient the caller skips the
// step and this restores the snapshot and halves the learning rate.
// Optimizer moments (Adam m/v) are deliberately left alone: they are
// finite (the poisoned gradient never reached step()) and re-converge
// within a few batches.
class DivergenceGuard {
 public:
  DivergenceGuard(Sequential& model, Optimizer& opt, TrainStats& stats)
      : model_(model), opt_(opt), stats_(stats) {
    refresh_snapshot();
  }

  /// True when every accumulated gradient is finite.
  bool gradients_finite() {
    for (Tensor* g : model_.gradients()) {
      for (float v : g->values()) {
        if (!std::isfinite(v)) return false;
      }
    }
    return true;
  }

  /// Skip-batch path: restore last-good weights, halve the LR, record.
  void on_divergence(const char* what, std::size_t epoch, std::size_t batch) {
    ++stats_.skipped_batches;
    ++stats_.lr_backoffs;
    ++stats_.snapshot_restores;
    opt_.set_lr(opt_.lr() * 0.5f);
    std::vector<Tensor*> params = model_.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) *params[i] = snapshot_[i];
    // Rare and serious enough to always count (not gated on obs::enabled).
    obs::MetricsRegistry::global().counter("fault/train_diverged").add(1);
    std::fprintf(stderr,
                 "[trainer] warning: %s at epoch %zu batch %zu; skipped "
                 "batch, restored last-good weights, lr -> %g\n",
                 what, epoch + 1, batch,
                 static_cast<double>(opt_.lr()));
  }

  /// Called after each epoch whose batches were all finite.
  void refresh_snapshot() {
    snapshot_.clear();
    for (Tensor* p : model_.parameters()) snapshot_.push_back(*p);
  }

 private:
  Sequential& model_;
  Optimizer& opt_;
  TrainStats& stats_;
  std::vector<Tensor> snapshot_;
};

// The "trainer.loss" failpoint lets CI inject a NaN loss without touching
// the math; check() is one relaxed atomic load when ADV_FAULT is unset.
float maybe_poison(float loss_value) {
  if (fault::check("trainer.loss") == fault::Action::Nan) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  return loss_value;
}

Tensor gather_rows(const Tensor& images, const std::vector<std::size_t>& idx,
                   std::size_t begin, std::size_t end) {
  const std::size_t row = images.numel() / images.dim(0);
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = end - begin;
  Tensor out{Shape(dims)};
  for (std::size_t i = begin; i < end; ++i) {
    std::copy_n(images.data() + idx[i] * row, row,
                out.data() + (i - begin) * row);
  }
  return out;
}

}  // namespace

TrainStats fit_classifier(Sequential& model, const Tensor& images,
                          const std::vector<int>& labels, Optimizer& opt,
                          const TrainConfig& cfg) {
  if (images.rank() == 0 || images.dim(0) != labels.size()) {
    throw std::invalid_argument("fit_classifier: image/label count mismatch");
  }
  const std::size_t n = images.dim(0);
  Rng rng(cfg.shuffle_seed);
  SoftmaxCrossEntropy loss;
  TrainStats stats;
  DivergenceGuard guard(model, opt, stats);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto idx = shuffled_indices(n, rng);
    const std::size_t skipped_before = stats.skipped_batches;
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t b = 0; b < n; b += cfg.batch_size) {
      const std::size_t e = std::min(n, b + cfg.batch_size);
      Tensor x = gather_rows(images, idx, b, e);
      std::vector<int> y(e - b);
      for (std::size_t i = b; i < e; ++i) y[i - b] = labels[idx[i]];
      const Tensor logits = model.forward(x, Mode::Train);
      const float batch_loss = maybe_poison(loss.forward(logits, y));
      if (!std::isfinite(batch_loss)) {
        guard.on_divergence("non-finite loss", epoch, b / cfg.batch_size);
        continue;
      }
      model.zero_grad();
      model.backward(loss.backward());
      if (!guard.gradients_finite()) {
        guard.on_divergence("non-finite gradient", epoch, b / cfg.batch_size);
        continue;
      }
      opt.step();
      epoch_loss += batch_loss;
      ++batches;
    }
    stats.epoch_losses.push_back(
        batches ? static_cast<float>(epoch_loss / static_cast<double>(batches))
                : std::numeric_limits<float>::quiet_NaN());
    if (stats.skipped_batches == skipped_before) guard.refresh_snapshot();
    // Long runs must not pin peak-batch memory: between epochs the pool
    // holds every shape the epoch touched (full batches plus the trailing
    // partial batch); trimming to half the high-water mark releases the
    // cold tail while the hot shapes are re-acquired within one batch.
    model.workspace().trim(0.5);
    if (cfg.verbose) {
      std::printf("  epoch %zu/%zu  loss %.4f\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
    }
  }
  return stats;
}

TrainStats fit_autoencoder(Sequential& model, const Tensor& images,
                           RegressionLoss& loss, float noise_std,
                           Optimizer& opt, const TrainConfig& cfg) {
  if (images.rank() == 0) {
    throw std::invalid_argument("fit_autoencoder: empty dataset");
  }
  const std::size_t n = images.dim(0);
  Rng rng(cfg.shuffle_seed);
  Rng noise_rng = rng.fork();
  TrainStats stats;
  DivergenceGuard guard(model, opt, stats);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto idx = shuffled_indices(n, rng);
    const std::size_t skipped_before = stats.skipped_batches;
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t b = 0; b < n; b += cfg.batch_size) {
      const std::size_t e = std::min(n, b + cfg.batch_size);
      const Tensor target = gather_rows(images, idx, b, e);
      Tensor x = target;
      if (noise_std > 0.0f) {
        for (float& v : x.values()) {
          v = std::clamp(
              v + static_cast<float>(noise_rng.normal(0.0, noise_std)), 0.0f,
              1.0f);
        }
      }
      const Tensor recon = model.forward(x, Mode::Train);
      const float batch_loss = maybe_poison(loss.forward(recon, target));
      if (!std::isfinite(batch_loss)) {
        guard.on_divergence("non-finite loss", epoch, b / cfg.batch_size);
        continue;
      }
      model.zero_grad();
      model.backward(loss.backward());
      if (!guard.gradients_finite()) {
        guard.on_divergence("non-finite gradient", epoch, b / cfg.batch_size);
        continue;
      }
      opt.step();
      epoch_loss += batch_loss;
      ++batches;
    }
    stats.epoch_losses.push_back(
        batches ? static_cast<float>(epoch_loss / static_cast<double>(batches))
                : std::numeric_limits<float>::quiet_NaN());
    if (stats.skipped_batches == skipped_before) guard.refresh_snapshot();
    model.workspace().trim(0.5);  // see fit_classifier
    if (cfg.verbose) {
      std::printf("  epoch %zu/%zu  recon loss %.5f\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
    }
  }
  return stats;
}

Tensor predict(Sequential& model, const Tensor& images,
               std::size_t batch_size) {
  if (images.rank() == 0) throw std::invalid_argument("predict: empty input");
  const std::size_t n = images.dim(0);
  Tensor out;
  for (std::size_t b = 0; b < n; b += batch_size) {
    const std::size_t e = std::min(n, b + batch_size);
    // Forward-only: Infer skips the per-layer backward-cache copies.
    const Tensor y = model.forward(images.slice_rows(b, e), Mode::Infer);
    if (out.empty()) {
      std::vector<std::size_t> dims = y.shape().dims();
      dims[0] = n;
      out = Tensor{Shape(dims)};
    }
    out.set_rows(b, y);
  }
  return out;
}

std::vector<int> predict_labels(Sequential& model, const Tensor& images,
                                std::size_t batch_size) {
  const Tensor logits = predict(model, images, batch_size);
  std::vector<int> labels(logits.dim(0));
  for (std::size_t r = 0; r < logits.dim(0); ++r) {
    labels[r] = static_cast<int>(argmax_row(logits, r));
  }
  return labels;
}

float classification_accuracy(Sequential& model, const Tensor& images,
                              const std::vector<int>& labels,
                              std::size_t batch_size) {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument(
        "classification_accuracy: image/label count mismatch");
  }
  const std::vector<int> pred = predict_labels(model, images, batch_size);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(pred.size());
}

}  // namespace adv::nn
