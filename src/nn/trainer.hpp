// Mini-batch training loops and batched inference helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace adv::nn {

struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 64;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

struct TrainStats {
  std::vector<float> epoch_losses;  // mean loss per epoch (finite batches)

  // Divergence-guard accounting. Both fit loops validate every batch: a
  // non-finite loss or gradient skips the optimizer step, halves the
  // learning rate, and rolls the model back to the last-good weights
  // snapshot (refreshed after each clean epoch), so one poisoned batch
  // (hardware fault, fault injection, exploding loss) cannot destroy an
  // hours-long run.
  std::size_t skipped_batches = 0;    // batches dropped for non-finite values
  std::size_t lr_backoffs = 0;        // times the learning rate was halved
  std::size_t snapshot_restores = 0;  // rollbacks to last-good weights
};

/// Trains a classifier (logit outputs) with softmax cross-entropy.
TrainStats fit_classifier(Sequential& model, const Tensor& images,
                          const std::vector<int>& labels, Optimizer& opt,
                          const TrainConfig& cfg);

/// Trains an auto-encoder to reconstruct its input under `loss`. If
/// `noise_std > 0`, Gaussian noise is added to the *input* while the target
/// stays clean (MagNet trains its auto-encoders with small-noise
/// regularization so the learned map contracts toward the data manifold).
TrainStats fit_autoencoder(Sequential& model, const Tensor& images,
                           RegressionLoss& loss, float noise_std,
                           Optimizer& opt, const TrainConfig& cfg);

/// Runs the model over `images` in batches and returns stacked outputs.
Tensor predict(Sequential& model, const Tensor& images,
               std::size_t batch_size = 128);

/// Argmax labels from a classifier's logits.
std::vector<int> predict_labels(Sequential& model, const Tensor& images,
                                std::size_t batch_size = 128);

/// Fraction of images whose argmax prediction equals the label.
float classification_accuracy(Sequential& model, const Tensor& images,
                              const std::vector<int>& labels,
                              std::size_t batch_size = 128);

}  // namespace adv::nn
