// Single-precision matrix multiplication used by the conv (im2col) and
// linear layers. Row-major throughout.
//
// The core is a cache-blocked, panel-packing kernel (see DESIGN.md "GEMM
// design"): C is tiled into MC x NC blocks, A- and B-panels are packed
// into contiguous scratch buffers, and a register-blocked MR x NR
// microkernel runs over the tiles. Transposed operands are absorbed by
// the packing routines, so the backward-pass variants pack instead of
// strided-reading. Multi-threaded runs statically partition the rows of C
// and accumulate every element in a fixed k-order, so results are
// bit-identical across thread counts.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace adv {

class ThreadPool;

/// Options shared by every GEMM entry point. Designed for named-field
/// call sites: gemm_raw(a, b, c, m, k, n, {.accumulate = true}).
struct GemmOpts {
  /// If true, C += A*B instead of C = A*B. Tensor-level entry points then
  /// require c to be pre-shaped [M, N].
  bool accumulate = false;
  /// If false, stay on the calling thread (required when already inside a
  /// ThreadPool task — parallel_for does not nest).
  bool parallel = true;
  /// Pool used for the parallel path; nullptr means ThreadPool::global().
  /// Output is bit-identical for any pool size (static row partitioning,
  /// fixed per-element accumulation order).
  ThreadPool* pool = nullptr;
};

/// Blocking parameters of the packed kernel, exported for tests and
/// benches. MR x NR is the register microkernel tile; MC x KC is the
/// packed A-block (sized for L2); B is packed once per call into
/// KC-strip / NR-panel layout.
namespace gemm_blocking {
inline constexpr std::size_t MR = 6;
inline constexpr std::size_t NR = 16;
inline constexpr std::size_t MC = 96;   // multiple of MR
inline constexpr std::size_t KC = 256;
}  // namespace gemm_blocking

/// C = A(MxK) * B(KxN) into C (MxN). Allocates/reshapes c unless
/// opts.accumulate is set, in which case c must already be [M, N].
void gemm(const Tensor& a, const Tensor& b, Tensor& c,
          const GemmOpts& opts = {});

/// C = A^T(MxK, stored KxM) * B(KxN). Used by backward passes.
void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c,
               const GemmOpts& opts = {});

/// C = A(MxK) * B^T(NxK). Used by backward passes.
void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c,
               const GemmOpts& opts = {});

/// Raw pointer core: c[M,N] (+)= a[M,K] * b[K,N]. Exposed for layers that
/// operate on sub-buffers.
void gemm_raw(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, const GemmOpts& opts = {});

/// Raw transposed-A core: c[M,N] (+)= a^T * b with a stored [K, M].
void gemm_at_b_raw(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const GemmOpts& opts = {});

/// Raw transposed-B core: c[M,N] (+)= a * b^T with b stored [N, K].
void gemm_a_bt_raw(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const GemmOpts& opts = {});

}  // namespace adv
