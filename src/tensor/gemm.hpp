// Single-precision matrix multiplication used by the conv (im2col) and
// linear layers. Row-major throughout.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace adv {

/// C = A(MxK) * B(KxN), overwriting C (MxN). Parallelized over row blocks
/// of A via the global thread pool; deterministic (static partitioning,
/// no cross-chunk reductions).
void gemm(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T(MxK, stored KxM) * B(KxN). Used by backward passes.
void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(MxK) * B^T(NxK). Used by backward passes.
void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c);

/// Raw pointer core: c[M,N] (+)= a[M,K] * b[K,N]; if accumulate is false,
/// c is overwritten. Exposed for layers that operate on sub-buffers.
void gemm_raw(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate,
              bool parallel = true);

}  // namespace adv
