// Tensor: a dense, contiguous, row-major float32 array with value
// semantics. This is the only numeric container used by the library.
//
// Conventions:
//   * Image batches are NCHW: [batch, channels, height, width].
//   * Matrices are [rows, cols].
//   * A default-constructed Tensor is empty (rank 0, 0 elements).
//
// Copies are deep; moves are O(1). Element access is bounds-checked in
// debug builds only (ADV_CHECK), keeping Release hot loops tight.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

#ifndef NDEBUG
#define ADV_CHECK(cond, msg) \
  do {                       \
    assert((cond) && msg);   \
  } while (0)
#else
#define ADV_CHECK(cond, msg) ((void)0)
#endif

namespace adv {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates `shape.numel()` elements initialized to `fill`.
  explicit Tensor(Shape shape, float fill = 0.0f)
      : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

  Tensor(std::initializer_list<std::size_t> dims, float fill = 0.0f)
      : Tensor(Shape(dims), fill) {}

  /// Adopts existing data. Throws std::invalid_argument on size mismatch.
  static Tensor from_data(Shape shape, std::vector<float> data);

  /// Steals the underlying storage, leaving the tensor empty (rank 0).
  /// Used by Workspace to recycle buffers without copying.
  std::vector<float> take_data() && {
    shape_ = Shape();
    return std::move(data_);
  }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.rank(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  float& operator[](std::size_t i) {
    ADV_CHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    ADV_CHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 2-D access: [rows, cols].
  float& at(std::size_t r, std::size_t c) {
    ADV_CHECK(rank() == 2, "at(r,c) requires rank 2");
    ADV_CHECK(r < shape_[0] && c < shape_[1], "2-D index out of range");
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  /// 4-D access: NCHW.
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    ADV_CHECK(rank() == 4, "at(n,c,h,w) requires rank 4");
    ADV_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
              "4-D index out of range");
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return const_cast<Tensor*>(this)->at(n, c, h, w);
  }

  /// Returns a tensor sharing no storage but viewing the same values with a
  /// new shape. Throws std::invalid_argument if numel differs.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (numel must match).
  void reshape(Shape new_shape);

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Extracts rows [begin, end) of the leading dimension as a new tensor.
  Tensor slice_rows(std::size_t begin, std::size_t end) const;

  /// Writes `rows` into rows starting at `begin` of the leading dimension.
  void set_rows(std::size_t begin, const Tensor& rows);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const { return shape_.to_string(); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace adv
