#include "tensor/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/metrics.hpp"

namespace adv {
namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  tasks_.resize(n - 1);
  scratch_.resize(n);
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_indexed(
      begin, end,
      [&fn](std::size_t /*chunk*/, std::size_t b, std::size_t e) {
        fn(b, e);
      });
}

void ThreadPool::parallel_for_indexed(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t nthreads = std::min(thread_count(), total);
  if (nthreads <= 1) {
    fn(0, begin, end);
    return;
  }
  const std::size_t chunk = (total + nthreads - 1) / nthreads;

  const bool observe = obs::enabled();
  const std::int64_t dispatch_ns = observe ? steady_now_ns() : 0;

  // Hand chunks 1..n-1 to workers; the caller runs chunk 0.
  std::size_t dispatched = 0;
  {
    std::lock_guard lock(mutex_);
    pending_ = 0;
    for (std::size_t t = 1; t < nthreads; ++t) {
      const std::size_t b = begin + t * chunk;
      const std::size_t e = std::min(end, b + chunk);
      if (b >= e) break;
      tasks_[t - 1] = Task{&fn, t, b, e, dispatch_ns};
      ++pending_;
    }
    dispatched = pending_;
    ++generation_;
  }
  cv_start_.notify_all();

  if (observe) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& calls = reg.counter("pool/parallel_for_calls");
    static obs::Counter& tasks = reg.counter("pool/tasks_dispatched");
    calls.add(1);
    tasks.add(dispatched + 1);  // workers + the caller's own chunk
  }

  try {
    fn(0, begin, std::min(end, begin + chunk));
  } catch (...) {
    record_exception(std::current_exception());
  }

  std::unique_lock lock(mutex_);
  if (observe && pending_ != 0) {
    // Time the caller spends blocked on stragglers (load-imbalance signal).
    static obs::Timer& wait = obs::MetricsRegistry::global().timer(
        "pool/caller_wait");
    obs::ScopedTimer scope(&wait);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  } else {
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  }
  const std::exception_ptr exc = std::exchange(first_exception_, nullptr);
  lock.unlock();
  if (exc) std::rethrow_exception(exc);
}

void ThreadPool::record_exception(std::exception_ptr e) {
  std::lock_guard lock(mutex_);
  if (!first_exception_) first_exception_ = std::move(e);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation &&
                             tasks_[worker_index].fn != nullptr);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
      tasks_[worker_index].fn = nullptr;
    }
    if (task.fn) {
      if (task.dispatch_ns != 0) {
        static obs::Timer& queue_wait =
            obs::MetricsRegistry::global().timer("pool/queue_wait");
        queue_wait.record_ns(
            static_cast<std::uint64_t>(
                std::max<std::int64_t>(0, steady_now_ns() - task.dispatch_ns)));
      }
      std::exception_ptr exc;
      try {
        (*task.fn)(task.chunk, task.begin, task.end);
      } catch (...) {
        exc = std::current_exception();
      }
      std::lock_guard lock(mutex_);
      if (exc && !first_exception_) first_exception_ = std::move(exc);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

unsigned ThreadPool::env_thread_override() {
  if (const char* env = std::getenv("ADV_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<unsigned>(v);
  }
  return 0;
}

unsigned ThreadPool::default_thread_count() {
  if (const unsigned v = env_thread_override()) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace adv
