#include "tensor/conv_micro.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace adv::conv {
namespace {

using gemm_blocking::KC;
using gemm_blocking::MR;
using gemm_blocking::NR;

// The tile kernel below is the GEMM microkernel (gemm.cpp) with the
// packed-B panel replaced by tap pointers into the padded image: lane j
// of reduction index p reads taps[p][off + j]. Per output element the
// reduction is strictly sequential in p within a strip and strips are
// combined in ascending order — exactly gemm_rows_blocked's KC schedule
// (strip 0 stores, later strips load-add; a register add of the same two
// floats rounds identically). The forward caller passes strip = KC; the
// backward caller passes strip = out_c so each strip is one whole kernel
// tap, reproducing col2im's add-completed-taps-in-order bracketing.
//
// Tail tiles always load full NR lanes (the padded image carries NR
// floats of zeroed slack) and discard the extra lanes at the store, like
// the GEMM's zero-padded B panels.
#if defined(__GNUC__) || defined(__clang__)
typedef float vf8 __attribute__((vector_size(32), aligned(4), may_alias));
typedef int vi8 __attribute__((vector_size(32), aligned(4), may_alias));

void conv_tile(std::size_t k2, std::size_t strip, const float* wpanel,
               const float* const* taps, std::size_t off, float* c,
               std::size_t ldc, std::size_t mr, std::size_t nr,
               const float* bias, Epilogue epi) {
  static_assert(NR == 16, "tile kernel assumes two 8-lane column groups");
  vf8 acc0[MR], acc1[MR];
  const float* wp = wpanel;
  for (std::size_t p0 = 0; p0 < k2; p0 += strip) {
    const std::size_t pe = std::min(p0 + strip, k2);
    vf8 s0[MR] = {};
    vf8 s1[MR] = {};
    for (std::size_t p = p0; p < pe; ++p, wp += MR) {
      const float* src = taps[p] + off;
      const vf8 b0 = *reinterpret_cast<const vf8*>(src);
      const vf8 b1 = *reinterpret_cast<const vf8*>(src + 8);
      for (std::size_t i = 0; i < MR; ++i) {
        s0[i] += wp[i] * b0;
        s1[i] += wp[i] * b1;
      }
    }
    if (p0 == 0) {
      for (std::size_t i = 0; i < MR; ++i) {
        acc0[i] = s0[i];
        acc1[i] = s1[i];
      }
    } else {
      for (std::size_t i = 0; i < MR; ++i) {
        acc0[i] += s0[i];
        acc1[i] += s1[i];
      }
    }
  }
  if (mr == MR && nr == NR && epi != Epilogue::Sigmoid) {
    const vf8 zero = {};
    for (std::size_t i = 0; i < MR; ++i) {
      vf8 v0 = acc0[i];
      vf8 v1 = acc1[i];
      if (bias) {
        v0 += bias[i];
        v1 += bias[i];
      }
      if (epi == Epilogue::ReLU) {
        // x > 0 ? x : 0 as a sign-exact mask (max() would keep -0.0,
        // the activation layer's ternary does not).
        const vi8 m0 = v0 > zero;
        const vi8 m1 = v1 > zero;
        v0 = (vf8)((vi8)v0 & m0);
        v1 = (vf8)((vi8)v1 & m1);
      }
      *reinterpret_cast<vf8*>(c + i * ldc) = v0;
      *reinterpret_cast<vf8*>(c + i * ldc + 8) = v1;
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* ci = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        float v = j < 8 ? acc0[i][j] : acc1[i][j - 8];
        if (bias) v += bias[i];
        if (epi == Epilogue::ReLU) {
          v = v > 0.0f ? v : 0.0f;
        } else if (epi == Epilogue::Sigmoid) {
          // Scalar exp keeps the lane bitwise equal to Sigmoid::forward.
          v = 1.0f / (1.0f + std::exp(-v));
        }
        ci[j] = v;
      }
    }
  }
}
#else
void conv_tile(std::size_t k2, std::size_t strip, const float* wpanel,
               const float* const* taps, std::size_t off, float* c,
               std::size_t ldc, std::size_t mr, std::size_t nr,
               const float* bias, Epilogue epi) {
  float acc[MR][NR];
  const float* wp = wpanel;
  for (std::size_t p0 = 0; p0 < k2; p0 += strip) {
    const std::size_t pe = std::min(p0 + strip, k2);
    float s[MR][NR] = {};
    for (std::size_t p = p0; p < pe; ++p, wp += MR) {
      const float* src = taps[p] + off;
      for (std::size_t i = 0; i < MR; ++i) {
        const float wi = wp[i];
        for (std::size_t j = 0; j < NR; ++j) s[i][j] += wi * src[j];
      }
    }
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t j = 0; j < NR; ++j) {
        acc[i][j] = p0 == 0 ? s[i][j] : acc[i][j] + s[i][j];
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = acc[i][j];
      if (bias) v += bias[i];
      if (epi == Epilogue::ReLU) {
        v = v > 0.0f ? v : 0.0f;
      } else if (epi == Epilogue::Sigmoid) {
        v = 1.0f / (1.0f + std::exp(-v));
      }
      ci[j] = v;
    }
  }
}
#endif

}  // namespace

void pad_image(const float* src, std::size_t c, std::size_t h, std::size_t w,
               std::size_t pad, float* dst) {
  const std::size_t ph = h + 2 * pad, pw = w + 2 * pad;
  if (pad == 0) {
    std::memcpy(dst, src, c * h * w * sizeof(float));
    std::memset(dst + c * h * w, 0, NR * sizeof(float));
    return;
  }
  // Zero only the border bytes: every interior row is fully overwritten
  // by the memcpy, so a whole-buffer memset would touch each image byte
  // twice. The buffer may be recycled (arbitrary contents), so every
  // byte of [dst, dst + c*ph*pw + NR) must still be written — the
  // segments below tile that range exactly.
  float* d = dst;
  for (std::size_t ch = 0; ch < c; ++ch) {
    // Top pad rows plus the first interior row's left pad.
    std::memset(d, 0, (pad * pw + pad) * sizeof(float));
    d += pad * pw + pad;
    const float* s = src + ch * h * w;
    for (std::size_t r = 0; r < h; ++r) {
      std::memcpy(d, s, w * sizeof(float));
      d += w;
      s += w;
      // Right pad of this row + left pad of the next row, contiguous;
      // after the last row this starts the bottom pad block.
      std::memset(d, 0, 2 * pad * sizeof(float));
      d += 2 * pad;
    }
    // Remainder of the bottom pad rows.
    std::memset(d, 0, (pad * pw - pad) * sizeof(float));
    d += pad * pw - pad;
  }
  std::memset(d, 0, NR * sizeof(float));
}

void pack_weights_fwd(const float* weight, std::size_t out_c, std::size_t k2,
                      float* out) {
  for (std::size_t t = 0; t * MR < out_c; ++t) {
    float* panel = out + t * (MR * k2);
    for (std::size_t p = 0; p < k2; ++p) {
      for (std::size_t i = 0; i < MR; ++i) {
        const std::size_t row = t * MR + i;
        panel[p * MR + i] = row < out_c ? weight[row * k2 + p] : 0.0f;
      }
    }
  }
}

void pack_weights_bwd(const float* weight, std::size_t in_c,
                      std::size_t out_c, std::size_t kernel, float* out) {
  const std::size_t kk = kernel * kernel;
  const std::size_t k2 = in_c * kk;    // forward reduction (weight row len)
  const std::size_t k2b = out_c * kk;  // backward reduction
  for (std::size_t t = 0; t * MR < in_c; ++t) {
    float* panel = out + t * (MR * k2b);
    std::size_t p = 0;
    for (std::size_t tap = 0; tap < kk; ++tap) {
      for (std::size_t oc = 0; oc < out_c; ++oc, ++p) {
        for (std::size_t i = 0; i < MR; ++i) {
          const std::size_t ch = t * MR + i;
          panel[p * MR + i] =
              ch < in_c ? weight[oc * k2 + ch * kk + tap] : 0.0f;
        }
      }
    }
  }
}

void direct_forward(const float* xpad, const float* wpack, const float* bias,
                    std::size_t in_c, std::size_t h, std::size_t w,
                    std::size_t kernel, std::size_t padding,
                    std::size_t out_c, Epilogue epi, float* out) {
  const std::size_t ph = h + 2 * padding, pw = w + 2 * padding;
  const std::size_t oh = ph - kernel + 1, ow = pw - kernel + 1;
  const std::size_t k2 = in_c * kernel * kernel;
  const std::size_t plane = oh * ow;
  // Tap p = c*k*k + ki*k + kj (the im2col row order); the pointer is the
  // tap's position for output pixel (0, 0), later offset by oh*pw + ow
  // (stride 1 makes every output row a contiguous padded-row segment).
  const float* taps[kMaxTaps];
  std::size_t p = 0;
  for (std::size_t c = 0; c < in_c; ++c) {
    for (std::size_t ki = 0; ki < kernel; ++ki) {
      for (std::size_t kj = 0; kj < kernel; ++kj, ++p) {
        taps[p] = xpad + (c * ph + ki) * pw + kj;
      }
    }
  }
  for (std::size_t r = 0; r < oh; ++r) {
    const std::size_t roff = r * pw;
    for (std::size_t j0 = 0; j0 < ow; j0 += NR) {
      const std::size_t nr = std::min(NR, ow - j0);
      for (std::size_t t = 0; t < out_c; t += MR) {
        const std::size_t mr = std::min(MR, out_c - t);
        conv_tile(k2, KC, wpack + (t / MR) * (MR * k2), taps, roff + j0,
                  out + t * plane + r * ow + j0, plane, mr, nr,
                  bias ? bias + t : nullptr, epi);
      }
    }
  }
}

void direct_input_grad(const float* gpad, const float* wpack,
                       std::size_t in_c, std::size_t h, std::size_t w,
                       std::size_t kernel, std::size_t padding,
                       std::size_t out_c, float* dx) {
  const std::size_t gh = h + kernel - 1, gw = w + kernel - 1;
  const std::size_t k2b = out_c * kernel * kernel;
  const std::size_t plane = h * w;
  // dx[c, ih, iw] = sum over taps (ki, kj) ascending — col2im's row
  // order — of the tap's completed out-channel sum. gpad carries
  // pad' = kernel-1-padding of zeros, so dx[ih][iw]'s tap (ki, kj)
  // reads gpad row ih + (kernel-1-ki), col iw + (kernel-1-kj); taps
  // whose unpadded output pixel is out of range read exact +0.0 terms
  // (the taps col2im skips).
  (void)padding;  // absorbed into gpad's pad'
  const float* taps[kMaxTaps];
  std::size_t p = 0;
  for (std::size_t ki = 0; ki < kernel; ++ki) {
    for (std::size_t kj = 0; kj < kernel; ++kj) {
      for (std::size_t oc = 0; oc < out_c; ++oc, ++p) {
        taps[p] =
            gpad + (oc * gh + (kernel - 1 - ki)) * gw + (kernel - 1 - kj);
      }
    }
  }
  for (std::size_t r = 0; r < h; ++r) {
    const std::size_t roff = r * gw;
    for (std::size_t j0 = 0; j0 < w; j0 += NR) {
      const std::size_t nr = std::min(NR, w - j0);
      for (std::size_t t = 0; t < in_c; t += MR) {
        const std::size_t mr = std::min(MR, in_c - t);
        conv_tile(k2b, out_c, wpack + (t / MR) * (MR * k2b), taps,
                  roff + j0, dx + t * plane + r * w + j0, plane, mr, nr,
                  nullptr, Epilogue::None);
      }
    }
  }
}

}  // namespace adv::conv
