// A small persistent thread pool with a deterministic parallel_for.
//
// parallel_for statically partitions [begin, end) into one contiguous chunk
// per worker, so the mapping from index to thread is a pure function of
// (range, thread count) — results of per-chunk reductions can be combined
// in a fixed order, keeping multi-threaded runs bit-identical.
//
// Exception safety: a task that throws no longer terminates the process.
// The first exception (from any chunk, including the caller's own) is
// captured, the remaining chunks drain normally, and parallel_for rethrows
// it on the calling thread; the pool stays usable afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adv {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `fn(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end). Blocks until all chunks finish. The calling thread
  /// executes one chunk itself. `fn` must not call parallel_for on the
  /// same pool (no nesting). If any chunk throws, the first exception is
  /// rethrown here after every other chunk has drained.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_for but also passes the chunk index (0-based, dense,
  /// < max_chunks()). Lets callers accumulate into per-chunk scratch
  /// buffers and reduce them in chunk order — deterministic regardless of
  /// scheduling.
  void parallel_for_indexed(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t chunk, std::size_t, std::size_t)>&
          fn);

  /// Upper bound on the chunk index parallel_for_indexed will pass.
  std::size_t max_chunks() const { return thread_count(); }

  /// Persistent per-chunk scratch buffer. A chunk index is owned by exactly
  /// one task at a time, so the body of a parallel_for_indexed may use
  /// chunk_scratch(chunk) freely; the buffer keeps its capacity across
  /// parallel_for calls, so steady-state hot loops (e.g. GEMM panel
  /// packing) allocate only once per pool lifetime.
  std::vector<float>& chunk_scratch(std::size_t chunk) {
    return scratch_.at(chunk);
  }

  /// Process-wide pool, created on first use with default_thread_count()
  /// threads. Thread count can be pinned with the ADV_THREADS environment
  /// variable (CI and shard workers use it to budget cores without code
  /// changes).
  static ThreadPool& global();

  /// Thread count the global pool is created with: the ADV_THREADS
  /// environment variable when set to a positive integer (it takes
  /// precedence over the detected core count), else
  /// std::thread::hardware_concurrency(), else 1.
  static unsigned default_thread_count();

  /// The ADV_THREADS override alone: a positive integer when the variable
  /// is set and valid, 0 when unset or malformed. Split out so tests and
  /// the shard driver can evaluate the policy without building a pool.
  static unsigned env_thread_override();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
        nullptr;
    std::size_t chunk = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    // steady_clock dispatch stamp (ns since epoch); 0 when obs is off.
    // Lets the worker report queue-wait time (pickup - dispatch).
    std::int64_t dispatch_ns = 0;
  };

  void worker_loop(std::size_t worker_index);
  void record_exception(std::exception_ptr e);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<Task> tasks_;        // one slot per worker
  std::vector<std::vector<float>> scratch_;  // one buffer per chunk slot
  std::uint64_t generation_ = 0;   // bumped per parallel_for call
  std::size_t pending_ = 0;
  bool shutdown_ = false;
  // First exception thrown by any chunk of the in-flight parallel_for;
  // cleared (and rethrown) by the caller once all chunks drain.
  std::exception_ptr first_exception_;
};

}  // namespace adv
