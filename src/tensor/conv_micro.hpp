// Direct-convolution microkernels for the small stride-1 shapes that
// dominate the MagNet models (3x3 "same" autoencoder/classifier convs).
//
// The im2col+GEMM path materializes a [C*k*k, out_h*out_w] column matrix
// per sample (a ~k^2 blow-up of the input) and then packs it AGAIN inside
// the GEMM. The direct path here keeps the input in a small zero-padded
// copy and streams taps straight out of it with the same MR x NR register
// tiling as the blocked GEMM microkernel (gemm.cpp) — output channels
// (resp. input channels on the backward pass) on the MR axis, output
// pixels of one row on the NR axis.
//
// Bitwise-identity contract (the bar every perf PR in this repo clears):
// for every output element the floating-point reduction runs in exactly
// the im2col+GEMM order — strictly sequential over the reduction index
// within a strip, strips combined in ascending order, one accumulator per
// element — and the surrounding code compiles in the same translation-
// unit ISA regime as gemm.cpp (see src/tensor/CMakeLists.txt), so
// mul+add contraction decisions match. Zero-padding taps contribute
// exact +0.0 terms, which cannot change an accumulator that started at
// +0.0 (such a sum is never -0.0), so reading padded zeros where im2col
// wrote zeros — or where col2im skipped an out-of-range tap — is
// bitwise invisible. Tests assert the identity per shape and thread
// count; DESIGN.md section 16 has the full argument.
#pragma once

#include <cstddef>

#include "tensor/gemm.hpp"  // gemm_blocking constants shared with the GEMM

namespace adv::conv {

/// Activation fused into the conv store epilogue (after the bias add),
/// bitwise-equal to running the standalone activation layer on the conv
/// output. Selected by the Sequential peephole (see nn/sequential.cpp).
enum class Epilogue { None, ReLU, Sigmoid };

/// Upper bound on the reduction length (in_c*k*k forward, out_c*k*k
/// backward) the kernels handle: the tap-pointer table lives on the
/// stack. Shapes beyond it fall back to im2col+GEMM.
inline constexpr std::size_t kMaxTaps = 2048;

/// True when the direct kernels cover this layer shape. Stride > 1 and
/// padding >= kernel fall back to im2col+GEMM (the backward full
/// correlation needs pad' = kernel-1-padding >= 0), as do reductions
/// past kMaxTaps and out_channels past one KC strip (the backward path
/// maps GEMM KC strips onto whole taps, one tap = out_channels terms).
inline bool direct_supported(std::size_t in_c, std::size_t out_c,
                             std::size_t kernel, std::size_t stride,
                             std::size_t padding) {
  return stride == 1 && kernel > 0 && kernel <= 7 && padding < kernel &&
         in_c * kernel * kernel <= kMaxTaps &&
         out_c * kernel * kernel <= kMaxTaps &&
         out_c <= gemm_blocking::KC;
}

/// Floats needed for one zero-padded sample copy [c, h+2p, w+2p], plus NR
/// floats of zeroed slack so full-width vector loads at row tails never
/// read past the allocation.
inline std::size_t padded_size(std::size_t c, std::size_t h, std::size_t w,
                               std::size_t pad) {
  return c * (h + 2 * pad) * (w + 2 * pad) + gemm_blocking::NR;
}

/// Zero-fills dst (padded_size floats) and copies src [c, h, w] into the
/// interior. memcpy/memset preserve bit patterns, so padded reads are
/// bitwise the values im2col would have produced.
void pad_image(const float* src, std::size_t c, std::size_t h, std::size_t w,
               std::size_t pad, float* dst);

/// Floats needed by pack_weights_fwd: ceil(out_c/MR) panels of MR*k2.
inline std::size_t packed_fwd_size(std::size_t out_c, std::size_t k2) {
  const std::size_t tiles =
      (out_c + gemm_blocking::MR - 1) / gemm_blocking::MR;
  return tiles * gemm_blocking::MR * k2;
}

/// Packs weight [out_c, k2] into MR-row panels laid out reduction-major
/// (panel[p*MR + i] = w[(tile*MR+i)*k2 + p]), zero-padded to full MR —
/// the same A-panel layout the GEMM packs per KC strip, stored whole.
void pack_weights_fwd(const float* weight, std::size_t out_c, std::size_t k2,
                      float* out);

/// Floats needed by pack_weights_bwd: ceil(in_c/MR) panels of
/// MR * (out_c*kernel*kernel).
inline std::size_t packed_bwd_size(std::size_t in_c, std::size_t out_c,
                                   std::size_t kernel) {
  const std::size_t tiles =
      (in_c + gemm_blocking::MR - 1) / gemm_blocking::MR;
  return tiles * gemm_blocking::MR * (out_c * kernel * kernel);
}

/// Packs weight [out_c, in_c*k*k] for the input-gradient kernel: panel
/// rows are INPUT channels, the reduction index runs tap-major /
/// out-channel-minor (p = (ki*k + kj)*out_c + oc), matching col2im's
/// tap-ascending accumulation order with each tap's out-channel sum
/// completed first.
void pack_weights_bwd(const float* weight, std::size_t in_c,
                      std::size_t out_c, std::size_t kernel, float* out);

/// One-sample direct forward: out[oc, oh, ow] = bias[oc] + sum over
/// (c, ki, kj) of w * xpad, with `epi` applied last. xpad is the
/// pad_image copy (pad = padding); out is fully overwritten
/// ([out_c, h+2p-k+1, w+2p-k+1]). bias may be null (no add).
void direct_forward(const float* xpad, const float* wpack, const float* bias,
                    std::size_t in_c, std::size_t h, std::size_t w,
                    std::size_t kernel, std::size_t padding,
                    std::size_t out_c, Epilogue epi, float* out);

/// One-sample direct input gradient (stride 1): full correlation of the
/// output gradient with the unflipped kernel. gpad is the pad_image copy
/// of the [out_c, oh, ow] gradient sample with pad = kernel-1-padding;
/// dx [in_c, h, w] is fully overwritten.
void direct_input_grad(const float* gpad, const float* wpack,
                       std::size_t in_c, std::size_t h, std::size_t w,
                       std::size_t kernel, std::size_t padding,
                       std::size_t out_c, float* dx);

}  // namespace adv::conv
