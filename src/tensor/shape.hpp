// Shape: a small value type describing the extent of each tensor dimension.
//
// Tensors in this library are dense, contiguous and row-major. A Shape is a
// short sequence of extents; rank 0 denotes an empty/default tensor.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace adv {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  /// Number of dimensions.
  std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `i`. Throws std::out_of_range on a bad index.
  std::size_t operator[](std::size_t i) const { return dims_.at(i); }

  /// Total number of elements (product of extents; 1 for rank 0 is NOT
  /// assumed — an empty shape has 0 elements, matching a default tensor).
  std::size_t numel() const {
    if (dims_.empty()) return 0;
    return std::accumulate(dims_.begin(), dims_.end(), std::size_t{1},
                           std::multiplies<>());
  }

  const std::vector<std::size_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const = default;

  /// Human-readable form, e.g. "[32, 1, 28, 28]".
  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace adv
