#include "tensor/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

using gemm_blocking::KC;
using gemm_blocking::MC;
using gemm_blocking::MR;
using gemm_blocking::NR;

// Below this many multiply-adds the pool handoff costs more than it saves.
constexpr std::size_t kParallelMinWork = 64 * 1024;

void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank 2, got " + t.shape_string());
  }
}

// A row-major operand, optionally transposed: logical (i, j) reads
// data[j * ld + i] when trans is set. Packing absorbs the transpose, so
// the compute kernels below never see strided operands.
struct OperandView {
  const float* data;
  std::size_t ld;
  bool trans;
};

// Packs rows [r0, r0 + rows) x cols [pc, pc + kc) of A into MR-row panels:
// panel t holds rows r0 + t*MR .. +MR, laid out k-major (out[p*MR + i]),
// zero-padded to a full MR so edge tiles run the same microkernel.
void pack_a(const OperandView& a, std::size_t r0, std::size_t rows,
            std::size_t pc, std::size_t kc, float* out) {
  for (std::size_t ir = 0; ir < rows; ir += MR) {
    const std::size_t mr = std::min(MR, rows - ir);
    float* panel = out + (ir / MR) * (MR * kc);
    if (a.trans) {
      // a stored [K, M]: logical column p is a contiguous storage row.
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = a.data + (pc + p) * a.ld + r0 + ir;
        float* dst = panel + p * MR;
        for (std::size_t i = 0; i < mr; ++i) dst[i] = src[i];
        for (std::size_t i = mr; i < MR; ++i) dst[i] = 0.0f;
      }
    } else {
      for (std::size_t i = 0; i < mr; ++i) {
        const float* src = a.data + (r0 + ir + i) * a.ld + pc;
        for (std::size_t p = 0; p < kc; ++p) panel[p * MR + i] = src[p];
      }
      for (std::size_t i = mr; i < MR; ++i) {
        for (std::size_t p = 0; p < kc; ++p) panel[p * MR + i] = 0.0f;
      }
    }
  }
}

// Packs the whole of B into KC-strip / NR-panel layout: strip kb covers
// k-rows [kb*KC, kb*KC + kc); within a strip, panel jp holds columns
// jp*NR .. +NR laid out k-major (out[p*NR + j]), zero-padded to NR.
// Strip kb starts at kb * KC * npanels * NR (only the last strip is
// short, so earlier offsets are exact).
void pack_b(const OperandView& b, std::size_t k, std::size_t n, float* out) {
  const std::size_t npanels = (n + NR - 1) / NR;
  for (std::size_t pc = 0, kb = 0; pc < k; pc += KC, ++kb) {
    const std::size_t kc = std::min(KC, k - pc);
    float* strip = out + kb * KC * npanels * NR;
    for (std::size_t jp = 0; jp < npanels; ++jp) {
      const std::size_t j0 = jp * NR;
      const std::size_t nr = std::min(NR, n - j0);
      float* panel = strip + jp * (kc * NR);
      if (b.trans) {
        // b stored [N, K]: logical column j is a contiguous storage row.
        for (std::size_t j = 0; j < nr; ++j) {
          const float* src = b.data + (j0 + j) * b.ld + pc;
          for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = src[p];
        }
        for (std::size_t j = nr; j < NR; ++j) {
          for (std::size_t p = 0; p < kc; ++p) panel[p * NR + j] = 0.0f;
        }
      } else {
        for (std::size_t p = 0; p < kc; ++p) {
          const float* src = b.data + (pc + p) * b.ld + j0;
          float* dst = panel + p * NR;
          for (std::size_t j = 0; j < nr; ++j) dst[j] = src[j];
          for (std::size_t j = nr; j < NR; ++j) dst[j] = 0.0f;
        }
      }
    }
  }
}

// Register-blocked microkernel: acc[MR][NR] += sum_p ap[p]*bp[p] over the
// packed panels, then written to C. The k loop is strictly sequential with
// one accumulator per C element, so each element's floating-point
// reduction order depends only on the KC blocking — never on which tile,
// chunk or thread computed it. That is the determinism argument.
#if defined(__GNUC__) || defined(__clang__)
// 8-lane float vector, unaligned-load capable. NR = 2 lanes-groups keeps
// 12 vector accumulators + 2 B vectors live — a full AVX2 register file,
// and the compiler fuses the scalar broadcast into the FMA on AVX-512.
typedef float vf8 __attribute__((vector_size(32), aligned(4), may_alias));

void micro_kernel(std::size_t kc, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  bool add_into) {
  static_assert(NR == 16, "microkernel assumes two 8-lane column groups");
  vf8 acc0[MR] = {};
  vf8 acc1[MR] = {};
  for (std::size_t p = 0; p < kc; ++p, ap += MR, bp += NR) {
    const vf8 b0 = *reinterpret_cast<const vf8*>(bp);
    const vf8 b1 = *reinterpret_cast<const vf8*>(bp + 8);
    for (std::size_t i = 0; i < MR; ++i) {
      acc0[i] += ap[i] * b0;
      acc1[i] += ap[i] * b1;
    }
  }
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      vf8* c0 = reinterpret_cast<vf8*>(c + i * ldc);
      vf8* c1 = reinterpret_cast<vf8*>(c + i * ldc + 8);
      if (add_into) {
        *c0 += acc0[i];
        *c1 += acc1[i];
      } else {
        *c0 = acc0[i];
        *c1 = acc1[i];
      }
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      float* ci = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        const float v = j < 8 ? acc0[i][j] : acc1[i][j - 8];
        ci[j] = add_into ? ci[j] + v : v;
      }
    }
  }
}
#else
void micro_kernel(std::size_t kc, const float* ap, const float* bp, float* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr,
                  bool add_into) {
  float acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p, ap += MR, bp += NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      const float ai = ap[i];
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += ai * bp[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      ci[j] = add_into ? ci[j] + acc[i][j] : acc[i][j];
    }
  }
}
#endif

// Computes rows [r0, r1) of C from packed B, packing A blocks into
// `a_scratch` on the fly. Each KC strip accumulates into C in a fixed
// order, so any row partition yields bit-identical results.
void gemm_rows_blocked(const OperandView& a, const float* bpacked,
                       float* c, std::size_t r0, std::size_t r1,
                       std::size_t k, std::size_t n, bool accumulate,
                       std::vector<float>& a_scratch) {
  const std::size_t npanels = (n + NR - 1) / NR;
  if (a_scratch.size() < MC * KC) a_scratch.resize(MC * KC);
  for (std::size_t pc = 0, kb = 0; pc < k; pc += KC, ++kb) {
    const std::size_t kc = std::min(KC, k - pc);
    const bool add_into = accumulate || pc > 0;
    const float* strip = bpacked + kb * KC * npanels * NR;
    for (std::size_t ic = r0; ic < r1; ic += MC) {
      const std::size_t mc = std::min(MC, r1 - ic);
      pack_a(a, ic, mc, pc, kc, a_scratch.data());
      for (std::size_t jp = 0; jp < npanels; ++jp) {
        const std::size_t j0 = jp * NR;
        const std::size_t nr = std::min(NR, n - j0);
        const float* bp = strip + jp * (kc * NR);
        for (std::size_t ir = 0; ir < mc; ir += MR) {
          const std::size_t mr = std::min(MR, mc - ir);
          micro_kernel(kc, a_scratch.data() + (ir / MR) * (MR * kc), bp,
                       c + (ic + ir) * n + j0, n, mr, nr, add_into);
        }
      }
    }
  }
}

void gemm_core(const OperandView& a, const OperandView& b, float* c,
               std::size_t m, std::size_t k, std::size_t n,
               const GemmOpts& opts) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!opts.accumulate) std::memset(c, 0, m * n * sizeof(float));
    return;
  }
  // Per-shape throughput accounting ("gemm/MxKxN" timer + flops counter;
  // emitters derive GFLOP/s as flops/total_ns). One enabled() load when
  // instrumentation is off.
  const bool observe = obs::enabled();
  std::chrono::steady_clock::time_point obs_t0;
  if (observe) obs_t0 = std::chrono::steady_clock::now();
  // Pack B once into the calling thread's persistent buffer; worker
  // chunks read it shared. Per-chunk A scratch comes from the pool so the
  // buffers survive across calls (no steady-state allocation).
  static thread_local std::vector<float> b_scratch;
  const std::size_t npanels = (n + NR - 1) / NR;
  if (b_scratch.size() < k * npanels * NR) b_scratch.resize(k * npanels * NR);
  pack_b(b, k, n, b_scratch.data());

  ThreadPool& pool = opts.pool ? *opts.pool : ThreadPool::global();
  if (opts.parallel && m * k * n >= kParallelMinWork &&
      pool.thread_count() > 1) {
    const float* bp = b_scratch.data();
    pool.parallel_for_indexed(
        0, m, [&, bp](std::size_t chunk, std::size_t r0, std::size_t r1) {
          gemm_rows_blocked(a, bp, c, r0, r1, k, n, opts.accumulate,
                            pool.chunk_scratch(chunk));
        });
  } else {
    static thread_local std::vector<float> a_scratch;
    gemm_rows_blocked(a, b_scratch.data(), c, 0, m, k, n, opts.accumulate,
                      a_scratch);
  }

  if (observe) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - obs_t0);
    auto& reg = obs::MetricsRegistry::global();
    const std::string key = "gemm/" + std::to_string(m) + "x" +
                            std::to_string(k) + "x" + std::to_string(n);
    reg.timer(key).record_ns(static_cast<std::uint64_t>(ns.count()));
    reg.counter(key + "/flops").add(2ull * m * k * n);
  }
}

// Shapes the output tensor, or validates it when accumulating into it.
void prepare_c(Tensor& c, std::size_t m, std::size_t n, bool accumulate) {
  if (c.rank() == 2 && c.dim(0) == m && c.dim(1) == n) return;
  if (accumulate) {
    throw std::invalid_argument(
        "gemm: accumulate requires c pre-shaped [" + std::to_string(m) +
        ", " + std::to_string(n) + "], got " + c.shape_string());
  }
  c = Tensor({m, n});
}

}  // namespace

void gemm_raw(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, const GemmOpts& opts) {
  gemm_core({a, k, false}, {b, n, false}, c, m, k, n, opts);
}

void gemm_at_b_raw(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const GemmOpts& opts) {
  gemm_core({a, m, true}, {b, n, false}, c, m, k, n, opts);
}

void gemm_a_bt_raw(const float* a, const float* b, float* c, std::size_t m,
                   std::size_t k, std::size_t n, const GemmOpts& opts) {
  gemm_core({a, k, false}, {b, k, true}, c, m, k, n, opts);
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c, const GemmOpts& opts) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm: inner dims differ: " +
                                a.shape_string() + " * " + b.shape_string());
  }
  prepare_c(c, m, n, opts.accumulate);
  gemm_raw(a.data(), b.data(), c.data(), m, k, n, opts);
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c,
               const GemmOpts& opts) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  // a is stored [K, M]; logical op is A^T(M,K) * B(K,N).
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm_at_b: inner dims differ: " +
                                a.shape_string() + "^T * " +
                                b.shape_string());
  }
  prepare_c(c, m, n, opts.accumulate);
  gemm_at_b_raw(a.data(), b.data(), c.data(), m, k, n, opts);
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c,
               const GemmOpts& opts) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  // b is stored [N, K]; logical op is A(M,K) * B^T(K,N).
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("gemm_a_bt: inner dims differ: " +
                                a.shape_string() + " * " + b.shape_string() +
                                "^T");
  }
  prepare_c(c, m, n, opts.accumulate);
  gemm_a_bt_raw(a.data(), b.data(), c.data(), m, k, n, opts);
}

}  // namespace adv
