#include "tensor/gemm.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/thread_pool.hpp"

namespace adv {
namespace {

void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name +
                                " must be rank 2, got " + t.shape_string());
  }
}

// Computes rows [r0, r1) of c = a * b with an i-k-j loop: the inner j loop
// is a unit-stride FMA over b's row, which the compiler vectorizes.
void gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
               std::size_t r1, std::size_t k, std::size_t n,
               bool accumulate) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    if (!accumulate) std::memset(ci, 0, n * sizeof(float));
    const float* ai = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = ai[kk];
      if (aik == 0.0f) continue;  // sparse gradients are common in ReLU nets
      const float* bk = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

}  // namespace

void gemm_raw(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate, bool parallel) {
  if (m == 0 || n == 0) return;
  // Only parallelize when the work amortizes the pool handoff.
  if (parallel && m * k * n >= 64 * 1024) {
    ThreadPool::global().parallel_for(0, m, [&](std::size_t b0,
                                                std::size_t b1) {
      gemm_rows(a, b, c, b0, b1, k, n, accumulate);
    });
  } else {
    gemm_rows(a, b, c, 0, m, k, n, accumulate);
  }
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm: inner dims differ: " +
                                a.shape_string() + " * " + b.shape_string());
  }
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n) c = Tensor({m, n});
  gemm_raw(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/false);
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  // a is stored [K, M]; logical op is A^T(M,K) * B(K,N).
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("gemm_at_b: inner dims differ: " +
                                a.shape_string() + "^T * " +
                                b.shape_string());
  }
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n) c = Tensor({m, n});
  c.fill(0.0f);
  // Parallelize over output rows (columns of stored a): chunk [m0, m1).
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  auto body = [&](std::size_t m0, std::size_t m1) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n;
      const float* arow = pa + kk * m;
      for (std::size_t i = m0; i < m1; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
  };
  if (m * k * n >= 64 * 1024) {
    ThreadPool::global().parallel_for(0, m, body);
  } else {
    body(0, m);
  }
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  // b is stored [N, K]; logical op is A(M,K) * B^T(K,N).
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("gemm_a_bt: inner dims differ: " +
                                a.shape_string() + " * " + b.shape_string() +
                                "^T");
  }
  if (c.rank() != 2 || c.dim(0) != m || c.dim(1) != n) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  auto body = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
        crow[j] = static_cast<float>(acc);
      }
    }
  };
  if (m * k * n >= 64 * 1024) {
    ThreadPool::global().parallel_for(0, m, body);
  } else {
    body(0, m);
  }
}

}  // namespace adv
