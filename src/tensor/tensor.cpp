#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace adv {

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  if (shape.numel() != data.size()) {
    throw std::invalid_argument("Tensor::from_data: shape " +
                                shape.to_string() + " expects " +
                                std::to_string(shape.numel()) +
                                " elements, got " +
                                std::to_string(data.size()));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: cannot view " +
                                shape_.to_string() + " as " +
                                new_shape.to_string());
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::reshape(Shape new_shape) {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape: cannot view " +
                                shape_.to_string() + " as " +
                                new_shape.to_string());
  }
  shape_ = std::move(new_shape);
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  if (rank() == 0 || begin > end || end > shape_[0]) {
    throw std::out_of_range("Tensor::slice_rows: bad range [" +
                            std::to_string(begin) + ", " +
                            std::to_string(end) + ") for shape " +
                            shape_.to_string());
  }
  const std::size_t row_stride = shape_[0] ? numel() / shape_[0] : 0;
  std::vector<std::size_t> dims = shape_.dims();
  dims[0] = end - begin;
  Tensor out{Shape(dims)};
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * row_stride),
            data_.begin() + static_cast<std::ptrdiff_t>(end * row_stride),
            out.data());
  return out;
}

void Tensor::set_rows(std::size_t begin, const Tensor& rows) {
  if (rank() == 0 || rows.rank() == 0) {
    throw std::invalid_argument("Tensor::set_rows: empty tensor");
  }
  const std::size_t row_stride = numel() / shape_[0];
  const std::size_t src_rows = rows.dim(0);
  if (rows.numel() != src_rows * row_stride || begin + src_rows > shape_[0]) {
    throw std::invalid_argument("Tensor::set_rows: shape mismatch writing " +
                                rows.shape_string() + " into " +
                                shape_.to_string() + " at row " +
                                std::to_string(begin));
  }
  std::copy(rows.data(), rows.data() + rows.numel(),
            data_.begin() + static_cast<std::ptrdiff_t>(begin * row_stride));
}

}  // namespace adv
