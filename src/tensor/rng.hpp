// Deterministic pseudo-random number generation.
//
// All stochastic components (weight init, data synthesis, shuffling,
// dropout) draw from Xoshiro256** seeded through SplitMix64, so every
// experiment is bit-reproducible from a single root seed regardless of
// thread count (parallel code never shares a generator; it forks child
// generators with `fork()`).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace adv {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality general-purpose PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  float uniform_f(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Standard normal via Box-Muller (one value per call; cheap enough here).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::size_t uniform_index(std::size_t n) {
    // Modulo bias is negligible for the n used here (n << 2^64).
    return static_cast<std::size_t>(next_u64() % n);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-sample determinism
  /// independent of iteration order).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace adv
