#include "tensor/gemm_int8.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/thread_pool.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace adv {
namespace {

using gemm_int8_blocking::KC;
using gemm_int8_blocking::KQ;
using gemm_int8_blocking::MC;
using gemm_int8_blocking::MR;
using gemm_int8_blocking::NR;

// Below this many multiply-adds the pool handoff costs more than it saves
// (same threshold as the float kernel — the per-op cost is lower but so is
// the per-byte traffic).
constexpr std::size_t kParallelMinWork = 64 * 1024;

// Packs rows [r0, r0 + rows) x k-cols [pc, pc + kc) of A (u8, row-major,
// leading dimension lda) into MR-row quad-major panels: panel t holds rows
// r0 + t*MR .. +MR; within a panel, quad q stores each row's 4 consecutive
// k-bytes contiguously (out[q*MR*KQ + i*KQ + t]) so the microkernel
// broadcasts them with one 32-bit load. Rows and k are zero-padded to full
// MR / KQ; padded k-bytes meet zero B-bytes, padded rows are never stored.
void pack_a_u8(const std::uint8_t* a, std::size_t lda, std::size_t r0,
               std::size_t rows, std::size_t pc, std::size_t kc,
               std::uint8_t* out) {
  const std::size_t kq = (kc + KQ - 1) / KQ;
  const std::size_t kq_full = kc / KQ;
  for (std::size_t ir = 0; ir < rows; ir += MR) {
    const std::size_t mr = std::min(MR, rows - ir);
    std::uint8_t* panel = out + (ir / MR) * (MR * KQ * kq);
    if (mr == MR) {
      // Full tile: every quad is one unconditional 4-byte word move per
      // row. Packing is pure data movement, and for small-k shapes (conv
      // im2col with k = C*3*3) it rivals the dot products themselves — the
      // per-byte liveness-checked path below costs ~4x as much.
      for (std::size_t q = 0; q < kq_full; ++q) {
        std::uint8_t* dst = panel + q * (MR * KQ);
        for (std::size_t i = 0; i < MR; ++i) {
          std::memcpy(dst + i * KQ, a + (r0 + ir + i) * lda + pc + q * KQ,
                      KQ);
        }
      }
      for (std::size_t q = kq_full; q < kq; ++q) {
        std::uint8_t* dst = panel + q * (MR * KQ);
        for (std::size_t i = 0; i < MR; ++i) {
          const std::uint8_t* src = a + (r0 + ir + i) * lda + pc + q * KQ;
          for (std::size_t t = 0; t < KQ; ++t) {
            dst[i * KQ + t] = q * KQ + t < kc ? src[t] : 0;
          }
        }
      }
      continue;
    }
    for (std::size_t q = 0; q < kq; ++q) {
      std::uint8_t* dst = panel + q * (MR * KQ);
      for (std::size_t i = 0; i < MR; ++i) {
        const std::uint8_t* src = a + (r0 + ir + i) * lda + pc + q * KQ;
        for (std::size_t t = 0; t < KQ; ++t) {
          const bool live = i < mr && q * KQ + t < kc;
          dst[i * KQ + t] = live ? src[t] : 0;
        }
      }
    }
  }
}

std::size_t strip_bytes(std::size_t kc, std::size_t npanels) {
  const std::size_t kq = (kc + KQ - 1) / KQ;
  return kq * KQ * NR * npanels;
}

#if defined(__AVX2__)

// One u8 x s8 quad dot-product step: acc[j] += sum_t a[4t..] * b[j*4+t]
// over 8 int32 lanes (8 columns x 4 k-bytes).
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
inline __m256i dp_u8s8(__m256i acc, __m256i a, __m256i b) {
  return _mm256_dpbusd_epi32(acc, a, b);
}
constexpr bool kExact = true;
constexpr const char* kKernelName = "avx512-vnni";
#elif defined(__AVXVNNI__)
inline __m256i dp_u8s8(__m256i acc, __m256i a, __m256i b) {
  return _mm256_dpbusd_avx_epi32(acc, a, b);
}
constexpr bool kExact = true;
constexpr const char* kKernelName = "avx-vnni";
#else
// Pre-VNNI fallback: maddubs forms saturating int16 pair-sums, madd with
// ones widens to the quad int32. Deterministic, but a pair of products
// past +/-32767 clamps — gemm_int8_exact() reports false so tests and CI
// refuse to certify accuracy on such builds.
inline __m256i dp_u8s8(__m256i acc, __m256i a, __m256i b) {
  const __m256i pairs = _mm256_maddubs_epi16(a, b);
  const __m256i quads = _mm256_madd_epi16(pairs, _mm256_set1_epi16(1));
  return _mm256_add_epi32(acc, quads);
}
constexpr bool kExact = false;
constexpr const char* kKernelName = "avx2-maddubs";
#endif

// Register-blocked microkernel: 12 int32 accumulator vectors (MR rows x
// two 8-column groups) walked over k-quads. Integer adds are associative,
// so no bracketing argument is needed — any decomposition is exact.
void micro_kernel_i8(std::size_t kq, const std::uint8_t* ap,
                     const std::int8_t* bp, std::int32_t* c, std::size_t ldc,
                     std::size_t mr, std::size_t nr, bool add_into) {
  static_assert(NR == 16, "microkernel assumes two 8-column int32 groups");
  static_assert(KQ == 4, "dpbusd consumes 4 k-bytes per lane");
  __m256i acc0[MR];
  __m256i acc1[MR];
  for (std::size_t i = 0; i < MR; ++i) {
    acc0[i] = _mm256_setzero_si256();
    acc1[i] = _mm256_setzero_si256();
  }
  for (std::size_t q = 0; q < kq; ++q, ap += MR * KQ, bp += NR * KQ) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + 32));
    for (std::size_t i = 0; i < MR; ++i) {
      std::int32_t quad;
      std::memcpy(&quad, ap + i * KQ, sizeof(quad));
      const __m256i av = _mm256_set1_epi32(quad);
      acc0[i] = dp_u8s8(acc0[i], av, b0);
      acc1[i] = dp_u8s8(acc1[i], av, b1);
    }
  }
  if (mr == MR && nr == NR) {
    for (std::size_t i = 0; i < MR; ++i) {
      __m256i* c0 = reinterpret_cast<__m256i*>(c + i * ldc);
      __m256i* c1 = reinterpret_cast<__m256i*>(c + i * ldc + 8);
      if (add_into) {
        _mm256_storeu_si256(c0,
                            _mm256_add_epi32(_mm256_loadu_si256(c0), acc0[i]));
        _mm256_storeu_si256(c1,
                            _mm256_add_epi32(_mm256_loadu_si256(c1), acc1[i]));
      } else {
        _mm256_storeu_si256(c0, acc0[i]);
        _mm256_storeu_si256(c1, acc1[i]);
      }
    }
  } else {
    alignas(32) std::int32_t buf[NR];
    for (std::size_t i = 0; i < mr; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(buf), acc0[i]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), acc1[i]);
      std::int32_t* ci = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) {
        ci[j] = add_into ? ci[j] + buf[j] : buf[j];
      }
    }
  }
}

#else  // !__AVX2__

constexpr bool kExact = true;
constexpr const char* kKernelName = "scalar";

void micro_kernel_i8(std::size_t kq, const std::uint8_t* ap,
                     const std::int8_t* bp, std::int32_t* c, std::size_t ldc,
                     std::size_t mr, std::size_t nr, bool add_into) {
  std::int32_t acc[MR][NR] = {};
  for (std::size_t q = 0; q < kq; ++q, ap += MR * KQ, bp += NR * KQ) {
    for (std::size_t i = 0; i < MR; ++i) {
      for (std::size_t t = 0; t < KQ; ++t) {
        const std::int32_t ai = ap[i * KQ + t];
        for (std::size_t j = 0; j < NR; ++j) {
          acc[i][j] += ai * static_cast<std::int32_t>(bp[j * KQ + t]);
        }
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    std::int32_t* ci = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      ci[j] = add_into ? ci[j] + acc[i][j] : acc[i][j];
    }
  }
}

#endif  // __AVX2__

// Computes rows [r0, r1) of C from packed B, packing A blocks into a
// per-thread scratch buffer on the fly. Mirrors the float
// gemm_rows_blocked; pool workers are persistent so the thread_local
// scratch allocates once per thread lifetime.
void gemm_rows_blocked_i8(const std::uint8_t* a, std::size_t lda,
                          const std::int8_t* bpacked, std::int32_t* c,
                          std::size_t r0, std::size_t r1, std::size_t k,
                          std::size_t n, bool accumulate) {
  static thread_local std::vector<std::uint8_t> a_scratch;
  if (a_scratch.size() < MC * KC) a_scratch.resize(MC * KC);
  const std::size_t npanels = (n + NR - 1) / NR;
  std::size_t strip_off = 0;
  for (std::size_t pc = 0; pc < k; pc += KC) {
    const std::size_t kc = std::min(KC, k - pc);
    const std::size_t kq = (kc + KQ - 1) / KQ;
    const bool add_into = accumulate || pc > 0;
    const std::int8_t* strip = bpacked + strip_off;
    strip_off += strip_bytes(kc, npanels);
    for (std::size_t ic = r0; ic < r1; ic += MC) {
      const std::size_t mc = std::min(MC, r1 - ic);
      pack_a_u8(a, lda, ic, mc, pc, kc, a_scratch.data());
      for (std::size_t jp = 0; jp < npanels; ++jp) {
        const std::size_t j0 = jp * NR;
        const std::size_t nr = std::min(NR, n - j0);
        const std::int8_t* bp = strip + jp * (kq * KQ * NR);
        for (std::size_t ir = 0; ir < mc; ir += MR) {
          const std::size_t mr = std::min(MR, mc - ir);
          micro_kernel_i8(kq, a_scratch.data() + (ir / MR) * (MR * KQ * kq),
                          bp, c + (ic + ir) * n + j0, n, mr, nr, add_into);
        }
      }
    }
  }
}

}  // namespace

bool gemm_int8_exact() { return kExact; }

const char* gemm_int8_kernel_name() { return kKernelName; }

std::size_t packed_b_int8_size(std::size_t k, std::size_t n) {
  const std::size_t npanels = (n + NR - 1) / NR;
  std::size_t bytes = 0;
  for (std::size_t pc = 0; pc < k; pc += KC) {
    bytes += strip_bytes(std::min(KC, k - pc), npanels);
  }
  return bytes;
}

void pack_b_s8(const std::int8_t* b, std::size_t k, std::size_t n,
               std::int8_t* out) {
  const std::size_t npanels = (n + NR - 1) / NR;
  std::size_t strip_off = 0;
  for (std::size_t pc = 0; pc < k; pc += KC) {
    const std::size_t kc = std::min(KC, k - pc);
    const std::size_t kq = (kc + KQ - 1) / KQ;
    std::int8_t* strip = out + strip_off;
    strip_off += strip_bytes(kc, npanels);
    for (std::size_t jp = 0; jp < npanels; ++jp) {
      const std::size_t j0 = jp * NR;
      const std::size_t nr = std::min(NR, n - j0);
      std::int8_t* panel = strip + jp * (kq * KQ * NR);
      for (std::size_t q = 0; q < kq; ++q) {
        std::int8_t* dst = panel + q * (NR * KQ);
        for (std::size_t j = 0; j < NR; ++j) {
          for (std::size_t t = 0; t < KQ; ++t) {
            const std::size_t p = pc + q * KQ + t;
            const bool live = j < nr && q * KQ + t < kc;
            dst[j * KQ + t] = live ? b[p * n + j0 + j] : 0;
          }
        }
      }
    }
  }
}

void gemm_u8s8_packed(const std::uint8_t* a, const std::int8_t* b_packed,
                      std::int32_t* c, std::size_t m, std::size_t k,
                      std::size_t n, const GemmOpts& opts) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!opts.accumulate) std::memset(c, 0, m * n * sizeof(std::int32_t));
    return;
  }
  // Per-shape throughput accounting ("quant/gemm/MxKxN" timer + ops
  // counter); one enabled() load when instrumentation is off.
  const bool observe = obs::enabled();
  std::chrono::steady_clock::time_point obs_t0;
  if (observe) obs_t0 = std::chrono::steady_clock::now();

  ThreadPool& pool = opts.pool ? *opts.pool : ThreadPool::global();
  if (opts.parallel && m * k * n >= kParallelMinWork &&
      pool.thread_count() > 1) {
    pool.parallel_for_indexed(
        0, m, [&](std::size_t, std::size_t r0, std::size_t r1) {
          gemm_rows_blocked_i8(a, k, b_packed, c, r0, r1, k, n,
                               opts.accumulate);
        });
  } else {
    gemm_rows_blocked_i8(a, k, b_packed, c, 0, m, k, n, opts.accumulate);
  }

  if (observe) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - obs_t0);
    auto& reg = obs::MetricsRegistry::global();
    const std::string key = "quant/gemm/" + std::to_string(m) + "x" +
                            std::to_string(k) + "x" + std::to_string(n);
    reg.timer(key).record_ns(static_cast<std::uint64_t>(ns.count()));
    reg.counter(key + "/ops").add(2ull * m * k * n);
  }
}

void gemm_u8s8(const std::uint8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n,
               const GemmOpts& opts) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!opts.accumulate) std::memset(c, 0, m * n * sizeof(std::int32_t));
    return;
  }
  static thread_local std::vector<std::int8_t> b_scratch;
  const std::size_t need = packed_b_int8_size(k, n);
  if (b_scratch.size() < need) b_scratch.resize(need);
  pack_b_s8(b, k, n, b_scratch.data());
  gemm_u8s8_packed(a, b_scratch.data(), c, m, k, n, opts);
}

void colsum_s8(const std::int8_t* b, std::size_t k, std::size_t n,
               std::int32_t* out) {
  std::memset(out, 0, n * sizeof(std::int32_t));
  for (std::size_t p = 0; p < k; ++p) {
    const std::int8_t* row = b + p * n;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

void quantize_u8(const float* x, std::size_t n, float inv_scale,
                 std::uint8_t* out) {
  std::size_t i = 0;
#if defined(__AVX2__)
  // 32 floats -> 32 bytes per iteration: scale, round-to-nearest-even
  // (cvtps under the default MXCSR mode matches lrintf), clamp to the
  // symmetric int8 range, shift by +128 into [1, 255], then narrow
  // 32->16->8 bits. packs/packus interleave 128-bit lanes, so a final
  // dword permute restores source order. Saturating packs can't clip:
  // values are already in [1, 255] before narrowing.
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256i lo = _mm256_set1_epi32(-127);
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i off = _mm256_set1_epi32(128);
  const __m256i unlane = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  for (; i + 32 <= n; i += 32) {
    __m256i v[4];
    for (int t = 0; t < 4; ++t) {
      const __m256 f = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * t), inv);
      __m256i q = _mm256_cvtps_epi32(f);
      q = _mm256_min_epi32(_mm256_max_epi32(q, lo), hi);
      v[t] = _mm256_add_epi32(q, off);
    }
    const __m256i w01 = _mm256_packs_epi32(v[0], v[1]);
    const __m256i w23 = _mm256_packs_epi32(v[2], v[3]);
    const __m256i bytes =
        _mm256_permutevar8x32_epi32(_mm256_packus_epi16(w01, w23), unlane);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bytes);
  }
#endif
  for (; i < n; ++i) {
    const long q = std::lrintf(x[i] * inv_scale);
    out[i] = static_cast<std::uint8_t>(std::clamp<long>(q, -127, 127) + 128);
  }
}

void dequant_rows(const std::int32_t* acc, const std::int32_t* colsum,
                  const float* w_scales, const float* bias, float act_scale,
                  std::size_t rows, std::size_t cols, float* out) {
  for (std::size_t i = 0; i < rows; ++i) {
    const std::int32_t* row = acc + i * cols;
    float* o = out + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      const std::int32_t raw = row[j] - 128 * colsum[j];
      o[j] = static_cast<float>(raw) * (act_scale * w_scales[j]) + bias[j];
    }
  }
}

namespace {

#if defined(__AVX__)
// Canonical AVX 8x8 float transpose: dst[j * dst_stride + i] =
// src[i * src_stride + j] for one 8x8 block.
inline void transpose_8x8(const float* src, std::size_t src_stride,
                          float* dst, std::size_t dst_stride) {
  __m256 r[8];
  for (int i = 0; i < 8; ++i) r[i] = _mm256_loadu_ps(src + i * src_stride);
  __m256 t[8];
  for (int i = 0; i < 4; ++i) {
    t[2 * i] = _mm256_unpacklo_ps(r[2 * i], r[2 * i + 1]);
    t[2 * i + 1] = _mm256_unpackhi_ps(r[2 * i], r[2 * i + 1]);
  }
  __m256 u[8];
  u[0] = _mm256_shuffle_ps(t[0], t[2], 0x44);
  u[1] = _mm256_shuffle_ps(t[0], t[2], 0xEE);
  u[2] = _mm256_shuffle_ps(t[1], t[3], 0x44);
  u[3] = _mm256_shuffle_ps(t[1], t[3], 0xEE);
  u[4] = _mm256_shuffle_ps(t[4], t[6], 0x44);
  u[5] = _mm256_shuffle_ps(t[4], t[6], 0xEE);
  u[6] = _mm256_shuffle_ps(t[5], t[7], 0x44);
  u[7] = _mm256_shuffle_ps(t[5], t[7], 0xEE);
  for (int i = 0; i < 4; ++i) {
    _mm256_storeu_ps(dst + i * dst_stride,
                     _mm256_permute2f128_ps(u[i], u[i + 4], 0x20));
    _mm256_storeu_ps(dst + (i + 4) * dst_stride,
                     _mm256_permute2f128_ps(u[i], u[i + 4], 0x31));
  }
}
#endif

}  // namespace

void dequant_rows_transposed(const std::int32_t* acc,
                             const std::int32_t* colsum,
                             const float* w_scales, const float* bias,
                             float act_scale, std::size_t rows,
                             std::size_t cols, float* out) {
  constexpr std::size_t kTile = 32;
  static thread_local std::vector<float> tmp;
  if (tmp.size() < kTile * cols) tmp.resize(kTile * cols);
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t ib = std::min(kTile, rows - i0);
    dequant_rows(acc + i0 * cols, colsum, w_scales, bias, act_scale, ib, cols,
                 tmp.data());
    std::size_t j = 0;
#if defined(__AVX__)
    // Vector transpose of the 8x8-aligned body; the scalar loops below
    // sweep up ragged row/column remainders.
    for (; j + 8 <= cols; j += 8) {
      std::size_t ii = 0;
      for (; ii + 8 <= ib; ii += 8) {
        transpose_8x8(tmp.data() + ii * cols + j, cols,
                      out + j * rows + i0 + ii, rows);
      }
      for (; ii < ib; ++ii) {
        for (std::size_t jj = 0; jj < 8; ++jj) {
          out[(j + jj) * rows + i0 + ii] = tmp[ii * cols + j + jj];
        }
      }
    }
#endif
    for (; j < cols; ++j) {
      float* col = out + j * rows + i0;
      for (std::size_t ii = 0; ii < ib; ++ii) col[ii] = tmp[ii * cols + j];
    }
  }
}

}  // namespace adv
