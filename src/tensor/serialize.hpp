// Binary tensor (de)serialization for the model-zoo weight cache and the
// adversarial-example cache.
//
// Format (little-endian):
//   file   := magic:u32 version:u32 count:u64 tensor*
//   tensor := rank:u64 dims:u64[rank] data:f32[numel]
#pragma once

#include <filesystem>
#include <istream>
#include <ostream>
#include <vector>

#include "tensor/tensor.hpp"

namespace adv {

inline constexpr std::uint32_t kTensorFileMagic = 0x4144'5631;  // "ADV1"
inline constexpr std::uint32_t kTensorFileVersion = 1;

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Writes a whole tensor collection with header. Throws std::runtime_error
/// on I/O failure.
void save_tensors(const std::filesystem::path& path,
                  const std::vector<Tensor>& tensors);

/// Reads a collection written by save_tensors. Throws std::runtime_error on
/// missing file, bad magic/version, or truncation.
std::vector<Tensor> load_tensors(const std::filesystem::path& path);

}  // namespace adv
