// Binary tensor (de)serialization for the model-zoo weight cache and the
// adversarial-example cache.
//
// Format v2 (little-endian), integrity-checked end to end:
//   file    := magic:u32 version:u32 count:u64 tensor* trailer
//   tensor  := rank:u64 dims:u64[rank] crc:u32 data:f32[numel]
//   trailer := trailer_magic:u32 file_crc:u32
// Each tensor's crc is a CRC32 over its dims and payload bytes; file_crc
// covers the structural bytes (count plus every rank/dims/crc field), so
// any single-byte corruption or truncation anywhere in the file is
// detected on load. Writes go to `<path>.tmp` and are published with an
// atomic std::filesystem::rename, so readers never observe partial files.
//
// Version-1 files (no checksums) written by earlier builds still load;
// they are verified only structurally ("verified-as-legacy").
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <vector>

#include "tensor/tensor.hpp"

namespace adv {

inline constexpr std::uint32_t kTensorFileMagic = 0x4144'5631;  // "ADV1"
inline constexpr std::uint32_t kTensorFileVersion = 2;
inline constexpr std::uint32_t kTensorFileVersionLegacy = 1;
inline constexpr std::uint32_t kTensorFileTrailerMagic = 0x4144'5645;  // "ADVE"

/// Incremental CRC32 (IEEE 802.3, reflected). Pass the previous return
/// value as `crc` to extend a running checksum; start from 0.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

/// Writes one integrity-checked (v2) tensor record.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads one v2 tensor record, verifying its CRC. Throws
/// std::runtime_error on truncation, implausible dims, or CRC mismatch.
Tensor read_tensor(std::istream& is);

/// Writes a whole tensor collection (format v2) atomically: the bytes go
/// to `<path>.tmp`, which is renamed over `path` only once complete.
/// Throws std::runtime_error on I/O failure, leaving any previous file at
/// `path` intact. Failpoint site: "serialize.write" (fail, short_write,
/// bitflip).
void save_tensors(const std::filesystem::path& path,
                  const std::vector<Tensor>& tensors);

/// Reads a collection written by save_tensors — v2 with full checksum
/// verification, or legacy v1 without. Throws std::runtime_error on
/// missing file, bad magic/version, truncation, or any checksum mismatch.
/// Failpoint site: "serialize.read" (fail).
std::vector<Tensor> load_tensors(const std::filesystem::path& path);

}  // namespace adv
