// Element-wise and reduction operations on Tensors.
//
// Free functions keep Tensor itself minimal. Shapes must match exactly for
// binary ops (no broadcasting; the layers that need broadcasting — e.g.
// bias addition — implement it explicitly where the loop structure is
// clearer anyway). All functions validate shapes and throw
// std::invalid_argument on mismatch.
#pragma once

#include <functional>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace adv {

// --- in-place ---------------------------------------------------------
void add_inplace(Tensor& dst, const Tensor& src);         // dst += src
void sub_inplace(Tensor& dst, const Tensor& src);         // dst -= src
void mul_inplace(Tensor& dst, const Tensor& src);         // dst *= src (Hadamard)
void scale_inplace(Tensor& dst, float s);                 // dst *= s
void axpy_inplace(Tensor& dst, float a, const Tensor& x); // dst += a * x
void clamp_inplace(Tensor& dst, float lo, float hi);
void apply_inplace(Tensor& dst, const std::function<float(float)>& f);

// --- value-returning --------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// --- reductions -------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
/// Lp norm of the flattened tensor, p in {1, 2, inf (use p_inf)}.
float norm_l1(const Tensor& a);
float norm_l2(const Tensor& a);
float norm_linf(const Tensor& a);
/// Index of the maximum element (first on ties).
std::size_t argmax(const Tensor& a);
/// Argmax of row `r` of a rank-2 tensor.
std::size_t argmax_row(const Tensor& a, std::size_t r);

// --- distortion metrics between two equal-shape tensors ---------------
float l1_distance(const Tensor& a, const Tensor& b);
float l2_distance(const Tensor& a, const Tensor& b);
float linf_distance(const Tensor& a, const Tensor& b);

// --- random fills -----------------------------------------------------
void fill_uniform(Tensor& t, Rng& rng, float lo, float hi);
void fill_normal(Tensor& t, Rng& rng, float mean, float stddev);

}  // namespace adv
