// Int8 matrix multiplication for the quantized inference path. Row-major
// throughout, mirroring the float kernel's blocking discipline (see
// DESIGN.md "Quantized int8 inference"): C is tiled into MC x NC blocks,
// A- and B-panels are packed into contiguous scratch buffers, and a
// register-blocked MR x NR microkernel with int32 accumulators runs over
// the tiles.
//
// Operand domains: A is uint8 (symmetric-int8 activations offset by +128
// into the unsigned domain, matching the u8 x s8 dot-product hardware),
// B is int8 (per-channel symmetric weights). C accumulates exactly in
// int32: because integer addition is associative, results are bit-
// identical across thread counts and k-blockings by construction — a
// strictly stronger determinism guarantee than the float kernel's
// fixed-order argument. Callers undo the +128 activation offset with the
// per-column sums from colsum_s8 (see quant/quantize.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.hpp"  // GemmOpts

namespace adv {

/// Blocking parameters of the packed int8 kernel, exported for tests and
/// benches. KQ is the dot-product granularity: the microkernel consumes k
/// in quads of 4 bytes (one 32-bit broadcast of A against 4 packed
/// B k-bytes per column), so packed panels round k up to a multiple of 4.
namespace gemm_int8_blocking {
inline constexpr std::size_t MR = 6;
inline constexpr std::size_t NR = 16;
inline constexpr std::size_t MC = 96;   // multiple of MR
inline constexpr std::size_t KC = 256;  // multiple of KQ
inline constexpr std::size_t KQ = 4;
}  // namespace gemm_int8_blocking

/// True when the compiled microkernel computes the u8 x s8 dot product
/// exactly (VNNI dpbusd or the scalar fallback). False only for the plain
/// AVX2 path, whose maddubs intermediate saturates at int16 — results are
/// still deterministic there, but pairs of products summing past 32767
/// clamp. Quantization tests assert exactness so a saturating build is
/// caught loudly rather than as silent accuracy drift.
bool gemm_int8_exact();

/// Name of the compiled microkernel path ("avx512-vnni", "avx-vnni",
/// "avx2-maddubs", "scalar") for bench provenance.
const char* gemm_int8_kernel_name();

/// Bytes needed by pack_b_s8 for a [K, N] operand (k rounded up to KQ per
/// KC strip, n rounded up to NR).
std::size_t packed_b_int8_size(std::size_t k, std::size_t n);

/// Packs B[K, N] (row-major int8) into KC-strip / NR-panel / k-quad
/// layout. Weights are static after quantization, so callers pack once at
/// quantize time and reuse across forwards (the float kernel re-packs per
/// call; skipping that is part of the int8 speedup). Padding bytes are
/// zero, so padded k-positions and columns contribute nothing.
void pack_b_s8(const std::int8_t* b, std::size_t k, std::size_t n,
               std::int8_t* out);

/// C = A(MxK, u8) * B(KxN, s8) into C (MxN, i32) with B pre-packed by
/// pack_b_s8. opts.accumulate adds into C instead of overwriting.
void gemm_u8s8_packed(const std::uint8_t* a, const std::int8_t* b_packed,
                      std::int32_t* c, std::size_t m, std::size_t k,
                      std::size_t n, const GemmOpts& opts = {});

/// Convenience entry: packs B into thread-local scratch, then runs the
/// packed kernel. For static weights prefer pack_b_s8 + gemm_u8s8_packed.
void gemm_u8s8(const std::uint8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n,
               const GemmOpts& opts = {});

/// out[j] = sum_k b[k*n + j] for j in [0, n): the per-column weight sums
/// used to undo the +128 activation offset (true = C - 128 * colsum).
void colsum_s8(const std::int8_t* b, std::size_t k, std::size_t n,
               std::int32_t* out);

/// Bulk activation quantization: out[i] = clamp(rne(x[i] / scale), -127,
/// 127) + 128, i.e. symmetric int8 shifted into the u8 domain the GEMM's A
/// operand expects. `inv_scale` is 1/scale. Rounding is round-to-nearest-
/// even on every path (cvtps on AVX2, lrintf scalar — both honor the
/// default rounding mode), so results are bit-identical to the scalar
/// reference and independent of where the vector/tail boundary falls.
void quantize_u8(const float* x, std::size_t n, float inv_scale,
                 std::uint8_t* out);

/// Bulk dequantization of a [rows, cols] int32 accumulator block:
///   out[i, j] = (acc[i, j] - 128 * colsum[j]) * (act_scale * w_scales[j])
///               + bias[j]
/// undoing the +128 activation offset and both quantization scales in one
/// contiguous pass (the j-inner loop auto-vectorizes under the kernel TU's
/// -march=native).
void dequant_rows(const std::int32_t* acc, const std::int32_t* colsum,
                  const float* w_scales, const float* bias, float act_scale,
                  std::size_t rows, std::size_t cols, float* out);

/// dequant_rows with a transposed destination: out[j * rows + i], the NCHW
/// plane layout a conv forward needs (rows = output pixels, cols = output
/// channels). Tiles rows through a small scratch block so the arithmetic
/// stays vectorized and only the L1-resident transpose is strided.
void dequant_rows_transposed(const std::int32_t* acc,
                             const std::int32_t* colsum,
                             const float* w_scales, const float* bias,
                             float act_scale, std::size_t rows,
                             std::size_t cols, float* out);

}  // namespace adv
