#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adv {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_string() + " vs " + b.shape_string());
  }
}

}  // namespace

void add_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "add_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] += s[i];
}

void sub_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "sub_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] -= s[i];
}

void mul_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "mul_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] *= s[i];
}

void scale_inplace(Tensor& dst, float s) {
  float* d = dst.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] *= s;
}

void axpy_inplace(Tensor& dst, float a, const Tensor& x) {
  require_same_shape(dst, x, "axpy_inplace");
  float* d = dst.data();
  const float* s = x.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] += a * s[i];
}

void clamp_inplace(Tensor& dst, float lo, float hi) {
  float* d = dst.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) {
    d[i] = std::clamp(d[i], lo, hi);
  }
}

void apply_inplace(Tensor& dst, const std::function<float(float)>& f) {
  float* d = dst.data();
  for (std::size_t i = 0, n = dst.numel(); i < n; ++i) d[i] = f(d[i]);
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  mul_inplace(out, b);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

float sum(const Tensor& a) {
  // Accumulate in double for stability over large tensors.
  double acc = 0.0;
  for (const float v : a.values()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("mean: empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float min_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(a.values().begin(), a.values().end());
}

float max_value(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(a.values().begin(), a.values().end());
}

float norm_l1(const Tensor& a) {
  double acc = 0.0;
  for (const float v : a.values()) acc += std::fabs(v);
  return static_cast<float>(acc);
}

float norm_l2(const Tensor& a) {
  double acc = 0.0;
  for (const float v : a.values()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float norm_linf(const Tensor& a) {
  float m = 0.0f;
  for (const float v : a.values()) m = std::max(m, std::fabs(v));
  return m;
}

std::size_t argmax(const Tensor& a) {
  if (a.empty()) throw std::invalid_argument("argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(a.values().begin(), a.values().end()) -
      a.values().begin());
}

std::size_t argmax_row(const Tensor& a, std::size_t r) {
  if (a.rank() != 2) throw std::invalid_argument("argmax_row: rank != 2");
  if (r >= a.dim(0)) throw std::out_of_range("argmax_row: row out of range");
  const std::size_t cols = a.dim(1);
  const float* p = a.data() + r * cols;
  return static_cast<std::size_t>(std::max_element(p, p + cols) - p);
}

float l1_distance(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "l1_distance");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    acc += std::fabs(static_cast<double>(pa[i]) - pb[i]);
  }
  return static_cast<float>(acc);
}

float l2_distance(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "l2_distance");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

float linf_distance(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "linf_distance");
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

void fill_uniform(Tensor& t, Rng& rng, float lo, float hi) {
  for (float& v : t.values()) v = rng.uniform_f(lo, hi);
}

void fill_normal(Tensor& t, Rng& rng, float mean, float stddev) {
  for (float& v : t.values()) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
}

}  // namespace adv
