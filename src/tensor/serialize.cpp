#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace adv {
namespace {

template <typename T>
void write_pod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor stream truncated");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<std::uint64_t>(os, t.rank());
  for (std::size_t i = 0; i < t.rank(); ++i) {
    write_pod<std::uint64_t>(os, t.dim(i));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_pod<std::uint64_t>(is);
  if (rank > 8) throw std::runtime_error("tensor rank implausible: corrupt file");
  std::vector<std::size_t> dims(rank);
  for (auto& d : dims) d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("tensor stream truncated");
  return t;
}

void save_tensors(const std::filesystem::path& path,
                  const std::vector<Tensor>& tensors) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path.string());
  write_pod(os, kTensorFileMagic);
  write_pod(os, kTensorFileVersion);
  write_pod<std::uint64_t>(os, tensors.size());
  for (const auto& t : tensors) write_tensor(os, t);
  if (!os) throw std::runtime_error("write failed: " + path.string());
}

std::vector<Tensor> load_tensors(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path.string());
  if (read_pod<std::uint32_t>(is) != kTensorFileMagic) {
    throw std::runtime_error("bad magic in " + path.string());
  }
  if (read_pod<std::uint32_t>(is) != kTensorFileVersion) {
    throw std::runtime_error("unsupported version in " + path.string());
  }
  const auto count = read_pod<std::uint64_t>(is);
  std::vector<Tensor> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(read_tensor(is));
  return out;
}

}  // namespace adv
