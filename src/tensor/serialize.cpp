#include "tensor/serialize.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "fault/failpoint.hpp"

namespace adv {
namespace {

// Corrupt dims must fail fast instead of driving a multi-gigabyte
// allocation; nothing in the repo comes near this many elements.
constexpr std::uint64_t kMaxPlausibleNumel = 1ull << 30;

template <typename T>
void write_pod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("tensor stream truncated");
  return v;
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Reads and validates the rank/dims prefix shared by both versions.
std::vector<std::size_t> read_dims(std::istream& is) {
  const auto rank = read_pod<std::uint64_t>(is);
  if (rank > 8) throw std::runtime_error("tensor rank implausible: corrupt file");
  std::vector<std::size_t> dims(rank);
  std::uint64_t numel = 1;
  for (auto& d : dims) {
    const auto v = read_pod<std::uint64_t>(is);
    if (v > kMaxPlausibleNumel || numel * std::max<std::uint64_t>(v, 1) >
                                      kMaxPlausibleNumel) {
      throw std::runtime_error("tensor dims implausible: corrupt file");
    }
    numel *= std::max<std::uint64_t>(v, 1);
    d = static_cast<std::size_t>(v);
  }
  return dims;
}

// CRC over the dims (as the u64 values we serialize) then the payload.
std::uint32_t tensor_crc(const std::vector<std::size_t>& dims,
                         const Tensor& t) {
  std::uint32_t crc = 0;
  for (std::size_t d : dims) {
    const std::uint64_t v = d;
    crc = crc32(&v, sizeof(v), crc);
  }
  return crc32(t.data(), t.numel() * sizeof(float), crc);
}

// Writes one v2 record; when `file_crc` is non-null, folds the record's
// structural bytes (rank, dims, crc) into the running file checksum.
void write_tensor_v2(std::ostream& os, const Tensor& t,
                     std::uint32_t* file_crc) {
  const std::uint64_t rank = t.rank();
  write_pod(os, rank);
  std::vector<std::size_t> dims(t.rank());
  for (std::size_t i = 0; i < t.rank(); ++i) {
    dims[i] = t.dim(i);
    write_pod<std::uint64_t>(os, t.dim(i));
  }
  const std::uint32_t crc = tensor_crc(dims, t);
  write_pod(os, crc);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (file_crc) {
    *file_crc = crc32(&rank, sizeof(rank), *file_crc);
    for (std::size_t d : dims) {
      const std::uint64_t v = d;
      *file_crc = crc32(&v, sizeof(v), *file_crc);
    }
    *file_crc = crc32(&crc, sizeof(crc), *file_crc);
  }
}

Tensor read_tensor_v2(std::istream& is, std::uint32_t* file_crc) {
  const std::vector<std::size_t> dims = read_dims(is);
  const auto stored_crc = read_pod<std::uint32_t>(is);
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("tensor stream truncated");
  if (tensor_crc(dims, t) != stored_crc) {
    throw std::runtime_error("tensor CRC mismatch: corrupt file");
  }
  if (file_crc) {
    const std::uint64_t rank = dims.size();
    *file_crc = crc32(&rank, sizeof(rank), *file_crc);
    for (std::size_t d : dims) {
      const std::uint64_t v = d;
      *file_crc = crc32(&v, sizeof(v), *file_crc);
    }
    *file_crc = crc32(&stored_crc, sizeof(stored_crc), *file_crc);
  }
  return t;
}

// Legacy v1 record: rank/dims/payload, no checksum.
Tensor read_tensor_v1(std::istream& is) {
  const std::vector<std::size_t> dims = read_dims(is);
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("tensor stream truncated");
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFF'FFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFF'FFFFu;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_tensor_v2(os, t, nullptr);
}

Tensor read_tensor(std::istream& is) { return read_tensor_v2(is, nullptr); }

void save_tensors(const std::filesystem::path& path,
                  const std::vector<Tensor>& tensors) {
  const fault::Action fp = fault::check("serialize.write");
  if (fp == fault::Action::Fail) {
    throw std::runtime_error("failpoint serialize.write: injected write "
                             "failure for " + path.string());
  }
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open for write: " + tmp.string());
    write_pod(os, kTensorFileMagic);
    write_pod(os, kTensorFileVersion);
    const std::uint64_t count = tensors.size();
    write_pod(os, count);
    std::uint32_t file_crc = crc32(&count, sizeof(count));
    for (const auto& t : tensors) write_tensor_v2(os, t, &file_crc);
    write_pod(os, kTensorFileTrailerMagic);
    write_pod(os, file_crc);
    if (!os) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("write failed: " + tmp.string());
    }
  }
  if (fp == fault::Action::ShortWrite) {
    // Simulate a torn write surviving a crash: publish a truncated file.
    std::filesystem::resize_file(tmp, std::filesystem::file_size(tmp) * 2 / 3);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot publish " + path.string() + ": rename failed");
  }
  if (fp == fault::Action::BitFlip) {
    // Simulate at-rest corruption: flip one payload byte post-publish.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const auto mid =
        static_cast<std::streamoff>(std::filesystem::file_size(path) / 2);
    f.seekg(mid);
    char b = 0;
    f.get(b);
    f.seekp(mid);
    f.put(static_cast<char>(b ^ 0x40));
  }
}

std::vector<Tensor> load_tensors(const std::filesystem::path& path) {
  if (fault::check("serialize.read") == fault::Action::Fail) {
    throw std::runtime_error("failpoint serialize.read: injected read "
                             "failure for " + path.string());
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path.string());
  if (read_pod<std::uint32_t>(is) != kTensorFileMagic) {
    throw std::runtime_error("bad magic in " + path.string());
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kTensorFileVersion && version != kTensorFileVersionLegacy) {
    throw std::runtime_error("unsupported version in " + path.string());
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count > kMaxPlausibleNumel) {
    throw std::runtime_error("tensor count implausible: corrupt file");
  }
  std::vector<Tensor> out;
  out.reserve(count);
  if (version == kTensorFileVersionLegacy) {
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(read_tensor_v1(is));
    }
    return out;
  }
  std::uint32_t file_crc = crc32(&count, sizeof(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(read_tensor_v2(is, &file_crc));
  }
  if (read_pod<std::uint32_t>(is) != kTensorFileTrailerMagic) {
    throw std::runtime_error("tensor file trailer missing or corrupt: " +
                             path.string());
  }
  if (read_pod<std::uint32_t>(is) != file_crc) {
    throw std::runtime_error("tensor file CRC mismatch: " + path.string());
  }
  return out;
}

}  // namespace adv
