// Workspace: an arena of reusable Tensor buffers keyed by element count.
//
// Iterative attacks drive thousands of forward/backward passes through the
// same architecture with identical batch shapes; without reuse every layer
// allocates (and the allocator zero-fills) a fresh activation tensor per
// pass. A Workspace recycles that storage: release() steals a dead
// tensor's buffer into a size-keyed free list, acquire() hands it back out
// for the next pass. One Workspace per model (Sequential owns one and
// shares it with its layers), so buffer lifetime is bounded by the model's.
//
// Aliasing rules (see DESIGN.md §11):
//   * acquire() transfers ownership OUT of the arena — two live acquires
//     never alias, and a buffer re-enters the pool only via release().
//   * acquire(shape, /*zeroed=*/false) returns UNSPECIFIED contents; the
//     caller must fully overwrite it. Pass zeroed = true when the consumer
//     accumulates (col2im, pooling backward) — results must be bitwise
//     identical whether the buffer is recycled or freshly allocated.
//   * release() of an empty tensor is a no-op; releasing the same storage
//     twice is impossible by construction (release takes by value).
//
// Thread safety: acquire/release take a mutex, so layers may grab per-chunk
// scratch from inside ThreadPool tasks. Calls are per-layer-pass (not
// per-element); contention is negligible.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace adv {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns a tensor of `shape`, recycling pooled storage of the same
  /// element count when available. Contents are unspecified unless
  /// `zeroed` (callers that accumulate into the buffer need zeros).
  Tensor acquire(const Shape& shape, bool zeroed = false);

  /// Returns a tensor's storage to the pool. Disabled workspaces (and
  /// empty tensors) simply drop the storage.
  void release(Tensor&& t);

  /// Disabled: acquire() allocates fresh and release() frees — the exact
  /// allocation profile of the pre-workspace code, used as the benchmark
  /// baseline arm. Enabled by default.
  void set_enabled(bool on);
  bool enabled() const;

  /// Drops every pooled buffer (keeps the enabled flag).
  void clear();

  // --- statistics (monotonic over the workspace lifetime) ---------------
  /// Number of acquire() calls served from the pool.
  std::uint64_t reuses() const;
  /// Number of acquire() calls that had to allocate.
  std::uint64_t misses() const;
  /// Bytes handed out from the pool instead of the allocator; also
  /// recorded on the global "workspace/bytes_reused" counter when adv::obs
  /// is enabled.
  std::uint64_t bytes_reused() const;
  /// Buffers currently parked in the pool.
  std::size_t pooled_buffers() const;

 private:
  // Free lists keyed by element count: a [8,16,14,14] buffer can serve a
  // later [8,3136] request — shapes are reapplied on acquire. Each list is
  // capped so a one-off giant pass cannot pin memory forever.
  static constexpr std::size_t kMaxPooledPerSize = 16;

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> free_;
  std::uint64_t reuses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_reused_ = 0;
};

}  // namespace adv
