// Workspace: an arena of reusable Tensor buffers keyed by shape.
//
// Iterative attacks drive thousands of forward/backward passes through the
// same architecture with identical batch shapes; without reuse every layer
// allocates (and the allocator zero-fills) a fresh activation tensor per
// pass. A Workspace recycles that storage: release() steals a dead
// tensor's buffer into a shape-keyed free list, acquire() hands it back
// out for the next pass. One Workspace per model (Sequential owns one and
// shares it with its layers), so buffer lifetime is bounded by the model's.
//
// Free lists are keyed by the full dims vector (not element count): a
// trainer alternates full and partial batches and multi-model pipelines
// interleave several fixed shapes, and shape keys keep each population
// separate so trim() can drop the cold ones. The pool tracks the bytes it
// holds and their high-water mark; trim(frac) releases buffers (largest
// shapes first) until the pool holds at most frac * high-water bytes, so
// long training runs do not pin peak-batch memory forever.
//
// Aliasing rules (see DESIGN.md §11):
//   * acquire() transfers ownership OUT of the arena — two live acquires
//     never alias, and a buffer re-enters the pool only via release().
//   * acquire(shape, /*zeroed=*/false) returns UNSPECIFIED contents; the
//     caller must fully overwrite it. Pass zeroed = true when the consumer
//     accumulates (col2im, pooling backward) — results must be bitwise
//     identical whether the buffer is recycled or freshly allocated.
//   * release() of an empty tensor is a no-op; releasing the same storage
//     twice is impossible by construction (release takes by value).
//
// Thread safety: acquire/release/trim take a mutex, so layers may grab
// per-chunk scratch from inside ThreadPool tasks. Calls are per-layer-pass
// (not per-element); contention is negligible.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace adv {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns a tensor of `shape`, recycling pooled storage of the same
  /// shape when available. Contents are unspecified unless `zeroed`
  /// (callers that accumulate into the buffer need zeros).
  Tensor acquire(const Shape& shape, bool zeroed = false);

  /// Returns a tensor's storage to the pool. Disabled workspaces (and
  /// empty tensors) simply drop the storage.
  void release(Tensor&& t);

  /// Disabled: acquire() allocates fresh and release() frees — the exact
  /// allocation profile of the pre-workspace code, used as the benchmark
  /// baseline arm. Enabled by default.
  void set_enabled(bool on);
  bool enabled() const;

  /// Drops every pooled buffer (keeps the enabled flag and the reuse
  /// statistics; the high-water mark resets to zero).
  void clear();

  /// Frees pooled buffers — largest shapes first — until the pool holds at
  /// most `high_water_frac` of its high-water byte count, then resets the
  /// high-water mark to the trimmed level. trim(0.0) empties the pool;
  /// trim(1.0) only resets the mark. The trainer calls this between
  /// epochs so a peak-batch spike (or a retired partial-batch shape) is
  /// returned to the allocator instead of being pinned for the whole run.
  /// Pool on/off bitwise identity is unaffected: a trimmed buffer is
  /// simply re-allocated (and zeroed on demand) on the next acquire.
  void trim(double high_water_frac);

  // --- statistics (monotonic over the workspace lifetime) ---------------
  /// Number of acquire() calls served from the pool.
  std::uint64_t reuses() const;
  /// Number of acquire() calls that had to allocate.
  std::uint64_t misses() const;
  /// Bytes handed out from the pool instead of the allocator; also
  /// recorded on the global "workspace/bytes_reused" counter when adv::obs
  /// is enabled.
  std::uint64_t bytes_reused() const;
  /// Buffers currently parked in the pool.
  std::size_t pooled_buffers() const;
  /// Bytes currently parked in the pool.
  std::uint64_t pooled_bytes() const;
  /// Largest pooled_bytes() observed since construction / last trim.
  std::uint64_t high_water_bytes() const;

 private:
  // Each per-shape list is capped so a one-off giant pass cannot pin
  // memory forever even between trims.
  static constexpr std::size_t kMaxPooledPerShape = 16;

  struct DimsHash {
    std::size_t operator()(const std::vector<std::size_t>& dims) const {
      std::uint64_t h = 0xCBF2'9CE4'8422'2325ull;  // FNV-1a
      for (const std::size_t d : dims) {
        h ^= static_cast<std::uint64_t>(d);
        h *= 0x0000'0100'0000'01B3ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::unordered_map<std::vector<std::size_t>, std::vector<std::vector<float>>,
                     DimsHash>
      free_;
  std::uint64_t reuses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_reused_ = 0;
  std::uint64_t pooled_bytes_ = 0;
  std::uint64_t high_water_bytes_ = 0;
};

}  // namespace adv
