#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"

namespace adv {

Tensor Workspace::acquire(const Shape& shape, bool zeroed) {
  const std::size_t n = shape.numel();
  if (n == 0) return Tensor();
  std::vector<float> buf;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      auto it = free_.find(shape.dims());
      if (it != free_.end() && !it->second.empty()) {
        buf = std::move(it->second.back());
        it->second.pop_back();
        ++reuses_;
        bytes_reused_ += n * sizeof(float);
        pooled_bytes_ -= n * sizeof(float);
      }
    }
    if (buf.empty()) ++misses_;
  }
  if (buf.empty()) return Tensor(shape);  // zero-filled by construction
  if (zeroed) std::memset(buf.data(), 0, n * sizeof(float));
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("workspace/bytes_reused")
        .add(n * sizeof(float));
  }
  return Tensor::from_data(shape, std::move(buf));
}

void Workspace::release(Tensor&& t) {
  if (t.empty()) return;
  const std::size_t n = t.numel();
  std::vector<std::size_t> dims = t.shape().dims();
  std::vector<float> buf = std::move(t).take_data();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;  // drop: baseline allocation profile
  auto& list = free_[std::move(dims)];
  if (list.size() < kMaxPooledPerShape) {
    list.push_back(std::move(buf));
    pooled_bytes_ += n * sizeof(float);
    high_water_bytes_ = std::max(high_water_bytes_, pooled_bytes_);
  }
}

void Workspace::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = on;
  if (!on) {
    free_.clear();
    pooled_bytes_ = 0;
    high_water_bytes_ = 0;
  }
}

bool Workspace::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Workspace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
  pooled_bytes_ = 0;
  high_water_bytes_ = 0;
}

void Workspace::trim(double high_water_frac) {
  high_water_frac = std::clamp(high_water_frac, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto target = static_cast<std::uint64_t>(
      static_cast<double>(high_water_bytes_) * high_water_frac);
  if (pooled_bytes_ > target) {
    // Drop largest shapes first: the peak-batch spike goes before the
    // steady-state buffers the next epoch will want back.
    std::vector<std::vector<std::size_t>> keys;
    keys.reserve(free_.size());
    for (const auto& [dims, list] : free_) {
      (void)list;
      keys.push_back(dims);
    }
    const auto bytes_of = [](const std::vector<std::size_t>& dims) {
      std::size_t n = 1;
      for (const std::size_t d : dims) n *= d;
      return n * sizeof(float);
    };
    std::sort(keys.begin(), keys.end(),
              [&](const auto& a, const auto& b) {
                return bytes_of(a) > bytes_of(b);
              });
    for (const auto& key : keys) {
      auto it = free_.find(key);
      if (it == free_.end()) continue;
      const std::size_t per_buffer = bytes_of(key);
      while (!it->second.empty() && pooled_bytes_ > target) {
        it->second.pop_back();
        pooled_bytes_ -= per_buffer;
      }
      if (it->second.empty()) free_.erase(it);
      if (pooled_bytes_ <= target) break;
    }
  }
  high_water_bytes_ = pooled_bytes_;
}

std::uint64_t Workspace::reuses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reuses_;
}

std::uint64_t Workspace::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t Workspace::bytes_reused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_reused_;
}

std::size_t Workspace::pooled_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [dims, list] : free_) {
    (void)dims;
    n += list.size();
  }
  return n;
}

std::uint64_t Workspace::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pooled_bytes_;
}

std::uint64_t Workspace::high_water_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_bytes_;
}

}  // namespace adv
