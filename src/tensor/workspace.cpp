#include "tensor/workspace.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace adv {

Tensor Workspace::acquire(const Shape& shape, bool zeroed) {
  const std::size_t n = shape.numel();
  if (n == 0) return Tensor();
  std::vector<float> buf;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
      auto it = free_.find(n);
      if (it != free_.end() && !it->second.empty()) {
        buf = std::move(it->second.back());
        it->second.pop_back();
        ++reuses_;
        bytes_reused_ += n * sizeof(float);
      }
    }
    if (buf.empty()) ++misses_;
  }
  if (buf.empty()) return Tensor(shape);  // zero-filled by construction
  if (zeroed) std::memset(buf.data(), 0, n * sizeof(float));
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("workspace/bytes_reused")
        .add(n * sizeof(float));
  }
  return Tensor::from_data(shape, std::move(buf));
}

void Workspace::release(Tensor&& t) {
  if (t.empty()) return;
  const std::size_t n = t.numel();
  std::vector<float> buf = std::move(t).take_data();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;  // drop: baseline allocation profile
  auto& list = free_[n];
  if (list.size() < kMaxPooledPerSize) list.push_back(std::move(buf));
}

void Workspace::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = on;
  if (!on) free_.clear();
}

bool Workspace::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Workspace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
}

std::uint64_t Workspace::reuses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reuses_;
}

std::uint64_t Workspace::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t Workspace::bytes_reused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_reused_;
}

std::size_t Workspace::pooled_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [size, list] : free_) {
    (void)size;
    n += list.size();
  }
  return n;
}

}  // namespace adv
