#include "data/syn_objects.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace adv::data {
namespace {

Rng sample_rng(std::uint64_t seed, std::size_t index) {
  SplitMix64 sm(seed ^ (0xbf58476d1ce4e5b9ULL * (index + 1)));
  return Rng(sm.next());
}

struct Rgb {
  float r, g, b;
};

/// HSV (h in [0,1)) to RGB; all components in [0,1].
Rgb hsv_to_rgb(float h, float s, float v) {
  const float hh = (h - std::floor(h)) * 6.0f;
  const int sector = static_cast<int>(hh);
  const float f = hh - static_cast<float>(sector);
  const float p = v * (1.0f - s);
  const float q = v * (1.0f - s * f);
  const float t = v * (1.0f - s * (1.0f - f));
  switch (sector % 6) {
    case 0: return {v, t, p};
    case 1: return {q, v, p};
    case 2: return {p, v, t};
    case 3: return {p, q, v};
    case 4: return {t, p, v};
    default: return {v, p, q};
  }
}

// Class-typical hue anchors (circle=red-ish, square=orange, ... spread
// around the wheel) with per-sample jitter.
constexpr float kClassHue[10] = {0.00f, 0.08f, 0.17f, 0.30f, 0.42f,
                                 0.52f, 0.62f, 0.72f, 0.83f, 0.92f};

/// 1 inside the class shape at normalized coords (x, y) relative to shape
/// center (cx, cy) and radius r; with a soft edge.
float shape_coverage(int label, float x, float y, float cx, float cy,
                     float r, float phase) {
  const float dx = x - cx, dy = y - cy;
  const float dist = std::sqrt(dx * dx + dy * dy);
  auto soft = [](float signed_dist, float edge) {
    // signed_dist < 0 inside; map to [0,1] with a smooth ramp of width edge.
    const float t = std::clamp(0.5f - signed_dist / edge, 0.0f, 1.0f);
    return t * t * (3.0f - 2.0f * t);
  };
  const float edge = 0.04f;
  switch (label) {
    case 0:  // circle
      return soft(dist - r, edge);
    case 1:  // square
      return soft(std::max(std::fabs(dx), std::fabs(dy)) - r, edge);
    case 2: {  // upward triangle: barycentric-ish test via three half-planes
      const float yy = dy / r, xx = dx / r;
      const float d1 = yy - 1.0f;                       // below bottom edge
      const float d2 = -yy - xx * 1.7320508f - 1.0f;    // left edge
      const float d3 = -yy + xx * 1.7320508f - 1.0f;    // right edge
      return soft(std::max({d1, d2, d3}) * r, edge);
    }
    case 3: {  // plus sign
      const float arm = 0.38f * r;
      const float in_h = std::max(std::fabs(dx) - r, std::fabs(dy) - arm);
      const float in_v = std::max(std::fabs(dy) - r, std::fabs(dx) - arm);
      return soft(std::min(in_h, in_v), edge);
    }
    case 4:  // horizontal stripes over the whole canvas
      return 0.5f + 0.5f * std::sin((y * 14.0f + phase) * 2.0f);
    case 5:  // vertical stripes
      return 0.5f + 0.5f * std::sin((x * 14.0f + phase) * 2.0f);
    case 6: {  // checkerboard
      const float fx = std::sin((x * 10.0f + phase) * 2.0f);
      const float fy = std::sin((y * 10.0f + phase) * 2.0f);
      return fx * fy > 0.0f ? 1.0f : 0.0f;
    }
    case 7: {  // ring
      const float width = 0.35f * r;
      return soft(std::fabs(dist - r) - width, edge);
    }
    case 8:  // diagonal stripes
      return 0.5f + 0.5f * std::sin(((x + y) * 10.0f + phase) * 2.0f);
    case 9: {  // radial gradient blob
      const float t = std::clamp(1.0f - dist / (1.6f * r), 0.0f, 1.0f);
      return t * t;
    }
    default:
      throw std::invalid_argument("shape_coverage: label must be 0..9");
  }
}

}  // namespace

Tensor render_syn_object(const SynObjectsConfig& cfg,
                         std::size_t sample_index, int label) {
  if (label < 0 || label > 9) {
    throw std::invalid_argument("render_syn_object: label must be 0..9");
  }
  Rng rng = sample_rng(cfg.seed, sample_index);

  const float hue =
      kClassHue[static_cast<std::size_t>(label)] + rng.uniform_f(-0.03f, 0.03f);
  const Rgb fg = hsv_to_rgb(hue, rng.uniform_f(0.65f, 0.95f),
                            rng.uniform_f(0.75f, 1.0f));
  const float bg_hue = hue + 0.5f + rng.uniform_f(-0.08f, 0.08f);
  const Rgb bg = hsv_to_rgb(bg_hue, rng.uniform_f(0.1f, 0.3f),
                            rng.uniform_f(0.25f, 0.5f));

  const float cx = rng.uniform_f(0.38f, 0.62f);
  const float cy = rng.uniform_f(0.38f, 0.62f);
  const float r = rng.uniform_f(0.18f, 0.30f);
  const float phase =
      rng.uniform_f(0.0f, 2.0f * static_cast<float>(std::numbers::pi));

  // Low-frequency background texture: two random sinusoids.
  const float bfx = rng.uniform_f(1.5f, 4.0f), bfy = rng.uniform_f(1.5f, 4.0f);
  const float bp = rng.uniform_f(0.0f, 6.28f);

  Tensor img({1, 3, cfg.height, cfg.width});
  for (std::size_t i = 0; i < cfg.height; ++i) {
    for (std::size_t j = 0; j < cfg.width; ++j) {
      const float y = (static_cast<float>(i) + 0.5f) /
                      static_cast<float>(cfg.height);
      const float x = (static_cast<float>(j) + 0.5f) /
                      static_cast<float>(cfg.width);
      const float tex =
          0.08f * std::sin(bfx * 6.28f * x + bp) *
          std::cos(bfy * 6.28f * y - bp);
      const float cov = shape_coverage(label, x, y, cx, cy, r, phase);
      const float rgb[3] = {bg.r + cov * (fg.r - bg.r) + tex,
                            bg.g + cov * (fg.g - bg.g) + tex,
                            bg.b + cov * (fg.b - bg.b) + tex};
      for (std::size_t c = 0; c < 3; ++c) {
        float v = rgb[c];
        if (cfg.pixel_noise_std > 0.0f) {
          v += static_cast<float>(rng.normal(0.0, cfg.pixel_noise_std));
        }
        img.at(0, c, i, j) = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return img;
}

Dataset make_syn_objects(const SynObjectsConfig& cfg) {
  if (cfg.count == 0) throw std::invalid_argument("make_syn_objects: count 0");
  Dataset d;
  d.images = Tensor({cfg.count, 3, cfg.height, cfg.width});
  d.labels.resize(cfg.count);
  d.num_classes = 10;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const int label = static_cast<int>(i % 10);
    d.labels[i] = label;
    d.images.set_rows(i, render_syn_object(cfg, i, label));
  }
  return d;
}

}  // namespace adv::data
