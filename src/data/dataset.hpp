// Labeled image dataset: an NCHW tensor plus integer labels, with
// deterministic shuffling and splitting.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace adv::data {

struct Dataset {
  Tensor images;            // [N, C, H, W], pixel values in [0, 1]
  std::vector<int> labels;  // size N, values in [0, num_classes)
  int num_classes = 10;

  std::size_t size() const { return labels.size(); }
  std::size_t channels() const { return images.dim(1); }
  std::size_t height() const { return images.dim(2); }
  std::size_t width() const { return images.dim(3); }

  /// Single image [1, C, H, W].
  Tensor image(std::size_t i) const { return images.slice_rows(i, i + 1); }

  /// Rows [begin, end) as a new dataset.
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Deterministic in-place permutation of images and labels.
  void shuffle(Rng& rng);

  /// Keeps only samples whose index satisfies `pred(i)`.
  Dataset filter(const std::vector<std::size_t>& indices) const;
};

/// Splits into {first `n`, rest}. Throws if n > size.
std::pair<Dataset, Dataset> split(const Dataset& d, std::size_t n);

}  // namespace adv::data
