// SynDigits: a procedural stand-in for MNIST (see DESIGN.md §4).
//
// Each sample renders the stroke skeleton of a digit 0-9 (seven-segment
// style polylines) with per-sample random affine placement, per-segment
// endpoint jitter, random stroke thickness, soft edges and pixel noise,
// producing a low-dimensional grayscale image manifold on which a small
// CNN reaches high accuracy and an auto-encoder learns a tight manifold —
// the regime MagNet's detector/reformer rely on.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace adv::data {

struct SynDigitsConfig {
  std::size_t count = 1000;
  std::size_t height = 28;
  std::size_t width = 28;
  std::uint64_t seed = 7;
  float pixel_noise_std = 0.03f;  // additive Gaussian noise, clamped to [0,1]
  float max_rotation_deg = 12.0f;
  float jitter = 0.02f;           // per-endpoint positional jitter
  // Per-segment stroke intensity range. Values below 1 make segments
  // fade in and out across samples, which (a) raises intra-class
  // variance so the auto-encoder's clean reconstruction floor is
  // realistic and (b) pulls decision boundaries close to the data
  // manifold — the property of real MNIST that makes small adversarial
  // perturbations exist at all. See DESIGN.md §4.
  float stroke_intensity_min = 1.0f;
  float stroke_intensity_max = 1.0f;
};

/// Generates `cfg.count` samples with balanced labels (label = index % 10).
Dataset make_syn_digits(const SynDigitsConfig& cfg);

/// Renders a single digit deterministically from (cfg.seed, sample_index).
/// Exposed for tests and visual dumps.
Tensor render_syn_digit(const SynDigitsConfig& cfg, std::size_t sample_index,
                        int digit);

}  // namespace adv::data
