#include "data/image_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace adv::data {
namespace {

struct Chw {
  std::size_t c, h, w;
  const float* data;
};

Chw as_chw(const Tensor& image) {
  switch (image.rank()) {
    case 2:
      return {1, image.dim(0), image.dim(1), image.data()};
    case 3:
      return {image.dim(0), image.dim(1), image.dim(2), image.data()};
    case 4:
      if (image.dim(0) != 1) {
        throw std::invalid_argument("image io: batch size must be 1");
      }
      return {image.dim(1), image.dim(2), image.dim(3), image.data()};
    default:
      throw std::invalid_argument("image io: bad rank " +
                                  image.shape_string());
  }
}

unsigned char quantize(float v) {
  return static_cast<unsigned char>(
      std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
}

}  // namespace

void write_pgm(const std::filesystem::path& path, const Tensor& image) {
  const Chw img = as_chw(image);
  if (img.c != 1) throw std::invalid_argument("write_pgm: need 1 channel");
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path.string());
  os << "P5\n" << img.w << " " << img.h << "\n255\n";
  for (std::size_t i = 0; i < img.h * img.w; ++i) {
    os.put(static_cast<char>(quantize(img.data[i])));
  }
  if (!os) throw std::runtime_error("write_pgm: write failed");
}

void write_ppm(const std::filesystem::path& path, const Tensor& image) {
  const Chw img = as_chw(image);
  if (img.c != 3) throw std::invalid_argument("write_ppm: need 3 channels");
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_ppm: cannot open " + path.string());
  os << "P6\n" << img.w << " " << img.h << "\n255\n";
  const std::size_t plane = img.h * img.w;
  for (std::size_t i = 0; i < plane; ++i) {
    os.put(static_cast<char>(quantize(img.data[i])));
    os.put(static_cast<char>(quantize(img.data[plane + i])));
    os.put(static_cast<char>(quantize(img.data[2 * plane + i])));
  }
  if (!os) throw std::runtime_error("write_ppm: write failed");
}

void write_image(const std::filesystem::path& path, const Tensor& image) {
  if (as_chw(image).c == 1) {
    write_pgm(path, image);
  } else {
    write_ppm(path, image);
  }
}

}  // namespace adv::data
