// Minimal PGM/PPM writers for dumping adversarial examples (paper Fig. 1).
#pragma once

#include <filesystem>

#include "tensor/tensor.hpp"

namespace adv::data {

/// Writes a single grayscale image ([H,W], [1,H,W] or [1,1,H,W]) as
/// binary PGM. Values are clamped from [0,1] to [0,255].
void write_pgm(const std::filesystem::path& path, const Tensor& image);

/// Writes a single RGB image ([3,H,W] or [1,3,H,W]) as binary PPM.
void write_ppm(const std::filesystem::path& path, const Tensor& image);

/// Dispatches on channel count (1 -> PGM, 3 -> PPM).
void write_image(const std::filesystem::path& path, const Tensor& image);

}  // namespace adv::data
