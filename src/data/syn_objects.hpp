// SynObjects: a procedural stand-in for CIFAR-10 (see DESIGN.md §4).
//
// Ten color-image classes, each a distinct shape/texture family with a
// class-typical hue, rendered over a low-frequency textured background:
//   0 circle        5 vertical stripes
//   1 square        6 checkerboard
//   2 triangle      7 ring (annulus)
//   3 plus/cross    8 diagonal stripes
//   4 horiz stripes 9 radial gradient blob
// Size, position, hue and texture phase are randomized per sample, giving
// a richer, harder manifold than SynDigits — mirroring the MNIST→CIFAR
// difficulty step in the paper.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace adv::data {

struct SynObjectsConfig {
  std::size_t count = 1000;
  std::size_t height = 32;
  std::size_t width = 32;
  std::uint64_t seed = 11;
  float pixel_noise_std = 0.02f;
};

/// Generates `cfg.count` samples with balanced labels (label = index % 10).
Dataset make_syn_objects(const SynObjectsConfig& cfg);

/// Renders one sample deterministically from (cfg.seed, sample_index).
Tensor render_syn_object(const SynObjectsConfig& cfg,
                         std::size_t sample_index, int label);

}  // namespace adv::data
