#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace adv::data {

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > size()) {
    throw std::out_of_range("Dataset::slice: bad range");
  }
  Dataset out;
  out.images = images.slice_rows(begin, end);
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(begin),
                    labels.begin() + static_cast<std::ptrdiff_t>(end));
  out.num_classes = num_classes;
  return out;
}

void Dataset::shuffle(Rng& rng) {
  const std::size_t n = size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.uniform_index(i)]);
  }
  *this = filter(idx);
}

Dataset Dataset::filter(const std::vector<std::size_t>& indices) const {
  const std::size_t row = images.numel() / images.dim(0);
  std::vector<std::size_t> dims = images.shape().dims();
  dims[0] = indices.size();
  Dataset out;
  out.images = Tensor{Shape(dims)};
  out.labels.resize(indices.size());
  out.num_classes = num_classes;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::filter: bad index");
    std::copy_n(images.data() + src * row, row, out.images.data() + i * row);
    out.labels[i] = labels[src];
  }
  return out;
}

std::pair<Dataset, Dataset> split(const Dataset& d, std::size_t n) {
  if (n > d.size()) throw std::out_of_range("split: n > dataset size");
  return {d.slice(0, n), d.slice(n, d.size())};
}

}  // namespace adv::data
