#include "data/syn_digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace adv::data {
namespace {

struct Point {
  float x, y;
};

struct Segment {
  Point a, b;
};

// Seven-segment layout in unit coordinates (x right, y down):
//      A
//    F   B
//      G
//    E   C
//      D
constexpr Point kTL{0.30f, 0.20f}, kTR{0.70f, 0.20f};
constexpr Point kML{0.30f, 0.50f}, kMR{0.70f, 0.50f};
constexpr Point kBL{0.30f, 0.80f}, kBR{0.70f, 0.80f};

constexpr std::array<Segment, 7> kSegments{{
    {kTL, kTR},  // A
    {kTR, kMR},  // B
    {kMR, kBR},  // C
    {kBL, kBR},  // D
    {kML, kBL},  // E
    {kTL, kML},  // F
    {kML, kMR},  // G
}};

// Active segments per digit, bitmask over ABCDEFG (bit 0 = A).
constexpr std::array<unsigned, 10> kDigitMask{
    0b0111111,  // 0: ABCDEF
    0b0000110,  // 1: BC
    0b1011011,  // 2: ABDEG
    0b1001111,  // 3: ABCDG
    0b1100110,  // 4: BCFG
    0b1101101,  // 5: ACDFG
    0b1111101,  // 6: ACDEFG
    0b0000111,  // 7: ABC
    0b1111111,  // 8: all
    0b1101111,  // 9: ABCDFG
};

float dist_to_segment(float px, float py, const Segment& s) {
  const float vx = s.b.x - s.a.x, vy = s.b.y - s.a.y;
  const float wx = px - s.a.x, wy = py - s.a.y;
  const float len2 = vx * vx + vy * vy;
  float t = len2 > 0.0f ? (wx * vx + wy * vy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float dx = px - (s.a.x + t * vx);
  const float dy = py - (s.a.y + t * vy);
  return std::sqrt(dx * dx + dy * dy);
}

/// Per-sample generator seeded from (dataset seed, sample index) so a
/// sample's content does not depend on how many samples are generated.
Rng sample_rng(std::uint64_t seed, std::size_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return Rng(sm.next());
}

}  // namespace

Tensor render_syn_digit(const SynDigitsConfig& cfg, std::size_t sample_index,
                        int digit) {
  if (digit < 0 || digit > 9) {
    throw std::invalid_argument("render_syn_digit: digit must be 0..9");
  }
  Rng rng = sample_rng(cfg.seed, sample_index);

  // Sample the random deformation: rotation, anisotropic scale, shift.
  const float rot = cfg.max_rotation_deg *
                    static_cast<float>(std::numbers::pi) / 180.0f *
                    rng.uniform_f(-1.0f, 1.0f);
  const float cs = std::cos(rot), sn = std::sin(rot);
  const float sx = rng.uniform_f(0.85f, 1.12f);
  const float sy = rng.uniform_f(0.85f, 1.12f);
  const float tx = rng.uniform_f(-0.06f, 0.06f);
  const float ty = rng.uniform_f(-0.06f, 0.06f);
  const float thickness = rng.uniform_f(0.045f, 0.075f);
  const float soft = 0.5f * thickness;  // soft-edge width

  // Build the jittered, transformed active segments, each with its own
  // stroke intensity.
  std::array<Segment, 7> segs{};
  std::array<float, 7> seg_intensity{};
  std::size_t nsegs = 0;
  const unsigned mask = kDigitMask[static_cast<std::size_t>(digit)];
  for (std::size_t s = 0; s < kSegments.size(); ++s) {
    if (!(mask >> s & 1u)) continue;
    auto transform = [&](Point p) {
      // Jitter, center, scale+rotate, un-center, shift.
      const float jx = p.x + rng.uniform_f(-cfg.jitter, cfg.jitter) - 0.5f;
      const float jy = p.y + rng.uniform_f(-cfg.jitter, cfg.jitter) - 0.5f;
      return Point{(cs * jx * sx - sn * jy * sy) + 0.5f + tx,
                   (sn * jx * sx + cs * jy * sy) + 0.5f + ty};
    };
    seg_intensity[nsegs] =
        rng.uniform_f(cfg.stroke_intensity_min, cfg.stroke_intensity_max);
    segs[nsegs++] = Segment{transform(kSegments[s].a),
                            transform(kSegments[s].b)};
  }

  Tensor img({1, 1, cfg.height, cfg.width});
  for (std::size_t i = 0; i < cfg.height; ++i) {
    for (std::size_t j = 0; j < cfg.width; ++j) {
      const float py = (static_cast<float>(i) + 0.5f) /
                       static_cast<float>(cfg.height);
      const float px = (static_cast<float>(j) + 0.5f) /
                       static_cast<float>(cfg.width);
      // Max over segments of intensity * soft falloff from the centerline.
      float v = 0.0f;
      for (std::size_t s = 0; s < nsegs; ++s) {
        const float d = dist_to_segment(px, py, segs[s]);
        float cov = 0.0f;
        if (d < thickness) {
          cov = 1.0f;
        } else if (d < thickness + soft) {
          const float t = (d - thickness) / soft;
          cov = 1.0f - t * t * (3.0f - 2.0f * t);  // smoothstep down
        }
        v = std::max(v, seg_intensity[s] * cov);
      }
      if (cfg.pixel_noise_std > 0.0f) {
        v += static_cast<float>(rng.normal(0.0, cfg.pixel_noise_std));
      }
      img.at(0, 0, i, j) = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return img;
}

Dataset make_syn_digits(const SynDigitsConfig& cfg) {
  if (cfg.count == 0) throw std::invalid_argument("make_syn_digits: count 0");
  Dataset d;
  d.images = Tensor({cfg.count, 1, cfg.height, cfg.width});
  d.labels.resize(cfg.count);
  d.num_classes = 10;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const int digit = static_cast<int>(i % 10);
    d.labels[i] = digit;
    d.images.set_rows(i, render_syn_digit(cfg, i, digit));
  }
  return d;
}

}  // namespace adv::data
