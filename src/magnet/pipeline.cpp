#include "magnet/pipeline.hpp"

#include <map>
#include <stdexcept>

#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "quant/quantize.hpp"

namespace adv::magnet {

const char* to_string(DefenseScheme s) {
  switch (s) {
    case DefenseScheme::None: return "no defense";
    case DefenseScheme::DetectorOnly: return "detector";
    case DefenseScheme::ReformerOnly: return "reformer";
    case DefenseScheme::Full: return "detector & reformer";
  }
  return "?";
}

const char* to_string(ExecMode m) {
  switch (m) {
    case ExecMode::Float: return "float";
    case ExecMode::Int8: return "int8";
  }
  return "?";
}

DefenseOutcome DefenseOutcome::slice_rows(std::size_t begin,
                                          std::size_t end) const {
  if (begin > end || end > predicted.size()) {
    throw std::out_of_range("DefenseOutcome::slice_rows: bad range [" +
                            std::to_string(begin) + ", " +
                            std::to_string(end) + ") of " +
                            std::to_string(predicted.size()));
  }
  DefenseOutcome out;
  out.rejected.assign(rejected.begin() + static_cast<std::ptrdiff_t>(begin),
                      rejected.begin() + static_cast<std::ptrdiff_t>(end));
  out.predicted.assign(predicted.begin() + static_cast<std::ptrdiff_t>(begin),
                       predicted.begin() + static_cast<std::ptrdiff_t>(end));
  out.readings.reserve(readings.size());
  for (const DetectorReading& r : readings) {
    DetectorReading s;
    s.name = r.name;
    s.threshold = r.threshold;
    s.scores.assign(r.scores.begin() + static_cast<std::ptrdiff_t>(begin),
                    r.scores.begin() + static_cast<std::ptrdiff_t>(end));
    out.readings.push_back(std::move(s));
  }
  return out;
}

Reformer::Reformer(std::shared_ptr<nn::Sequential> autoencoder)
    : ae_(std::move(autoencoder)) {
  if (!ae_) throw std::invalid_argument("Reformer: null autoencoder");
}

Tensor Reformer::reform(const Tensor& batch) const {
  return nn::predict(*ae_, batch);
}

MagNetPipeline::MagNetPipeline(std::shared_ptr<nn::Sequential> classifier)
    : classifier_(std::move(classifier)) {
  if (!classifier_) throw std::invalid_argument("MagNetPipeline: null classifier");
}

void MagNetPipeline::add_detector(std::shared_ptr<Detector> detector) {
  if (!detector) throw std::invalid_argument("add_detector: null detector");
  detectors_.push_back(std::move(detector));
}

void MagNetPipeline::set_reformer(std::shared_ptr<Reformer> reformer) {
  reformer_ = std::move(reformer);
}

void MagNetPipeline::calibrate(const Tensor& clean_validation, float fpr) {
  for (auto& d : detectors_) d->calibrate(clean_validation, fpr);
  // The int8 bank never calibrates itself: its decision rule is always
  // the float thresholds (DESIGN.md §17).
  for (std::size_t i = 0; i < q_detectors_.size(); ++i) {
    q_detectors_[i]->set_threshold(detectors_[i]->threshold());
  }
}

void MagNetPipeline::prepare_quantized(const Tensor& calib) {
  // One int8 clone per distinct float model: the reformer AE is usually
  // also a detector AE, and the classifier feeds every JSD detector —
  // sharing keeps the int8 bank's memory at par with the float one.
  std::map<const nn::Sequential*, std::shared_ptr<nn::Sequential>> memo;
  const auto clone = [&](const std::shared_ptr<nn::Sequential>& src) {
    auto it = memo.find(src.get());
    if (it != memo.end()) return it->second;
    auto q = std::make_shared<nn::Sequential>(quant::quantize(*src, calib));
    memo.emplace(src.get(), q);
    return q;
  };
  q_classifier_ = clone(classifier_);
  q_detectors_.clear();
  q_detectors_.reserve(detectors_.size());
  for (const auto& d : detectors_) {
    std::shared_ptr<Detector> q;
    if (const auto* rd = dynamic_cast<const ReconstructionDetector*>(d.get())) {
      q = std::make_shared<ReconstructionDetector>(clone(rd->autoencoder()),
                                                   rd->p());
    } else if (const auto* jd = dynamic_cast<const JsdDetector*>(d.get())) {
      q = std::make_shared<JsdDetector>(clone(jd->autoencoder()),
                                        clone(jd->classifier()),
                                        jd->temperature());
    } else {
      throw std::runtime_error("prepare_quantized: unsupported detector " +
                               d->name());
    }
    if (d->calibrated()) q->set_threshold(d->threshold());
    q_detectors_.push_back(std::move(q));
  }
  q_reformer_ = reformer_
                    ? std::make_shared<Reformer>(clone(reformer_->autoencoder()))
                    : nullptr;
}

DefenseOutcome MagNetPipeline::classify(const Tensor& batch,
                                        DefenseScheme scheme,
                                        ExecMode mode) const {
  const bool int8 = mode == ExecMode::Int8;
  if (int8 && !quantized_ready()) {
    throw std::runtime_error(
        "classify: ExecMode::Int8 requires prepare_quantized()");
  }
  const auto& detectors = int8 ? q_detectors_ : detectors_;
  const auto& reformer = int8 ? q_reformer_ : reformer_;
  const auto& classifier = int8 ? q_classifier_ : classifier_;

  const std::size_t n = batch.dim(0);
  DefenseOutcome out;
  out.rejected.assign(n, false);

  const bool use_detectors = scheme == DefenseScheme::DetectorOnly ||
                             scheme == DefenseScheme::Full;
  const bool use_reformer = (scheme == DefenseScheme::ReformerOnly ||
                             scheme == DefenseScheme::Full) &&
                            reformer != nullptr;

  if (obs::enabled() && int8) {
    static auto& rows =
        obs::MetricsRegistry::global().counter("quant/classify_rows");
    rows.add(n);
  }
  if (use_detectors) {
    // Per-stage serving latency (adv::obs; no-op unless enabled).
    obs::ScopedTimer t("magnet/stage/detectors");
    out.readings.reserve(detectors.size());
    for (const auto& d : detectors) {
      DetectorReading reading;
      reading.name = d->name();
      reading.threshold = d->threshold();  // throws if not calibrated
      reading.scores = d->scores(batch);
      for (std::size_t i = 0; i < n; ++i) {
        if (reading.reject_row(i)) out.rejected[i] = true;
      }
      out.readings.push_back(std::move(reading));
    }
  }

  Tensor reformed;
  if (use_reformer) {
    obs::ScopedTimer t("magnet/stage/reformer");
    reformed = reformer->reform(batch);
  }
  {
    obs::ScopedTimer t("magnet/stage/classifier");
    out.predicted =
        nn::predict_labels(*classifier, use_reformer ? reformed : batch);
  }
  return out;
}

float MagNetPipeline::clean_accuracy(const Tensor& images,
                                     const std::vector<int>& labels,
                                     DefenseScheme scheme,
                                     ExecMode mode) const {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument("clean_accuracy: image/label count mismatch");
  }
  const DefenseOutcome o = classify(images, scheme, mode);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // A rejected clean input counts as an error (it is not classified).
    if (!o.rejected[i] && o.predicted[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

}  // namespace adv::magnet
