#include "magnet/pipeline.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"
#include "obs/metrics.hpp"

namespace adv::magnet {

const char* to_string(DefenseScheme s) {
  switch (s) {
    case DefenseScheme::None: return "no defense";
    case DefenseScheme::DetectorOnly: return "detector";
    case DefenseScheme::ReformerOnly: return "reformer";
    case DefenseScheme::Full: return "detector & reformer";
  }
  return "?";
}

DefenseOutcome DefenseOutcome::slice_rows(std::size_t begin,
                                          std::size_t end) const {
  if (begin > end || end > predicted.size()) {
    throw std::out_of_range("DefenseOutcome::slice_rows: bad range [" +
                            std::to_string(begin) + ", " +
                            std::to_string(end) + ") of " +
                            std::to_string(predicted.size()));
  }
  DefenseOutcome out;
  out.rejected.assign(rejected.begin() + static_cast<std::ptrdiff_t>(begin),
                      rejected.begin() + static_cast<std::ptrdiff_t>(end));
  out.predicted.assign(predicted.begin() + static_cast<std::ptrdiff_t>(begin),
                       predicted.begin() + static_cast<std::ptrdiff_t>(end));
  out.readings.reserve(readings.size());
  for (const DetectorReading& r : readings) {
    DetectorReading s;
    s.name = r.name;
    s.threshold = r.threshold;
    s.scores.assign(r.scores.begin() + static_cast<std::ptrdiff_t>(begin),
                    r.scores.begin() + static_cast<std::ptrdiff_t>(end));
    out.readings.push_back(std::move(s));
  }
  return out;
}

Reformer::Reformer(std::shared_ptr<nn::Sequential> autoencoder)
    : ae_(std::move(autoencoder)) {
  if (!ae_) throw std::invalid_argument("Reformer: null autoencoder");
}

Tensor Reformer::reform(const Tensor& batch) const {
  return nn::predict(*ae_, batch);
}

MagNetPipeline::MagNetPipeline(std::shared_ptr<nn::Sequential> classifier)
    : classifier_(std::move(classifier)) {
  if (!classifier_) throw std::invalid_argument("MagNetPipeline: null classifier");
}

void MagNetPipeline::add_detector(std::shared_ptr<Detector> detector) {
  if (!detector) throw std::invalid_argument("add_detector: null detector");
  detectors_.push_back(std::move(detector));
}

void MagNetPipeline::set_reformer(std::shared_ptr<Reformer> reformer) {
  reformer_ = std::move(reformer);
}

void MagNetPipeline::calibrate(const Tensor& clean_validation, float fpr) {
  for (auto& d : detectors_) d->calibrate(clean_validation, fpr);
}

DefenseOutcome MagNetPipeline::classify(const Tensor& batch,
                                        DefenseScheme scheme) const {
  const std::size_t n = batch.dim(0);
  DefenseOutcome out;
  out.rejected.assign(n, false);

  const bool use_detectors = scheme == DefenseScheme::DetectorOnly ||
                             scheme == DefenseScheme::Full;
  const bool use_reformer = (scheme == DefenseScheme::ReformerOnly ||
                             scheme == DefenseScheme::Full) &&
                            reformer_ != nullptr;

  if (use_detectors) {
    // Per-stage serving latency (adv::obs; no-op unless enabled).
    obs::ScopedTimer t("magnet/stage/detectors");
    out.readings.reserve(detectors_.size());
    for (const auto& d : detectors_) {
      DetectorReading reading;
      reading.name = d->name();
      reading.threshold = d->threshold();  // throws if not calibrated
      reading.scores = d->scores(batch);
      for (std::size_t i = 0; i < n; ++i) {
        if (reading.reject_row(i)) out.rejected[i] = true;
      }
      out.readings.push_back(std::move(reading));
    }
  }

  Tensor reformed;
  if (use_reformer) {
    obs::ScopedTimer t("magnet/stage/reformer");
    reformed = reformer_->reform(batch);
  }
  {
    obs::ScopedTimer t("magnet/stage/classifier");
    out.predicted =
        nn::predict_labels(*classifier_, use_reformer ? reformed : batch);
  }
  return out;
}

float MagNetPipeline::clean_accuracy(const Tensor& images,
                                     const std::vector<int>& labels,
                                     DefenseScheme scheme) const {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument("clean_accuracy: image/label count mismatch");
  }
  const DefenseOutcome o = classify(images, scheme);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // A rejected clean input counts as an error (it is not classified).
    if (!o.rejected[i] && o.predicted[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

}  // namespace adv::magnet
