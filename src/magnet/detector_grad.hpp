// Differentiable detector-evasion terms: the MagNet detector bank,
// re-expressed as attacks::AuxObjective implementations so a
// DetectorAwareTarget can fold "don't get caught" into an attack's
// objective (Carlini & Wagner's detector-aware break of MagNet,
// arXiv:1711.08478).
//
// Each term mirrors one calibrated Detector. Its per-row loss is the
// hinged, threshold-normalized overshoot
//
//   aux_i = max(0, score_i - threshold) / max(threshold, eps)
//
// so aux_i <= 0 exactly when the detector would pass row i, and terms
// with very different score scales (reconstruction error vs JSD)
// contribute comparably. input_grad differentiates the same expression
// through the detector's models analytically:
//   * reconstruction error  — d/dx mean|x - AE(x)|^p needs one AE
//     forward/backward (grad = seed - AE^T seed);
//   * JSD                   — dJSD/dp_j = 0.5 ln(p_j / m_j), chained
//     through the temperature softmax and both classifier branches
//     (on x directly and on AE(x)).
#pragma once

#include <memory>
#include <vector>

#include "attacks/target.hpp"
#include "magnet/detector.hpp"
#include "magnet/pipeline.hpp"

namespace adv::magnet {

/// Evasion term for a ReconstructionDetector: hinged overshoot of the
/// mean per-pixel Lp reconstruction error over the calibrated threshold.
class ReconErrorTerm final : public attacks::AuxObjective {
 public:
  /// `p` is 1 or 2; `threshold` is the detector's calibrated threshold.
  ReconErrorTerm(std::shared_ptr<nn::Sequential> autoencoder, int p,
                 float threshold, std::string name);

  std::string name() const override { return name_; }
  std::vector<float> loss(const Tensor& batch) override;
  Tensor input_grad(const Tensor& batch,
                    const std::vector<float>& weight) override;

 private:
  std::shared_ptr<nn::Sequential> ae_;
  int p_;
  float threshold_;
  std::string name_;
};

/// Evasion term for a JsdDetector: hinged overshoot of
/// JSD(softmax(F(x)/T) || softmax(F(AE(x))/T)) over the threshold.
class JsdEvasionTerm final : public attacks::AuxObjective {
 public:
  JsdEvasionTerm(std::shared_ptr<nn::Sequential> autoencoder,
                 std::shared_ptr<nn::Sequential> classifier,
                 float temperature, float threshold, std::string name);

  std::string name() const override { return name_; }
  std::vector<float> loss(const Tensor& batch) override;
  Tensor input_grad(const Tensor& batch,
                    const std::vector<float>& weight) override;

 private:
  std::shared_ptr<nn::Sequential> ae_;
  std::shared_ptr<nn::Sequential> classifier_;
  float temperature_;
  float threshold_;
  std::string name_;
};

/// Builds one evasion term per detector in the (calibrated) pipeline's
/// bank, in bank order, sharing the detectors' own model instances.
/// Throws std::logic_error on an uncalibrated detector and
/// std::invalid_argument on a detector type without a gradient
/// implementation.
std::vector<std::shared_ptr<attacks::AuxObjective>> detector_aux_terms(
    const MagNetPipeline& pipeline);

}  // namespace adv::magnet
