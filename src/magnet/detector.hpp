// MagNet adversary detectors.
//
// A Detector maps a batch of images to anomaly scores (higher = more
// likely adversarial) and rejects inputs whose score exceeds a threshold
// calibrated on clean validation data at a target false-positive rate —
// exactly MagNet's procedure.
//
// Two families, as in the paper:
//   * ReconstructionDetector — per-pixel Lp reconstruction error of an
//     auto-encoder (p = 1 or 2; MNIST's default MagNet uses one of each).
//   * JsdDetector — Jensen-Shannon divergence between the classifier's
//     temperature-softened output on x and on AE(x) (CIFAR default and the
//     "D+JSD" robust MNIST variant; temperatures 10 and 40 in the paper).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace adv::magnet {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Anomaly score per batch row; higher means more anomalous. Const:
  /// scoring never changes the detector's calibration (the models it
  /// consults are behind shared_ptrs and run forward-only).
  virtual std::vector<float> scores(const Tensor& batch) const = 0;

  virtual std::string name() const = 0;

  /// Sets the rejection threshold to the (1 - fpr) quantile of scores on
  /// clean validation images. Throws std::invalid_argument on empty data
  /// or fpr outside (0, 1).
  void calibrate(const Tensor& clean_validation, float fpr);

  bool calibrated() const { return calibrated_; }
  float threshold() const;
  void set_threshold(float t) {
    threshold_ = t;
    calibrated_ = true;
  }

  /// reject[i] == true iff scores(batch)[i] > threshold. Requires a prior
  /// calibrate()/set_threshold().
  std::vector<bool> reject(const Tensor& batch) const;

 private:
  float threshold_ = 0.0f;
  bool calibrated_ = false;
};

class ReconstructionDetector final : public Detector {
 public:
  /// `p` must be 1 or 2. Score is the mean |x - AE(x)|^p per pixel
  /// (average, so thresholds are comparable across image sizes).
  ReconstructionDetector(std::shared_ptr<nn::Sequential> autoencoder, int p);

  std::vector<float> scores(const Tensor& batch) const override;
  std::string name() const override {
    return "recon_l" + std::to_string(p_);
  }

  /// The models/parameters a detector-aware attacker differentiates
  /// through (attacks build gradient terms from these; see
  /// magnet/detector_grad.hpp).
  const std::shared_ptr<nn::Sequential>& autoencoder() const { return ae_; }
  int p() const { return p_; }

 private:
  std::shared_ptr<nn::Sequential> ae_;
  int p_;
};

class JsdDetector final : public Detector {
 public:
  /// Score is JSD(softmax(F(x)/T) || softmax(F(AE(x))/T)).
  JsdDetector(std::shared_ptr<nn::Sequential> autoencoder,
              std::shared_ptr<nn::Sequential> classifier, float temperature);

  std::vector<float> scores(const Tensor& batch) const override;
  std::string name() const override {
    return "jsd_T" + std::to_string(static_cast<int>(temperature_));
  }

  const std::shared_ptr<nn::Sequential>& autoencoder() const { return ae_; }
  const std::shared_ptr<nn::Sequential>& classifier() const {
    return classifier_;
  }
  float temperature() const { return temperature_; }

 private:
  std::shared_ptr<nn::Sequential> ae_;
  std::shared_ptr<nn::Sequential> classifier_;
  float temperature_;
};

/// Jensen-Shannon divergence between two discrete distributions (rows of
/// equal length). Exposed for tests; returns a value in [0, ln 2].
float jensen_shannon_divergence(std::span<const float> p,
                                std::span<const float> q);

}  // namespace adv::magnet
