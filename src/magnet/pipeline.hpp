// MagNetPipeline: the full serial two-stage defense.
//
//   input -> [detector bank: reject if ANY detector fires]
//         -> [reformer: x <- AE(x)]
//         -> DNN classifier -> label
//
// DefenseScheme selects which stages are active, reproducing the paper's
// supplementary ablation (no defense / detector only / reformer only /
// detector & reformer).
#pragma once

#include <memory>
#include <vector>

#include "magnet/detector.hpp"
#include "nn/sequential.hpp"

namespace adv::magnet {

enum class DefenseScheme { None, DetectorOnly, ReformerOnly, Full };

const char* to_string(DefenseScheme s);

/// Execution backend for classify(): the float models, or the per-channel
/// int8 clones built by prepare_quantized() (DESIGN.md §17). Detector
/// thresholds are always the float-calibrated ones — int8 changes the
/// scores, never the decision rule, so threshold drift is measurable.
enum class ExecMode { Float, Int8 };

const char* to_string(ExecMode m);

/// One detector's raw output on a batch: its name, calibrated threshold,
/// and per-row scores. reject_row(i) reproduces the detector's decision
/// (score > threshold) without re-running the models.
struct DetectorReading {
  std::string name;
  float threshold = 0.0f;
  std::vector<float> scores;

  bool reject_row(std::size_t i) const { return scores[i] > threshold; }
};

struct DefenseOutcome {
  /// True where some detector rejected the input (always false under
  /// None/ReformerOnly).
  std::vector<bool> rejected;
  /// Predicted label after the (possibly active) reformer; computed for
  /// every row including rejected ones.
  std::vector<int> predicted;
  /// Raw scores + thresholds per detector, in bank order — says WHICH
  /// detector fired, not just that one did. Empty when the scheme runs no
  /// detectors. `rejected` is exactly the OR of reject_row over readings.
  std::vector<DetectorReading> readings;

  /// Rows [begin, end) of this outcome as a standalone outcome: rejected/
  /// predicted sub-ranges plus every reading with its scores sliced (name
  /// and threshold copied). The serve micro-batcher uses this to hand
  /// each coalesced request its exact share of one dense classify()
  /// result. Throws std::out_of_range on a bad range.
  DefenseOutcome slice_rows(std::size_t begin, std::size_t end) const;
};

/// Reformer: projects inputs onto the learned data manifold via the
/// auto-encoder.
class Reformer {
 public:
  explicit Reformer(std::shared_ptr<nn::Sequential> autoencoder);
  Tensor reform(const Tensor& batch) const;

  const std::shared_ptr<nn::Sequential>& autoencoder() const { return ae_; }

 private:
  std::shared_ptr<nn::Sequential> ae_;
};

class MagNetPipeline {
 public:
  explicit MagNetPipeline(std::shared_ptr<nn::Sequential> classifier);

  void add_detector(std::shared_ptr<Detector> detector);
  void set_reformer(std::shared_ptr<Reformer> reformer);

  std::size_t detector_count() const { return detectors_.size(); }
  Detector& detector(std::size_t i) { return *detectors_.at(i); }
  const Detector& detector(std::size_t i) const { return *detectors_.at(i); }
  nn::Sequential& classifier() { return *classifier_; }

  /// Calibrates every detector's threshold at `fpr` on clean validation
  /// images (MagNet's procedure). If int8 clones exist, their thresholds
  /// are refreshed from the float calibration (the int8 path never
  /// recalibrates — see ExecMode).
  void calibrate(const Tensor& clean_validation, float fpr);

  /// Builds the per-channel int8 clones (quant::quantize) of the
  /// classifier, the reformer's auto-encoder and every detector-consulted
  /// model, calibrating activation scales on `calib`. Models shared
  /// between stages (the reformer AE doubling as a detector AE, the
  /// classifier inside JSD detectors) are cloned once and shared again.
  /// Detector thresholds are copied from the float calibration.
  void prepare_quantized(const Tensor& calib);

  /// True once prepare_quantized() has run (required for ExecMode::Int8).
  bool quantized_ready() const { return q_classifier_ != nullptr; }

  /// Runs the defense. Detectors must be calibrated when the scheme uses
  /// them; a Full/ReformerOnly scheme without a reformer degrades to the
  /// respective detector-only/no-defense behaviour. Const (and callable
  /// on a const pipeline): serving never mutates the defense.
  /// ExecMode::Int8 requires a prior prepare_quantized() and throws
  /// std::runtime_error otherwise.
  DefenseOutcome classify(const Tensor& batch,
                          DefenseScheme scheme = DefenseScheme::Full,
                          ExecMode mode = ExecMode::Float) const;

  /// Accuracy on clean data: fraction neither rejected nor misclassified.
  float clean_accuracy(const Tensor& images, const std::vector<int>& labels,
                       DefenseScheme scheme = DefenseScheme::Full,
                       ExecMode mode = ExecMode::Float) const;

 private:
  std::shared_ptr<nn::Sequential> classifier_;
  std::vector<std::shared_ptr<Detector>> detectors_;
  std::shared_ptr<Reformer> reformer_;
  // Int8 execution bank (prepare_quantized): clones aligned 1:1 with the
  // float members; q_detectors_[i] mirrors detectors_[i] with copied
  // thresholds.
  std::shared_ptr<nn::Sequential> q_classifier_;
  std::vector<std::shared_ptr<Detector>> q_detectors_;
  std::shared_ptr<Reformer> q_reformer_;
};

}  // namespace adv::magnet
