#include "magnet/autoencoder.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/pool.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::magnet {

nn::Sequential build_autoencoder(const AutoencoderConfig& cfg, Rng& rng) {
  using nn::Conv2d;
  nn::Sequential model;
  const std::size_t f = cfg.filters;
  const std::size_t c = cfg.image_channels;
  switch (cfg.arch) {
    case AeArch::MnistDeep:
      model.emplace<Conv2d>(Conv2d::same(c, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<nn::AvgPool2d>(2);
      model.emplace<Conv2d>(Conv2d::same(f, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<Conv2d>(Conv2d::same(f, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<nn::Upsample2d>(2);
      model.emplace<Conv2d>(Conv2d::same(f, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<Conv2d>(Conv2d::same(f, c), rng);
      model.emplace<nn::Sigmoid>();
      break;
    case AeArch::MnistShallow:
    case AeArch::Cifar:
      // Identical topology; kept distinct for configuration clarity (the
      // paper tunes them per dataset).
      model.emplace<Conv2d>(Conv2d::same(c, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<Conv2d>(Conv2d::same(f, f), rng);
      model.emplace<nn::Sigmoid>();
      model.emplace<Conv2d>(Conv2d::same(f, c), rng);
      model.emplace<nn::Sigmoid>();
      break;
  }
  return model;
}

std::shared_ptr<nn::Sequential> train_autoencoder(const AutoencoderConfig& cfg,
                                                  const Tensor& images,
                                                  nn::TrainStats* stats) {
  Rng rng(cfg.seed);
  auto model = std::make_shared<nn::Sequential>(build_autoencoder(cfg, rng));
  nn::Adam opt(model->parameters(), model->gradients(), cfg.learning_rate);
  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch_size = cfg.batch_size;
  tc.shuffle_seed = cfg.seed + 1;
  nn::TrainStats s;
  if (cfg.loss == ReconLoss::Mse) {
    nn::MseLoss loss;
    s = nn::fit_autoencoder(*model, images, loss, cfg.train_noise_std, opt, tc);
  } else {
    nn::MaeLoss loss;
    s = nn::fit_autoencoder(*model, images, loss, cfg.train_noise_std, opt, tc);
  }
  if (stats) *stats = std::move(s);
  return model;
}

float mean_reconstruction_error(nn::Sequential& ae, const Tensor& images) {
  const Tensor recon = nn::predict(ae, images);
  return l1_distance(recon, images) / static_cast<float>(images.numel());
}

}  // namespace adv::magnet
