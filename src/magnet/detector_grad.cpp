#include "magnet/detector_grad.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/softmax.hpp"

namespace adv::magnet {
namespace {

constexpr float kThresholdFloor = 1e-12f;

// d aux_i / d score_i for rows over threshold; 0 (inactive hinge) below.
float hinge_scale(float threshold) {
  return 1.0f / std::max(threshold, kThresholdFloor);
}

float hinged(float score, float threshold) {
  const float over = score - threshold;
  return over > 0.0f ? over * hinge_scale(threshold) : 0.0f;
}

}  // namespace

ReconErrorTerm::ReconErrorTerm(std::shared_ptr<nn::Sequential> autoencoder,
                               int p, float threshold, std::string name)
    : ae_(std::move(autoencoder)),
      p_(p),
      threshold_(threshold),
      name_(std::move(name)) {
  if (!ae_) throw std::invalid_argument("ReconErrorTerm: null AE");
  if (p_ != 1 && p_ != 2) {
    throw std::invalid_argument("ReconErrorTerm: p must be 1 or 2");
  }
}

std::vector<float> ReconErrorTerm::loss(const Tensor& batch) {
  // Identical score formula to ReconstructionDetector::scores (mean
  // per-pixel |x - AE(x)|^p), then hinged against the threshold.
  const Tensor recon = ae_->forward(batch, nn::Mode::Infer);
  const std::size_t n = batch.dim(0);
  const std::size_t row = batch.numel() / n;
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = batch.data() + i * row;
    const float* ri = recon.data() + i * row;
    double acc = 0.0;
    if (p_ == 1) {
      for (std::size_t j = 0; j < row; ++j) acc += std::fabs(xi[j] - ri[j]);
    } else {
      for (std::size_t j = 0; j < row; ++j) {
        const double d = static_cast<double>(xi[j]) - ri[j];
        acc += d * d;
      }
    }
    out[i] = hinged(static_cast<float>(acc / static_cast<double>(row)),
                    threshold_);
  }
  return out;
}

Tensor ReconErrorTerm::input_grad(const Tensor& batch,
                                  const std::vector<float>& weight) {
  if (weight.size() != batch.dim(0)) {
    throw std::invalid_argument("ReconErrorTerm: weight/batch mismatch");
  }
  const std::size_t n = batch.dim(0);
  const std::size_t row = batch.numel() / n;
  const Tensor recon = ae_->forward(batch, nn::Mode::Eval);

  // Per-row seed d(sum_i w_i aux_i)/d(diff): with diff = x - AE(x) and
  // score = mean |diff|^p, each element contributes (sign(d)/row) for
  // p = 1 or (2 d / row) for p = 2, scaled by the hinge slope. Rows at or
  // under threshold (or with weight 0) stay zero. The seed is shaped like
  // the AE OUTPUT (elementwise equal to the batch but possibly reshaped,
  // e.g. flattened) — ae_->backward checks shapes against it.
  Tensor seed(recon.shape());
  const float slope = hinge_scale(threshold_);
  for (std::size_t i = 0; i < n; ++i) {
    if (weight[i] == 0.0f) continue;
    const float* xi = batch.data() + i * row;
    const float* ri = recon.data() + i * row;
    double acc = 0.0;
    if (p_ == 1) {
      for (std::size_t j = 0; j < row; ++j) acc += std::fabs(xi[j] - ri[j]);
    } else {
      for (std::size_t j = 0; j < row; ++j) {
        const double d = static_cast<double>(xi[j]) - ri[j];
        acc += d * d;
      }
    }
    const float score = static_cast<float>(acc / static_cast<double>(row));
    if (score <= threshold_) continue;  // hinge inactive
    const float s = weight[i] * slope / static_cast<float>(row);
    float* si = seed.data() + i * row;
    if (p_ == 1) {
      for (std::size_t j = 0; j < row; ++j) {
        const float d = xi[j] - ri[j];
        si[j] = d > 0.0f ? s : d < 0.0f ? -s : 0.0f;
      }
    } else {
      for (std::size_t j = 0; j < row; ++j) {
        si[j] = 2.0f * s * (xi[j] - ri[j]);
      }
    }
  }

  // d/dx [x - AE(x)] applied to the seed: identity minus the AE pullback.
  // Returned in the batch's own shape (flat copy; numel matches).
  const Tensor pullback = ae_->backward(seed);
  Tensor grad(batch.shape());
  for (std::size_t j = 0, m = grad.numel(); j < m; ++j) {
    grad[j] = seed[j] - pullback[j];
  }
  return grad;
}

JsdEvasionTerm::JsdEvasionTerm(std::shared_ptr<nn::Sequential> autoencoder,
                               std::shared_ptr<nn::Sequential> classifier,
                               float temperature, float threshold,
                               std::string name)
    : ae_(std::move(autoencoder)),
      classifier_(std::move(classifier)),
      temperature_(temperature),
      threshold_(threshold),
      name_(std::move(name)) {
  if (!ae_ || !classifier_) {
    throw std::invalid_argument("JsdEvasionTerm: null model");
  }
  if (temperature_ <= 0.0f) {
    throw std::invalid_argument("JsdEvasionTerm: temperature must be > 0");
  }
}

std::vector<float> JsdEvasionTerm::loss(const Tensor& batch) {
  const Tensor recon = ae_->forward(batch, nn::Mode::Infer);
  const Tensor logits_x = classifier_->forward(batch, nn::Mode::Infer);
  const Tensor logits_r = classifier_->forward(recon, nn::Mode::Infer);
  const Tensor probs_x = nn::softmax_rows(logits_x, temperature_);
  const Tensor probs_r = nn::softmax_rows(logits_r, temperature_);
  const std::size_t n = batch.dim(0);
  const std::size_t k = probs_x.dim(1);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float jsd = jensen_shannon_divergence(
        std::span<const float>(probs_x.data() + i * k, k),
        std::span<const float>(probs_r.data() + i * k, k));
    out[i] = hinged(jsd, threshold_);
  }
  return out;
}

Tensor JsdEvasionTerm::input_grad(const Tensor& batch,
                                  const std::vector<float>& weight) {
  if (weight.size() != batch.dim(0)) {
    throw std::invalid_argument("JsdEvasionTerm: weight/batch mismatch");
  }
  const std::size_t n = batch.dim(0);

  // Branch values first. The direct-branch logits are computed
  // forward-only, and BEFORE the recon branch's caching Eval forward:
  // even an Infer pass updates shape-tracking layer state (Flatten), so
  // the classifier must see the recon branch last for its backward. Its
  // own caching forward for the direct branch happens at the end, after
  // the recon branch has consumed these caches (both branches share
  // classifier_).
  const Tensor recon = ae_->forward(batch, nn::Mode::Eval);
  const Tensor logits_x = classifier_->forward(batch, nn::Mode::Infer);
  const Tensor logits_r = classifier_->forward(recon, nn::Mode::Eval);
  const Tensor probs_x = nn::softmax_rows(logits_x, temperature_);
  const Tensor probs_r = nn::softmax_rows(logits_r, temperature_);
  const std::size_t k = probs_x.dim(1);

  // Logit-space seeds for both branches. With u_j = 0.5 ln(p_j / m_j)
  // (the JSD partial wrt p_j, 0-log-0 convention) the tempered-softmax
  // chain rule gives dJSD/dz_j = (1/T) p_j (u_j - sum_t u_t p_t); rows
  // with an inactive hinge (or zero weight) stay zero.
  Tensor seed_x({n, k});
  Tensor seed_r({n, k});
  const float slope = hinge_scale(threshold_);
  bool any_active = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (weight[i] == 0.0f) continue;
    const float* px = probs_x.data() + i * k;
    const float* pr = probs_r.data() + i * k;
    const float jsd = jensen_shannon_divergence(
        std::span<const float>(px, k), std::span<const float>(pr, k));
    if (jsd <= threshold_) continue;  // hinge inactive
    any_active = true;
    const float s = weight[i] * slope / temperature_;
    double dot_x = 0.0, dot_r = 0.0;
    std::vector<double> ux(k, 0.0), ur(k, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      const double m = 0.5 * (static_cast<double>(px[j]) + pr[j]);
      if (px[j] > 0.0f) {
        ux[j] = 0.5 * std::log(static_cast<double>(px[j]) / m);
        dot_x += ux[j] * px[j];
      }
      if (pr[j] > 0.0f) {
        ur[j] = 0.5 * std::log(static_cast<double>(pr[j]) / m);
        dot_r += ur[j] * pr[j];
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      seed_x[i * k + j] =
          s * px[j] * static_cast<float>(ux[j] - dot_x);
      seed_r[i * k + j] =
          s * pr[j] * static_cast<float>(ur[j] - dot_r);
    }
  }

  Tensor grad(batch.shape());
  if (!any_active) return grad;

  // Recon branch first: x -> AE -> classifier, using the caches from the
  // Eval forwards above.
  {
    const Tensor g = ae_->backward(classifier_->backward(seed_r));
    for (std::size_t j = 0, m = grad.numel(); j < m; ++j) grad[j] += g[j];
  }
  // Direct branch: re-run the classifier on the raw batch with caching
  // (this clobbers the recon-branch caches, which are no longer needed).
  {
    classifier_->forward(batch, nn::Mode::Eval);
    const Tensor g = classifier_->backward(seed_x);
    for (std::size_t j = 0, m = grad.numel(); j < m; ++j) grad[j] += g[j];
  }
  return grad;
}

std::vector<std::shared_ptr<attacks::AuxObjective>> detector_aux_terms(
    const MagNetPipeline& pipeline) {
  std::vector<std::shared_ptr<attacks::AuxObjective>> terms;
  terms.reserve(pipeline.detector_count());
  for (std::size_t i = 0; i < pipeline.detector_count(); ++i) {
    const Detector& d = pipeline.detector(i);
    const float threshold = d.threshold();  // throws if not calibrated
    if (const auto* rd = dynamic_cast<const ReconstructionDetector*>(&d)) {
      terms.push_back(std::make_shared<ReconErrorTerm>(
          rd->autoencoder(), rd->p(), threshold, "aux_" + d.name()));
    } else if (const auto* jd = dynamic_cast<const JsdDetector*>(&d)) {
      terms.push_back(std::make_shared<JsdEvasionTerm>(
          jd->autoencoder(), jd->classifier(), jd->temperature(), threshold,
          "aux_" + d.name()));
    } else {
      throw std::invalid_argument(
          "detector_aux_terms: no gradient implementation for detector '" +
          d.name() + "'");
    }
  }
  return terms;
}

}  // namespace adv::magnet
