// MagNet auto-encoder architectures (Meng & Chen, CCS'17; Tables II and V
// of the reproduced paper) and their training routine.
//
// Three architecture families, all 3x3 "same" convolutions with sigmoid
// activations:
//   MnistDeep    (Detector I & Reformer): Conv(F) - AvgPool2 - Conv(F) -
//                Conv(F) - Upsample2 - Conv(F) - Conv(out)
//   MnistShallow (Detector II):           Conv(F) - Conv(F) - Conv(out)
//   Cifar        (Detectors & Reformer):  Conv(F) - Conv(F) - Conv(out)
// The default MagNet uses F = 3 filters; the paper's "robust MagNet"
// raises F to 256 (a knob here — fast configs use a smaller width, see
// DESIGN.md §4).
#pragma once

#include <cstdint>
#include <memory>

#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/rng.hpp"

namespace adv::magnet {

enum class AeArch { MnistDeep, MnistShallow, Cifar };

enum class ReconLoss { Mse, Mae };

struct AutoencoderConfig {
  AeArch arch = AeArch::MnistDeep;
  std::size_t image_channels = 1;
  std::size_t filters = 3;          // MagNet default; 256 in "robust" variants
  ReconLoss loss = ReconLoss::Mse;  // paper Figs. 12/13 compare Mse vs Mae
  float train_noise_std = 0.1f;     // MagNet's noise regularization (v=0.1)
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  // Sigmoid-activated MagNet AEs converge slowly; 3e-3 escapes the
  // collapse-to-mean plateau that 1e-3 stalls in at these epoch counts.
  float learning_rate = 3e-3f;
  std::uint64_t seed = 31;
};

/// Builds the (untrained) auto-encoder network for `cfg`.
nn::Sequential build_autoencoder(const AutoencoderConfig& cfg, Rng& rng);

/// Builds and trains an auto-encoder on `images` (clean training data).
/// Returns the trained model; reconstruction loss per epoch is appended to
/// `*stats` when non-null.
std::shared_ptr<nn::Sequential> train_autoencoder(
    const AutoencoderConfig& cfg, const Tensor& images,
    nn::TrainStats* stats = nullptr);

/// Mean per-element reconstruction error of `ae` over `images` (for tests
/// and sanity reporting).
float mean_reconstruction_error(nn::Sequential& ae, const Tensor& images);

}  // namespace adv::magnet
