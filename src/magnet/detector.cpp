#include "magnet/detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/softmax.hpp"
#include "nn/trainer.hpp"

namespace adv::magnet {

void Detector::calibrate(const Tensor& clean_validation, float fpr) {
  if (fpr <= 0.0f || fpr >= 1.0f) {
    throw std::invalid_argument("Detector::calibrate: fpr must be in (0,1)");
  }
  std::vector<float> s = scores(clean_validation);
  if (s.empty()) {
    throw std::invalid_argument("Detector::calibrate: empty validation set");
  }
  std::sort(s.begin(), s.end());
  // (1 - fpr) quantile; at least the max when fpr is below resolution.
  const std::size_t n = s.size();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil((1.0 - static_cast<double>(fpr)) * static_cast<double>(n)));
  if (idx >= n) idx = n - 1;
  threshold_ = s[idx];
  calibrated_ = true;
}

float Detector::threshold() const {
  if (!calibrated_) {
    throw std::logic_error("Detector::threshold before calibrate");
  }
  return threshold_;
}

std::vector<bool> Detector::reject(const Tensor& batch) const {
  const float t = threshold();  // throws if not calibrated
  const std::vector<float> s = scores(batch);
  std::vector<bool> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = s[i] > t;
  return out;
}

ReconstructionDetector::ReconstructionDetector(
    std::shared_ptr<nn::Sequential> autoencoder, int p)
    : ae_(std::move(autoencoder)), p_(p) {
  if (!ae_) throw std::invalid_argument("ReconstructionDetector: null AE");
  if (p != 1 && p != 2) {
    throw std::invalid_argument("ReconstructionDetector: p must be 1 or 2");
  }
}

std::vector<float> ReconstructionDetector::scores(const Tensor& batch) const {
  const Tensor recon = nn::predict(*ae_, batch);
  const std::size_t n = batch.dim(0);
  const std::size_t row = batch.numel() / n;
  std::vector<float> out(n);
  const float* x = batch.data();
  const float* r = recon.data();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const float* xi = x + i * row;
    const float* ri = r + i * row;
    if (p_ == 1) {
      for (std::size_t j = 0; j < row; ++j) acc += std::fabs(xi[j] - ri[j]);
    } else {
      for (std::size_t j = 0; j < row; ++j) {
        const double d = static_cast<double>(xi[j]) - ri[j];
        acc += d * d;
      }
    }
    out[i] = static_cast<float>(acc / static_cast<double>(row));
  }
  return out;
}

JsdDetector::JsdDetector(std::shared_ptr<nn::Sequential> autoencoder,
                         std::shared_ptr<nn::Sequential> classifier,
                         float temperature)
    : ae_(std::move(autoencoder)),
      classifier_(std::move(classifier)),
      temperature_(temperature) {
  if (!ae_ || !classifier_) {
    throw std::invalid_argument("JsdDetector: null model");
  }
  if (temperature <= 0.0f) {
    throw std::invalid_argument("JsdDetector: temperature must be > 0");
  }
}

float jensen_shannon_divergence(std::span<const float> p,
                                std::span<const float> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("jsd: length mismatch");
  }
  // KL contributions with the 0 log 0 = 0 convention; m_i > 0 whenever
  // p_i > 0 or q_i > 0, so the logs are well-defined.
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i], qi = q[i];
    const double mi = 0.5 * (pi + qi);
    if (pi > 0.0) acc += 0.5 * pi * std::log(pi / mi);
    if (qi > 0.0) acc += 0.5 * qi * std::log(qi / mi);
  }
  return static_cast<float>(std::max(acc, 0.0));
}

std::vector<float> JsdDetector::scores(const Tensor& batch) const {
  const Tensor recon = nn::predict(*ae_, batch);
  const Tensor logits_x = nn::predict(*classifier_, batch);
  const Tensor logits_r = nn::predict(*classifier_, recon);
  const Tensor probs_x = nn::softmax_rows(logits_x, temperature_);
  const Tensor probs_r = nn::softmax_rows(logits_r, temperature_);
  const std::size_t n = batch.dim(0);
  const std::size_t k = probs_x.dim(1);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = jensen_shannon_divergence(
        std::span<const float>(probs_x.data() + i * k, k),
        std::span<const float>(probs_r.data() + i * k, k));
  }
  return out;
}

}  // namespace adv::magnet
