#include "attacks/cw.hpp"

namespace adv::attacks {

namespace {

EadConfig to_ead(const CwL2Config& cfg) {
  EadConfig ead;
  ead.beta = 0.0f;  // pure L2: shrinkage becomes plain box projection
  ead.kappa = cfg.kappa;
  ead.iterations = cfg.iterations;
  ead.binary_search_steps = cfg.binary_search_steps;
  ead.initial_c = cfg.initial_c;
  ead.learning_rate = cfg.learning_rate;
  ead.rule = DecisionRule::L2;
  ead.use_fista = false;
  ead.abort_early_window = cfg.abort_early_window;
  ead.abort_early_rel_tol = cfg.abort_early_rel_tol;
  ead.compact = cfg.compact;
  ead.metrics_name = "cw-l2";
  return ead;
}

}  // namespace

AttackResult cw_l2_attack(AttackTarget& target, const Tensor& images,
                          const std::vector<int>& labels,
                          const CwL2Config& cfg) {
  return ead_attack(target, images, labels, to_ead(cfg));
}

AttackResult cw_l2_attack(nn::Sequential& model, const Tensor& images,
                          const std::vector<int>& labels,
                          const CwL2Config& cfg) {
  return ead_attack(model, images, labels, to_ead(cfg));
}

}  // namespace adv::attacks
