// FGSM and iterative FGSM (Goodfellow et al.'15; Kurakin et al.'16) —
// L-infinity baselines the paper cites as attacks MagNet defends.
#pragma once

#include "attacks/common.hpp"

namespace adv::attacks {

struct FgsmConfig {
  float epsilon = 0.1f;      // L-inf budget in [0,1] pixel space
  std::size_t iterations = 1; // 1 = one-shot FGSM; >1 = I-FGSM with step eps/T
  // Row compaction for the active-set engine (see attacks/engine.hpp).
  // Rows retire at their fixed point: the sign-step update is a
  // deterministic per-row map, so a row the step leaves bitwise unchanged
  // can never move again and is safe to drop from subsequent passes.
  // Output-identical on or off.
  bool compact = true;
};

/// Untargeted (I-)FGSM: ascend the cross-entropy loss of the true label
/// through `target`. On detector-aware targets the auxiliary detector
/// penalty is descended alongside (the sign step follows the combined
/// gradient) and success additionally requires evading the detectors.
AttackResult fgsm_attack(AttackTarget& target, const Tensor& images,
                         const std::vector<int>& labels,
                         const FgsmConfig& cfg);

/// Oblivious-threat-model wrapper: identical to running against an
/// ObliviousTarget over `model`.
AttackResult fgsm_attack(nn::Sequential& model, const Tensor& images,
                         const std::vector<int>& labels,
                         const FgsmConfig& cfg);

}  // namespace adv::attacks
