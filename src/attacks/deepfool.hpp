// DeepFool (Moosavi-Dezfooli et al., CVPR'16): iterative minimal-L2
// untargeted attack; another baseline the paper lists among attacks MagNet
// defends.
#pragma once

#include "attacks/common.hpp"

namespace adv::attacks {

struct DeepFoolConfig {
  std::size_t max_iterations = 30;
  float overshoot = 0.02f;  // eta: multiplicative overshoot per step
  // Row compaction for the active-set engine (see attacks/engine.hpp):
  // already-fooled rows are dropped from the per-iteration forward and the
  // K per-class backwards. Output-identical on or off.
  bool compact = true;
};

/// DeepFool against `target`. The linearized boundary search has no loss
/// term to fold a detector penalty into, so auxiliary objective terms on
/// detector-aware targets only tighten the success criterion (the crafted
/// example must evade the detector bank), not the geometry of the steps.
AttackResult deepfool_attack(AttackTarget& target, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg);

/// Oblivious-threat-model wrapper: identical to running against an
/// ObliviousTarget over `model`.
AttackResult deepfool_attack(nn::Sequential& model, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg);

}  // namespace adv::attacks
