// DeepFool (Moosavi-Dezfooli et al., CVPR'16): iterative minimal-L2
// untargeted attack; another baseline the paper lists among attacks MagNet
// defends.
#pragma once

#include "attacks/common.hpp"

namespace adv::attacks {

struct DeepFoolConfig {
  std::size_t max_iterations = 30;
  float overshoot = 0.02f;  // eta: multiplicative overshoot per step
  // Row compaction for the active-set engine (see attacks/engine.hpp):
  // already-fooled rows are dropped from the per-iteration forward and the
  // K per-class backwards. Output-identical on or off.
  bool compact = true;
};

AttackResult deepfool_attack(nn::Sequential& model, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg);

}  // namespace adv::attacks
