// Shared attack infrastructure.
//
// All attacks here are *untargeted, white-box against an AttackTarget*
// (attacks/target.hpp): the paper's oblivious threat model wraps the
// bare classifier, the gray-box / detector-aware models wrap the
// defended composition. The target must output raw logits. Legacy
// nn::Sequential& overloads are kept for the oblivious path and are
// bitwise-identical to routing through an ObliviousTarget.
#pragma once

#include <string>
#include <vector>

#include "attacks/target.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace adv::attacks {

struct AttackResult {
  /// Final adversarial examples, one row per input. Where the attack
  /// failed, the row holds the unmodified natural image.
  Tensor adversarial;
  /// Per-row success on the attack target at the requested confidence
  /// (for detector-aware targets this additionally requires evading the
  /// auxiliary detector terms).
  std::vector<bool> success;
  /// Distortion of the chosen example vs the natural image (valid
  /// everywhere; zero where the attack failed).
  std::vector<float> l1, l2, linf;

  std::size_t success_count() const;
  float success_rate() const;
  /// Mean distortion over *successful* rows only (paper Table I).
  float mean_l1_over_success() const;
  float mean_l2_over_success() const;
};

/// Attack goal. Untargeted minimizes the paper's eq. (3) hinge (push the
/// prediction AWAY from the true label t0); Targeted minimizes eq. (2)
/// (pull the prediction TOWARD a chosen label t).
enum class HingeMode { Untargeted, Targeted };

/// Evaluation of the hinge attack loss on a batch. `margin` is oriented
/// so that in BOTH modes margin >= kappa means "attack goal met with
/// confidence kappa":
///   untargeted: margin = max_{j != t0} z_j - z_{t0}
///   targeted:   margin = z_t - max_{j != t} z_j
/// and f = max(-margin, -kappa) is the paper's loss in both cases.
struct HingeEval {
  Tensor logits;              // [N, K]
  std::vector<float> margin;  // goal-oriented margin per row
  std::vector<float> f;       // hinge value per row
};

/// Forward pass + hinge statistics. In untargeted mode `labels` are the
/// ORIGINAL labels t0; in targeted mode they are the TARGET labels t.
/// `forward_mode` defaults to Eval (differentiable); pass nn::Mode::Infer
/// for forward-only scoring (candidate/success checks) — it skips the
/// layers' backward-cache copies, and no attack_hinge_input_gradient call
/// may follow such an eval.
HingeEval eval_attack_hinge(AttackTarget& target, const Tensor& batch,
                            const std::vector<int>& labels, float kappa,
                            HingeMode mode,
                            nn::Mode forward_mode = nn::Mode::Eval);
HingeEval eval_attack_hinge(nn::Sequential& model, const Tensor& batch,
                            const std::vector<int>& labels, float kappa,
                            HingeMode mode,
                            nn::Mode forward_mode = nn::Mode::Eval);

/// Untargeted convenience wrappers (paper eq. (3)).
HingeEval eval_untargeted_hinge(AttackTarget& target, const Tensor& batch,
                                const std::vector<int>& labels, float kappa,
                                nn::Mode forward_mode = nn::Mode::Eval);
HingeEval eval_untargeted_hinge(nn::Sequential& model, const Tensor& batch,
                                const std::vector<int>& labels, float kappa,
                                nn::Mode forward_mode = nn::Mode::Eval);

/// Builds the logit-space gradient seed of sum_i weight[i] * f_i and
/// backpropagates it, returning d/d(batch). Rows whose hinge is inactive
/// (margin >= kappa) contribute zero. Must follow the forward pass made by
/// eval_attack_hinge on the same batch, with the same mode. The target
/// overload takes `batch` because composed targets backpropagate through
/// more than one model.
Tensor attack_hinge_input_gradient(AttackTarget& target, const Tensor& batch,
                                   const HingeEval& eval,
                                   const std::vector<int>& labels,
                                   float kappa,
                                   const std::vector<float>& weight,
                                   HingeMode mode);
Tensor attack_hinge_input_gradient(nn::Sequential& model,
                                   const HingeEval& eval,
                                   const std::vector<int>& labels,
                                   float kappa,
                                   const std::vector<float>& weight,
                                   HingeMode mode);

/// Untargeted convenience wrappers.
Tensor hinge_input_gradient(AttackTarget& target, const Tensor& batch,
                            const HingeEval& eval,
                            const std::vector<int>& labels, float kappa,
                            const std::vector<float>& weight);
Tensor hinge_input_gradient(nn::Sequential& model, const HingeEval& eval,
                            const std::vector<int>& labels, float kappa,
                            const std::vector<float>& weight);

/// margin >= kappa, i.e. the example is misclassified with the requested
/// confidence gap (the EAD/C&W success criterion).
bool attack_succeeded(float margin, float kappa);

/// Fills result.l1/l2/linf from (adversarial - natural).
void fill_distortions(AttackResult& result, const Tensor& natural);

}  // namespace adv::attacks
