#include "attacks/deepfool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/tensor_ops.hpp"

namespace adv::attacks {

AttackResult deepfool_attack(nn::Sequential& model, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg) {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument("deepfool_attack: image/label count mismatch");
  }
  const std::size_t n = images.dim(0);
  const std::size_t row = images.numel() / n;

  Tensor x = images;
  std::vector<bool> done(n, false);

  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    const Tensor logits = model.forward(x, nn::Mode::Eval);
    const std::size_t k = logits.dim(1);

    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      if (static_cast<int>(argmax_row(logits, i)) != labels[i]) {
        done[i] = true;  // already fooled
      } else {
        any_active = true;
      }
    }
    if (!any_active) break;

    // Per-class input gradients for the whole batch: K backward passes,
    // each seeded with one-hot class j. grads[j] has the shape of x.
    std::vector<Tensor> grads(k);
    for (std::size_t j = 0; j < k; ++j) {
      // Re-run forward so layer caches match this backward (backward
      // consumes caches; grads of a fixed logits layer are independent of
      // the seed so one forward per backward keeps the contract simple).
      model.forward(x, nn::Mode::Eval);
      Tensor seed({n, k});
      for (std::size_t i = 0; i < n; ++i) {
        if (!done[i]) seed[i * k + j] = 1.0f;
      }
      grads[j] = model.backward(seed);
    }

    // Standard DeepFool step toward the nearest decision boundary.
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const auto t0 = static_cast<std::size_t>(labels[i]);
      const float* z = logits.data() + i * k;
      float best_ratio = std::numeric_limits<float>::infinity();
      std::size_t best_j = k;  // sentinel
      float best_fj = 0.0f;
      double best_wnorm2 = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == t0) continue;
        const float fj = z[j] - z[t0];
        double wnorm2 = 0.0;
        const float* gj = grads[j].data() + i * row;
        const float* gt = grads[t0].data() + i * row;
        for (std::size_t d = 0; d < row; ++d) {
          const double w = static_cast<double>(gj[d]) - gt[d];
          wnorm2 += w * w;
        }
        if (wnorm2 < 1e-20) continue;
        const float ratio =
            std::fabs(fj) / static_cast<float>(std::sqrt(wnorm2));
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_j = j;
          best_fj = fj;
          best_wnorm2 = wnorm2;
        }
      }
      if (best_j == k) continue;  // degenerate gradients; skip this sample
      const float scale = (1.0f + cfg.overshoot) * std::fabs(best_fj) /
                          static_cast<float>(best_wnorm2);
      float* px = x.data() + i * row;
      const float* gj = grads[best_j].data() + i * row;
      const float* gt = grads[t0].data() + i * row;
      for (std::size_t d = 0; d < row; ++d) {
        px[d] = std::clamp(px[d] + scale * (gj[d] - gt[d]), 0.0f, 1.0f);
      }
    }
  }

  AttackResult result;
  result.adversarial = x;
  result.success.assign(n, false);
  const Tensor logits = model.forward(x, nn::Mode::Eval);
  for (std::size_t i = 0; i < n; ++i) {
    result.success[i] = static_cast<int>(argmax_row(logits, i)) != labels[i];
    if (!result.success[i]) {
      std::copy_n(images.data() + i * row, row,
                  result.adversarial.data() + i * row);
    }
  }
  fill_distortions(result, images);
  return result;
}

}  // namespace adv::attacks
