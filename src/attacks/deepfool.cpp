#include "attacks/deepfool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "attacks/engine.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {

AttackResult deepfool_attack(AttackTarget& target, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg) {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument("deepfool_attack: image/label count mismatch");
  }
  const std::size_t n = images.dim(0);
  const std::size_t row = images.numel() / n;

  Tensor x = images;
  ActiveSet rows(n);
  EngineStats stats;

  for (std::size_t iter = 0;
       iter < cfg.max_iterations && !rows.none_active(); ++iter) {
    const CompactPlan plan(rows, cfg.compact);
    const std::size_t na = plan.active();
    Tensor x_g;
    const Tensor& xcur = plan.pick(x, x_g);

    // One caching forward per iteration; the K per-class backwards below
    // all read the same caches (backward treats them as read-only).
    const Tensor logits = target.logits(xcur, nn::Mode::Eval);
    const std::size_t k = logits.dim(1);
    plan.record_passes(stats, 1);

    // Rows fooled by the current iterate get no step and retire after the
    // update loop.
    std::vector<std::uint8_t> fooled(na, 0);
    bool any_active = false;
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t g = plan.global(a);
      const std::size_t loc = plan.loc(a);
      if (static_cast<int>(argmax_row(logits, loc)) != labels[g]) {
        fooled[a] = 1;
      } else {
        any_active = true;
      }
    }

    if (any_active) {
      // Per-class input gradients for the (sub-)batch: K backward passes
      // seeded one-hot, all from the single forward above.
      std::vector<Tensor> grads(k);
      for (std::size_t j = 0; j < k; ++j) {
        Tensor seed({plan.sub() ? na : n, k});
        for (std::size_t a = 0; a < na; ++a) {
          if (!fooled[a]) seed[plan.loc(a) * k + j] = 1.0f;
        }
        grads[j] = target.input_grad(xcur, seed);
        plan.record_passes(stats, 1);
      }

      // Standard DeepFool step toward the nearest decision boundary.
      for (std::size_t a = 0; a < na; ++a) {
        if (fooled[a]) continue;
        const std::size_t g = plan.global(a);
        const std::size_t loc = plan.loc(a);
        const auto t0 = static_cast<std::size_t>(labels[g]);
        const float* z = logits.data() + loc * k;
        float best_ratio = std::numeric_limits<float>::infinity();
        std::size_t best_j = k;  // sentinel
        float best_fj = 0.0f;
        double best_wnorm2 = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          if (j == t0) continue;
          const float fj = z[j] - z[t0];
          double wnorm2 = 0.0;
          const float* gj = grads[j].data() + loc * row;
          const float* gt = grads[t0].data() + loc * row;
          for (std::size_t d = 0; d < row; ++d) {
            const double w = static_cast<double>(gj[d]) - gt[d];
            wnorm2 += w * w;
          }
          if (wnorm2 < 1e-20) continue;
          const float ratio =
              std::fabs(fj) / static_cast<float>(std::sqrt(wnorm2));
          if (ratio < best_ratio) {
            best_ratio = ratio;
            best_j = j;
            best_fj = fj;
            best_wnorm2 = wnorm2;
          }
        }
        if (best_j == k) continue;  // degenerate gradients; skip this sample
        const float scale = (1.0f + cfg.overshoot) * std::fabs(best_fj) /
                            static_cast<float>(best_wnorm2);
        float* px = x.data() + g * row;
        const float* gj = grads[best_j].data() + loc * row;
        const float* gt = grads[t0].data() + loc * row;
        for (std::size_t d = 0; d < row; ++d) {
          px[d] = std::clamp(px[d] + scale * (gj[d] - gt[d]), 0.0f, 1.0f);
        }
      }
    }

    // Collect first: retire() mutates the indices() vector the plan
    // aliases.
    std::vector<std::size_t> to_retire;
    for (std::size_t a = 0; a < na; ++a) {
      if (fooled[a]) to_retire.push_back(plan.global(a));
    }
    for (const std::size_t g : to_retire) {
      rows.retire(g);
      ++stats.rows_retired;
    }
    if (!any_active) break;
  }
  stats.flush("deepfool");

  AttackResult result;
  result.adversarial = x;
  result.success.assign(n, false);
  const Tensor logits = target.logits(x, nn::Mode::Infer);
  for (std::size_t i = 0; i < n; ++i) {
    result.success[i] = static_cast<int>(argmax_row(logits, i)) != labels[i];
  }
  if (target.has_aux()) {
    // Detector-aware success: the example must also evade the detectors.
    const std::vector<float> aux = target.aux_loss(x);
    for (std::size_t i = 0; i < n; ++i) {
      if (aux[i] > 0.0f) result.success[i] = false;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.success[i]) {
      std::copy_n(images.data() + i * row, row,
                  result.adversarial.data() + i * row);
    }
  }
  fill_distortions(result, images);
  return result;
}

AttackResult deepfool_attack(nn::Sequential& model, const Tensor& images,
                             const std::vector<int>& labels,
                             const DeepFoolConfig& cfg) {
  ObliviousTarget target(model);
  return deepfool_attack(target, images, labels, cfg);
}

}  // namespace adv::attacks
