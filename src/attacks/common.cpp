#include "attacks/common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adv::attacks {

std::size_t AttackResult::success_count() const {
  return static_cast<std::size_t>(
      std::count(success.begin(), success.end(), true));
}

float AttackResult::success_rate() const {
  if (success.empty()) return 0.0f;
  return static_cast<float>(success_count()) /
         static_cast<float>(success.size());
}

namespace {

float mean_over_success(const std::vector<float>& values,
                        const std::vector<bool>& success) {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (success[i]) {
      acc += values[i];
      ++n;
    }
  }
  return n ? static_cast<float>(acc / static_cast<double>(n)) : 0.0f;
}

// Hinge statistics from logits already stored in `out`. Shared by the
// Sequential and AttackTarget entry points so both compute bit-identical
// margins/f from identical logits.
void fill_hinge_stats(HingeEval& out, const std::vector<int>& labels,
                      float kappa, HingeMode mode) {
  const std::size_t n = out.logits.dim(0), k = out.logits.dim(1);
  out.margin.resize(n);
  out.f.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = out.logits.data() + i * k;
    const auto t = static_cast<std::size_t>(labels[i]);
    if (t >= k) {
      throw std::invalid_argument("eval_attack_hinge: label out of range");
    }
    float best_other = -1e30f;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != t) best_other = std::max(best_other, z[j]);
    }
    // Goal-oriented margin: both eq. (2) and eq. (3) reduce to
    // f = max(-margin, -kappa) under this orientation.
    out.margin[i] = mode == HingeMode::Untargeted ? best_other - z[t]
                                                  : z[t] - best_other;
    out.f[i] = std::max(-out.margin[i], -kappa);
  }
}

// Logit-space seed of sum_i weight[i] * f_i (shared by both entry points).
Tensor hinge_seed(const HingeEval& eval, const std::vector<int>& labels,
                  float kappa, const std::vector<float>& weight,
                  HingeMode mode) {
  const std::size_t n = eval.logits.dim(0), k = eval.logits.dim(1);
  if (weight.size() != n || labels.size() != n) {
    throw std::invalid_argument("attack_hinge_input_gradient: size mismatch");
  }
  Tensor seed({n, k});
  for (std::size_t i = 0; i < n; ++i) {
    // Hinge active iff margin < kappa.
    if (eval.margin[i] >= kappa || weight[i] == 0.0f) continue;
    const float* z = eval.logits.data() + i * k;
    const auto t = static_cast<std::size_t>(labels[i]);
    std::size_t jstar = t == 0 ? 1 : 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != t && z[j] > z[jstar]) jstar = j;
    }
    // d f / d z: untargeted pushes z_t down and z_{j*} up; targeted the
    // reverse.
    const float sign = mode == HingeMode::Untargeted ? 1.0f : -1.0f;
    seed[i * k + t] = sign * weight[i];
    seed[i * k + jstar] = -sign * weight[i];
  }
  return seed;
}

}  // namespace

float AttackResult::mean_l1_over_success() const {
  return mean_over_success(l1, success);
}

float AttackResult::mean_l2_over_success() const {
  return mean_over_success(l2, success);
}

HingeEval eval_attack_hinge(AttackTarget& target, const Tensor& batch,
                            const std::vector<int>& labels, float kappa,
                            HingeMode mode, nn::Mode forward_mode) {
  if (batch.dim(0) != labels.size()) {
    throw std::invalid_argument("eval_attack_hinge: batch/label mismatch");
  }
  HingeEval out;
  out.logits = target.logits(batch, forward_mode);
  fill_hinge_stats(out, labels, kappa, mode);
  return out;
}

HingeEval eval_attack_hinge(nn::Sequential& model, const Tensor& batch,
                            const std::vector<int>& labels, float kappa,
                            HingeMode mode, nn::Mode forward_mode) {
  if (batch.dim(0) != labels.size()) {
    throw std::invalid_argument("eval_attack_hinge: batch/label mismatch");
  }
  HingeEval out;
  out.logits = model.forward(batch, forward_mode);
  fill_hinge_stats(out, labels, kappa, mode);
  return out;
}

HingeEval eval_untargeted_hinge(AttackTarget& target, const Tensor& batch,
                                const std::vector<int>& labels, float kappa,
                                nn::Mode forward_mode) {
  return eval_attack_hinge(target, batch, labels, kappa,
                           HingeMode::Untargeted, forward_mode);
}

HingeEval eval_untargeted_hinge(nn::Sequential& model, const Tensor& batch,
                                const std::vector<int>& labels, float kappa,
                                nn::Mode forward_mode) {
  return eval_attack_hinge(model, batch, labels, kappa,
                           HingeMode::Untargeted, forward_mode);
}

Tensor attack_hinge_input_gradient(AttackTarget& target, const Tensor& batch,
                                   const HingeEval& eval,
                                   const std::vector<int>& labels,
                                   float kappa,
                                   const std::vector<float>& weight,
                                   HingeMode mode) {
  return target.input_grad(batch,
                           hinge_seed(eval, labels, kappa, weight, mode));
}

Tensor attack_hinge_input_gradient(nn::Sequential& model,
                                   const HingeEval& eval,
                                   const std::vector<int>& labels,
                                   float kappa,
                                   const std::vector<float>& weight,
                                   HingeMode mode) {
  return model.backward(hinge_seed(eval, labels, kappa, weight, mode));
}

Tensor hinge_input_gradient(AttackTarget& target, const Tensor& batch,
                            const HingeEval& eval,
                            const std::vector<int>& labels, float kappa,
                            const std::vector<float>& weight) {
  return attack_hinge_input_gradient(target, batch, eval, labels, kappa,
                                     weight, HingeMode::Untargeted);
}

Tensor hinge_input_gradient(nn::Sequential& model, const HingeEval& eval,
                            const std::vector<int>& labels, float kappa,
                            const std::vector<float>& weight) {
  return attack_hinge_input_gradient(model, eval, labels, kappa, weight,
                                     HingeMode::Untargeted);
}

bool attack_succeeded(float margin, float kappa) { return margin >= kappa; }

void fill_distortions(AttackResult& result, const Tensor& natural) {
  const std::size_t n = natural.dim(0);
  const std::size_t row = natural.numel() / n;
  result.l1.assign(n, 0.0f);
  result.l2.assign(n, 0.0f);
  result.linf.assign(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const float* a = result.adversarial.data() + i * row;
    const float* x = natural.data() + i * row;
    double acc1 = 0.0, acc2 = 0.0;
    float mx = 0.0f;
    for (std::size_t j = 0; j < row; ++j) {
      const float d = a[j] - x[j];
      acc1 += std::fabs(d);
      acc2 += static_cast<double>(d) * d;
      mx = std::max(mx, std::fabs(d));
    }
    result.l1[i] = static_cast<float>(acc1);
    result.l2[i] = static_cast<float>(std::sqrt(acc2));
    result.linf[i] = mx;
  }
}

}  // namespace adv::attacks
