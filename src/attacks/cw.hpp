// Carlini & Wagner's L2 attack (S&P'17), realized as the beta = 0 special
// case of EAD (the reproduced paper's §II-B makes this identification
// explicit: with beta = 0 the shrinkage operator degenerates to the box
// projection and the objective is c*f(x) + ||x - x0||_2^2).
#pragma once

#include "attacks/ead.hpp"

namespace adv::attacks {

struct CwL2Config {
  float kappa = 0.0f;
  std::size_t iterations = 1000;
  std::size_t binary_search_steps = 9;
  float initial_c = 1e-3f;
  float learning_rate = 1e-2f;
  // Active-set engine knobs, forwarded to EadConfig (see ead.hpp).
  std::size_t abort_early_window = 0;
  float abort_early_rel_tol = 1e-4f;
  bool compact = true;
};

/// Untargeted C&W L2 attack against `target` (any threat model; the
/// detector-aware behavior is inherited from the shared EAD engine).
AttackResult cw_l2_attack(AttackTarget& target, const Tensor& images,
                          const std::vector<int>& labels,
                          const CwL2Config& cfg);

/// Oblivious-threat-model wrapper: identical to running against an
/// ObliviousTarget over `model`.
AttackResult cw_l2_attack(nn::Sequential& model, const Tensor& images,
                          const std::vector<int>& labels,
                          const CwL2Config& cfg);

}  // namespace adv::attacks
