#include "attacks/fused.hpp"

#include <algorithm>
#include <stdexcept>

namespace adv::attacks {

void fused_ista_step(const Tensor& y, const Tensor& grad, const Tensor& x0,
                     float lr, float beta, Tensor& out) {
  if (!y.same_shape(grad) || !y.same_shape(x0)) {
    throw std::invalid_argument("fused_ista_step: shape mismatch");
  }
  if (!out.same_shape(y)) out = Tensor(y.shape());
  const float* py = y.data();
  const float* pg = grad.data();
  const float* p0 = x0.data();
  float* po = out.data();
  for (std::size_t i = 0, n = y.numel(); i < n; ++i) {
    // Keeping each intermediate in a named float reproduces the rounding
    // of the former store-to-memory passes exactly (no excess precision).
    const float g = pg[i] + 2.0f * (py[i] - p0[i]);
    const float z = py[i] + (-lr) * g;
    const float diff = z - p0[i];
    if (diff > beta) {
      po[i] = std::min(z - beta, 1.0f);
    } else if (diff < -beta) {
      po[i] = std::max(z + beta, 0.0f);
    } else {
      po[i] = p0[i];
    }
  }
}

bool fused_sign_step(float* x, const float* grad, const float* x0,
                     std::size_t row, float step, float epsilon) {
  bool moved = false;
  for (std::size_t d = 0; d < row; ++d) {
    float v = x[d] + step * (grad[d] > 0.0f ? 1.0f
                             : grad[d] < 0.0f ? -1.0f
                                              : 0.0f);
    // Project back into the eps-ball around x0, then into [0,1].
    v = std::clamp(v, x0[d] - epsilon, x0[d] + epsilon);
    v = std::clamp(v, 0.0f, 1.0f);
    if (v != x[d]) moved = true;
    x[d] = v;
  }
  return moved;
}

}  // namespace adv::attacks
