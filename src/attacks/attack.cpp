#include "attacks/attack.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace adv::attacks {
namespace {

// Compact float formatting for cache tags: 0.01 -> "0.01", 15 -> "15".
std::string fmt(float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(v));
  return buf;
}

// Early-abort tag suffix. Aborting changes which iterates are visited, so
// the knobs must be part of the cache identity; row compaction is
// bitwise-neutral and deliberately left out of tags (cached artifacts stay
// valid when it is toggled).
std::string abort_suffix(std::size_t window, float rel_tol) {
  if (window == 0) return "";
  return "_ae" + std::to_string(window) + "x" + fmt(rel_tol);
}

}  // namespace

std::vector<std::string> overrides_set_fields(const AttackOverrides& o) {
  std::vector<std::string> out;
  if (o.kappa) out.emplace_back("kappa");
  if (o.beta) out.emplace_back("beta");
  if (o.epsilon) out.emplace_back("epsilon");
  if (o.learning_rate) out.emplace_back("learning_rate");
  if (o.initial_c) out.emplace_back("initial_c");
  if (o.overshoot) out.emplace_back("overshoot");
  if (o.iterations) out.emplace_back("iterations");
  if (o.binary_search_steps) out.emplace_back("binary_search_steps");
  if (o.rule) out.emplace_back("rule");
  if (o.mode) out.emplace_back("mode");
  if (o.abort_early_window) out.emplace_back("abort_early_window");
  if (o.abort_early_rel_tol) out.emplace_back("abort_early_rel_tol");
  if (o.compact) out.emplace_back("compact");
  return out;
}

AttackMetricsScope::AttackMetricsScope(std::string name,
                                       std::size_t configured_iterations,
                                       std::size_t image_count)
    : active_(obs::enabled()), name_(std::move(name)) {
  if (!active_) return;
  auto& reg = obs::MetricsRegistry::global();
  start_ = std::chrono::steady_clock::now();
  forward0_ = reg.counter("model/forward_calls").value();
  backward0_ = reg.counter("model/backward_calls").value();
  reg.counter("attack/" + name_ + "/runs").add(1);
  reg.counter("attack/" + name_ + "/images").add(image_count);
  reg.counter("attack/" + name_ + "/iterations").add(configured_iterations);
}

void AttackMetricsScope::record_outcome(const AttackResult& result) {
  if (!active_) return;
  auto& reg = obs::MetricsRegistry::global();
  const std::size_t successes = result.success_count();
  reg.counter("attack/" + name_ + "/successes").add(successes);
  if (successes > 0) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    reg.timer("attack/" + name_ + "/time_to_success")
        .record_ns(static_cast<std::uint64_t>(ns.count()));
  }
}

AttackMetricsScope::~AttackMetricsScope() {
  if (!active_) return;
  auto& reg = obs::MetricsRegistry::global();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start_);
  reg.timer("attack/" + name_ + "/run")
      .record_ns(static_cast<std::uint64_t>(ns.count()));
  reg.counter("attack/" + name_ + "/grad_queries")
      .add(reg.counter("model/backward_calls").value() - backward0_);
  reg.counter("attack/" + name_ + "/forward_passes")
      .add(reg.counter("model/forward_calls").value() - forward0_);
}

AttackResult Attack::run(AttackTarget& target, const Tensor& images,
                         const std::vector<int>& labels) const {
  AttackMetricsScope scope(name(), configured_iterations(),
                           images.rank() ? images.dim(0) : 0);
  AttackResult result = run_impl(target, images, labels);
  scope.record_outcome(result);
  return result;
}

AttackResult Attack::run(nn::Sequential& model, const Tensor& images,
                         const std::vector<int>& labels) const {
  ObliviousTarget target(model);
  return run(target, images, labels);
}

std::string FgsmAttack::name() const { return name_; }

std::string FgsmAttack::tag() const {
  return name_ + "_e" + fmt(cfg_.epsilon) + "_i" +
         std::to_string(cfg_.iterations);
}

AttackResult FgsmAttack::run_impl(AttackTarget& target, const Tensor& images,
                                  const std::vector<int>& labels) const {
  return fgsm_attack(target, images, labels, cfg_);
}

std::string CwL2Attack::name() const { return "cw-l2"; }

std::string CwL2Attack::tag() const {
  return "cw_k" + fmt(cfg_.kappa) + "_i" + std::to_string(cfg_.iterations) +
         "_s" + std::to_string(cfg_.binary_search_steps) + "_c" +
         fmt(cfg_.initial_c) + "_lr" + fmt(cfg_.learning_rate) +
         abort_suffix(cfg_.abort_early_window, cfg_.abort_early_rel_tol);
}

AttackResult CwL2Attack::run_impl(AttackTarget& target,
                                  const Tensor& images,
                                  const std::vector<int>& labels) const {
  return cw_l2_attack(target, images, labels, cfg_);
}

std::string DeepFoolAttack::name() const { return "deepfool"; }

std::string DeepFoolAttack::tag() const {
  return "deepfool_i" + std::to_string(cfg_.max_iterations) + "_o" +
         fmt(cfg_.overshoot);
}

AttackResult DeepFoolAttack::run_impl(
    AttackTarget& target, const Tensor& images,
    const std::vector<int>& labels) const {
  return deepfool_attack(target, images, labels, cfg_);
}

std::string EadAttack::name() const { return "ead"; }

std::string EadAttack::tag() const {
  return std::string("ead_b") + fmt(cfg_.beta) + "_k" + fmt(cfg_.kappa) +
         "_" + to_string(cfg_.rule) + "_i" + std::to_string(cfg_.iterations) +
         "_s" + std::to_string(cfg_.binary_search_steps) + "_c" +
         fmt(cfg_.initial_c) + "_lr" + fmt(cfg_.learning_rate) +
         (cfg_.use_fista ? "_fista" : "") +
         (cfg_.mode == HingeMode::Targeted ? "_tgt" : "") +
         abort_suffix(cfg_.abort_early_window, cfg_.abort_early_rel_tol);
}

AttackResult EadAttack::run_impl(AttackTarget& target, const Tensor& images,
                                 const std::vector<int>& labels) const {
  return ead_attack(target, images, labels, cfg_);
}

AttackRegistry::AttackRegistry() {
  const std::vector<std::string> fgsm_fields = {"epsilon", "iterations",
                                                "compact"};
  add("fgsm", fgsm_fields, [](const AttackOverrides& o) {
    FgsmConfig cfg;
    if (o.epsilon) cfg.epsilon = *o.epsilon;
    if (o.iterations) cfg.iterations = *o.iterations;
    if (o.compact) cfg.compact = *o.compact;
    return std::make_unique<FgsmAttack>(cfg);
  });
  add("ifgsm", fgsm_fields, [](const AttackOverrides& o) {
    FgsmConfig cfg;
    cfg.iterations = 10;
    if (o.epsilon) cfg.epsilon = *o.epsilon;
    if (o.iterations) cfg.iterations = *o.iterations;
    if (o.compact) cfg.compact = *o.compact;
    return std::make_unique<FgsmAttack>(cfg, "ifgsm");
  });
  add("cw-l2",
      {"kappa", "iterations", "binary_search_steps", "initial_c",
       "learning_rate", "abort_early_window", "abort_early_rel_tol",
       "compact"},
      [](const AttackOverrides& o) {
        CwL2Config cfg;
        if (o.kappa) cfg.kappa = *o.kappa;
        if (o.iterations) cfg.iterations = *o.iterations;
        if (o.binary_search_steps)
          cfg.binary_search_steps = *o.binary_search_steps;
        if (o.initial_c) cfg.initial_c = *o.initial_c;
        if (o.learning_rate) cfg.learning_rate = *o.learning_rate;
        if (o.abort_early_window)
          cfg.abort_early_window = *o.abort_early_window;
        if (o.abort_early_rel_tol)
          cfg.abort_early_rel_tol = *o.abort_early_rel_tol;
        if (o.compact) cfg.compact = *o.compact;
        return std::make_unique<CwL2Attack>(cfg);
      });
  add("deepfool", {"iterations", "overshoot", "compact"},
      [](const AttackOverrides& o) {
        DeepFoolConfig cfg;
        if (o.iterations) cfg.max_iterations = *o.iterations;
        if (o.overshoot) cfg.overshoot = *o.overshoot;
        if (o.compact) cfg.compact = *o.compact;
        return std::make_unique<DeepFoolAttack>(cfg);
      });
  add("ead",
      {"kappa", "beta", "iterations", "binary_search_steps", "initial_c",
       "learning_rate", "rule", "mode", "abort_early_window",
       "abort_early_rel_tol", "compact"},
      [](const AttackOverrides& o) {
        EadConfig cfg;
        if (o.beta) cfg.beta = *o.beta;
        if (o.kappa) cfg.kappa = *o.kappa;
        if (o.iterations) cfg.iterations = *o.iterations;
        if (o.binary_search_steps)
          cfg.binary_search_steps = *o.binary_search_steps;
        if (o.initial_c) cfg.initial_c = *o.initial_c;
        if (o.learning_rate) cfg.learning_rate = *o.learning_rate;
        if (o.rule) cfg.rule = *o.rule;
        if (o.mode) cfg.mode = *o.mode;
        if (o.abort_early_window)
          cfg.abort_early_window = *o.abort_early_window;
        if (o.abort_early_rel_tol)
          cfg.abort_early_rel_tol = *o.abort_early_rel_tol;
        if (o.compact) cfg.compact = *o.compact;
        return std::make_unique<EadAttack>(cfg);
      });
}

AttackRegistry& AttackRegistry::instance() {
  // Built-ins are registered in the constructor (not via static
  // self-registration, which a static-library link would strip).
  static AttackRegistry registry;
  return registry;
}

void AttackRegistry::add(const std::string& name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("AttackRegistry::add: null factory for '" +
                                name + "'");
  }
  Entry entry{std::move(factory), {}, /*strict=*/false};
  if (!factories_.emplace(name, std::move(entry)).second) {
    throw std::invalid_argument("AttackRegistry::add: duplicate attack '" +
                                name + "'");
  }
}

void AttackRegistry::add(const std::string& name,
                         std::vector<std::string> relevant_fields,
                         Factory factory) {
  if (!factory) {
    throw std::invalid_argument("AttackRegistry::add: null factory for '" +
                                name + "'");
  }
  Entry entry{std::move(factory), std::move(relevant_fields),
              /*strict=*/true};
  if (!factories_.emplace(name, std::move(entry)).second) {
    throw std::invalid_argument("AttackRegistry::add: duplicate attack '" +
                                name + "'");
  }
}

std::unique_ptr<Attack> AttackRegistry::create(
    const std::string& name, const AttackOverrides& overrides) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [key, unused] : factories_) {
      (void)unused;
      known += known.empty() ? key : ", " + key;
    }
    throw std::invalid_argument("AttackRegistry: unknown attack '" + name +
                                "' (registered: " + known + ")");
  }
  const Entry& entry = it->second;
  if (entry.strict) {
    for (const std::string& field : overrides_set_fields(overrides)) {
      if (std::find(entry.relevant.begin(), entry.relevant.end(), field) ==
          entry.relevant.end()) {
        if (obs::enabled()) {
          obs::MetricsRegistry::global()
              .counter("attack/overrides_rejected")
              .add(1);
        }
        throw std::invalid_argument(
            "AttackRegistry: override field '" + field +
            "' is not consumed by attack '" + name +
            "' (it would be silently ignored)");
      }
    }
  }
  return entry.factory(overrides);
}

bool AttackRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> AttackRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) {
    (void)unused;
    out.push_back(key);
  }
  return out;
}

std::unique_ptr<Attack> make_attack(const std::string& name,
                                    const AttackOverrides& overrides) {
  return AttackRegistry::instance().create(name, overrides);
}

}  // namespace adv::attacks
