#include "attacks/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace adv::attacks {

ActiveSet::ActiveSet(std::size_t n) : flags_(n, 1), indices_(n) {
  std::iota(indices_.begin(), indices_.end(), std::size_t{0});
}

void ActiveSet::retire(std::size_t i) {
  if (i >= flags_.size() || !flags_[i]) return;
  flags_[i] = 0;
  indices_.erase(std::lower_bound(indices_.begin(), indices_.end(), i));
}

void ActiveSet::reset() {
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{1});
  indices_.resize(flags_.size());
  std::iota(indices_.begin(), indices_.end(), std::size_t{0});
}

PlateauDetector::PlateauDetector(std::size_t n, std::size_t window,
                                 float rel_tol)
    : window_(window),
      rel_tol_(rel_tol),
      best_(n, std::numeric_limits<float>::infinity()),
      stale_(n, 0) {}

bool PlateauDetector::observe(std::size_t i, float value) {
  if (window_ == 0) return false;
  // "Improved" means strictly better than best by a relative margin, so a
  // row grinding out sub-tolerance gains still retires. The first finite
  // value always improves (inf - rel_tol*|inf| is NaN, which would compare
  // false and silently eat one window slot).
  if (!std::isfinite(best_[i]) ||
      value < best_[i] - rel_tol_ * std::fabs(best_[i])) {
    best_[i] = value;
    stale_[i] = 0;
    return false;
  }
  return ++stale_[i] >= window_;
}

void PlateauDetector::reset() {
  std::fill(best_.begin(), best_.end(),
            std::numeric_limits<float>::infinity());
  std::fill(stale_.begin(), stale_.end(), 0u);
}

void EngineStats::flush(const std::string& attack_name) const {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("attack/" + attack_name + "/rows_retired").add(rows_retired);
  reg.counter("attack/" + attack_name + "/passes_saved").add(passes_saved);
}

Tensor gather_rows(const Tensor& batch, const std::vector<std::size_t>& idx) {
  if (batch.rank() == 0 || batch.dim(0) == 0) {
    throw std::invalid_argument("gather_rows: empty batch");
  }
  const std::size_t n = batch.dim(0);
  const std::size_t row = batch.numel() / n;
  std::vector<std::size_t> dims = batch.shape().dims();
  dims[0] = idx.size();
  Tensor out{Shape(dims)};
  float* dst = out.data();
  for (std::size_t a = 0; a < idx.size(); ++a) {
    if (idx[a] >= n) throw std::out_of_range("gather_rows: index");
    std::memcpy(dst + a * row, batch.data() + idx[a] * row,
                row * sizeof(float));
  }
  return out;
}

void scatter_rows(const Tensor& sub, const std::vector<std::size_t>& idx,
                  Tensor& batch) {
  if (sub.rank() == 0 || sub.dim(0) != idx.size()) {
    throw std::invalid_argument("scatter_rows: sub/index mismatch");
  }
  const std::size_t n = batch.dim(0);
  const std::size_t row = batch.numel() / n;
  if (sub.numel() != idx.size() * row) {
    throw std::invalid_argument("scatter_rows: row size mismatch");
  }
  float* dst = batch.data();
  for (std::size_t a = 0; a < idx.size(); ++a) {
    if (idx[a] >= n) throw std::out_of_range("scatter_rows: index");
    std::memcpy(dst + idx[a] * row, sub.data() + a * row,
                row * sizeof(float));
  }
}

}  // namespace adv::attacks
