#include "attacks/target.hpp"

#include <stdexcept>

namespace adv::attacks {

const char* to_string(ThreatModel tm) {
  switch (tm) {
    case ThreatModel::Oblivious:
      return "oblivious";
    case ThreatModel::GrayBox:
      return "gray-box";
    case ThreatModel::DetectorAware:
      return "detector-aware";
  }
  return "?";
}

std::vector<float> AttackTarget::aux_loss(const Tensor& batch) {
  (void)batch;
  throw std::logic_error("AttackTarget::aux_loss called on a target with no "
                         "auxiliary terms (check has_aux() first)");
}

Tensor AttackTarget::aux_input_grad(const Tensor& batch,
                                    const std::vector<float>& weight) {
  (void)batch;
  (void)weight;
  throw std::logic_error("AttackTarget::aux_input_grad called on a target "
                         "with no auxiliary terms (check has_aux() first)");
}

Tensor ObliviousTarget::logits(const Tensor& batch, nn::Mode mode) {
  return classifier_.forward(batch, mode);
}

Tensor ObliviousTarget::input_grad(const Tensor& batch,
                                   const Tensor& upstream) {
  (void)batch;
  return classifier_.backward(upstream);
}

Tensor GrayBoxTarget::logits(const Tensor& batch, nn::Mode mode) {
  return classifier_.forward(ae_.forward(batch, mode), mode);
}

Tensor GrayBoxTarget::input_grad(const Tensor& batch, const Tensor& upstream) {
  (void)batch;
  return ae_.backward(classifier_.backward(upstream));
}

DetectorAwareTarget::DetectorAwareTarget(
    nn::Sequential* autoencoder, nn::Sequential& classifier,
    std::vector<std::shared_ptr<AuxObjective>> aux, std::string tag)
    : ae_(autoencoder),
      classifier_(classifier),
      aux_(std::move(aux)),
      tag_(std::move(tag)) {
  for (const auto& term : aux_) {
    if (!term) {
      throw std::invalid_argument("DetectorAwareTarget: null aux term");
    }
  }
}

Tensor DetectorAwareTarget::logits(const Tensor& batch, nn::Mode mode) {
  if (!ae_) return classifier_.forward(batch, mode);
  return classifier_.forward(ae_->forward(batch, mode), mode);
}

Tensor DetectorAwareTarget::input_grad(const Tensor& batch,
                                       const Tensor& upstream) {
  (void)batch;
  Tensor g = classifier_.backward(upstream);
  if (!ae_) return g;
  return ae_->backward(g);
}

std::vector<float> DetectorAwareTarget::aux_loss(const Tensor& batch) {
  std::vector<float> total(batch.dim(0), 0.0f);
  for (const auto& term : aux_) {
    const std::vector<float> part = term->loss(batch);
    if (part.size() != total.size()) {
      throw std::logic_error("aux term '" + term->name() +
                             "' returned wrong row count");
    }
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += part[i];
  }
  return total;
}

Tensor DetectorAwareTarget::aux_input_grad(const Tensor& batch,
                                           const std::vector<float>& weight) {
  if (weight.size() != batch.dim(0)) {
    throw std::invalid_argument("aux_input_grad: weight/batch size mismatch");
  }
  Tensor total(batch.shape());
  for (const auto& term : aux_) {
    const Tensor part = term->input_grad(batch, weight);
    for (std::size_t j = 0; j < total.numel(); ++j) total[j] += part[j];
  }
  return total;
}

}  // namespace adv::attacks
