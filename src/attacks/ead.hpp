// EAD: Elastic-net Attacks to DNNs (Chen et al., AAAI'18), the L1-based
// attack the reproduced paper uses to bypass MagNet.
//
// Solves (paper eq. (1), untargeted form):
//   min_x  c * f(x) + ||x - x0||_2^2 + beta * ||x - x0||_1   s.t. x in [0,1]^p
// via ISTA iterations (eq. (4)) with the pixel-wise projected
// shrinkage-thresholding operator S_beta (eq. (5)), an optional FISTA
// momentum term (the reference implementation's default), per-image binary
// search over c, and the EN / L1 decision rules for selecting the final
// adversarial example. C&W's L2 attack is the beta = 0 special case.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attacks/common.hpp"

namespace adv::attacks {

/// Rule for choosing the best successful iterate (paper §III-A).
enum class DecisionRule {
  EN,  // minimize beta*||d||_1 + ||d||_2^2
  L1,  // minimize ||d||_1
  L2,  // minimize ||d||_2 (used by the C&W special case)
};

const char* to_string(DecisionRule r);

struct EadConfig {
  float beta = 1e-2f;       // L1 regularization (paper sweeps 1e-3..1e-1)
  float kappa = 0.0f;       // confidence; success needs margin >= kappa
  std::size_t iterations = 1000;
  std::size_t binary_search_steps = 9;
  float initial_c = 1e-3f;  // paper: binary search starts from 0.001
  float learning_rate = 1e-2f;
  DecisionRule rule = DecisionRule::EN;
  bool use_fista = false;   // plain ISTA per paper eq. (4); FISTA optional
  // Untargeted uses the paper's eq. (3) loss with `labels` = true labels;
  // Targeted uses eq. (2) with `labels` = desired target labels.
  HingeMode mode = HingeMode::Untargeted;

  // --- active-set engine knobs (see attacks/engine.hpp) ---------------
  // Early abort: retire a row inside a binary-search step once its
  // objective c*f(x) + ||x-x0||_2^2 + beta*||x-x0||_1 has gone
  // `abort_early_window` consecutive iterations without improving by more
  // than abort_early_rel_tol * |best|. 0 disables (the default — results
  // are then exactly the full-schedule optimization).
  std::size_t abort_early_window = 0;
  float abort_early_rel_tol = 1e-4f;
  // Row compaction: run model passes on a dense gather of the still-active
  // rows only. Bitwise-identical outputs either way (layers are per-row
  // independent), so this is on by default; off is the benchmark baseline.
  bool compact = true;
  // Name under which engine/observability counters are recorded
  // ("attack/<metrics_name>/..."). The C&W-L2 wrapper sets "cw-l2".
  std::string metrics_name = "ead";
};

/// Runs batched EAD against `target` (logit outputs). In untargeted mode
/// `labels` are the true labels of `images` (every image is assumed
/// correctly classified — the paper attacks only such images); in
/// targeted mode they are the attack targets. On detector-aware targets
/// the c-weighted detector penalty joins the objective (the
/// Carlini–Wagner detector-evasion formulation) and a candidate only
/// counts as successful when it also evades the detector bank.
AttackResult ead_attack(AttackTarget& target, const Tensor& images,
                        const std::vector<int>& labels, const EadConfig& cfg);

/// Oblivious-threat-model wrapper: identical to running against an
/// ObliviousTarget over `model`.
AttackResult ead_attack(nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels, const EadConfig& cfg);

/// Same optimization run, but selects the best successful iterate under
/// EVERY rule in `rules` simultaneously (cfg.rule is ignored). The paper
/// reports the EN and L1 decision rules for identical attack settings, so
/// sharing one run halves attack compute. Result i corresponds to rules[i].
std::vector<AttackResult> ead_attack_multi(AttackTarget& target,
                                           const Tensor& images,
                                           const std::vector<int>& labels,
                                           const EadConfig& cfg,
                                           std::span<const DecisionRule> rules);
std::vector<AttackResult> ead_attack_multi(nn::Sequential& model,
                                           const Tensor& images,
                                           const std::vector<int>& labels,
                                           const EadConfig& cfg,
                                           std::span<const DecisionRule> rules);

/// The pixel-wise projected shrinkage-thresholding operator S_beta
/// (paper eq. (5)), applied elementwise relative to the natural image x0.
/// Exposed for tests: z, x0 and out must have identical shapes.
void shrink_project(const Tensor& z, const Tensor& x0, float beta,
                    Tensor& out);

}  // namespace adv::attacks
