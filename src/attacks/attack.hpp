// Unified attack API: a polymorphic Attack interface over the free-function
// attack implementations, plus a string-keyed registry so experiment
// drivers can select attacks by name ("fgsm", "ifgsm", "cw-l2", "deepfool",
// "ead") instead of hard-wiring one entry point per algorithm.
//
// Adapters are thin: each wraps a legacy config struct and forwards run()
// to the corresponding free function, so a registry-built attack produces
// results identical to a direct call. Attacks run against an AttackTarget
// (attacks/target.hpp) — the threat-model seam; the nn::Sequential&
// overload is the oblivious special case and routes through an
// ObliviousTarget (bitwise-identical results).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/target.hpp"
#include "obs/metrics.hpp"

namespace adv::attacks {

/// Optional knob overrides applied on top of an attack's default config
/// when it is built by name. AttackRegistry::create is strict: setting a
/// field the chosen attack does not consume (e.g. beta for FGSM) throws,
/// with the message naming the offending field — a silently-ignored knob
/// is almost always a misconfigured experiment.
struct AttackOverrides {
  std::optional<float> kappa;
  std::optional<float> beta;
  std::optional<float> epsilon;
  std::optional<float> learning_rate;
  std::optional<float> initial_c;
  std::optional<float> overshoot;
  std::optional<std::size_t> iterations;
  std::optional<std::size_t> binary_search_steps;
  std::optional<DecisionRule> rule;
  std::optional<HingeMode> mode;
  // Active-set engine knobs (attacks/engine.hpp). abort_early_* applies to
  // ead/cw-l2; compact to every attack.
  std::optional<std::size_t> abort_early_window;
  std::optional<float> abort_early_rel_tol;
  std::optional<bool> compact;
};

/// Names of the fields set (non-nullopt) in `o`, in declaration order.
/// The registry's strictness check compares these against the chosen
/// attack's relevant-field list.
std::vector<std::string> overrides_set_fields(const AttackOverrides& o);

/// RAII metrics recorder for one attack run. When obs::enabled() at
/// construction, records under "attack/<name>/...":
///   runs, images, iterations (configured budget), grad_queries and
///   forward_passes (deltas of the Sequential model/_calls counters over
///   the scope), successes, a "run" wall-time timer, and — via
///   record_outcome on a successful result — a "time_to_success" timer
///   (wall time until the attack produced its successful examples).
/// Attack::run applies it automatically; direct callers of the free
/// attack functions (e.g. ModelZoo's shared-run EAD path) instantiate it
/// themselves.
class AttackMetricsScope {
 public:
  AttackMetricsScope(std::string name, std::size_t configured_iterations,
                     std::size_t image_count);
  AttackMetricsScope(const AttackMetricsScope&) = delete;
  AttackMetricsScope& operator=(const AttackMetricsScope&) = delete;
  ~AttackMetricsScope();

  /// Adds success statistics; call once per produced result (the shared
  /// EAD run records the outcome of one decision rule only, since the
  /// rules share success flags).
  void record_outcome(const AttackResult& result);

 private:
  bool active_ = false;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t forward0_ = 0;
  std::uint64_t backward0_ = 0;
};

/// Polymorphic attack: craft adversarial examples for `images` against an
/// AttackTarget (oblivious / gray-box / detector-aware). In untargeted
/// mode `labels` are the true labels; in targeted mode they are the
/// attack targets.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Registry name of the algorithm, e.g. "ead".
  virtual std::string name() const = 0;

  /// Stable parameter-bearing identifier, e.g. "ead_b0.01_k15_EN_i1000".
  /// Distinct configurations must yield distinct tags — caching layers
  /// (core::ModelZoo) key stored artifacts on it, with the target's
  /// tag_suffix() appended to separate threat models.
  virtual std::string tag() const = 0;

  /// Configured per-binary-search-step iteration budget (0 when the
  /// notion does not apply). Feeds the "attack/<name>/iterations" metric.
  virtual std::size_t configured_iterations() const { return 0; }

  /// Template method: wraps run_impl in an AttackMetricsScope so every
  /// registry-built attack reports iterations, gradient queries and
  /// time-to-success uniformly. Results are identical to calling the
  /// underlying free function directly.
  AttackResult run(AttackTarget& target, const Tensor& images,
                   const std::vector<int>& labels) const;

  /// Oblivious convenience overload (the pre-AttackTarget API): runs
  /// against an ObliviousTarget over `model`, bitwise-identical to the
  /// old direct-Sequential path.
  AttackResult run(nn::Sequential& model, const Tensor& images,
                   const std::vector<int>& labels) const;

 protected:
  /// The algorithm itself; subclasses implement this instead of run().
  virtual AttackResult run_impl(AttackTarget& target, const Tensor& images,
                                const std::vector<int>& labels) const = 0;
};

class FgsmAttack final : public Attack {
 public:
  /// `name` distinguishes the registry's single-step "fgsm" from the
  /// multi-step "ifgsm" alias in tags and metrics; both share the
  /// algorithm and config.
  explicit FgsmAttack(FgsmConfig cfg = {}, std::string name = "fgsm")
      : cfg_(cfg), name_(std::move(name)) {}
  std::string name() const override;
  std::string tag() const override;
  std::size_t configured_iterations() const override {
    return cfg_.iterations;
  }
  FgsmConfig& config() { return cfg_; }
  const FgsmConfig& config() const { return cfg_; }

 protected:
  AttackResult run_impl(AttackTarget& target, const Tensor& images,
                        const std::vector<int>& labels) const override;

 private:
  FgsmConfig cfg_;
  std::string name_;
};

class CwL2Attack final : public Attack {
 public:
  explicit CwL2Attack(CwL2Config cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  std::size_t configured_iterations() const override {
    return cfg_.iterations;
  }
  CwL2Config& config() { return cfg_; }
  const CwL2Config& config() const { return cfg_; }

 protected:
  AttackResult run_impl(AttackTarget& target, const Tensor& images,
                        const std::vector<int>& labels) const override;

 private:
  CwL2Config cfg_;
};

class DeepFoolAttack final : public Attack {
 public:
  explicit DeepFoolAttack(DeepFoolConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  std::size_t configured_iterations() const override {
    return cfg_.max_iterations;
  }
  DeepFoolConfig& config() { return cfg_; }
  const DeepFoolConfig& config() const { return cfg_; }

 protected:
  AttackResult run_impl(AttackTarget& target, const Tensor& images,
                        const std::vector<int>& labels) const override;

 private:
  DeepFoolConfig cfg_;
};

class EadAttack final : public Attack {
 public:
  explicit EadAttack(EadConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  std::size_t configured_iterations() const override {
    return cfg_.iterations;
  }
  EadConfig& config() { return cfg_; }
  const EadConfig& config() const { return cfg_; }

 protected:
  AttackResult run_impl(AttackTarget& target, const Tensor& images,
                        const std::vector<int>& labels) const override;

 private:
  EadConfig cfg_;
};

/// String-keyed attack factory registry. The four built-in algorithms
/// (plus the "ifgsm" multi-step alias) are registered on first use;
/// out-of-tree attacks can add themselves via add().
class AttackRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Attack>(const AttackOverrides&)>;

  /// Process-wide registry with the built-ins pre-registered.
  static AttackRegistry& instance();

  /// Registers a factory that consumes every AttackOverrides field
  /// (create() then checks nothing). Throws std::invalid_argument on a
  /// duplicate name.
  void add(const std::string& name, Factory factory);

  /// Registers a factory together with the override fields it consumes
  /// (names as in AttackOverrides; see overrides_set_fields). create()
  /// rejects overrides that set any other field.
  void add(const std::string& name, std::vector<std::string> relevant_fields,
           Factory factory);

  /// Builds the named attack. Throws std::invalid_argument for unknown
  /// names (the message lists what is registered) and for overrides that
  /// set a field irrelevant to the attack (the message names the field;
  /// the "attack/overrides_rejected" obs counter is bumped first).
  std::unique_ptr<Attack> create(const std::string& name,
                                 const AttackOverrides& overrides = {}) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  struct Entry {
    Factory factory;
    std::vector<std::string> relevant;  // empty + !strict: accepts all
    bool strict = false;
  };

  AttackRegistry();
  std::map<std::string, Entry> factories_;
};

/// Convenience wrapper over AttackRegistry::instance().create().
std::unique_ptr<Attack> make_attack(const std::string& name,
                                    const AttackOverrides& overrides = {});

}  // namespace adv::attacks
