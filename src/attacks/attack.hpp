// Unified attack API: a polymorphic Attack interface over the free-function
// attack implementations, plus a string-keyed registry so experiment
// drivers can select attacks by name ("fgsm", "ifgsm", "cw-l2", "deepfool",
// "ead") instead of hard-wiring one entry point per algorithm.
//
// Adapters are thin: each wraps a legacy config struct and forwards run()
// to the corresponding free function, so a registry-built attack produces
// results identical to a direct call.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/fgsm.hpp"

namespace adv::attacks {

/// Optional knob overrides applied on top of an attack's default config
/// when it is built by name. Fields irrelevant to the chosen attack are
/// ignored (e.g. beta for FGSM), mirroring how the legacy config structs
/// ignore unknown settings.
struct AttackOverrides {
  std::optional<float> kappa;
  std::optional<float> beta;
  std::optional<float> epsilon;
  std::optional<float> learning_rate;
  std::optional<float> initial_c;
  std::optional<float> overshoot;
  std::optional<std::size_t> iterations;
  std::optional<std::size_t> binary_search_steps;
  std::optional<DecisionRule> rule;
  std::optional<HingeMode> mode;
};

/// Polymorphic attack: craft adversarial examples for `images` against
/// `model` (raw-logit classifier), under the paper's oblivious threat
/// model. In untargeted mode `labels` are the true labels; in targeted
/// mode they are the attack targets.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Registry name of the algorithm, e.g. "ead".
  virtual std::string name() const = 0;

  /// Stable parameter-bearing identifier, e.g. "ead_b0.01_k15_EN_i1000".
  /// Distinct configurations must yield distinct tags — caching layers
  /// (core::ModelZoo) key stored artifacts on it.
  virtual std::string tag() const = 0;

  virtual AttackResult run(nn::Sequential& model, const Tensor& images,
                           const std::vector<int>& labels) const = 0;
};

class FgsmAttack final : public Attack {
 public:
  explicit FgsmAttack(FgsmConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  AttackResult run(nn::Sequential& model, const Tensor& images,
                   const std::vector<int>& labels) const override;
  FgsmConfig& config() { return cfg_; }
  const FgsmConfig& config() const { return cfg_; }

 private:
  FgsmConfig cfg_;
};

class CwL2Attack final : public Attack {
 public:
  explicit CwL2Attack(CwL2Config cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  AttackResult run(nn::Sequential& model, const Tensor& images,
                   const std::vector<int>& labels) const override;
  CwL2Config& config() { return cfg_; }
  const CwL2Config& config() const { return cfg_; }

 private:
  CwL2Config cfg_;
};

class DeepFoolAttack final : public Attack {
 public:
  explicit DeepFoolAttack(DeepFoolConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  AttackResult run(nn::Sequential& model, const Tensor& images,
                   const std::vector<int>& labels) const override;
  DeepFoolConfig& config() { return cfg_; }
  const DeepFoolConfig& config() const { return cfg_; }

 private:
  DeepFoolConfig cfg_;
};

class EadAttack final : public Attack {
 public:
  explicit EadAttack(EadConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override;
  std::string tag() const override;
  AttackResult run(nn::Sequential& model, const Tensor& images,
                   const std::vector<int>& labels) const override;
  EadConfig& config() { return cfg_; }
  const EadConfig& config() const { return cfg_; }

 private:
  EadConfig cfg_;
};

/// String-keyed attack factory registry. The four built-in algorithms
/// (plus the "ifgsm" multi-step alias) are registered on first use;
/// out-of-tree attacks can add themselves via add().
class AttackRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Attack>(const AttackOverrides&)>;

  /// Process-wide registry with the built-ins pre-registered.
  static AttackRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on a duplicate.
  void add(const std::string& name, Factory factory);

  /// Builds the named attack. Throws std::invalid_argument for unknown
  /// names (the message lists what is registered).
  std::unique_ptr<Attack> create(const std::string& name,
                                 const AttackOverrides& overrides = {}) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  AttackRegistry();
  std::map<std::string, Factory> factories_;
};

/// Convenience wrapper over AttackRegistry::instance().create().
std::unique_ptr<Attack> make_attack(const std::string& name,
                                    const AttackOverrides& overrides = {});

}  // namespace adv::attacks
