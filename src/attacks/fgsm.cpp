#include "attacks/fgsm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/engine.hpp"
#include "attacks/fused.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"

namespace adv::attacks {

AttackResult fgsm_attack(AttackTarget& target, const Tensor& images,
                         const std::vector<int>& labels,
                         const FgsmConfig& cfg) {
  if (images.dim(0) != labels.size()) {
    throw std::invalid_argument("fgsm_attack: image/label count mismatch");
  }
  if (cfg.iterations == 0) {
    throw std::invalid_argument("fgsm_attack: iterations must be > 0");
  }
  const std::size_t n = images.dim(0);
  const std::size_t row = images.numel() / n;
  const float step = cfg.epsilon / static_cast<float>(cfg.iterations);

  Tensor x = images;
  nn::SoftmaxCrossEntropy loss;
  ActiveSet rows(n);
  EngineStats stats;
  std::vector<std::size_t> to_retire;
  std::vector<float> aux_w;
  for (std::size_t k = 0; k < cfg.iterations && !rows.none_active(); ++k) {
    const CompactPlan plan(rows, cfg.compact);
    const std::size_t na = plan.active();
    Tensor x_g;
    std::vector<int> lab_g;
    const Tensor& xcur = plan.pick(x, x_g);
    const std::vector<int>& lab = plan.pick(labels, lab_g);

    const Tensor logits = target.logits(xcur, nn::Mode::Eval);
    loss.forward(logits, lab);
    Tensor grad = target.input_grad(xcur, loss.backward());
    plan.record_passes(stats, 2);  // forward + backward

    if (target.has_aux()) {
      // Descend the detector penalty alongside the CE ascent. The CE seed
      // is (softmax - onehot) / batch, so weighting the aux term by
      // 1/batch keeps the two at the same per-row scale in the compacted
      // and dense paths alike.
      const float w = 1.0f / static_cast<float>(xcur.dim(0));
      aux_w.assign(xcur.dim(0), w);
      const Tensor ag = target.aux_input_grad(xcur, aux_w);
      for (std::size_t i = 0, m = grad.numel(); i < m; ++i) grad[i] -= ag[i];
    }

    // Sign step + eps-ball/[0,1] projection per active row. The CE seed is
    // (softmax - onehot) / batch, so the sub-batch gradient differs from
    // the full-batch one only by a positive per-row scale — the sign (and
    // hence the update) is identical either way. A row left bitwise
    // unchanged is at a fixed point of this deterministic map and retires.
    to_retire.clear();
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t g = plan.global(a);
      const std::size_t loc = plan.loc(a);
      if (!fused_sign_step(x.data() + g * row, grad.data() + loc * row,
                           images.data() + g * row, row, step,
                           cfg.epsilon)) {
        to_retire.push_back(g);
      }
    }
    for (const std::size_t g : to_retire) {
      rows.retire(g);
      ++stats.rows_retired;
    }
  }
  stats.flush(cfg.iterations > 1 ? "ifgsm" : "fgsm");

  AttackResult result;
  result.adversarial = x;
  result.success.assign(n, false);
  const HingeEval eval =
      eval_untargeted_hinge(target, x, labels, 0.0f, nn::Mode::Infer);
  for (std::size_t i = 0; i < n; ++i) {
    result.success[i] = eval.margin[i] > 0.0f;  // misclassified
  }
  if (target.has_aux()) {
    // Detector-aware success: the example must also evade the detectors.
    const std::vector<float> aux = target.aux_loss(x);
    for (std::size_t i = 0; i < n; ++i) {
      if (aux[i] > 0.0f) result.success[i] = false;
    }
  }
  // Keep natural images for failed rows so distortion stats stay honest.
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.success[i]) {
      std::copy_n(images.data() + i * row, row,
                  result.adversarial.data() + i * row);
    }
  }
  fill_distortions(result, images);
  return result;
}

AttackResult fgsm_attack(nn::Sequential& model, const Tensor& images,
                         const std::vector<int>& labels,
                         const FgsmConfig& cfg) {
  ObliviousTarget target(model);
  return fgsm_attack(target, images, labels, cfg);
}

}  // namespace adv::attacks
